//! # framefeedback — facade crate
//!
//! Reproduction of *FrameFeedback: A Closed-Loop Control System for
//! Dynamic Offloading Real-Time Edge Inference* (IPPS 2024). This crate
//! re-exports the whole workspace behind stable module names; the
//! runnable examples under `examples/` use only this facade.
//!
//! ```
//! use framefeedback::controller::{Controller, FrameFeedback, Measurement};
//!
//! let mut ctl = FrameFeedback::new();
//! let d = ctl.update(&Measurement {
//!     fs: 30.0,
//!     po_achieved: 0.0,
//!     pl_achieved: 13.0,
//!     timeout_rate: 0.0,
//!     heartbeat_ok: true,
//!     dt_secs: 1.0,
//! });
//! assert!(d.po_target > 0.0);
//! ```

/// The FrameFeedback PD controller and the `Controller` trait (`ff-core`).
pub mod controller {
    pub use ff_core::*;
}

/// The §IV-B baseline policies (`ff-baselines`).
pub mod baselines {
    pub use ff_baselines::*;
}

/// The edge device model and experiment runner (`ff-device`), including
/// the shared `DeviceRuntime` control loop that both the simulator and
/// the live TCP client drive.
pub mod device {
    pub use ff_device::*;
}

/// The emulated uplink (`ff-net`).
pub mod net {
    pub use ff_net::*;
}

/// The multi-tenant batching server and the N-server tier (`ff-server`):
/// routing policies (static shard, stale-gossip JSQ, power-of-two
/// choices) and per-tenant token-bucket admission in front of
/// heterogeneous `EdgeServer`s.
pub mod server {
    pub use ff_server::*;
}

/// Model/device/GPU profiles and the compression model (`ff-models`).
pub mod models {
    pub use ff_models::*;
}

/// Frame streams and the Table V / VI schedules (`ff-workload`).
pub mod workload {
    pub use ff_workload::*;
}

/// Telemetry primitives (`ff-metrics`).
pub mod metrics {
    pub use ff_metrics::*;
}

/// The structured observability pipeline (`ff-telemetry`): lock-free
/// recorders, the windowed snapshot collector, and pluggable sinks.
pub mod telemetry {
    pub use ff_telemetry::*;
}

/// The discrete-event simulation engine (`ff-sim`).
pub mod sim {
    pub use ff_sim::*;
}

/// The live TCP offloading mode (`ff-live`) — the wall-clock adapter
/// over the same `device::DeviceRuntime` the simulator runs.
pub mod live {
    pub use ff_live::*;
}

/// The readiness-driven live tier (`ff-reactor`): one epoll thread
/// multiplexing thousands of `DeviceRuntime`s and server connections,
/// length-prefixed `FFLP` binary framing, bounded write buffers with
/// backpressure verdicts, and the fleet soak client.
pub mod reactor {
    pub use ff_reactor::*;
}

/// Binary record/replay traces of the device control loop (`ff-trace`):
/// the schema-versioned event codec, the `TraceWriter` the runtime
/// records through, and the decoded `Trace` that `device::replay_verify`
/// re-executes bit-for-bit.
pub mod trace {
    pub use ff_trace::*;
}

/// The parallel deterministic sweep engine (`ff-sweep`): declarative
/// `(scenario × seed × routing × admission × controller)` grids — plus
/// the fleet twin `FleetSweepSpec` crossing whole controller lineups —
/// work-stealing execution, order-independent aggregation, and the
/// content-hash result cache (experiment grids only).
pub mod sweep {
    pub use ff_sweep::*;
}
