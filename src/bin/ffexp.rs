//! `ffexp` — command-line experiment runner.
//!
//! Runs any paper scenario under any controller and prints the per-second
//! QoS trace plus a summary, optionally exporting JSON:
//!
//! ```sh
//! cargo run --release --bin ffexp -- --scenario table5 --controller framefeedback
//! cargo run --release --bin ffexp -- --scenario table6 --controller all-or-nothing --seed 7
//! cargo run --release --bin ffexp -- --scenario ideal --frames 900 --json out.json
//! ```

use framefeedback::baselines::{AllOrNothing, AlwaysOffload, LocalOnly};
use framefeedback::controller::{Controller, FrameFeedback, PidConfig};
use framefeedback::device::{
    content_scenario, replay_verify, run_experiment, run_experiment_traced, ExperimentConfig,
    ModelSelection,
};
use framefeedback::server::{AdmissionPolicy, RoutingPolicy, ServerSpec, TierConfig};
use framefeedback::sim::SimDuration;
use framefeedback::trace::Trace;
use framefeedback::workload::{fig2_loss_injection, ideal_network, table_v, table_vi};
use std::process::ExitCode;

#[derive(Debug, Clone, PartialEq)]
struct CliConfig {
    scenario: String,
    controller: String,
    seed: u64,
    frames: u64,
    kp: Option<f64>,
    kd: Option<f64>,
    servers: Option<usize>,
    routing: Option<String>,
    admission: Option<String>,
    selection: Option<String>,
    json: Option<String>,
    config_path: Option<String>,
    trace: Option<String>,
    verify_trace: Option<String>,
    dump_config: bool,
    quiet: bool,
}

impl Default for CliConfig {
    fn default() -> Self {
        CliConfig {
            scenario: "table5".into(),
            controller: "framefeedback".into(),
            seed: 42,
            frames: 4_000,
            kp: None,
            kd: None,
            servers: None,
            routing: None,
            admission: None,
            selection: None,
            json: None,
            config_path: None,
            trace: None,
            verify_trace: None,
            dump_config: false,
            quiet: false,
        }
    }
}

const USAGE: &str = "\
ffexp — FrameFeedback experiment runner

USAGE:
  ffexp [--scenario S] [--controller C] [--seed N] [--frames N]
        [--kp X] [--kd X] [--json PATH] [--quiet]
        [--servers N]      run an N-server tier (default: 1, the paper)
        [--routing R]      static-shard | jsq | jsq:GOSSIP_MS | po2c
        [--admission A]    admit-all | token-bucket:RATE[:BURST]
        [--selection P]    paper | expected-accuracy[:MARGIN]
        [--config PATH]    load a full ExperimentConfig from JSON
        [--dump-config]    print the default config as JSON and exit
        [--trace PATH]     record the run as a binary control-loop trace
        [--verify-trace PATH]  replay-verify a recorded trace and exit

SCENARIOS:
  ideal     perfect 10 Mbps network, no background load
  table5    the paper's network-degradation schedule (Fig. 3)
  table6    the paper's server-load schedule (Fig. 4)
  combined  table5 x table6 simultaneously
  fig2      ideal network, 7% packet loss injected at t = 27 s
  scene-static / scene-bursty / scene-cut-storm
            content-aware workloads: scene scripts + semantic filter +
            EfficientNetB0 on the server, over the table5 network

CONTROLLERS:
  framefeedback | local-only | always-offload | all-or-nothing
";

fn parse_routing(s: &str) -> Result<RoutingPolicy, String> {
    match s {
        "static-shard" => Ok(RoutingPolicy::StaticShard),
        "po2c" => Ok(RoutingPolicy::PowerOfTwoChoices),
        "jsq" => Ok(RoutingPolicy::JoinShortestQueue {
            gossip_interval: SimDuration::from_millis(500),
        }),
        other => {
            let ms: u64 = other
                .strip_prefix("jsq:")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| {
                    format!("unknown routing {other:?} (static-shard | jsq[:MS] | po2c)")
                })?;
            if ms == 0 {
                return Err("jsq gossip interval must be positive".into());
            }
            Ok(RoutingPolicy::JoinShortestQueue {
                gossip_interval: SimDuration::from_millis(ms),
            })
        }
    }
}

fn parse_admission(s: &str) -> Result<AdmissionPolicy, String> {
    if s == "admit-all" {
        return Ok(AdmissionPolicy::AdmitAll);
    }
    let spec = s.strip_prefix("token-bucket:").ok_or_else(|| {
        format!("unknown admission {s:?} (admit-all | token-bucket:RATE[:BURST])")
    })?;
    let mut parts = spec.split(':');
    let rate: f64 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("bad token-bucket rate in {s:?}"))?;
    let burst: f64 = match parts.next() {
        Some(v) => v
            .parse()
            .map_err(|e| format!("bad token-bucket burst: {e}"))?,
        None => rate,
    };
    if parts.next().is_some() {
        return Err(format!("too many fields in {s:?}"));
    }
    if !(rate > 0.0 && rate.is_finite() && burst >= 1.0 && burst.is_finite()) {
        return Err("token bucket needs rate > 0 and burst >= 1".into());
    }
    Ok(AdmissionPolicy::TokenBucket {
        rate_rps: rate,
        burst,
    })
}

fn parse_selection(s: &str) -> Result<ModelSelection, String> {
    match s {
        "paper" => Ok(ModelSelection::AlwaysPaper),
        "expected-accuracy" => Ok(ModelSelection::ExpectedAccuracy { margin: 0.0 }),
        other => {
            let margin: f64 = other
                .strip_prefix("expected-accuracy:")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| {
                    format!("unknown selection {other:?} (paper | expected-accuracy[:MARGIN])")
                })?;
            if !margin.is_finite() {
                return Err("selection margin must be finite".into());
            }
            Ok(ModelSelection::ExpectedAccuracy { margin })
        }
    }
}

fn parse_args(args: &[String]) -> Result<CliConfig, String> {
    let mut config = CliConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scenario" => config.scenario = value("--scenario")?,
            "--controller" => config.controller = value("--controller")?,
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--frames" => {
                config.frames = value("--frames")?
                    .parse()
                    .map_err(|e| format!("--frames: {e}"))?
            }
            "--kp" => config.kp = Some(value("--kp")?.parse().map_err(|e| format!("--kp: {e}"))?),
            "--kd" => config.kd = Some(value("--kd")?.parse().map_err(|e| format!("--kd: {e}"))?),
            "--servers" => {
                let n: usize = value("--servers")?
                    .parse()
                    .map_err(|e| format!("--servers: {e}"))?;
                if n == 0 {
                    return Err("--servers: the tier needs at least one server".into());
                }
                config.servers = Some(n);
            }
            "--routing" => {
                let v = value("--routing")?;
                parse_routing(&v)?; // validate now, apply in build_experiment
                config.routing = Some(v);
            }
            "--admission" => {
                let v = value("--admission")?;
                parse_admission(&v)?;
                config.admission = Some(v);
            }
            "--selection" => {
                let v = value("--selection")?;
                parse_selection(&v)?;
                config.selection = Some(v);
            }
            "--json" => config.json = Some(value("--json")?),
            "--config" => config.config_path = Some(value("--config")?),
            "--trace" => config.trace = Some(value("--trace")?),
            "--verify-trace" => config.verify_trace = Some(value("--verify-trace")?),
            "--dump-config" => config.dump_config = true,
            "--quiet" => config.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n\n{USAGE}")),
        }
    }
    if ![
        "ideal",
        "table5",
        "table6",
        "combined",
        "fig2",
        "scene-static",
        "scene-bursty",
        "scene-cut-storm",
    ]
    .contains(&config.scenario.as_str())
    {
        return Err(format!("unknown scenario {:?}\n\n{USAGE}", config.scenario));
    }
    if ![
        "framefeedback",
        "local-only",
        "always-offload",
        "all-or-nothing",
    ]
    .contains(&config.controller.as_str())
    {
        return Err(format!(
            "unknown controller {:?}\n\n{USAGE}",
            config.controller
        ));
    }
    if (config.kp.is_some() || config.kd.is_some()) && config.controller != "framefeedback" {
        return Err("--kp/--kd only apply to the framefeedback controller".into());
    }
    Ok(config)
}

fn build_controller(cli: &CliConfig) -> Box<dyn Controller> {
    match cli.controller.as_str() {
        "framefeedback" => {
            let mut pid = PidConfig::default();
            if let Some(kp) = cli.kp {
                pid.kp = kp;
            }
            if let Some(kd) = cli.kd {
                pid.kd = kd;
            }
            Box::new(FrameFeedback::with_config(pid))
        }
        "local-only" => Box::new(LocalOnly::new()),
        "always-offload" => Box::new(AlwaysOffload::new()),
        "all-or-nothing" => Box::new(AllOrNothing::new()),
        other => unreachable!("validated controller name {other}"),
    }
}

/// Overlay the tier flags onto a config. No flags → the config's own
/// `tier` (usually `None`, the paper's single server) stays untouched.
fn apply_tier_flags(config: &mut ExperimentConfig, cli: &CliConfig) {
    if cli.servers.is_none() && cli.routing.is_none() && cli.admission.is_none() {
        return;
    }
    let mut tier = config.tier.take().unwrap_or_else(|| {
        TierConfig::single(config.gpu, framefeedback::server::OverflowPolicy::default())
    });
    if let Some(n) = cli.servers {
        // Uniform tier over the first server's profile (or the config's
        // GPU when the file had no tier).
        let spec = tier.servers.first().copied().unwrap_or(ServerSpec {
            gpu: config.gpu,
            ..ServerSpec::default()
        });
        tier.servers = vec![spec; n];
    }
    if let Some(r) = &cli.routing {
        tier.routing = parse_routing(r).expect("routing validated at parse time");
    }
    if let Some(a) = &cli.admission {
        tier.admission = parse_admission(a).expect("admission validated at parse time");
    }
    config.tier = Some(tier);
}

fn build_experiment(cli: &CliConfig) -> ExperimentConfig {
    if let Some(path) = &cli.config_path {
        let body = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read --config {path}: {e}"));
        let mut config: ExperimentConfig =
            serde_json::from_str(&body).unwrap_or_else(|e| panic!("invalid config {path}: {e}"));
        // CLI flags still override file values.
        config.seed = cli.seed;
        if cli.frames != CliConfig::default().frames {
            config.stream.total_frames = cli.frames;
        }
        if let Some(s) = &cli.selection {
            config.selection = parse_selection(s).expect("selection validated at parse time");
        }
        apply_tier_flags(&mut config, cli);
        return config;
    }
    let mut config = ExperimentConfig::default();
    match cli.scenario.as_str() {
        "ideal" => {
            config.network = ideal_network();
            config.peer_devices = 0;
        }
        "table5" => config.network = table_v(),
        "table6" => {
            config.background = table_vi();
            config.peer_devices = 0;
        }
        "combined" => {
            config.network = table_v();
            config.background = table_vi();
            config.peer_devices = 0;
        }
        "fig2" => config.network = fig2_loss_injection(),
        scene => {
            config = content_scenario(scene)
                .unwrap_or_else(|| unreachable!("validated scenario name {scene}"));
        }
    }
    config.seed = cli.seed;
    config.stream.total_frames = cli.frames;
    if let Some(s) = &cli.selection {
        config.selection = parse_selection(s).expect("selection validated at parse time");
    }
    apply_tier_flags(&mut config, cli);
    config
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if cli.dump_config {
        let template = build_experiment(&cli);
        println!(
            "{}",
            serde_json::to_string_pretty(&template).expect("config serializes")
        );
        return ExitCode::SUCCESS;
    }

    // Verification mode: no experiment runs; the trace itself carries
    // the runtime configuration and controller name it was recorded
    // under.
    if let Some(path) = &cli.verify_trace {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read --verify-trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let trace = match Trace::decode(&bytes) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: not a valid trace: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match replay_verify(&trace) {
            Ok(report) => {
                println!(
                    "{path}: OK — controller={} seed={} events={} captures={} submits={} ticks={}",
                    trace.header.controller,
                    trace.header.seed,
                    report.events,
                    report.captures,
                    report.submits,
                    report.ticks
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: replay mismatch: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let result = if let Some(path) = &cli.trace {
        let (result, bytes) = run_experiment_traced(build_experiment(&cli), build_controller(&cli));
        if let Err(e) = std::fs::write(path, &bytes) {
            eprintln!("failed to write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !cli.quiet {
            println!("# trace: {} bytes -> {path}", bytes.len());
        }
        result
    } else {
        run_experiment(build_experiment(&cli), build_controller(&cli))
    };

    if !cli.quiet {
        println!(
            "# scenario={} controller={} seed={} frames={}",
            cli.scenario, cli.controller, cli.seed, cli.frames
        );
        println!(
            "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "t(s)", "P", "P_l", "P_o", "T", "Po*"
        );
        for rec in result.qos.records() {
            println!(
                "{:>6.0} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
                rec.t_secs,
                rec.throughput(),
                rec.pl,
                rec.po,
                rec.timeouts,
                rec.po_target
            );
        }
        println!();
    }

    println!(
        "mean P = {:.2} fps | offloaded {} | local {} | timeouts {} | CPU {:.1}%",
        result.mean_throughput,
        result.frames_offloaded,
        result.frames_local,
        result.offload_timeouts,
        result.cpu_usage_pct
    );
    if result.per_server_stats.len() > 1 || result.admission_rejections > 0 {
        let per: Vec<String> = result
            .per_server_stats
            .iter()
            .map(|s| s.completions.to_string())
            .collect();
        println!(
            "tier: {} servers | completions per server [{}] | admission rejections {}",
            result.per_server_stats.len(),
            per.join(", "),
            result.admission_rejections
        );
    }
    if let Some(fs) = &result.filter_stats {
        println!(
            "content: accuracy-weighted P = {:.2}/s | filter captured {} passed {} shrunk {} skipped {}",
            result.mean_accuracy_weighted_throughput, fs.captured, fs.passed, fs.shrunk, fs.skipped
        );
    }
    if let Some(lat) = result.offload_latency {
        println!(
            "offload latency: p50 {:.0} ms, p95 {:.0} ms, p99 {:.0} ms (deadline 250 ms)",
            lat.p50_ms, lat.p95_ms, lat.p99_ms
        );
    }
    if let (Some(up), Some(srv)) = (result.uplink_latency, result.server_latency) {
        println!(
            "breakdown (successful offloads): uplink p50 {:.0} ms, server+down p50 {:.0} ms",
            up.p50_ms, srv.p50_ms
        );
    }

    if let Some(path) = &cli.json {
        match serde_json::to_string_pretty(&result) {
            Ok(body) => {
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("result exported to {path}");
            }
            Err(e) => {
                eprintln!("serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_parse() {
        let c = parse_args(&[]).unwrap();
        assert_eq!(c, CliConfig::default());
    }

    #[test]
    fn full_argument_set_parses() {
        let c = parse_args(&args(
            "--scenario table6 --controller all-or-nothing --seed 7 --frames 900 --json out.json --quiet",
        ))
        .unwrap();
        assert_eq!(c.scenario, "table6");
        assert_eq!(c.controller, "all-or-nothing");
        assert_eq!(c.seed, 7);
        assert_eq!(c.frames, 900);
        assert_eq!(c.json.as_deref(), Some("out.json"));
        assert!(c.quiet);
    }

    #[test]
    fn gain_overrides_parse_for_framefeedback() {
        let c = parse_args(&args("--kp 0.3 --kd 0.1")).unwrap();
        assert_eq!(c.kp, Some(0.3));
        assert_eq!(c.kd, Some(0.1));
        let ctl = build_controller(&c);
        assert_eq!(ctl.name(), "framefeedback");
    }

    #[test]
    fn gain_overrides_rejected_for_baselines() {
        let err = parse_args(&args("--controller local-only --kp 0.3")).unwrap_err();
        assert!(err.contains("only apply"));
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        assert!(parse_args(&args("--scenario nope")).is_err());
    }

    #[test]
    fn unknown_controller_is_rejected() {
        assert!(parse_args(&args("--controller nope")).is_err());
    }

    #[test]
    fn unknown_flag_is_rejected() {
        assert!(parse_args(&args("--bogus")).is_err());
    }

    #[test]
    fn missing_value_is_rejected() {
        let err = parse_args(&args("--seed")).unwrap_err();
        assert!(err.contains("requires a value"));
    }

    #[test]
    fn bad_numeric_value_is_rejected() {
        assert!(parse_args(&args("--seed banana")).is_err());
        assert!(parse_args(&args("--frames -3")).is_err());
    }

    #[test]
    fn every_scenario_builds_an_experiment() {
        for scenario in [
            "ideal",
            "table5",
            "table6",
            "combined",
            "fig2",
            "scene-static",
            "scene-bursty",
            "scene-cut-storm",
        ] {
            let mut cli = CliConfig::default();
            cli.scenario = scenario.into();
            cli.frames = 30;
            let config = build_experiment(&cli);
            assert_eq!(config.stream.total_frames, 30);
        }
    }

    #[test]
    fn scene_scenarios_carry_the_content_layer() {
        let mut cli = CliConfig::default();
        cli.scenario = "scene-bursty".into();
        cli.frames = 30;
        cli.seed = 9;
        let config = build_experiment(&cli);
        assert!(config.scene.is_some());
        assert!(config.filter.is_some());
        assert_eq!(config.seed, 9, "CLI seed overrides the scenario");
        assert_eq!(config.selection, ModelSelection::AlwaysPaper);
    }

    #[test]
    fn selection_strings_parse() {
        assert_eq!(parse_selection("paper"), Ok(ModelSelection::AlwaysPaper));
        assert_eq!(
            parse_selection("expected-accuracy"),
            Ok(ModelSelection::ExpectedAccuracy { margin: 0.0 })
        );
        assert_eq!(
            parse_selection("expected-accuracy:0.05"),
            Ok(ModelSelection::ExpectedAccuracy { margin: 0.05 })
        );
        assert!(parse_selection("expected-accuracy:inf").is_err());
        assert!(parse_selection("oracle").is_err());
    }

    #[test]
    fn selection_flag_lands_in_the_config() {
        let c = parse_args(&args(
            "--scenario scene-static --selection expected-accuracy:0.02 --frames 30",
        ))
        .unwrap();
        let config = build_experiment(&c);
        assert_eq!(
            config.selection,
            ModelSelection::ExpectedAccuracy { margin: 0.02 }
        );
        assert!(parse_args(&args("--selection nope")).is_err());
    }

    #[test]
    fn config_file_round_trips_through_build() {
        let dir = std::env::temp_dir().join("ffexp-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("config.json");
        let mut original = ExperimentConfig::default();
        original.stream.total_frames = 77;
        original.peer_devices = 5;
        std::fs::write(&path, serde_json::to_string(&original).unwrap()).unwrap();

        let mut cli = CliConfig::default();
        cli.config_path = Some(path.to_string_lossy().into_owned());
        let loaded = build_experiment(&cli);
        assert_eq!(loaded.stream.total_frames, 77);
        assert_eq!(loaded.peer_devices, 5);
        assert_eq!(loaded.seed, cli.seed, "CLI seed overrides the file");
    }

    #[test]
    fn trace_flags_parse() {
        let c = parse_args(&args("--trace run.fftrace --frames 600")).unwrap();
        assert_eq!(c.trace.as_deref(), Some("run.fftrace"));
        let v = parse_args(&args("--verify-trace run.fftrace")).unwrap();
        assert_eq!(v.verify_trace.as_deref(), Some("run.fftrace"));
    }

    #[test]
    fn dump_config_flag_parses() {
        let c = parse_args(&args("--dump-config")).unwrap();
        assert!(c.dump_config);
    }

    #[test]
    fn tier_flags_parse_and_build_a_tier() {
        let c = parse_args(&args(
            "--servers 4 --routing po2c --admission token-bucket:20:40 --frames 30",
        ))
        .unwrap();
        let config = build_experiment(&c);
        let tier = config.tier.expect("tier flags build a tier");
        assert_eq!(tier.servers.len(), 4);
        assert_eq!(tier.routing, RoutingPolicy::PowerOfTwoChoices);
        assert_eq!(
            tier.admission,
            AdmissionPolicy::TokenBucket {
                rate_rps: 20.0,
                burst: 40.0
            }
        );
        // Every server inherits the config's GPU profile.
        assert!(tier.servers.iter().all(|s| s.gpu == config.gpu));
    }

    #[test]
    fn routing_strings_parse() {
        assert_eq!(
            parse_routing("static-shard"),
            Ok(RoutingPolicy::StaticShard)
        );
        assert_eq!(
            parse_routing("jsq:250"),
            Ok(RoutingPolicy::JoinShortestQueue {
                gossip_interval: SimDuration::from_millis(250)
            })
        );
        assert!(parse_routing("jsq:0").is_err());
        assert!(parse_routing("round-robin").is_err());
    }

    #[test]
    fn admission_strings_parse() {
        assert_eq!(parse_admission("admit-all"), Ok(AdmissionPolicy::AdmitAll));
        // Burst defaults to the rate.
        assert_eq!(
            parse_admission("token-bucket:15"),
            Ok(AdmissionPolicy::TokenBucket {
                rate_rps: 15.0,
                burst: 15.0
            })
        );
        assert!(parse_admission("token-bucket:0").is_err());
        assert!(parse_admission("token-bucket:10:0.5").is_err());
        assert!(parse_admission("token-bucket:10:20:30").is_err());
        assert!(parse_admission("leaky-bucket:10").is_err());
    }

    #[test]
    fn bad_tier_flags_are_rejected_at_parse_time() {
        assert!(parse_args(&args("--servers 0")).is_err());
        assert!(parse_args(&args("--routing nope")).is_err());
        assert!(parse_args(&args("--admission nope")).is_err());
    }

    #[test]
    fn no_tier_flags_leave_the_config_untouched() {
        let mut cli = CliConfig::default();
        cli.frames = 30;
        assert!(build_experiment(&cli).tier.is_none());
    }

    #[test]
    fn pre_tier_config_json_still_parses() {
        // Configs written before the tier fields existed have no "tier"
        // key; `#[serde(default)]` must fill it with None.
        let body = serde_json::to_string(&ExperimentConfig::default()).unwrap();
        let legacy = body
            .replace("\"tier\":null,", "")
            .replace(",\"tier\":null", "");
        assert_ne!(legacy, body, "expected to strip the tier key");
        let parsed: ExperimentConfig = serde_json::from_str(&legacy).unwrap();
        assert!(parsed.tier.is_none());
        // And the CLI can still overlay a tier on such a config.
        let dir = std::env::temp_dir().join("ffexp-tier-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        std::fs::write(&path, &legacy).unwrap();
        let mut cli = CliConfig::default();
        cli.config_path = Some(path.to_string_lossy().into_owned());
        cli.servers = Some(2);
        let loaded = build_experiment(&cli);
        assert_eq!(loaded.tier.unwrap().servers.len(), 2);
    }

    #[test]
    fn every_controller_builds() {
        for name in [
            "framefeedback",
            "local-only",
            "always-offload",
            "all-or-nothing",
        ] {
            let mut cli = CliConfig::default();
            cli.controller = name.into();
            assert_eq!(build_controller(&cli).name(), name);
        }
    }
}
