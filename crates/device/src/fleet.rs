//! Multi-device (fleet) simulation.
//!
//! The paper's testbed runs *three Raspberry Pis concurrently* against
//! one server (§IV-A). [`run_fleet`] simulates exactly that: every device
//! has its own frame source, uplink, local engine, and controller, and
//! they all contend for the shared batching server. This is also the
//! substrate for the fairness ablation (§II-A.3 / `OverflowPolicy`):
//! per-device outcomes expose how the server splits saturated capacity.
//!
//! Tag layout: the shared packing in [`crate::tags`] — the probe flag is
//! the runtime's `PROBE_TAG_BASE` bit, bits 55..40 the device index,
//! bits 39..0 the per-device sequence number.

use crate::local::{LocalEngine, LocalOutcome};
use crate::offload::{OffloadResolution, OffloadTracker, TimeoutCause};
use crate::splitter::{FrameSplitter, Route};
use ff_core::{Controller, Measurement};
use ff_metrics::{QosLog, WindowedRate};
use ff_models::{DeviceKind, GpuProfile, ModelKind};
use ff_net::{Link, LinkConfig, NetworkConditions, SendOutcome};
use ff_server::{
    jain_fairness_index, BatchOutput, EdgeServer, OverflowPolicy, Request, ServerStats, Submit,
    TenantId,
};
use ff_sim::{
    Ctx, EventQueue, QueueBackend, RngFactory, SimDuration, SimModel, SimTime, Simulation,
};
use ff_telemetry::{Metric, Recorder, Scope, Telemetry};
use ff_workload::{FrameSource, StepSchedule, StreamConfig};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::collections::HashMap;

use crate::taghash::TagHash;
use crate::tags::{
    fleet_tag as make_tag, fleet_tag_device as tag_device, is_probe_tag as tag_is_probe,
};

/// Engine tuning knobs for a fleet run. These change **how fast** the
/// simulation executes, never **what** it computes: every combination
/// produces bit-identical QoS logs and server stats (asserted by tests
/// and by the `engine_bench` binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Event-queue backend driving the simulation calendar.
    pub backend: QueueBackend,
    /// Reuse one [`BatchOutput`] across all batch completions instead of
    /// allocating fresh result vectors per batch. Disabling this exists
    /// only so `engine_bench` can measure the allocating baseline.
    pub reuse_batch_buffers: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            backend: QueueBackend::Heap,
            reuse_batch_buffers: true,
        }
    }
}

/// Per-device configuration inside a fleet.
#[derive(Debug, Clone, Copy)]
pub struct FleetDeviceConfig {
    /// Hardware profile of this device.
    pub device: DeviceKind,
    /// Classification model it runs (locally and via offloading).
    pub model: ModelKind,
}

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Master seed for all of the fleet's RNG streams.
    pub seed: u64,
    /// One entry per device (the paper uses the three Pis of Table II).
    pub devices: Vec<FleetDeviceConfig>,
    /// Shared stream parameters (every device captures the same cadence).
    pub stream: StreamConfig,
    /// End-to-end offload deadline.
    pub deadline: SimDuration,
    /// Static uplink parameters (shared by all devices).
    pub link: LinkConfig,
    /// Network schedule applied to every device's uplink (unless
    /// overridden per device below).
    pub network: StepSchedule<NetworkConditions>,
    /// Optional per-device schedules (e.g. independent mobility traces);
    /// when set, must have one entry per device and replaces `network`.
    pub per_device_network: Option<Vec<StepSchedule<NetworkConditions>>>,
    /// Controller measurement period (1 s in the paper).
    pub controller_period: SimDuration,
    /// Trailing window for the timeout-rate controller input.
    pub timeout_window: SimDuration,
    /// Shared server GPU profile.
    pub gpu: GpuProfile,
    /// Server overflow policy (the fairness ablation knob).
    pub policy: OverflowPolicy,
    /// Engine tuning (queue backend, buffer reuse). Results are
    /// independent of this choice.
    pub engine: EngineOptions,
    /// Observability pipeline. Disabled by default; enabling it leaves
    /// fleet results bit-identical (asserted by `telemetry_inert.rs`) —
    /// recorders never schedule events or touch an RNG stream.
    pub telemetry: Telemetry,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 42,
            devices: vec![
                FleetDeviceConfig {
                    device: DeviceKind::Pi3BRev12,
                    model: ModelKind::MobileNetV3Small,
                },
                FleetDeviceConfig {
                    device: DeviceKind::Pi4BRev12,
                    model: ModelKind::MobileNetV3Small,
                },
                FleetDeviceConfig {
                    device: DeviceKind::Pi4BRev14,
                    model: ModelKind::MobileNetV3Small,
                },
            ],
            stream: StreamConfig::default(),
            deadline: SimDuration::from_millis(250),
            link: LinkConfig::default(),
            network: ff_workload::ideal_network(),
            per_device_network: None,
            controller_period: SimDuration::from_secs(1),
            timeout_window: SimDuration::from_secs(3),
            gpu: GpuProfile::default(),
            policy: OverflowPolicy::RejectNewest,
            engine: EngineOptions::default(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Per-device outcome of a fleet run.
#[derive(Debug, Serialize)]
pub struct FleetDeviceResult {
    /// Controller name driving this device.
    pub controller: String,
    /// Device profile name (Table II column).
    pub device: String,
    /// Classification model name.
    pub model: String,
    /// Per-second QoS records for this device.
    pub qos: QosLog,
    /// Frames routed to the uplink.
    pub frames_offloaded: u64,
    /// Frames routed to the local engine.
    pub frames_local: u64,
    /// Offloads that beat the deadline.
    pub offload_successes: u64,
    /// Offloads that missed the deadline.
    pub offload_timeouts: u64,
    /// Mean total throughput `P` for this device.
    pub mean_throughput: f64,
}

/// Outcome of a fleet run.
#[derive(Debug, Serialize)]
pub struct FleetResult {
    /// Per-device outcomes, in configuration order.
    pub devices: Vec<FleetDeviceResult>,
    /// Shared-server counters.
    pub server_stats: ServerStats,
    /// Jain fairness index over per-device successful-offload counts.
    pub offload_fairness: f64,
    /// Total throughput summed over devices, per paper Fig. 3 ("evaluated
    /// their total inference throughput").
    pub total_mean_throughput: f64,
    /// Server-side rejections per device index (fairness diagnostics).
    pub rejections_by_device: Vec<u64>,
    /// Total simulation events dispatched during the run (the
    /// denominator of `engine_bench`'s events/sec figure).
    pub events_handled: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct IntervalCounters {
    sent: u64,
    local_done: u64,
    timeouts: u64,
    timeouts_network: u64,
    timeouts_load: u64,
}

struct DeviceState {
    controller: Box<dyn Controller>,
    source: FrameSource<ChaCha8Rng>,
    splitter: FrameSplitter,
    engine: LocalEngine<ChaCha8Rng>,
    link: Link<ChaCha8Rng>,
    tracker: OffloadTracker,
    model: ModelKind,
    device_kind: DeviceKind,
    probes: HashMap<u64, SimTime, TagHash>,
    probe_seq: u64,
    last_heartbeat_ok: bool,
    po_target: f64,
    interval: IntervalCounters,
    timeout_rate: WindowedRate,
    qos: QosLog,
    frames_offloaded: u64,
    frames_local: u64,
}

enum FleetEvent {
    Capture(usize),
    LocalDone(usize),
    Uplinked {
        tag: u64,
    },
    BatchDone,
    Response {
        tag: u64,
    },
    Deadline {
        tag: u64,
    },
    Tick(usize),
    /// Apply schedule step `step` (shared schedule: to all devices;
    /// per-device schedules: to device `dev`).
    NetworkChange {
        dev: Option<usize>,
        step: usize,
    },
}

/// Fleet-side observability state: one recorder for the (single)
/// simulation thread, plus the interned scopes it reports under.
///
/// Strictly write-only with respect to the simulation: nothing here
/// schedules events, advances RNG streams, or feeds back into routing
/// decisions, which is what keeps telemetry-on runs bit-identical to
/// telemetry-off runs.
struct FleetObs {
    telemetry: Telemetry,
    recorder: Recorder,
    engine: Scope,
    server: Scope,
    devices: Vec<Scope>,
    /// Server counter values at the previous tick, for delta emission.
    last_server: ServerStats,
}

impl FleetObs {
    fn new(telemetry: &Telemetry, n_devices: usize) -> FleetObs {
        FleetObs {
            recorder: telemetry.recorder(),
            engine: telemetry.scope("engine"),
            server: telemetry.scope("server"),
            devices: (0..n_devices)
                .map(|i| telemetry.scope(&format!("device/{i}")))
                .collect(),
            last_server: ServerStats::default(),
            telemetry: telemetry.clone(),
        }
    }
}

struct FleetWorld {
    config: FleetConfig,
    devices: Vec<DeviceState>,
    server: EdgeServer,
    batch_out: BatchOutput,
    end_at: SimTime,
    obs: FleetObs,
}

impl FleetWorld {
    fn submit_to_server(&mut self, ctx: &mut Ctx<'_, FleetEvent>, request: Request) {
        if let Submit::BatchStarted { done_at } = self.server.submit(ctx.now(), request) {
            ctx.schedule_at(done_at, FleetEvent::BatchDone);
        }
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, FleetEvent>, dev: usize) {
        let now = ctx.now();
        let dt = self.config.controller_period.as_secs_f64();
        let fs = self.config.stream.fps;
        let bytes = self.config.stream.compression.mean_frame_bytes();
        let deadline = self.config.deadline;

        let d = &mut self.devices[dev];
        let po = d.interval.sent as f64 / dt;
        let pl = d.interval.local_done as f64 / dt;
        let t_windowed = d.timeout_rate.rate_at(now);

        let decision = d.controller.update(&Measurement {
            fs,
            po_achieved: po,
            pl_achieved: pl,
            timeout_rate: t_windowed,
            heartbeat_ok: d.last_heartbeat_ok,
            dt_secs: dt,
        });
        d.po_target = decision.po_target;
        d.qos.push_at(
            now,
            pl,
            po,
            d.interval.timeouts_network as f64 / dt,
            d.interval.timeouts_load as f64 / dt,
            d.po_target,
        );
        let interval = d.interval;
        d.interval = IntervalCounters::default();

        // Heartbeat probe through this device's own link.
        d.last_heartbeat_ok = false;
        let ptag = make_tag(dev, d.probe_seq, true);
        d.probe_seq += 1;
        d.probes.insert(ptag, now);
        match d.link.send(now, bytes) {
            SendOutcome::Delivered { at } => {
                ctx.schedule_at(at, FleetEvent::Uplinked { tag: ptag })
            }
            SendOutcome::Dropped(_) => {}
        }
        ctx.schedule_at(now + deadline, FleetEvent::Deadline { tag: ptag });

        let next = now + self.config.controller_period;
        if next <= self.end_at {
            ctx.schedule_at(next, FleetEvent::Tick(dev));
        }

        self.observe_tick(ctx, dev, po, pl, t_windowed, interval);
    }

    /// Report this device's controller-period observations (and, from
    /// device 0, the shared engine and server state), then poll the
    /// collector. Purely observational: emits into the recorder's ring
    /// and never schedules events, so it cannot perturb the run.
    fn observe_tick(
        &mut self,
        ctx: &Ctx<'_, FleetEvent>,
        dev: usize,
        po: f64,
        pl: f64,
        t_windowed: f64,
        interval: IntervalCounters,
    ) {
        if !self.obs.recorder.is_enabled() {
            return;
        }
        let t = ctx.now().as_micros();
        let rec = &mut self.obs.recorder;
        let scope = self.obs.devices[dev];
        let d = &self.devices[dev];
        let fs = self.config.stream.fps;

        rec.gauge(scope, Metric::Po, po, t);
        rec.gauge(scope, Metric::Pl, pl, t);
        rec.gauge(scope, Metric::TimeoutRate, t_windowed, t);
        rec.gauge(scope, Metric::PoTarget, d.po_target, t);
        rec.gauge(scope, Metric::ControllerError, fs - (po + pl), t);
        rec.gauge(scope, Metric::InFlight, d.tracker.in_flight() as f64, t);
        rec.gauge(scope, Metric::ProbesInFlight, d.probes.len() as f64, t);
        rec.counter(scope, Metric::FramesOffloaded, interval.sent, t);
        rec.counter(scope, Metric::FramesLocal, interval.local_done, t);
        rec.counter(scope, Metric::TimeoutsNetwork, interval.timeouts_network, t);
        rec.counter(scope, Metric::TimeoutsLoad, interval.timeouts_load, t);
        rec.counter(scope, Metric::HeartbeatOk, d.last_heartbeat_ok as u64, t);

        // Shared state is reported once per controller period, by the
        // first device to tick in it.
        if dev == 0 {
            let engine = self.obs.engine;
            rec.gauge(
                engine,
                Metric::EventsHandled,
                ctx.events_handled() as f64,
                t,
            );
            rec.gauge(
                engine,
                Metric::PendingEvents,
                ctx.pending_events() as f64,
                t,
            );
            let wheel = self.config.engine.backend == QueueBackend::Wheel;
            rec.gauge(engine, Metric::QueueBackendWheel, wheel as u64 as f64, t);

            let server = self.obs.server;
            let stats = self.server.stats();
            let last = self.obs.last_server;
            rec.gauge(
                server,
                Metric::ServerQueueDepth,
                self.server.queue_len() as f64,
                t,
            );
            let occupancy = self.server.running_batch_size().unwrap_or(0);
            rec.gauge(server, Metric::BatchOccupancy, occupancy as f64, t);
            let d = stats.requests_received - last.requests_received;
            rec.counter(server, Metric::ServerRequests, d, t);
            let d = stats.completions - last.completions;
            rec.counter(server, Metric::ServerCompletions, d, t);
            let d = stats.rejections - last.rejections;
            rec.counter(server, Metric::ServerRejections, d, t);
            let d = stats.batches_executed - last.batches_executed;
            rec.counter(server, Metric::ServerBatches, d, t);
            self.obs.last_server = stats;

            self.obs.telemetry.poll();
        }
    }
}

impl SimModel for FleetWorld {
    type Event = FleetEvent;

    fn handle(&mut self, ctx: &mut Ctx<'_, FleetEvent>, event: FleetEvent) {
        match event {
            FleetEvent::Capture(dev) => {
                let now = ctx.now();
                let fs = self.config.stream.fps;
                let deadline = self.config.deadline;
                let d = &mut self.devices[dev];
                let Some(frame) = d.source.next_frame() else {
                    return;
                };
                match d.splitter.route(d.po_target, fs) {
                    Route::Offload => {
                        let tag = make_tag(dev, frame.id.0, false);
                        d.tracker.sent(tag, now);
                        d.interval.sent += 1;
                        d.frames_offloaded += 1;
                        match d.link.send(now, frame.bytes) {
                            SendOutcome::Delivered { at } => {
                                ctx.schedule_at(at, FleetEvent::Uplinked { tag })
                            }
                            SendOutcome::Dropped(_) => d.tracker.network_dropped(tag),
                        }
                        ctx.schedule_at(now + deadline, FleetEvent::Deadline { tag });
                    }
                    Route::Local => {
                        if let LocalOutcome::Started { done_at } = d.engine.offer(now) {
                            ctx.schedule_at(done_at, FleetEvent::LocalDone(dev));
                        }
                        d.frames_local += 1;
                    }
                }
                if !d.source.exhausted() {
                    let next = d.source.next_capture_time();
                    ctx.schedule_at(next, FleetEvent::Capture(dev));
                }
            }

            FleetEvent::LocalDone(dev) => {
                let d = &mut self.devices[dev];
                d.interval.local_done += 1;
                if let Some(next_done) = d.engine.complete(ctx.now()) {
                    ctx.schedule_at(next_done, FleetEvent::LocalDone(dev));
                }
            }

            FleetEvent::Uplinked { tag } => {
                let now = ctx.now();
                let dev = tag_device(tag);
                let model = self.devices[dev].model;
                if !tag_is_probe(tag) {
                    self.devices[dev].tracker.arrived_at_server(tag, now);
                }
                let request = Request {
                    tenant: TenantId(dev as u32),
                    model,
                    submitted_at: now,
                    tag,
                };
                self.submit_to_server(ctx, request);
            }

            FleetEvent::BatchDone => {
                let now = ctx.now();
                let propagation = self.config.link.propagation;
                if !self.config.engine.reuse_batch_buffers {
                    // Allocating baseline for `engine_bench`: fresh result
                    // vectors for every batch, like the pre-reuse code.
                    self.batch_out = BatchOutput::default();
                }
                self.server.batch_done_into(now, &mut self.batch_out);
                for c in &self.batch_out.completions {
                    ctx.schedule_at(
                        now + propagation,
                        FleetEvent::Response { tag: c.request.tag },
                    );
                }
                for r in &self.batch_out.rejections {
                    if !tag_is_probe(r.request.tag) {
                        let dev = tag_device(r.request.tag);
                        self.devices[dev].tracker.rejected_by_server(r.request.tag);
                    }
                }
                if let Some(done_at) = self.batch_out.next_done {
                    ctx.schedule_at(done_at, FleetEvent::BatchDone);
                }
            }

            FleetEvent::Response { tag } => {
                let now = ctx.now();
                let dev = tag_device(tag);
                let deadline = self.config.deadline;
                let d = &mut self.devices[dev];
                if tag_is_probe(tag) {
                    if let Some(sent_at) = d.probes.remove(&tag) {
                        if now.saturating_since(sent_at) <= deadline {
                            d.last_heartbeat_ok = true;
                        }
                    }
                    return;
                }
                if let Some(OffloadResolution::Timeout { cause }) =
                    d.tracker.response_arrived(tag, now)
                {
                    record_timeout(d, now, cause);
                }
            }

            FleetEvent::Deadline { tag } => {
                let now = ctx.now();
                let dev = tag_device(tag);
                let d = &mut self.devices[dev];
                if tag_is_probe(tag) {
                    d.probes.remove(&tag);
                    return;
                }
                if let Some(OffloadResolution::Timeout { cause }) =
                    d.tracker.deadline_expired(tag, now)
                {
                    record_timeout(d, now, cause);
                }
            }

            FleetEvent::Tick(dev) => self.tick(ctx, dev),

            FleetEvent::NetworkChange { dev, step } => match dev {
                None => {
                    let conditions = self.config.network.steps()[step].1;
                    for d in &mut self.devices {
                        d.link.set_conditions(conditions);
                    }
                }
                Some(dev) => {
                    let schedules = self
                        .config
                        .per_device_network
                        .as_ref()
                        .expect("per-device event requires per-device schedules");
                    let conditions = schedules[dev].steps()[step].1;
                    self.devices[dev].link.set_conditions(conditions);
                }
            },
        }
    }
}

fn record_timeout(d: &mut DeviceState, now: SimTime, cause: TimeoutCause) {
    d.timeout_rate.record(now);
    d.interval.timeouts += 1;
    match cause {
        TimeoutCause::Network => d.interval.timeouts_network += 1,
        TimeoutCause::ServerLoad => d.interval.timeouts_load += 1,
    }
}

/// Run a fleet of devices, one controller per device (same order as
/// `config.devices`).
pub fn run_fleet(config: FleetConfig, controllers: Vec<Box<dyn Controller>>) -> FleetResult {
    assert_eq!(
        config.devices.len(),
        controllers.len(),
        "one controller per device"
    );
    assert!(
        !config.devices.is_empty(),
        "fleet needs at least one device"
    );
    if let Some(schedules) = &config.per_device_network {
        assert_eq!(
            schedules.len(),
            config.devices.len(),
            "one network schedule per device"
        );
    }
    let rng = RngFactory::new(config.seed);
    let fs = config.stream.fps;
    let end_at = SimTime::ZERO + config.stream.stream_duration() + config.deadline;

    let devices: Vec<DeviceState> = config
        .devices
        .iter()
        .zip(controllers)
        .enumerate()
        .map(|(i, (dc, mut controller))| {
            let initial_conditions = match &config.per_device_network {
                Some(schedules) => *schedules[i].value_at(0.0),
                None => *config.network.value_at(0.0),
            };
            let po_target = controller
                .update(&Measurement {
                    fs,
                    po_achieved: 0.0,
                    pl_achieved: 0.0,
                    timeout_rate: 0.0,
                    heartbeat_ok: false,
                    dt_secs: config.controller_period.as_secs_f64(),
                })
                .po_target;
            DeviceState {
                controller,
                source: FrameSource::new(
                    config.stream,
                    rng.indexed_stream("fleet-frames", i as u64),
                ),
                splitter: FrameSplitter::new(),
                engine: LocalEngine::new(
                    dc.device,
                    dc.model,
                    rng.indexed_stream("fleet-local", i as u64),
                ),
                link: Link::new(
                    config.link,
                    initial_conditions,
                    rng.indexed_stream("fleet-link", i as u64),
                ),
                tracker: OffloadTracker::new(config.deadline),
                model: dc.model,
                device_kind: dc.device,
                probes: HashMap::default(),
                probe_seq: 0,
                last_heartbeat_ok: false,
                po_target,
                interval: IntervalCounters::default(),
                timeout_rate: WindowedRate::new(config.timeout_window),
                qos: QosLog::new(),
                frames_offloaded: 0,
                frames_local: 0,
            }
        })
        .collect();

    let n = devices.len();
    let controller_period = config.controller_period;
    let change_events: Vec<(f64, Option<usize>, usize)> = match &config.per_device_network {
        Some(schedules) => schedules
            .iter()
            .enumerate()
            .flat_map(|(dev, schedule)| {
                schedule
                    .steps()
                    .iter()
                    .enumerate()
                    .skip(1)
                    .map(move |(step, &(t, _))| (t, Some(dev), step))
            })
            .collect(),
        None => config
            .network
            .steps()
            .iter()
            .enumerate()
            .skip(1)
            .map(|(step, &(t, _))| (t, None, step))
            .collect(),
    };
    let server = EdgeServer::with_policy(config.gpu, config.policy);

    let backend = config.engine.backend;
    let obs = FleetObs::new(&config.telemetry, n);
    let world = FleetWorld {
        config,
        devices,
        server,
        batch_out: BatchOutput::default(),
        end_at,
        obs,
    };
    let mut sim = Simulation::with_queue(world, EventQueue::with_backend(backend));
    for dev in 0..n {
        sim.schedule_at(SimTime::ZERO, FleetEvent::Capture(dev));
        sim.schedule_at(SimTime::ZERO + controller_period, FleetEvent::Tick(dev));
    }
    for (t, dev, step) in change_events {
        sim.schedule_at(
            SimTime::from_secs_f64(t),
            FleetEvent::NetworkChange { dev, step },
        );
    }
    sim.run_until(end_at);
    let events_handled = sim.events_handled();
    let world = sim.into_model();
    // Drain whatever the final ticks recorded. The last (partial) window
    // stays open until the caller's `Telemetry::finish`, so one pipeline
    // can span several runs (e.g. a sweep).
    world.obs.telemetry.poll();

    let device_results: Vec<FleetDeviceResult> = world
        .devices
        .into_iter()
        .map(|d| FleetDeviceResult {
            controller: d.controller.name().to_string(),
            device: d.device_kind.name().to_string(),
            model: d.model.name().to_string(),
            mean_throughput: d.qos.mean_throughput(),
            frames_offloaded: d.frames_offloaded,
            frames_local: d.frames_local,
            offload_successes: d.tracker.successes(),
            offload_timeouts: d.tracker.timeouts(),
            qos: d.qos,
        })
        .collect();

    let successes: Vec<f64> = device_results
        .iter()
        .map(|d| d.offload_successes as f64)
        .collect();
    let rejections_by_device: Vec<u64> = (0..device_results.len())
        .map(|i| {
            world
                .server
                .rejections_by_tenant()
                .get(&TenantId(i as u32))
                .copied()
                .unwrap_or(0)
        })
        .collect();
    FleetResult {
        offload_fairness: jain_fairness_index(&successes),
        total_mean_throughput: device_results.iter().map(|d| d.mean_throughput).sum(),
        server_stats: world.server.stats(),
        rejections_by_device,
        events_handled,
        devices: device_results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_core::FrameFeedback;
    use ff_sim::RngFactory;

    fn short_fleet() -> FleetConfig {
        let mut c = FleetConfig::default();
        c.stream.total_frames = 900; // 30 s
        c
    }

    fn ff_controllers(n: usize) -> Vec<Box<dyn Controller>> {
        (0..n)
            .map(|_| Box::new(FrameFeedback::new()) as Box<dyn Controller>)
            .collect()
    }

    #[test]
    fn tag_layout_round_trips() {
        let t = make_tag(7, 123_456, false);
        assert_eq!(tag_device(t), 7);
        assert!(!tag_is_probe(t));
        let p = make_tag(65_000, 1, true);
        assert_eq!(tag_device(p), 65_000);
        assert!(tag_is_probe(p));
    }

    #[test]
    fn three_pis_share_the_server_on_an_ideal_network() {
        let result = run_fleet(short_fleet(), ff_controllers(3));
        assert_eq!(result.devices.len(), 3);
        // 3 devices * 30 fps = 90 rps offered at full offload — well below
        // the ~145 rps saturation point, so everyone converges near F_s.
        for d in &result.devices {
            let late = d.qos.aggregate(15.0, 30.0).unwrap();
            assert!(
                late.mean_throughput > 25.0,
                "{}: throughput {:.1}",
                d.device,
                late.mean_throughput
            );
        }
        assert!(result.total_mean_throughput > 75.0);
        assert!(
            result.offload_fairness > 0.95,
            "uncontended fleet should be fair, index {:.3}",
            result.offload_fairness
        );
    }

    #[test]
    fn wheel_backend_and_buffer_reuse_reproduce_the_heap_run_exactly() {
        // The engine_bench comparison in miniature: the allocating heap
        // baseline vs the wheel + reused buffers must be bit-identical.
        let mut baseline = short_fleet();
        baseline.engine = EngineOptions {
            backend: QueueBackend::Heap,
            reuse_batch_buffers: false,
        };
        let mut optimized = short_fleet();
        optimized.engine = EngineOptions {
            backend: QueueBackend::Wheel,
            reuse_batch_buffers: true,
        };
        let a = run_fleet(baseline, ff_controllers(3));
        let b = run_fleet(optimized, ff_controllers(3));
        for (da, db) in a.devices.iter().zip(&b.devices) {
            assert_eq!(da.qos.records(), db.qos.records());
            assert_eq!(da.frames_offloaded, db.frames_offloaded);
            assert_eq!(da.offload_successes, db.offload_successes);
            assert_eq!(da.offload_timeouts, db.offload_timeouts);
        }
        assert_eq!(a.server_stats, b.server_stats);
        assert_eq!(a.rejections_by_device, b.rejections_by_device);
        assert_eq!(a.events_handled, b.events_handled);
    }

    #[test]
    fn fleet_is_deterministic() {
        let a = run_fleet(short_fleet(), ff_controllers(3));
        let b = run_fleet(short_fleet(), ff_controllers(3));
        for (da, db) in a.devices.iter().zip(&b.devices) {
            assert_eq!(da.qos.records(), db.qos.records());
        }
        assert_eq!(a.server_stats, b.server_stats);
    }

    #[test]
    fn devices_see_independent_randomness() {
        // Two identical device kinds on a lossy link: independent RNG
        // streams make their timeout traces diverge.
        let mut config = short_fleet();
        config.devices = vec![
            FleetDeviceConfig {
                device: DeviceKind::Pi4BRev12,
                model: ModelKind::MobileNetV3Small,
            };
            2
        ];
        config.network = StepSchedule::constant(NetworkConditions::new(4.0, 7.0));
        let result = run_fleet(config, ff_controllers(2));
        assert_ne!(
            result.devices[0].offload_timeouts, result.devices[1].offload_timeouts,
            "identical timeout traces imply shared RNG streams"
        );
    }

    #[test]
    fn saturating_fleet_triggers_rejections_and_fair_share_helps() {
        // Nine devices at 30 fps → 270 rps offered at full offload, far
        // beyond the ~145 rps server: heavy contention.
        let mut config = short_fleet();
        config.devices = (0..9)
            .map(|_| FleetDeviceConfig {
                device: DeviceKind::Pi4BRev12,
                model: ModelKind::MobileNetV3Small,
            })
            .collect();

        config.policy = OverflowPolicy::RejectNewest;
        let newest = run_fleet(config.clone(), ff_controllers(9));
        config.policy = OverflowPolicy::FairShare;
        let fair = run_fleet(config, ff_controllers(9));

        assert!(newest.server_stats.rejections > 0);
        assert!(fair.server_stats.rejections > 0);
        // Both policies keep a symmetric fleet roughly fair.
        assert!(
            newest.offload_fairness > 0.85,
            "{:.3}",
            newest.offload_fairness
        );
        assert!(fair.offload_fairness > 0.85, "{:.3}", fair.offload_fairness);
    }

    #[test]
    fn fair_share_shields_adaptive_tenants_from_a_greedy_one() {
        // Seven adaptive devices plus one that always offloads everything
        // (ignoring feedback). Under FairShare, the greedy tenant — which
        // keeps the most requests queued once the others back off — must
        // absorb a disproportionate share of the rejections.
        let mut config = short_fleet();
        config.devices = (0..8)
            .map(|_| FleetDeviceConfig {
                device: DeviceKind::Pi4BRev12,
                model: ModelKind::MobileNetV3Small,
            })
            .collect();
        config.policy = OverflowPolicy::FairShare;
        let mut controllers = ff_controllers(7);
        controllers.push(Box::new(ff_baselines::AlwaysOffload::new()));
        let result = run_fleet(config, controllers);

        let greedy_rejections = result.rejections_by_device[7];
        let adaptive_mean: f64 = result.rejections_by_device[..7]
            .iter()
            .map(|&r| r as f64)
            .sum::<f64>()
            / 7.0;
        assert!(
            greedy_rejections as f64 > adaptive_mean,
            "greedy tenant got {greedy_rejections} rejections vs adaptive mean {adaptive_mean:.0}"
        );
    }

    #[test]
    fn fair_share_preserves_jain_fairness_under_a_bursty_tenant() {
        // Fairness regression at ~2x saturation: six devices at 30 fps
        // offer 180 rps against a batch-limit-6 server that completes
        // ~83 rps, and one tenant is bursty (always offloads everything,
        // ignoring feedback). The overflow policy decides who wins:
        // FairShare charges the burst back to its own tenant and keeps the
        // fleet's successful-offload split near-even (Jain >= 0.9), while
        // RejectNewest lets the bursty tenant's standing queue crowd out
        // the adaptive tenants' sparser submissions and fairness collapses
        // below that bar.
        let mut config = short_fleet();
        config.gpu = GpuProfile { batch_limit: 6 };
        config.devices = (0..6)
            .map(|_| FleetDeviceConfig {
                device: DeviceKind::Pi4BRev12,
                model: ModelKind::MobileNetV3Small,
            })
            .collect();
        let bursty_fleet = || {
            let mut controllers = ff_controllers(5);
            controllers.push(Box::new(ff_baselines::AlwaysOffload::new()) as Box<dyn Controller>);
            controllers
        };

        config.policy = OverflowPolicy::FairShare;
        let fair = run_fleet(config.clone(), bursty_fleet());
        config.policy = OverflowPolicy::RejectNewest;
        let newest = run_fleet(config, bursty_fleet());

        assert!(
            fair.offload_fairness >= 0.9,
            "FairShare must hold Jain >= 0.9 against a bursty tenant, got {:.3}",
            fair.offload_fairness
        );
        assert!(
            newest.offload_fairness < 0.9,
            "RejectNewest unexpectedly stayed fair ({:.3}) — the bursty \
             tenant should crowd out adaptive tenants",
            newest.offload_fairness
        );
        assert!(
            fair.offload_fairness > newest.offload_fairness,
            "FairShare ({:.3}) must beat RejectNewest ({:.3})",
            fair.offload_fairness,
            newest.offload_fairness
        );
    }

    #[test]
    fn degraded_network_hits_every_device() {
        let mut config = short_fleet();
        config.network = StepSchedule::constant(NetworkConditions::new(1.0, 7.0));
        let result = run_fleet(config, ff_controllers(3));
        for d in &result.devices {
            assert!(
                d.offload_timeouts > 0,
                "{} saw no timeouts on a dead link",
                d.device
            );
            // Controllers back off to the probe floor.
            let late = d.qos.aggregate(20.0, 30.0).unwrap();
            assert!(
                late.mean_po_target < 8.0,
                "{}: {}",
                d.device,
                late.mean_po_target
            );
        }
    }

    #[test]
    #[should_panic(expected = "one controller per device")]
    fn controller_count_mismatch_panics() {
        run_fleet(short_fleet(), ff_controllers(2));
    }

    #[test]
    fn per_device_mobility_schedules_apply_independently() {
        use ff_workload::{mobility_trace, MobilityConfig};
        let mut config = short_fleet();
        // Device 0 wanders; device 1 is pinned at a dead 1 Mbps; device 2
        // enjoys a clean 10 Mbps.
        let mut mobility = MobilityConfig::default();
        mobility.duration_secs = 30.0;
        let trace = mobility_trace(&mobility, &mut RngFactory::new(3).stream("fleet-mobility"));
        config.per_device_network = Some(vec![
            trace,
            StepSchedule::constant(NetworkConditions::new(1.0, 20.0)),
            StepSchedule::constant(NetworkConditions::new(10.0, 0.0)),
        ]);
        let result = run_fleet(config, ff_controllers(3));
        let late = |i: usize| result.devices[i].qos.aggregate(15.0, 30.0).unwrap();
        // The dead-link device falls to its probe floor; the clean device
        // offloads nearly everything.
        assert!(
            late(1).mean_po_target < 8.0,
            "dead link: {}",
            late(1).mean_po_target
        );
        assert!(
            late(2).mean_po_target > 25.0,
            "clean link: {}",
            late(2).mean_po_target
        );
        // The mobile device lands somewhere in between.
        let mobile = late(0).mean_po_target;
        assert!(mobile > 2.0 && mobile < 31.0, "mobile target {mobile}");
    }

    #[test]
    #[should_panic(expected = "one network schedule per device")]
    fn per_device_schedule_count_mismatch_panics() {
        let mut config = short_fleet();
        config.per_device_network = Some(vec![ff_workload::ideal_network()]);
        run_fleet(config, ff_controllers(3));
    }
}
