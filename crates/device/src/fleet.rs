//! Multi-device (fleet) simulation.
//!
//! The paper's testbed runs *three Raspberry Pis concurrently* against
//! one server (§IV-A). [`run_fleet`] simulates exactly that: every device
//! has its own frame source, uplink, local engine, and controller, and
//! they all contend for the shared batching server. This is also the
//! substrate for the fairness ablation (§II-A.3 / `OverflowPolicy`):
//! per-device outcomes expose how the server splits saturated capacity.
//!
//! Devices now submit through a [`ServerTier`] — N servers behind a
//! routing policy and an admission policy (`FleetConfig::tier`). The
//! paper's topology is the `N = 1` default, which is bit-identical to
//! the pre-tier single-server path; per-server maintenance windows
//! ([`TierOutage`]) fold the crash/epoch machinery in at fleet scale
//! for rolling-restart scenarios.
//!
//! Tag layout: the shared packing in [`crate::tags`] — the probe flag is
//! the runtime's `PROBE_TAG_BASE` bit, bits 55..40 the device index,
//! bits 39..0 the per-device sequence number.

use crate::local::{LocalEngine, LocalOutcome};
use crate::offload::{OffloadResolution, OffloadTracker, TimeoutCause};
use crate::selection::{deadline_risk, ModelSelection};
use crate::splitter::{FrameSplitter, Route};
use ff_core::{Controller, Measurement};
use ff_metrics::{QosLog, WindowedRate};
use ff_models::{DeviceKind, GpuProfile, ModelKind};
use ff_net::{Link, LinkConfig, NetworkConditions, SendOutcome};
use ff_server::{
    jain_fairness_index, BatchOutput, OverflowPolicy, Request, ServerStats, ServerTier, TenantId,
    TierConfig, TierSubmit,
};
use ff_sim::{
    Ctx, EventQueue, QueueBackend, RngFactory, SimDuration, SimModel, SimTime, Simulation,
};
use ff_telemetry::{Metric, Recorder, Scope, Telemetry};
use ff_workload::{
    FilterConfig, FilterStats, FilterVerdict, FrameSource, SceneScript, SemanticFilter,
    StepSchedule, StreamConfig,
};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::collections::HashMap;

use crate::taghash::TagHash;
use crate::tags::{
    fleet_tag as make_tag, fleet_tag_device as tag_device, is_probe_tag as tag_is_probe,
};

/// Engine tuning knobs for a fleet run. These change **how fast** the
/// simulation executes, never **what** it computes: every combination
/// produces bit-identical QoS logs and server stats (asserted by tests
/// and by the `engine_bench` binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Event-queue backend driving the simulation calendar.
    pub backend: QueueBackend,
    /// Reuse one [`BatchOutput`] across all batch completions instead of
    /// allocating fresh result vectors per batch. Disabling this exists
    /// only so `engine_bench` can measure the allocating baseline.
    pub reuse_batch_buffers: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            backend: QueueBackend::Heap,
            reuse_batch_buffers: true,
        }
    }
}

/// One server's maintenance window inside a fleet run: server `server`
/// crashes at `from_secs` (queue and running batch lost, epoch bumped)
/// and comes back — empty and idle — at `until_secs`. Several windows
/// staggered across servers model a rolling restart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierOutage {
    /// Index of the server that goes down.
    pub server: usize,
    /// Crash instant, in seconds of simulated time.
    pub from_secs: f64,
    /// Recovery instant, in seconds of simulated time.
    pub until_secs: f64,
}

impl TierOutage {
    /// Panic on a window that ends before it starts or starts negative.
    pub fn validate(&self, servers: usize) {
        assert!(
            self.server < servers,
            "outage names server {} but the tier has {servers}",
            self.server
        );
        assert!(
            self.from_secs >= 0.0 && self.until_secs > self.from_secs,
            "outage window [{}, {}) is empty or negative",
            self.from_secs,
            self.until_secs
        );
    }
}

/// Per-device configuration inside a fleet.
#[derive(Debug, Clone, Copy)]
pub struct FleetDeviceConfig {
    /// Hardware profile of this device.
    pub device: DeviceKind,
    /// Classification model it runs (locally and via offloading).
    pub model: ModelKind,
}

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Master seed for all of the fleet's RNG streams.
    pub seed: u64,
    /// One entry per device (the paper uses the three Pis of Table II).
    pub devices: Vec<FleetDeviceConfig>,
    /// Shared stream parameters (every device captures the same cadence).
    pub stream: StreamConfig,
    /// End-to-end offload deadline.
    pub deadline: SimDuration,
    /// Static uplink parameters (shared by all devices).
    pub link: LinkConfig,
    /// Network schedule applied to every device's uplink (unless
    /// overridden per device below).
    pub network: StepSchedule<NetworkConditions>,
    /// Optional per-device schedules (e.g. independent mobility traces);
    /// when set, must have one entry per device and replaces `network`.
    pub per_device_network: Option<Vec<StepSchedule<NetworkConditions>>>,
    /// Controller measurement period (1 s in the paper).
    pub controller_period: SimDuration,
    /// Trailing window for the timeout-rate controller input.
    pub timeout_window: SimDuration,
    /// Shared server GPU profile (the `N = 1` legacy knob; ignored when
    /// `tier` is set).
    pub gpu: GpuProfile,
    /// Server overflow policy (the fairness ablation knob; ignored when
    /// `tier` is set).
    pub policy: OverflowPolicy,
    /// Explicit server-tier topology: N servers plus routing and
    /// admission policies. `None` means the legacy single server built
    /// from `gpu` + `policy` — bit-identical to the pre-tier path.
    pub tier: Option<TierConfig>,
    /// Per-server maintenance windows (rolling restarts). Empty by
    /// default; scheduling none keeps the event stream unchanged.
    pub outages: Vec<TierOutage>,
    /// Engine tuning (queue backend, buffer reuse). Results are
    /// independent of this choice.
    pub engine: EngineOptions,
    /// Observability pipeline. Disabled by default; enabling it leaves
    /// fleet results bit-identical (asserted by `telemetry_inert.rs`) —
    /// recorders never schedule events or touch an RNG stream.
    pub telemetry: Telemetry,
    /// Optional scene script modulating every device's per-frame
    /// information (each device gets its own `"fleet-scene"` indexed
    /// stream, so enabling this never perturbs the existing streams).
    /// `None` keeps the fleet bit-identical to the pre-scene path.
    pub scene: Option<SceneScript>,
    /// Optional semantic frame filter applied per device before
    /// routing. Inert without `scene` (frames carry no information
    /// score otherwise); `None` is bit-identical to no filtering.
    pub filter: Option<FilterConfig>,
    /// Model-selection policy shared by all devices. The default
    /// `AlwaysPaper` reproduces the paper's fixed split bit-for-bit.
    pub selection: ModelSelection,
    /// Model served by the tier for offloaded frames. `None` means each
    /// device's own `model` (the paper's symmetric setup).
    pub remote_model: Option<ModelKind>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 42,
            devices: vec![
                FleetDeviceConfig {
                    device: DeviceKind::Pi3BRev12,
                    model: ModelKind::MobileNetV3Small,
                },
                FleetDeviceConfig {
                    device: DeviceKind::Pi4BRev12,
                    model: ModelKind::MobileNetV3Small,
                },
                FleetDeviceConfig {
                    device: DeviceKind::Pi4BRev14,
                    model: ModelKind::MobileNetV3Small,
                },
            ],
            stream: StreamConfig::default(),
            deadline: SimDuration::from_millis(250),
            link: LinkConfig::default(),
            network: ff_workload::ideal_network(),
            per_device_network: None,
            controller_period: SimDuration::from_secs(1),
            timeout_window: SimDuration::from_secs(3),
            gpu: GpuProfile::default(),
            policy: OverflowPolicy::RejectNewest,
            tier: None,
            outages: Vec::new(),
            engine: EngineOptions::default(),
            telemetry: Telemetry::disabled(),
            scene: None,
            filter: None,
            selection: ModelSelection::AlwaysPaper,
            remote_model: None,
        }
    }
}

impl FleetConfig {
    /// The effective tier topology: the explicit `tier` if set, else the
    /// legacy single server built from `gpu` + `policy`.
    pub fn tier_config(&self) -> TierConfig {
        self.tier
            .clone()
            .unwrap_or_else(|| TierConfig::single(self.gpu, self.policy))
    }
}

/// Per-device outcome of a fleet run.
#[derive(Debug, Serialize)]
pub struct FleetDeviceResult {
    /// Controller name driving this device.
    pub controller: String,
    /// Device profile name (Table II column).
    pub device: String,
    /// Classification model name.
    pub model: String,
    /// Per-second QoS records for this device.
    pub qos: QosLog,
    /// Frames routed to the uplink.
    pub frames_offloaded: u64,
    /// Frames routed to the local engine.
    pub frames_local: u64,
    /// Offloads that beat the deadline.
    pub offload_successes: u64,
    /// Offloads that missed the deadline.
    pub offload_timeouts: u64,
    /// Mean total throughput `P` for this device.
    pub mean_throughput: f64,
    /// Mean accuracy-weighted throughput (correct classifications per
    /// second) over intervals that completed frames.
    pub mean_accuracy_weighted_throughput: f64,
    /// Semantic-filter accounting for this device (`None` when the
    /// fleet runs without a filter).
    pub filter_stats: Option<FilterStats>,
}

/// Outcome of a fleet run.
#[derive(Debug, Serialize)]
pub struct FleetResult {
    /// Per-device outcomes, in configuration order.
    pub devices: Vec<FleetDeviceResult>,
    /// Tier-wide server counters (sum over all servers).
    pub server_stats: ServerStats,
    /// Per-server counters, in tier order (one entry for the legacy
    /// single-server topology).
    pub per_server_stats: Vec<ServerStats>,
    /// Requests turned away by the admission policy (0 under
    /// `AdmitAll`).
    pub admission_rejections: u64,
    /// Jain fairness index over per-device successful-offload counts.
    pub offload_fairness: f64,
    /// Total throughput summed over devices, per paper Fig. 3 ("evaluated
    /// their total inference throughput").
    pub total_mean_throughput: f64,
    /// Server-side rejections per device index (fairness diagnostics).
    pub rejections_by_device: Vec<u64>,
    /// Total simulation events dispatched during the run (the
    /// denominator of `engine_bench`'s events/sec figure).
    pub events_handled: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct IntervalCounters {
    sent: u64,
    local_done: u64,
    offload_success: u64,
    timeouts: u64,
    timeouts_network: u64,
    timeouts_load: u64,
}

struct DeviceState {
    controller: Box<dyn Controller>,
    source: FrameSource<ChaCha8Rng>,
    splitter: FrameSplitter,
    engine: LocalEngine<ChaCha8Rng>,
    link: Link<ChaCha8Rng>,
    tracker: OffloadTracker,
    model: ModelKind,
    /// Model the tier runs for this device's offloads (== `model`
    /// unless `FleetConfig::remote_model` overrides it).
    offload_model: ModelKind,
    filter: Option<SemanticFilter>,
    local_accuracy: f64,
    remote_accuracy: f64,
    device_kind: DeviceKind,
    probes: HashMap<u64, SimTime, TagHash>,
    probe_seq: u64,
    last_heartbeat_ok: bool,
    po_target: f64,
    interval: IntervalCounters,
    timeout_rate: WindowedRate,
    qos: QosLog,
    frames_offloaded: u64,
    frames_local: u64,
}

enum FleetEvent {
    Capture(usize),
    LocalDone(usize),
    Uplinked {
        tag: u64,
    },
    /// Server `server`'s running batch completes. `epoch` pins the
    /// event to the server process that scheduled it: a crash bumps the
    /// tier-side epoch, so completions of a dead process are discarded.
    BatchDone {
        server: usize,
        epoch: u64,
    },
    Response {
        tag: u64,
    },
    Deadline {
        tag: u64,
    },
    Tick(usize),
    /// Server `server` goes down for maintenance (a `TierOutage` start).
    ServerCrash(usize),
    /// Server `server` comes back, empty and idle.
    ServerRecover(usize),
    /// Apply schedule step `step` (shared schedule: to all devices;
    /// per-device schedules: to device `dev`).
    NetworkChange {
        dev: Option<usize>,
        step: usize,
    },
}

/// Fleet-side observability state: one recorder for the (single)
/// simulation thread, plus the interned scopes it reports under.
///
/// Strictly write-only with respect to the simulation: nothing here
/// schedules events, advances RNG streams, or feeds back into routing
/// decisions, which is what keeps telemetry-on runs bit-identical to
/// telemetry-off runs.
struct FleetObs {
    telemetry: Telemetry,
    recorder: Recorder,
    engine: Scope,
    /// Tier-aggregate scope; stays named "server" so single-server
    /// dashboards and pinned scope ids keep working at any N.
    server: Scope,
    /// Per-server scopes ("server/{i}"), interned only for N > 1 tiers.
    servers: Vec<Scope>,
    devices: Vec<Scope>,
    /// Tier-aggregate counter values at the previous tick, for delta
    /// emission.
    last_server: ServerStats,
    /// Per-server counter values at the previous tick (N > 1 only).
    last_servers: Vec<ServerStats>,
    /// Admission-rejection counter at the previous tick.
    last_admission: u64,
}

impl FleetObs {
    fn new(telemetry: &Telemetry, n_devices: usize, n_servers: usize) -> FleetObs {
        let servers: Vec<Scope> = if n_servers > 1 {
            (0..n_servers)
                .map(|i| telemetry.scope(&format!("server/{i}")))
                .collect()
        } else {
            Vec::new()
        };
        FleetObs {
            recorder: telemetry.recorder(),
            engine: telemetry.scope("engine"),
            server: telemetry.scope("server"),
            last_servers: vec![ServerStats::default(); servers.len()],
            servers,
            devices: (0..n_devices)
                .map(|i| telemetry.scope(&format!("device/{i}")))
                .collect(),
            last_server: ServerStats::default(),
            last_admission: 0,
            telemetry: telemetry.clone(),
        }
    }
}

struct FleetWorld {
    config: FleetConfig,
    devices: Vec<DeviceState>,
    tier: ServerTier,
    /// The tier's routing stream ("routing"); consumed only by
    /// power-of-two-choices routing with two or more live servers, so
    /// legacy single-server runs never advance it.
    routing_rng: ChaCha8Rng,
    batch_out: BatchOutput,
    end_at: SimTime,
    obs: FleetObs,
}

impl FleetWorld {
    fn submit_to_server(&mut self, ctx: &mut Ctx<'_, FleetEvent>, request: Request) -> TierSubmit {
        let regulated = !tag_is_probe(request.tag);
        let outcome = self
            .tier
            .submit(ctx.now(), request, regulated, &mut self.routing_rng);
        if let TierSubmit::BatchStarted { server, done_at } = outcome {
            ctx.schedule_at(
                done_at,
                FleetEvent::BatchDone {
                    server,
                    epoch: self.tier.epoch(server),
                },
            );
        }
        outcome
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, FleetEvent>, dev: usize) {
        let now = ctx.now();
        let dt = self.config.controller_period.as_secs_f64();
        let fs = self.config.stream.fps;
        let bytes = self.config.stream.compression.mean_frame_bytes();
        let deadline = self.config.deadline;

        let d = &mut self.devices[dev];
        let po = d.interval.sent as f64 / dt;
        let pl = d.interval.local_done as f64 / dt;
        let t_windowed = d.timeout_rate.rate_at(now);

        let decision = d.controller.update(&Measurement {
            fs,
            po_achieved: po,
            pl_achieved: pl,
            timeout_rate: t_windowed,
            heartbeat_ok: d.last_heartbeat_ok,
            dt_secs: dt,
        });
        d.po_target = decision.po_target;
        let accuracy_weighted = (d.local_accuracy * d.interval.local_done as f64
            + d.remote_accuracy * d.interval.offload_success as f64)
            / dt;
        d.qos.push_at(
            now,
            pl,
            po,
            d.interval.timeouts_network as f64 / dt,
            d.interval.timeouts_load as f64 / dt,
            d.po_target,
            accuracy_weighted,
        );
        let interval = d.interval;
        d.interval = IntervalCounters::default();

        // Heartbeat probe through this device's own link.
        d.last_heartbeat_ok = false;
        let ptag = make_tag(dev, d.probe_seq, true);
        d.probe_seq += 1;
        d.probes.insert(ptag, now);
        match d.link.send(now, bytes) {
            SendOutcome::Delivered { at } => {
                ctx.schedule_at(at, FleetEvent::Uplinked { tag: ptag })
            }
            SendOutcome::Dropped(_) => {}
        }
        ctx.schedule_at(now + deadline, FleetEvent::Deadline { tag: ptag });

        let next = now + self.config.controller_period;
        if next <= self.end_at {
            ctx.schedule_at(next, FleetEvent::Tick(dev));
        }

        self.observe_tick(ctx, dev, po, pl, t_windowed, interval);
    }

    /// Report this device's controller-period observations (and, from
    /// device 0, the shared engine and server state), then poll the
    /// collector. Purely observational: emits into the recorder's ring
    /// and never schedules events, so it cannot perturb the run.
    fn observe_tick(
        &mut self,
        ctx: &Ctx<'_, FleetEvent>,
        dev: usize,
        po: f64,
        pl: f64,
        t_windowed: f64,
        interval: IntervalCounters,
    ) {
        if !self.obs.recorder.is_enabled() {
            return;
        }
        let t = ctx.now().as_micros();
        let rec = &mut self.obs.recorder;
        let scope = self.obs.devices[dev];
        let d = &self.devices[dev];
        let fs = self.config.stream.fps;

        rec.gauge(scope, Metric::Po, po, t);
        rec.gauge(scope, Metric::Pl, pl, t);
        rec.gauge(scope, Metric::TimeoutRate, t_windowed, t);
        rec.gauge(scope, Metric::PoTarget, d.po_target, t);
        rec.gauge(scope, Metric::ControllerError, fs - (po + pl), t);
        rec.gauge(scope, Metric::InFlight, d.tracker.in_flight() as f64, t);
        rec.gauge(scope, Metric::ProbesInFlight, d.probes.len() as f64, t);
        rec.counter(scope, Metric::FramesOffloaded, interval.sent, t);
        rec.counter(scope, Metric::FramesLocal, interval.local_done, t);
        rec.counter(scope, Metric::TimeoutsNetwork, interval.timeouts_network, t);
        rec.counter(scope, Metric::TimeoutsLoad, interval.timeouts_load, t);
        rec.counter(scope, Metric::HeartbeatOk, d.last_heartbeat_ok as u64, t);

        // Shared state is reported once per controller period, by the
        // first device to tick in it.
        if dev == 0 {
            let engine = self.obs.engine;
            rec.gauge(
                engine,
                Metric::EventsHandled,
                ctx.events_handled() as f64,
                t,
            );
            rec.gauge(
                engine,
                Metric::PendingEvents,
                ctx.pending_events() as f64,
                t,
            );
            let wheel = self.config.engine.backend == QueueBackend::Wheel;
            rec.gauge(engine, Metric::QueueBackendWheel, wheel as u64 as f64, t);

            // Tier aggregate under the legacy "server" scope: for a
            // single-server tier these are exactly the old values.
            let server = self.obs.server;
            let stats = self.tier.total_stats();
            let last = self.obs.last_server;
            let queue_depth: usize = (0..self.tier.len())
                .map(|i| self.tier.server(i).queue_len())
                .sum();
            rec.gauge(server, Metric::ServerQueueDepth, queue_depth as f64, t);
            let occupancy: usize = (0..self.tier.len())
                .map(|i| self.tier.server(i).running_batch_size().unwrap_or(0))
                .sum();
            rec.gauge(server, Metric::BatchOccupancy, occupancy as f64, t);
            let d = stats.requests_received - last.requests_received;
            rec.counter(server, Metric::ServerRequests, d, t);
            let d = stats.completions - last.completions;
            rec.counter(server, Metric::ServerCompletions, d, t);
            let d = stats.rejections - last.rejections;
            rec.counter(server, Metric::ServerRejections, d, t);
            let d = stats.batches_executed - last.batches_executed;
            rec.counter(server, Metric::ServerBatches, d, t);
            let admission = self.tier.admission_rejections();
            let d = admission - self.obs.last_admission;
            rec.counter(server, Metric::AdmissionRejections, d, t);
            self.obs.last_admission = admission;
            self.obs.last_server = stats;

            // Per-server scopes, only interned for multi-server tiers.
            for (i, &scope) in self.obs.servers.iter().enumerate() {
                let s = self.tier.server(i);
                let stats = s.stats();
                let last = self.obs.last_servers[i];
                rec.gauge(scope, Metric::ServerUp, self.tier.is_up(i) as u64 as f64, t);
                rec.gauge(scope, Metric::ServerQueueDepth, s.queue_len() as f64, t);
                let occupancy = s.running_batch_size().unwrap_or(0);
                rec.gauge(scope, Metric::BatchOccupancy, occupancy as f64, t);
                let d = stats.requests_received - last.requests_received;
                rec.counter(scope, Metric::ServerRequests, d, t);
                let d = stats.completions - last.completions;
                rec.counter(scope, Metric::ServerCompletions, d, t);
                let d = stats.rejections - last.rejections;
                rec.counter(scope, Metric::ServerRejections, d, t);
                let d = stats.batches_executed - last.batches_executed;
                rec.counter(scope, Metric::ServerBatches, d, t);
                self.obs.last_servers[i] = stats;
            }

            self.obs.telemetry.poll();
        }
    }
}

impl SimModel for FleetWorld {
    type Event = FleetEvent;

    fn handle(&mut self, ctx: &mut Ctx<'_, FleetEvent>, event: FleetEvent) {
        match event {
            FleetEvent::Capture(dev) => {
                let now = ctx.now();
                let fs = self.config.stream.fps;
                let deadline = self.config.deadline;
                let d = &mut self.devices[dev];
                let Some(frame) = d.source.next_frame() else {
                    return;
                };
                // Semantic filter: drop or shrink low-information frames
                // before they cost routing, uplink, or local compute.
                let mut frame_bytes = frame.bytes;
                if let (Some(filter), Some(info)) = (&mut d.filter, d.source.last_info()) {
                    match filter.verdict(info, frame.bytes) {
                        FilterVerdict::Pass => {}
                        FilterVerdict::Shrink { bytes } => frame_bytes = bytes,
                        FilterVerdict::Skip => {
                            if !d.source.exhausted() {
                                let next = d.source.next_capture_time();
                                ctx.schedule_at(next, FleetEvent::Capture(dev));
                            }
                            return;
                        }
                    }
                }
                let mut route = d.splitter.route(d.po_target, fs);
                if route == Route::Offload && self.config.selection != ModelSelection::AlwaysPaper {
                    // Accuracy-aware demotion: keep the frame local when
                    // the deadline risk eats the remote model's accuracy
                    // edge. Guarded so `AlwaysPaper` never touches the
                    // timeout-rate window outside ticks (bit-inert).
                    let risk = deadline_risk(d.timeout_rate.rate_at(now), d.po_target);
                    if self.config.selection.prefers_local(
                        d.local_accuracy,
                        d.remote_accuracy,
                        risk,
                    ) {
                        route = Route::Local;
                    }
                }
                match route {
                    Route::Offload => {
                        let tag = make_tag(dev, frame.id.0, false);
                        d.tracker.sent(tag, now);
                        d.interval.sent += 1;
                        d.frames_offloaded += 1;
                        match d.link.send(now, frame_bytes) {
                            SendOutcome::Delivered { at } => {
                                ctx.schedule_at(at, FleetEvent::Uplinked { tag })
                            }
                            SendOutcome::Dropped(_) => d.tracker.network_dropped(tag),
                        }
                        ctx.schedule_at(now + deadline, FleetEvent::Deadline { tag });
                    }
                    Route::Local => {
                        if let LocalOutcome::Started { done_at } = d.engine.offer(now) {
                            ctx.schedule_at(done_at, FleetEvent::LocalDone(dev));
                        }
                        d.frames_local += 1;
                    }
                }
                if !d.source.exhausted() {
                    let next = d.source.next_capture_time();
                    ctx.schedule_at(next, FleetEvent::Capture(dev));
                }
            }

            FleetEvent::LocalDone(dev) => {
                let d = &mut self.devices[dev];
                d.interval.local_done += 1;
                if let Some(next_done) = d.engine.complete(ctx.now()) {
                    ctx.schedule_at(next_done, FleetEvent::LocalDone(dev));
                }
            }

            FleetEvent::Uplinked { tag } => {
                let now = ctx.now();
                let dev = tag_device(tag);
                let model = self.devices[dev].offload_model;
                let probe = tag_is_probe(tag);
                let request = Request {
                    tenant: TenantId(dev as u32),
                    model,
                    submitted_at: now,
                    tag,
                };
                let outcome = self.submit_to_server(ctx, request);
                if probe {
                    // Probes to a lost/rejecting tier simply never come
                    // back: the heartbeat stays down.
                    return;
                }
                match outcome {
                    // The routed server is down: the frame vanishes in
                    // flight, so its deadline fires as a Network-cause
                    // timeout (same as the single-server outage path).
                    TierSubmit::Lost => {}
                    // Turned away at the door: the server saw it, so
                    // this is a ServerLoad-cause timeout at the
                    // deadline, same as a batch-formation rejection.
                    TierSubmit::AdmissionRejected => {
                        let d = &mut self.devices[dev];
                        d.tracker.arrived_at_server(tag, now);
                        d.tracker.rejected_by_server(tag);
                    }
                    TierSubmit::Queued { .. } | TierSubmit::BatchStarted { .. } => {
                        self.devices[dev].tracker.arrived_at_server(tag, now);
                    }
                }
            }

            FleetEvent::BatchDone { server, epoch } => {
                // A stale epoch means the batch belonged to a server
                // process that has since crashed: its results are gone.
                if epoch != self.tier.epoch(server) {
                    return;
                }
                let now = ctx.now();
                let propagation = self.config.link.propagation;
                if !self.config.engine.reuse_batch_buffers {
                    // Allocating baseline for `engine_bench`: fresh result
                    // vectors for every batch, like the pre-reuse code.
                    self.batch_out = BatchOutput::default();
                }
                self.tier.batch_done_into(server, now, &mut self.batch_out);
                for c in &self.batch_out.completions {
                    ctx.schedule_at(
                        now + propagation,
                        FleetEvent::Response { tag: c.request.tag },
                    );
                }
                for r in &self.batch_out.rejections {
                    if !tag_is_probe(r.request.tag) {
                        let dev = tag_device(r.request.tag);
                        self.devices[dev].tracker.rejected_by_server(r.request.tag);
                    }
                }
                if let Some(done_at) = self.batch_out.next_done {
                    ctx.schedule_at(done_at, FleetEvent::BatchDone { server, epoch });
                }
            }

            FleetEvent::Response { tag } => {
                let now = ctx.now();
                let dev = tag_device(tag);
                let deadline = self.config.deadline;
                let d = &mut self.devices[dev];
                if tag_is_probe(tag) {
                    if let Some(sent_at) = d.probes.remove(&tag) {
                        if now.saturating_since(sent_at) <= deadline {
                            d.last_heartbeat_ok = true;
                        }
                    }
                    return;
                }
                match d.tracker.response_arrived(tag, now) {
                    Some(OffloadResolution::Success { .. }) => d.interval.offload_success += 1,
                    Some(OffloadResolution::Timeout { cause }) => record_timeout(d, now, cause),
                    None => {}
                }
            }

            FleetEvent::Deadline { tag } => {
                let now = ctx.now();
                let dev = tag_device(tag);
                let d = &mut self.devices[dev];
                if tag_is_probe(tag) {
                    d.probes.remove(&tag);
                    return;
                }
                if let Some(OffloadResolution::Timeout { cause }) =
                    d.tracker.deadline_expired(tag, now)
                {
                    record_timeout(d, now, cause);
                }
            }

            FleetEvent::Tick(dev) => self.tick(ctx, dev),

            FleetEvent::ServerCrash(server) => self.tier.crash(server),

            FleetEvent::ServerRecover(server) => self.tier.recover(server),

            FleetEvent::NetworkChange { dev, step } => match dev {
                None => {
                    let conditions = self.config.network.steps()[step].1;
                    for d in &mut self.devices {
                        d.link.set_conditions(conditions);
                    }
                }
                Some(dev) => {
                    let schedules = self
                        .config
                        .per_device_network
                        .as_ref()
                        .expect("per-device event requires per-device schedules");
                    let conditions = schedules[dev].steps()[step].1;
                    self.devices[dev].link.set_conditions(conditions);
                }
            },
        }
    }
}

fn record_timeout(d: &mut DeviceState, now: SimTime, cause: TimeoutCause) {
    d.timeout_rate.record(now);
    d.interval.timeouts += 1;
    match cause {
        TimeoutCause::Network => d.interval.timeouts_network += 1,
        TimeoutCause::ServerLoad => d.interval.timeouts_load += 1,
    }
}

/// Run a fleet of devices, one controller per device (same order as
/// `config.devices`).
pub fn run_fleet(config: FleetConfig, controllers: Vec<Box<dyn Controller>>) -> FleetResult {
    assert_eq!(
        config.devices.len(),
        controllers.len(),
        "one controller per device"
    );
    assert!(
        !config.devices.is_empty(),
        "fleet needs at least one device"
    );
    if let Some(schedules) = &config.per_device_network {
        assert_eq!(
            schedules.len(),
            config.devices.len(),
            "one network schedule per device"
        );
    }
    let rng = RngFactory::new(config.seed);
    let fs = config.stream.fps;
    let end_at = SimTime::ZERO + config.stream.stream_duration() + config.deadline;

    let devices: Vec<DeviceState> = config
        .devices
        .iter()
        .zip(controllers)
        .enumerate()
        .map(|(i, (dc, mut controller))| {
            let initial_conditions = match &config.per_device_network {
                Some(schedules) => *schedules[i].value_at(0.0),
                None => *config.network.value_at(0.0),
            };
            let po_target = controller
                .update(&Measurement {
                    fs,
                    po_achieved: 0.0,
                    pl_achieved: 0.0,
                    timeout_rate: 0.0,
                    heartbeat_ok: false,
                    dt_secs: config.controller_period.as_secs_f64(),
                })
                .po_target;
            let offload_model = config.remote_model.unwrap_or(dc.model);
            let source = match &config.scene {
                // The scene draws from its own indexed stream, so the
                // frame/local/link streams are untouched by enabling it.
                Some(script) => FrameSource::with_scene(
                    config.stream,
                    rng.indexed_stream("fleet-frames", i as u64),
                    script.clone(),
                    rng.indexed_stream("fleet-scene", i as u64),
                ),
                None => {
                    FrameSource::new(config.stream, rng.indexed_stream("fleet-frames", i as u64))
                }
            };
            DeviceState {
                controller,
                source,
                splitter: FrameSplitter::new(),
                engine: LocalEngine::new(
                    dc.device,
                    dc.model,
                    rng.indexed_stream("fleet-local", i as u64),
                ),
                link: Link::new(
                    config.link,
                    initial_conditions,
                    rng.indexed_stream("fleet-link", i as u64),
                ),
                tracker: OffloadTracker::new(config.deadline),
                model: dc.model,
                offload_model,
                filter: config.filter.map(SemanticFilter::new),
                local_accuracy: dc.model.profile().top1_accuracy,
                remote_accuracy: offload_model.profile().top1_accuracy,
                device_kind: dc.device,
                probes: HashMap::default(),
                probe_seq: 0,
                last_heartbeat_ok: false,
                po_target,
                interval: IntervalCounters::default(),
                timeout_rate: WindowedRate::new(config.timeout_window),
                qos: QosLog::new(),
                frames_offloaded: 0,
                frames_local: 0,
            }
        })
        .collect();

    let n = devices.len();
    let controller_period = config.controller_period;
    let change_events: Vec<(f64, Option<usize>, usize)> = match &config.per_device_network {
        Some(schedules) => schedules
            .iter()
            .enumerate()
            .flat_map(|(dev, schedule)| {
                schedule
                    .steps()
                    .iter()
                    .enumerate()
                    .skip(1)
                    .map(move |(step, &(t, _))| (t, Some(dev), step))
            })
            .collect(),
        None => config
            .network
            .steps()
            .iter()
            .enumerate()
            .skip(1)
            .map(|(step, &(t, _))| (t, None, step))
            .collect(),
    };
    let tier_config = config.tier_config();
    let tier = ServerTier::new(&tier_config);
    for outage in &config.outages {
        outage.validate(tier.len());
    }
    let routing_rng = rng.stream("routing");

    let backend = config.engine.backend;
    let obs = FleetObs::new(&config.telemetry, n, tier.len());
    let outages = config.outages.clone();
    let world = FleetWorld {
        config,
        devices,
        tier,
        routing_rng,
        batch_out: BatchOutput::default(),
        end_at,
        obs,
    };
    let mut sim = Simulation::with_queue(world, EventQueue::with_backend(backend));
    for dev in 0..n {
        sim.schedule_at(SimTime::ZERO, FleetEvent::Capture(dev));
        sim.schedule_at(SimTime::ZERO + controller_period, FleetEvent::Tick(dev));
    }
    for (t, dev, step) in change_events {
        sim.schedule_at(
            SimTime::from_secs_f64(t),
            FleetEvent::NetworkChange { dev, step },
        );
    }
    for outage in outages {
        sim.schedule_at(
            SimTime::from_secs_f64(outage.from_secs),
            FleetEvent::ServerCrash(outage.server),
        );
        sim.schedule_at(
            SimTime::from_secs_f64(outage.until_secs),
            FleetEvent::ServerRecover(outage.server),
        );
    }
    sim.run_until(end_at);
    let events_handled = sim.events_handled();
    let world = sim.into_model();
    // Drain whatever the final ticks recorded. The last (partial) window
    // stays open until the caller's `Telemetry::finish`, so one pipeline
    // can span several runs (e.g. a sweep).
    world.obs.telemetry.poll();

    let device_results: Vec<FleetDeviceResult> = world
        .devices
        .into_iter()
        .map(|d| FleetDeviceResult {
            controller: d.controller.name().to_string(),
            device: d.device_kind.name().to_string(),
            model: d.model.name().to_string(),
            mean_throughput: d.qos.mean_throughput(),
            mean_accuracy_weighted_throughput: d.qos.mean_accuracy_weighted(),
            filter_stats: d.filter.as_ref().map(|f| f.stats()),
            frames_offloaded: d.frames_offloaded,
            frames_local: d.frames_local,
            offload_successes: d.tracker.successes(),
            offload_timeouts: d.tracker.timeouts(),
            qos: d.qos,
        })
        .collect();

    let successes: Vec<f64> = device_results
        .iter()
        .map(|d| d.offload_successes as f64)
        .collect();
    let rejections_by_device: Vec<u64> = (0..device_results.len())
        .map(|i| world.tier.rejections_for(TenantId(i as u32)))
        .collect();
    FleetResult {
        offload_fairness: jain_fairness_index(&successes),
        total_mean_throughput: device_results.iter().map(|d| d.mean_throughput).sum(),
        server_stats: world.tier.total_stats(),
        per_server_stats: world.tier.per_server_stats(),
        admission_rejections: world.tier.admission_rejections(),
        rejections_by_device,
        events_handled,
        devices: device_results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_core::FrameFeedback;
    use ff_server::{AdmissionPolicy, RoutingPolicy, ServerSpec};
    use ff_sim::RngFactory;

    fn short_fleet() -> FleetConfig {
        let mut c = FleetConfig::default();
        c.stream.total_frames = 900; // 30 s
        c
    }

    fn ff_controllers(n: usize) -> Vec<Box<dyn Controller>> {
        (0..n)
            .map(|_| Box::new(FrameFeedback::new()) as Box<dyn Controller>)
            .collect()
    }

    #[test]
    fn tag_layout_round_trips() {
        let t = make_tag(7, 123_456, false);
        assert_eq!(tag_device(t), 7);
        assert!(!tag_is_probe(t));
        let p = make_tag(65_000, 1, true);
        assert_eq!(tag_device(p), 65_000);
        assert!(tag_is_probe(p));
    }

    #[test]
    fn three_pis_share_the_server_on_an_ideal_network() {
        let result = run_fleet(short_fleet(), ff_controllers(3));
        assert_eq!(result.devices.len(), 3);
        // 3 devices * 30 fps = 90 rps offered at full offload — well below
        // the ~145 rps saturation point, so everyone converges near F_s.
        for d in &result.devices {
            let late = d.qos.aggregate(15.0, 30.0).unwrap();
            assert!(
                late.mean_throughput > 25.0,
                "{}: throughput {:.1}",
                d.device,
                late.mean_throughput
            );
        }
        assert!(result.total_mean_throughput > 75.0);
        assert!(
            result.offload_fairness > 0.95,
            "uncontended fleet should be fair, index {:.3}",
            result.offload_fairness
        );
    }

    #[test]
    fn wheel_backend_and_buffer_reuse_reproduce_the_heap_run_exactly() {
        // The engine_bench comparison in miniature: the allocating heap
        // baseline vs the wheel + reused buffers must be bit-identical.
        let mut baseline = short_fleet();
        baseline.engine = EngineOptions {
            backend: QueueBackend::Heap,
            reuse_batch_buffers: false,
        };
        let mut optimized = short_fleet();
        optimized.engine = EngineOptions {
            backend: QueueBackend::Wheel,
            reuse_batch_buffers: true,
        };
        let a = run_fleet(baseline, ff_controllers(3));
        let b = run_fleet(optimized, ff_controllers(3));
        for (da, db) in a.devices.iter().zip(&b.devices) {
            assert_eq!(da.qos.records(), db.qos.records());
            assert_eq!(da.frames_offloaded, db.frames_offloaded);
            assert_eq!(da.offload_successes, db.offload_successes);
            assert_eq!(da.offload_timeouts, db.offload_timeouts);
        }
        assert_eq!(a.server_stats, b.server_stats);
        assert_eq!(a.rejections_by_device, b.rejections_by_device);
        assert_eq!(a.events_handled, b.events_handled);
    }

    #[test]
    fn fleet_is_deterministic() {
        let a = run_fleet(short_fleet(), ff_controllers(3));
        let b = run_fleet(short_fleet(), ff_controllers(3));
        for (da, db) in a.devices.iter().zip(&b.devices) {
            assert_eq!(da.qos.records(), db.qos.records());
        }
        assert_eq!(a.server_stats, b.server_stats);
    }

    #[test]
    fn devices_see_independent_randomness() {
        // Two identical device kinds on a lossy link: independent RNG
        // streams make their timeout traces diverge.
        let mut config = short_fleet();
        config.devices = vec![
            FleetDeviceConfig {
                device: DeviceKind::Pi4BRev12,
                model: ModelKind::MobileNetV3Small,
            };
            2
        ];
        config.network = StepSchedule::constant(NetworkConditions::new(4.0, 7.0));
        let result = run_fleet(config, ff_controllers(2));
        assert_ne!(
            result.devices[0].offload_timeouts, result.devices[1].offload_timeouts,
            "identical timeout traces imply shared RNG streams"
        );
    }

    #[test]
    fn saturating_fleet_triggers_rejections_and_fair_share_helps() {
        // Nine devices at 30 fps → 270 rps offered at full offload, far
        // beyond the ~145 rps server: heavy contention.
        let mut config = short_fleet();
        config.devices = (0..9)
            .map(|_| FleetDeviceConfig {
                device: DeviceKind::Pi4BRev12,
                model: ModelKind::MobileNetV3Small,
            })
            .collect();

        config.policy = OverflowPolicy::RejectNewest;
        let newest = run_fleet(config.clone(), ff_controllers(9));
        config.policy = OverflowPolicy::FairShare;
        let fair = run_fleet(config, ff_controllers(9));

        assert!(newest.server_stats.rejections > 0);
        assert!(fair.server_stats.rejections > 0);
        // Both policies keep a symmetric fleet roughly fair.
        assert!(
            newest.offload_fairness > 0.85,
            "{:.3}",
            newest.offload_fairness
        );
        assert!(fair.offload_fairness > 0.85, "{:.3}", fair.offload_fairness);
    }

    #[test]
    fn fair_share_shields_adaptive_tenants_from_a_greedy_one() {
        // Seven adaptive devices plus one that always offloads everything
        // (ignoring feedback). Under FairShare, the greedy tenant — which
        // keeps the most requests queued once the others back off — must
        // absorb a disproportionate share of the rejections.
        let mut config = short_fleet();
        config.devices = (0..8)
            .map(|_| FleetDeviceConfig {
                device: DeviceKind::Pi4BRev12,
                model: ModelKind::MobileNetV3Small,
            })
            .collect();
        config.policy = OverflowPolicy::FairShare;
        let mut controllers = ff_controllers(7);
        controllers.push(Box::new(ff_baselines::AlwaysOffload::new()));
        let result = run_fleet(config, controllers);

        let greedy_rejections = result.rejections_by_device[7];
        let adaptive_mean: f64 = result.rejections_by_device[..7]
            .iter()
            .map(|&r| r as f64)
            .sum::<f64>()
            / 7.0;
        assert!(
            greedy_rejections as f64 > adaptive_mean,
            "greedy tenant got {greedy_rejections} rejections vs adaptive mean {adaptive_mean:.0}"
        );
    }

    #[test]
    fn fair_share_preserves_jain_fairness_under_a_bursty_tenant() {
        // Fairness regression at ~2x saturation: six devices at 30 fps
        // offer 180 rps against a batch-limit-6 server that completes
        // ~83 rps, and one tenant is bursty (always offloads everything,
        // ignoring feedback). The overflow policy decides who wins:
        // FairShare charges the burst back to its own tenant and keeps the
        // fleet's successful-offload split near-even (Jain >= 0.9), while
        // RejectNewest lets the bursty tenant's standing queue crowd out
        // the adaptive tenants' sparser submissions and fairness collapses
        // below that bar.
        let mut config = short_fleet();
        config.gpu = GpuProfile { batch_limit: 6 };
        config.devices = (0..6)
            .map(|_| FleetDeviceConfig {
                device: DeviceKind::Pi4BRev12,
                model: ModelKind::MobileNetV3Small,
            })
            .collect();
        let bursty_fleet = || {
            let mut controllers = ff_controllers(5);
            controllers.push(Box::new(ff_baselines::AlwaysOffload::new()) as Box<dyn Controller>);
            controllers
        };

        config.policy = OverflowPolicy::FairShare;
        let fair = run_fleet(config.clone(), bursty_fleet());
        config.policy = OverflowPolicy::RejectNewest;
        let newest = run_fleet(config, bursty_fleet());

        assert!(
            fair.offload_fairness >= 0.9,
            "FairShare must hold Jain >= 0.9 against a bursty tenant, got {:.3}",
            fair.offload_fairness
        );
        assert!(
            newest.offload_fairness < 0.9,
            "RejectNewest unexpectedly stayed fair ({:.3}) — the bursty \
             tenant should crowd out adaptive tenants",
            newest.offload_fairness
        );
        assert!(
            fair.offload_fairness > newest.offload_fairness,
            "FairShare ({:.3}) must beat RejectNewest ({:.3})",
            fair.offload_fairness,
            newest.offload_fairness
        );
    }

    #[test]
    fn degraded_network_hits_every_device() {
        let mut config = short_fleet();
        config.network = StepSchedule::constant(NetworkConditions::new(1.0, 7.0));
        let result = run_fleet(config, ff_controllers(3));
        for d in &result.devices {
            assert!(
                d.offload_timeouts > 0,
                "{} saw no timeouts on a dead link",
                d.device
            );
            // Controllers back off to the probe floor.
            let late = d.qos.aggregate(20.0, 30.0).unwrap();
            assert!(
                late.mean_po_target < 8.0,
                "{}: {}",
                d.device,
                late.mean_po_target
            );
        }
    }

    #[test]
    #[should_panic(expected = "one controller per device")]
    fn controller_count_mismatch_panics() {
        run_fleet(short_fleet(), ff_controllers(2));
    }

    #[test]
    fn per_device_mobility_schedules_apply_independently() {
        use ff_workload::{mobility_trace, MobilityConfig};
        let mut config = short_fleet();
        // Device 0 wanders; device 1 is pinned at a dead 1 Mbps; device 2
        // enjoys a clean 10 Mbps.
        let mut mobility = MobilityConfig::default();
        mobility.duration_secs = 30.0;
        let trace = mobility_trace(&mobility, &mut RngFactory::new(3).stream("fleet-mobility"));
        config.per_device_network = Some(vec![
            trace,
            StepSchedule::constant(NetworkConditions::new(1.0, 20.0)),
            StepSchedule::constant(NetworkConditions::new(10.0, 0.0)),
        ]);
        let result = run_fleet(config, ff_controllers(3));
        let late = |i: usize| result.devices[i].qos.aggregate(15.0, 30.0).unwrap();
        // The dead-link device falls to its probe floor; the clean device
        // offloads nearly everything.
        assert!(
            late(1).mean_po_target < 8.0,
            "dead link: {}",
            late(1).mean_po_target
        );
        assert!(
            late(2).mean_po_target > 25.0,
            "clean link: {}",
            late(2).mean_po_target
        );
        // The mobile device lands somewhere in between.
        let mobile = late(0).mean_po_target;
        assert!(mobile > 2.0 && mobile < 31.0, "mobile target {mobile}");
    }

    #[test]
    #[should_panic(expected = "one network schedule per device")]
    fn per_device_schedule_count_mismatch_panics() {
        let mut config = short_fleet();
        config.per_device_network = Some(vec![ff_workload::ideal_network()]);
        run_fleet(config, ff_controllers(3));
    }

    /// The bursty six-device scenario of
    /// `fair_share_preserves_jain_fairness_under_a_bursty_tenant`, tier
    /// edition: same offered load, same batch-limit-6 server.
    fn bursty_tier_config(admission: AdmissionPolicy) -> FleetConfig {
        let mut config = short_fleet();
        config.devices = (0..6)
            .map(|_| FleetDeviceConfig {
                device: DeviceKind::Pi4BRev12,
                model: ModelKind::MobileNetV3Small,
            })
            .collect();
        config.tier = Some(TierConfig {
            admission,
            ..TierConfig::single(GpuProfile { batch_limit: 6 }, OverflowPolicy::RejectNewest)
        });
        config
    }

    fn bursty_fleet() -> Vec<Box<dyn Controller>> {
        let mut controllers = ff_controllers(5);
        controllers.push(Box::new(ff_baselines::AlwaysOffload::new()) as Box<dyn Controller>);
        controllers
    }

    #[test]
    fn token_bucket_holds_fairness_where_reject_newest_collapses() {
        // The per-tenant token bucket is an *admission-side* fix for the
        // same collapse the FairShare overflow policy repairs on the
        // queue side: at ~2x saturation (180 rps offered vs ~83 rps
        // completed) a bursty tenant's standing queue crowds out the
        // adaptive tenants under RejectNewest. Capping every tenant at
        // its fair share (~83/6 ≈ 14 rps) before the queue keeps Jain
        // over successful offloads at >= 0.9; admit-all collapses below.
        let bucket = run_fleet(
            bursty_tier_config(AdmissionPolicy::TokenBucket {
                rate_rps: 14.0,
                burst: 14.0,
            }),
            bursty_fleet(),
        );
        let open = run_fleet(
            bursty_tier_config(AdmissionPolicy::AdmitAll),
            bursty_fleet(),
        );

        assert!(
            bucket.offload_fairness >= 0.9,
            "token bucket must hold Jain >= 0.9 against a bursty tenant, got {:.3}",
            bucket.offload_fairness
        );
        assert!(
            open.offload_fairness < 0.9,
            "admit-all over RejectNewest unexpectedly stayed fair ({:.3})",
            open.offload_fairness
        );
        assert!(
            bucket.admission_rejections > 0,
            "the bucket never clipped anything at 2x saturation"
        );
        assert_eq!(open.admission_rejections, 0);
    }

    #[test]
    fn po2c_beats_static_shard_on_deadline_misses_with_a_hot_shard() {
        // Hot shard by tenant placement: four devices over two equal
        // batch-limit-2 servers (~41 rps each). The two heavy tenants
        // (always-offload, 30 fps each) are devices 1 and 3 — static
        // sharding (`tenant % n`) lands *both* on server 1, 60 rps vs
        // 41 rps capacity, while server 0 idles next to the two
        // local-only tenants. Power-of-two choices compares live server
        // load per request and spreads the same 60 rps across both
        // servers, well under the tier's combined ~82 rps.
        let hot_shard_config = |routing: RoutingPolicy| {
            let mut config = short_fleet();
            config.devices = (0..4)
                .map(|_| FleetDeviceConfig {
                    device: DeviceKind::Pi4BRev12,
                    model: ModelKind::MobileNetV3Small,
                })
                .collect();
            config.tier = Some(TierConfig {
                routing,
                ..TierConfig::uniform(
                    2,
                    ServerSpec {
                        gpu: GpuProfile { batch_limit: 2 },
                        policy: OverflowPolicy::RejectNewest,
                    },
                )
            });
            config
        };
        let lineup = || {
            vec![
                Box::new(ff_baselines::LocalOnly::new()) as Box<dyn Controller>,
                Box::new(ff_baselines::AlwaysOffload::new()),
                Box::new(ff_baselines::LocalOnly::new()),
                Box::new(ff_baselines::AlwaysOffload::new()),
            ]
        };
        let miss_rate = |r: &FleetResult| {
            let offloaded: u64 = r.devices.iter().map(|d| d.frames_offloaded).sum();
            let timeouts: u64 = r.devices.iter().map(|d| d.offload_timeouts).sum();
            timeouts as f64 / offloaded.max(1) as f64
        };

        let shard = run_fleet(hot_shard_config(RoutingPolicy::StaticShard), lineup());
        let po2c = run_fleet(hot_shard_config(RoutingPolicy::PowerOfTwoChoices), lineup());

        assert!(
            miss_rate(&po2c) < miss_rate(&shard),
            "po2c miss rate {:.3} must beat static shard {:.3} with a hot shard",
            miss_rate(&po2c),
            miss_rate(&shard)
        );
        // The shard really was hot: static routing starved server 0.
        assert!(shard.per_server_stats[0].completions < shard.per_server_stats[1].completions);
    }

    #[test]
    fn rolling_restart_takes_servers_down_one_at_a_time() {
        // PR-1's crash machinery, per server: restart server 0 during
        // [5 s, 10 s) and server 1 during [12 s, 17 s). The tier never
        // loses both at once, so the fleet keeps completing work, and
        // each server's epoch guard discards its stale batch events.
        let mut config = short_fleet();
        config.tier = Some(TierConfig::uniform(2, ServerSpec::default()));
        config.outages = vec![
            TierOutage {
                server: 0,
                from_secs: 5.0,
                until_secs: 10.0,
            },
            TierOutage {
                server: 1,
                from_secs: 12.0,
                until_secs: 17.0,
            },
        ];
        let result = run_fleet(config, ff_controllers(3));

        assert_eq!(result.per_server_stats.len(), 2);
        for (i, s) in result.per_server_stats.iter().enumerate() {
            assert!(
                s.completions > 0,
                "server {i} completed nothing across the rolling restart"
            );
        }
        // Work still flowed overall, and the per-server split accounts
        // for every completion.
        assert!(result.server_stats.completions > 0);
        assert_eq!(
            result
                .per_server_stats
                .iter()
                .map(|s| s.completions)
                .sum::<u64>(),
            result.server_stats.completions
        );
    }

    #[test]
    #[should_panic(expected = "outage names server")]
    fn outage_beyond_tier_size_panics() {
        let mut config = short_fleet();
        config.outages = vec![TierOutage {
            server: 3,
            from_secs: 1.0,
            until_secs: 2.0,
        }];
        run_fleet(config, ff_controllers(3));
    }
}
