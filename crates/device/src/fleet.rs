//! Multi-device (fleet) simulation.
//!
//! The paper's testbed runs *three Raspberry Pis concurrently* against
//! one server (§IV-A). [`run_fleet`] simulates exactly that: every device
//! has its own frame source, uplink, local engine, and controller, and
//! they all contend for the shared batching server. This is also the
//! substrate for the fairness ablation (§II-A.3 / `OverflowPolicy`):
//! per-device outcomes expose how the server splits saturated capacity.
//!
//! Devices now submit through a [`ServerTier`] — N servers behind a
//! routing policy and an admission policy (`FleetConfig::tier`). The
//! paper's topology is the `N = 1` default, which is bit-identical to
//! the pre-tier single-server path; per-server maintenance windows
//! ([`TierOutage`]) fold the crash/epoch machinery in at fleet scale
//! for rolling-restart scenarios.
//!
//! Per-device **hot state** lives in structure-of-arrays form
//! ([`FleetDevices`]): the scalars every event touches (splitter
//! credit, offload target, interval counters, timeout windows,
//! in-flight tables) sit in parallel `Vec`s indexed by the device id
//! already packed into each tag, so the per-tick loop walks contiguous
//! memory and tag-keyed lookups are a masked index instead of a hash
//! probe ([`crate::flight`]). The event-handler bodies are shared with
//! the sharded driver ([`crate::shard`]) through [`FleetCore`]: the
//! only difference between the single-threaded engine and a shard is
//! where a delivered uplink goes ([`UplinkSink`]).
//!
//! Tag layout: the shared packing in [`crate::tags`] — the probe flag is
//! the runtime's `PROBE_TAG_BASE` bit, bits 55..40 the device index,
//! bits 39..0 the per-device sequence number.

use crate::flight::{FlightTable, ProbeTable};
use crate::local::{LocalEngine, LocalOutcome};
use crate::offload::{OffloadResolution, TimeoutCause};
use crate::selection::{deadline_risk, ModelSelection};
use crate::splitter::{FrameSplitter, Route};
use ff_core::{Controller, Measurement};
use ff_metrics::{QosLog, WindowedRate};
use ff_models::{DeviceKind, GpuProfile, ModelKind};
use ff_net::{Link, LinkConfig, NetworkConditions, SendOutcome};
use ff_server::{
    jain_fairness_index, BatchOutput, OverflowPolicy, Request, ServerStats, ServerTier, TenantId,
    TierConfig, TierSubmit,
};
use ff_sim::{
    Ctx, EventQueue, QueueBackend, RngFactory, SimDuration, SimModel, SimTime, Simulation,
};
use ff_telemetry::{Metric, Recorder, Scope, Telemetry};
use ff_workload::{
    FilterConfig, FilterStats, FilterVerdict, FrameSource, SceneScript, SemanticFilter,
    StepSchedule, StreamConfig,
};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use crate::tags::{
    fleet_tag as make_tag, fleet_tag_device as tag_device, is_probe_tag as tag_is_probe,
};

/// Engine tuning knobs for a fleet run. These change **how fast** the
/// simulation executes, never **what** it computes: every combination
/// produces bit-identical QoS logs and server stats (asserted by tests
/// and by the `engine_bench` binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Event-queue backend driving the simulation calendar.
    pub backend: QueueBackend,
    /// Reuse one [`BatchOutput`] across all batch completions instead of
    /// allocating fresh result vectors per batch. Disabling this exists
    /// only so `engine_bench` can measure the allocating baseline.
    pub reuse_batch_buffers: bool,
    /// Number of device shards to simulate in parallel (each on its own
    /// thread with a private event queue). `1` (or `0`) runs the
    /// single-threaded engine; any value is bit-identical to any other
    /// (pinned by `tests/shard_determinism.rs`). Shard counts above the
    /// device count are clamped.
    pub shards: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            backend: QueueBackend::Heap,
            reuse_batch_buffers: true,
            shards: 1,
        }
    }
}

/// One server's maintenance window inside a fleet run: server `server`
/// crashes at `from_secs` (queue and running batch lost, epoch bumped)
/// and comes back — empty and idle — at `until_secs`. Several windows
/// staggered across servers model a rolling restart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierOutage {
    /// Index of the server that goes down.
    pub server: usize,
    /// Crash instant, in seconds of simulated time.
    pub from_secs: f64,
    /// Recovery instant, in seconds of simulated time.
    pub until_secs: f64,
}

impl TierOutage {
    /// Panic on a window that ends before it starts or starts negative.
    pub fn validate(&self, servers: usize) {
        assert!(
            self.server < servers,
            "outage names server {} but the tier has {servers}",
            self.server
        );
        assert!(
            self.from_secs >= 0.0 && self.until_secs > self.from_secs,
            "outage window [{}, {}) is empty or negative",
            self.from_secs,
            self.until_secs
        );
    }
}

/// Per-device configuration inside a fleet.
#[derive(Debug, Clone, Copy)]
pub struct FleetDeviceConfig {
    /// Hardware profile of this device.
    pub device: DeviceKind,
    /// Classification model it runs (locally and via offloading).
    pub model: ModelKind,
}

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Master seed for all of the fleet's RNG streams.
    pub seed: u64,
    /// One entry per device (the paper uses the three Pis of Table II).
    pub devices: Vec<FleetDeviceConfig>,
    /// Shared stream parameters (every device captures the same cadence).
    pub stream: StreamConfig,
    /// End-to-end offload deadline.
    pub deadline: SimDuration,
    /// Static uplink parameters (shared by all devices).
    pub link: LinkConfig,
    /// Network schedule applied to every device's uplink (unless
    /// overridden per device below).
    pub network: StepSchedule<NetworkConditions>,
    /// Optional per-device schedules (e.g. independent mobility traces);
    /// when set, must have one entry per device and replaces `network`.
    pub per_device_network: Option<Vec<StepSchedule<NetworkConditions>>>,
    /// Controller measurement period (1 s in the paper).
    pub controller_period: SimDuration,
    /// Trailing window for the timeout-rate controller input.
    pub timeout_window: SimDuration,
    /// Shared server GPU profile (the `N = 1` legacy knob; ignored when
    /// `tier` is set).
    pub gpu: GpuProfile,
    /// Server overflow policy (the fairness ablation knob; ignored when
    /// `tier` is set).
    pub policy: OverflowPolicy,
    /// Explicit server-tier topology: N servers plus routing and
    /// admission policies. `None` means the legacy single server built
    /// from `gpu` + `policy` — bit-identical to the pre-tier path.
    pub tier: Option<TierConfig>,
    /// Per-server maintenance windows (rolling restarts). Empty by
    /// default; scheduling none keeps the event stream unchanged.
    pub outages: Vec<TierOutage>,
    /// Engine tuning (queue backend, buffer reuse, shard count).
    /// Results are independent of this choice.
    pub engine: EngineOptions,
    /// Observability pipeline. Disabled by default; enabling it leaves
    /// fleet results bit-identical (asserted by `telemetry_inert.rs`) —
    /// recorders never schedule events or touch an RNG stream.
    pub telemetry: Telemetry,
    /// Optional scene script modulating every device's per-frame
    /// information (each device gets its own `"fleet-scene"` indexed
    /// stream, so enabling this never perturbs the existing streams).
    /// `None` keeps the fleet bit-identical to the pre-scene path.
    pub scene: Option<SceneScript>,
    /// Optional semantic frame filter applied per device before
    /// routing. Inert without `scene` (frames carry no information
    /// score otherwise); `None` is bit-identical to no filtering.
    pub filter: Option<FilterConfig>,
    /// Model-selection policy shared by all devices. The default
    /// `AlwaysPaper` reproduces the paper's fixed split bit-for-bit.
    pub selection: ModelSelection,
    /// Model served by the tier for offloaded frames. `None` means each
    /// device's own `model` (the paper's symmetric setup).
    pub remote_model: Option<ModelKind>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 42,
            devices: vec![
                FleetDeviceConfig {
                    device: DeviceKind::Pi3BRev12,
                    model: ModelKind::MobileNetV3Small,
                },
                FleetDeviceConfig {
                    device: DeviceKind::Pi4BRev12,
                    model: ModelKind::MobileNetV3Small,
                },
                FleetDeviceConfig {
                    device: DeviceKind::Pi4BRev14,
                    model: ModelKind::MobileNetV3Small,
                },
            ],
            stream: StreamConfig::default(),
            deadline: SimDuration::from_millis(250),
            link: LinkConfig::default(),
            network: ff_workload::ideal_network(),
            per_device_network: None,
            controller_period: SimDuration::from_secs(1),
            timeout_window: SimDuration::from_secs(3),
            gpu: GpuProfile::default(),
            policy: OverflowPolicy::RejectNewest,
            tier: None,
            outages: Vec::new(),
            engine: EngineOptions::default(),
            telemetry: Telemetry::disabled(),
            scene: None,
            filter: None,
            selection: ModelSelection::AlwaysPaper,
            remote_model: None,
        }
    }
}

impl FleetConfig {
    /// The effective tier topology: the explicit `tier` if set, else the
    /// legacy single server built from `gpu` + `policy`.
    pub fn tier_config(&self) -> TierConfig {
        self.tier
            .clone()
            .unwrap_or_else(|| TierConfig::single(self.gpu, self.policy))
    }

    /// The instant the run ends: stream duration plus one deadline of
    /// drain time.
    pub(crate) fn end_at(&self) -> SimTime {
        SimTime::ZERO + self.stream.stream_duration() + self.deadline
    }
}

/// Per-device outcome of a fleet run.
#[derive(Debug, Serialize)]
pub struct FleetDeviceResult {
    /// Controller name driving this device.
    pub controller: String,
    /// Device profile name (Table II column).
    pub device: String,
    /// Classification model name.
    pub model: String,
    /// Per-second QoS records for this device.
    pub qos: QosLog,
    /// Frames routed to the uplink.
    pub frames_offloaded: u64,
    /// Frames routed to the local engine.
    pub frames_local: u64,
    /// Offloads that beat the deadline.
    pub offload_successes: u64,
    /// Offloads that missed the deadline.
    pub offload_timeouts: u64,
    /// Mean total throughput `P` for this device.
    pub mean_throughput: f64,
    /// Mean accuracy-weighted throughput (correct classifications per
    /// second) over intervals that completed frames.
    pub mean_accuracy_weighted_throughput: f64,
    /// Semantic-filter accounting for this device (`None` when the
    /// fleet runs without a filter).
    pub filter_stats: Option<FilterStats>,
}

/// Outcome of a fleet run.
#[derive(Debug, Serialize)]
pub struct FleetResult {
    /// Per-device outcomes, in configuration order.
    pub devices: Vec<FleetDeviceResult>,
    /// Tier-wide server counters (sum over all servers).
    pub server_stats: ServerStats,
    /// Per-server counters, in tier order (one entry for the legacy
    /// single-server topology).
    pub per_server_stats: Vec<ServerStats>,
    /// Requests turned away by the admission policy (0 under
    /// `AdmitAll`).
    pub admission_rejections: u64,
    /// Jain fairness index over per-device successful-offload counts.
    pub offload_fairness: f64,
    /// Total throughput summed over devices, per paper Fig. 3 ("evaluated
    /// their total inference throughput").
    pub total_mean_throughput: f64,
    /// Server-side rejections per device index (fairness diagnostics).
    pub rejections_by_device: Vec<u64>,
    /// Total simulation events dispatched during the run (the
    /// denominator of `engine_bench`'s events/sec figure). Independent
    /// of the shard count.
    pub events_handled: u64,
}

#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct IntervalCounters {
    pub(crate) sent: u64,
    pub(crate) local_done: u64,
    pub(crate) offload_success: u64,
    pub(crate) timeouts: u64,
    pub(crate) timeouts_network: u64,
    pub(crate) timeouts_load: u64,
}

/// Per-device state that is only touched once per controller period (or
/// at teardown): boxed controllers, QoS logs, reporting metadata. Kept
/// as an array-of-structs beside the hot SoA columns so per-frame
/// handlers never pull these cache lines in.
pub(crate) struct DeviceCold {
    pub(crate) controller: Box<dyn Controller>,
    pub(crate) qos: QosLog,
    pub(crate) model: ModelKind,
    pub(crate) device_kind: DeviceKind,
    pub(crate) local_accuracy: f64,
    pub(crate) remote_accuracy: f64,
}

/// Structure-of-arrays per-device hot state. Every column is indexed by
/// the **local** device index (`global - base`); the single-threaded
/// engine has `base == 0`, a shard owns the contiguous global range
/// `[base, base + len)`. Each per-frame handler touches only the
/// columns it needs — a capture never drags the controller or QoS log
/// into cache, a completion only the engine column.
pub(crate) struct FleetDevices {
    /// Global index of local device 0.
    pub(crate) base: usize,
    pub(crate) cold: Vec<DeviceCold>,
    pub(crate) source: Vec<FrameSource<ChaCha8Rng>>,
    pub(crate) engine: Vec<LocalEngine<ChaCha8Rng>>,
    pub(crate) link: Vec<Link<ChaCha8Rng>>,
    pub(crate) filter: Vec<Option<SemanticFilter>>,
    /// Model the tier runs for this device's offloads (== its `model`
    /// unless `FleetConfig::remote_model` overrides it).
    pub(crate) offload_model: Vec<ModelKind>,
    pub(crate) splitter: Vec<FrameSplitter>,
    pub(crate) tracker: Vec<FlightTable>,
    pub(crate) probes: Vec<ProbeTable>,
    pub(crate) probe_seq: Vec<u64>,
    pub(crate) heartbeat: Vec<bool>,
    pub(crate) po_target: Vec<f64>,
    /// `po_target / fs`, cached whenever `po_target` is written: the
    /// splitter credit increment. Same operands as the division the
    /// splitter would do per frame, so routing stays bit-identical
    /// while captures skip the `fdiv`.
    pub(crate) route_incr: Vec<f64>,
    pub(crate) interval: Vec<IntervalCounters>,
    pub(crate) timeout_rate: Vec<WindowedRate>,
    pub(crate) frames_offloaded: Vec<u64>,
    pub(crate) frames_local: Vec<u64>,
}

impl FleetDevices {
    /// Build the state for global devices `[base, base + controllers.len())`.
    ///
    /// Every RNG stream is derived from the **global** device index, so
    /// the same device gets bit-identical randomness regardless of how
    /// the fleet is partitioned into shards.
    pub(crate) fn build(
        config: &FleetConfig,
        controllers: Vec<Box<dyn Controller>>,
        base: usize,
    ) -> FleetDevices {
        let rng = RngFactory::new(config.seed);
        let fs = config.stream.fps;
        let n = controllers.len();
        let mut devs = FleetDevices {
            base,
            cold: Vec::with_capacity(n),
            source: Vec::with_capacity(n),
            engine: Vec::with_capacity(n),
            link: Vec::with_capacity(n),
            filter: Vec::with_capacity(n),
            offload_model: Vec::with_capacity(n),
            splitter: Vec::with_capacity(n),
            tracker: Vec::with_capacity(n),
            probes: Vec::with_capacity(n),
            probe_seq: vec![0; n],
            heartbeat: vec![false; n],
            po_target: Vec::with_capacity(n),
            route_incr: Vec::with_capacity(n),
            interval: vec![IntervalCounters::default(); n],
            timeout_rate: Vec::with_capacity(n),
            frames_offloaded: vec![0; n],
            frames_local: vec![0; n],
        };
        for (local, mut controller) in controllers.into_iter().enumerate() {
            let g = base + local;
            let dc = &config.devices[g];
            let initial_conditions = match &config.per_device_network {
                Some(schedules) => *schedules[g].value_at(0.0),
                None => *config.network.value_at(0.0),
            };
            let po_target = controller
                .update(&Measurement {
                    fs,
                    po_achieved: 0.0,
                    pl_achieved: 0.0,
                    timeout_rate: 0.0,
                    heartbeat_ok: false,
                    dt_secs: config.controller_period.as_secs_f64(),
                })
                .po_target;
            let offload_model = config.remote_model.unwrap_or(dc.model);
            let source = match &config.scene {
                // The scene draws from its own indexed stream, so the
                // frame/local/link streams are untouched by enabling it.
                Some(script) => FrameSource::with_scene(
                    config.stream,
                    rng.indexed_stream("fleet-frames", g as u64),
                    script.clone(),
                    rng.indexed_stream("fleet-scene", g as u64),
                ),
                None => {
                    FrameSource::new(config.stream, rng.indexed_stream("fleet-frames", g as u64))
                }
            };
            devs.cold.push(DeviceCold {
                controller,
                qos: QosLog::new(),
                model: dc.model,
                device_kind: dc.device,
                local_accuracy: dc.model.profile().top1_accuracy,
                remote_accuracy: offload_model.profile().top1_accuracy,
            });
            devs.source.push(source);
            devs.engine.push(LocalEngine::new(
                dc.device,
                dc.model,
                rng.indexed_stream("fleet-local", g as u64),
            ));
            devs.link.push(Link::new(
                config.link,
                initial_conditions,
                rng.indexed_stream("fleet-link", g as u64),
            ));
            devs.filter.push(config.filter.map(SemanticFilter::new));
            devs.offload_model.push(offload_model);
            devs.splitter.push(FrameSplitter::new());
            devs.tracker.push(FlightTable::new(config.deadline));
            devs.probes.push(ProbeTable::default());
            devs.po_target.push(po_target);
            devs.route_incr.push(route_increment(po_target, fs));
            devs.timeout_rate
                .push(WindowedRate::new(config.timeout_window));
        }
        devs
    }

    /// Consume the state into per-device results (local order, which is
    /// global order for `base == 0`).
    pub(crate) fn into_results(self) -> Vec<FleetDeviceResult> {
        self.cold
            .into_iter()
            .zip(self.filter)
            .zip(self.tracker)
            .zip(self.frames_offloaded)
            .zip(self.frames_local)
            .map(
                |((((cold, filter), tracker), frames_offloaded), frames_local)| FleetDeviceResult {
                    controller: cold.controller.name().to_string(),
                    device: cold.device_kind.name().to_string(),
                    model: cold.model.name().to_string(),
                    mean_throughput: cold.qos.mean_throughput(),
                    mean_accuracy_weighted_throughput: cold.qos.mean_accuracy_weighted(),
                    filter_stats: filter.as_ref().map(|f| f.stats()),
                    frames_offloaded,
                    frames_local,
                    offload_successes: tracker.successes(),
                    offload_timeouts: tracker.timeouts(),
                    qos: cold.qos,
                },
            )
            .collect()
    }
}

/// The splitter credit increment for a new `po_target`: the same
/// division (same operands, same result bits) the splitter's checked
/// `route` would perform per frame, with its validation hoisted to the
/// once-per-controller-period write.
fn route_increment(po_target: f64, fs: f64) -> f64 {
    assert!(fs > 0.0, "F_s must be positive");
    assert!(
        (0.0..=fs + 1e-9).contains(&po_target),
        "P_o target {po_target} outside [0, F_s={fs}]"
    );
    po_target / fs
}

pub(crate) enum FleetEvent {
    Capture(usize),
    LocalDone(usize),
    Uplinked {
        tag: u64,
    },
    /// Server `server`'s running batch completes. `epoch` pins the
    /// event to the server process that scheduled it: a crash bumps the
    /// tier-side epoch, so completions of a dead process are discarded.
    BatchDone {
        server: usize,
        epoch: u64,
    },
    Response {
        tag: u64,
    },
    Deadline {
        tag: u64,
    },
    Tick(usize),
    /// Server `server` goes down for maintenance (a `TierOutage` start).
    ServerCrash(usize),
    /// Server `server` comes back, empty and idle.
    ServerRecover(usize),
    /// Apply schedule step `step` (shared schedule: to all devices;
    /// per-device schedules: to device `dev`).
    NetworkChange {
        dev: Option<usize>,
        step: usize,
    },
}

/// Where a delivered uplink goes. The single-threaded engine schedules
/// an [`FleetEvent::Uplinked`] on its own calendar; a shard appends a
/// timestamped submission to its outbox for the tier shard to merge.
/// This is the only seam between the two execution modes — everything
/// else in the device handlers is shared code.
pub(crate) trait UplinkSink {
    fn delivered(&mut self, ctx: &mut Ctx<'_, FleetEvent>, sent_at: SimTime, at: SimTime, tag: u64);
}

/// The single-threaded engine's sink: an in-calendar `Uplinked` event.
pub(crate) struct ScheduleUplink;

impl UplinkSink for ScheduleUplink {
    #[inline]
    fn delivered(
        &mut self,
        ctx: &mut Ctx<'_, FleetEvent>,
        _sent_at: SimTime,
        at: SimTime,
        tag: u64,
    ) {
        ctx.schedule_at(at, FleetEvent::Uplinked { tag });
    }
}

/// One controller period's observations, handed back to the host world
/// for telemetry (the core itself never records).
pub(crate) struct TickReport {
    pub(crate) po: f64,
    pub(crate) pl: f64,
    pub(crate) t_windowed: f64,
    pub(crate) interval: IntervalCounters,
}

/// The device-side simulation core shared by [`FleetWorld`] (single
/// thread, `base == 0`, all devices) and [`crate::shard`]'s per-shard
/// worlds (a contiguous device range each). Handlers take **global**
/// device indices / tags and translate through `devs.base`.
pub(crate) struct FleetCore {
    pub(crate) config: FleetConfig,
    pub(crate) devs: FleetDevices,
    pub(crate) end_at: SimTime,
}

impl FleetCore {
    pub(crate) fn capture<S: UplinkSink>(
        &mut self,
        ctx: &mut Ctx<'_, FleetEvent>,
        sink: &mut S,
        g: usize,
    ) {
        let now = ctx.now();
        let deadline = self.config.deadline;
        let selection = self.config.selection;
        let FleetDevices {
            base,
            cold,
            source,
            engine,
            link,
            filter,
            splitter,
            tracker,
            interval,
            timeout_rate,
            po_target,
            route_incr,
            frames_offloaded,
            frames_local,
            ..
        } = &mut self.devs;
        let i = g - *base;
        let src = &mut source[i];
        let Some(frame) = src.next_frame() else {
            return;
        };
        // Semantic filter: drop or shrink low-information frames
        // before they cost routing, uplink, or local compute.
        let mut frame_bytes = frame.bytes;
        if let (Some(filter), Some(info)) = (&mut filter[i], src.last_info()) {
            match filter.verdict(info, frame.bytes) {
                FilterVerdict::Pass => {}
                FilterVerdict::Shrink { bytes } => frame_bytes = bytes,
                FilterVerdict::Skip => {
                    if !src.exhausted() {
                        let next = src.next_capture_time();
                        ctx.schedule_at(next, FleetEvent::Capture(g));
                    }
                    return;
                }
            }
        }
        let mut route = splitter[i].advance(route_incr[i]);
        if route == Route::Offload && selection != ModelSelection::AlwaysPaper {
            // Accuracy-aware demotion: keep the frame local when
            // the deadline risk eats the remote model's accuracy
            // edge. Guarded so `AlwaysPaper` never touches the
            // timeout-rate window outside ticks (bit-inert).
            let d = &cold[i];
            let risk = deadline_risk(timeout_rate[i].rate_at(now), po_target[i]);
            if selection.prefers_local(d.local_accuracy, d.remote_accuracy, risk) {
                route = Route::Local;
            }
        }
        match route {
            Route::Offload => {
                let tag = make_tag(g, frame.id.0, false);
                tracker[i].sent(tag, now);
                interval[i].sent += 1;
                frames_offloaded[i] += 1;
                match link[i].send(now, frame_bytes) {
                    SendOutcome::Delivered { at } => sink.delivered(ctx, now, at, tag),
                    SendOutcome::Dropped(_) => tracker[i].network_dropped(tag),
                }
                ctx.schedule_at(now + deadline, FleetEvent::Deadline { tag });
            }
            Route::Local => {
                if let LocalOutcome::Started { done_at } = engine[i].offer(now) {
                    ctx.schedule_at(done_at, FleetEvent::LocalDone(g));
                }
                frames_local[i] += 1;
            }
        }
        if !src.exhausted() {
            let next = src.next_capture_time();
            ctx.schedule_at(next, FleetEvent::Capture(g));
        }
    }

    pub(crate) fn local_done(&mut self, ctx: &mut Ctx<'_, FleetEvent>, g: usize) {
        let i = g - self.devs.base;
        self.devs.interval[i].local_done += 1;
        if let Some(next_done) = self.devs.engine[i].complete(ctx.now()) {
            ctx.schedule_at(next_done, FleetEvent::LocalDone(g));
        }
    }

    pub(crate) fn tick<S: UplinkSink>(
        &mut self,
        ctx: &mut Ctx<'_, FleetEvent>,
        sink: &mut S,
        g: usize,
    ) -> TickReport {
        let now = ctx.now();
        let dt = self.config.controller_period.as_secs_f64();
        let fs = self.config.stream.fps;
        let bytes = self.config.stream.compression.mean_frame_bytes();
        let deadline = self.config.deadline;
        let FleetDevices {
            base,
            cold,
            link,
            probes,
            probe_seq,
            heartbeat,
            po_target,
            route_incr,
            interval,
            timeout_rate,
            ..
        } = &mut self.devs;
        let i = g - *base;

        let d = &mut cold[i];
        let po = interval[i].sent as f64 / dt;
        let pl = interval[i].local_done as f64 / dt;
        let t_windowed = timeout_rate[i].rate_at(now);

        let decision = d.controller.update(&Measurement {
            fs,
            po_achieved: po,
            pl_achieved: pl,
            timeout_rate: t_windowed,
            heartbeat_ok: heartbeat[i],
            dt_secs: dt,
        });
        po_target[i] = decision.po_target;
        route_incr[i] = route_increment(decision.po_target, fs);
        let accuracy_weighted = (d.local_accuracy * interval[i].local_done as f64
            + d.remote_accuracy * interval[i].offload_success as f64)
            / dt;
        d.qos.push_at(
            now,
            pl,
            po,
            interval[i].timeouts_network as f64 / dt,
            interval[i].timeouts_load as f64 / dt,
            po_target[i],
            accuracy_weighted,
        );
        let report = interval[i];
        interval[i] = IntervalCounters::default();

        // Heartbeat probe through this device's own link.
        heartbeat[i] = false;
        let ptag = make_tag(g, probe_seq[i], true);
        probe_seq[i] += 1;
        probes[i].insert(ptag, now);
        match link[i].send(now, bytes) {
            SendOutcome::Delivered { at } => sink.delivered(ctx, now, at, ptag),
            SendOutcome::Dropped(_) => {}
        }
        ctx.schedule_at(now + deadline, FleetEvent::Deadline { tag: ptag });

        let next = now + self.config.controller_period;
        if next <= self.end_at {
            ctx.schedule_at(next, FleetEvent::Tick(g));
        }

        TickReport {
            po,
            pl,
            t_windowed,
            interval: report,
        }
    }

    pub(crate) fn deadline(&mut self, now: SimTime, tag: u64) {
        let i = tag_device(tag) - self.devs.base;
        if tag_is_probe(tag) {
            self.devs.probes[i].remove(tag);
            return;
        }
        if let Some(OffloadResolution::Timeout { cause }) =
            self.devs.tracker[i].deadline_expired(tag, now)
        {
            note_timeout(
                &mut self.devs.timeout_rate[i],
                &mut self.devs.interval[i],
                now,
                cause,
            );
        }
    }

    /// The request reached the tier at `at` (and, when
    /// `admission_rejected`, was turned away at the door). Never called
    /// for probes — a probe's only feedback is its response.
    pub(crate) fn apply_arrival(&mut self, tag: u64, at: SimTime, admission_rejected: bool) {
        let i = tag_device(tag) - self.devs.base;
        let tracker = &mut self.devs.tracker[i];
        tracker.arrived_at_server(tag, at);
        if admission_rejected {
            tracker.rejected_by_server(tag);
        }
    }

    /// The server's batch-formation overflow rejected the request.
    pub(crate) fn apply_batch_rejection(&mut self, tag: u64) {
        let i = tag_device(tag) - self.devs.base;
        self.devs.tracker[i].rejected_by_server(tag);
    }

    /// A response (probe or frame) reached the device at `now`.
    pub(crate) fn apply_response(&mut self, tag: u64, now: SimTime) {
        let i = tag_device(tag) - self.devs.base;
        let deadline = self.config.deadline;
        if tag_is_probe(tag) {
            if let Some(sent_at) = self.devs.probes[i].remove(tag) {
                if now.saturating_since(sent_at) <= deadline {
                    self.devs.heartbeat[i] = true;
                }
            }
            return;
        }
        match self.devs.tracker[i].response_arrived(tag, now) {
            Some(OffloadResolution::Success { .. }) => self.devs.interval[i].offload_success += 1,
            Some(OffloadResolution::Timeout { cause }) => note_timeout(
                &mut self.devs.timeout_rate[i],
                &mut self.devs.interval[i],
                now,
                cause,
            ),
            None => {}
        }
    }

    pub(crate) fn network_change(&mut self, dev: Option<usize>, step: usize) {
        match dev {
            None => {
                let conditions = self.config.network.steps()[step].1;
                for link in &mut self.devs.link {
                    link.set_conditions(conditions);
                }
            }
            Some(dev) => {
                let schedules = self
                    .config
                    .per_device_network
                    .as_ref()
                    .expect("per-device event requires per-device schedules");
                let conditions = schedules[dev].steps()[step].1;
                self.devs.link[dev - self.devs.base].set_conditions(conditions);
            }
        }
    }
}

fn note_timeout(
    timeout_rate: &mut WindowedRate,
    interval: &mut IntervalCounters,
    now: SimTime,
    cause: TimeoutCause,
) {
    timeout_rate.record(now);
    interval.timeouts += 1;
    match cause {
        TimeoutCause::Network => interval.timeouts_network += 1,
        TimeoutCause::ServerLoad => interval.timeouts_load += 1,
    }
}

/// Emit one device's controller-period metrics. Shared by the
/// single-threaded engine and the shard worlds so "device/{i}" scopes
/// carry the same gauges either way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn observe_device_tick(
    rec: &mut Recorder,
    scope: Scope,
    t: u64,
    fs: f64,
    rep: &TickReport,
    po_target: f64,
    in_flight: usize,
    probes: usize,
    heartbeat_ok: bool,
) {
    rec.gauge(scope, Metric::Po, rep.po, t);
    rec.gauge(scope, Metric::Pl, rep.pl, t);
    rec.gauge(scope, Metric::TimeoutRate, rep.t_windowed, t);
    rec.gauge(scope, Metric::PoTarget, po_target, t);
    rec.gauge(scope, Metric::ControllerError, fs - (rep.po + rep.pl), t);
    rec.gauge(scope, Metric::InFlight, in_flight as f64, t);
    rec.gauge(scope, Metric::ProbesInFlight, probes as f64, t);
    rec.counter(scope, Metric::FramesOffloaded, rep.interval.sent, t);
    rec.counter(scope, Metric::FramesLocal, rep.interval.local_done, t);
    rec.counter(
        scope,
        Metric::TimeoutsNetwork,
        rep.interval.timeouts_network,
        t,
    );
    rec.counter(scope, Metric::TimeoutsLoad, rep.interval.timeouts_load, t);
    rec.counter(scope, Metric::HeartbeatOk, heartbeat_ok as u64, t);
}

/// Tier-side observability: the aggregate "server" scope plus
/// per-server scopes (N > 1 only), with previous-tick counter values
/// for delta emission. Used by the single-threaded engine from device
/// 0's tick and by the sharded driver's coordinator at each controller
/// period.
pub(crate) struct TierObs {
    /// Tier-aggregate scope; stays named "server" so single-server
    /// dashboards and pinned scope ids keep working at any N.
    server: Scope,
    /// Per-server scopes ("server/{i}"), interned only for N > 1 tiers.
    servers: Vec<Scope>,
    last_server: ServerStats,
    last_servers: Vec<ServerStats>,
    last_admission: u64,
}

impl TierObs {
    pub(crate) fn new(telemetry: &Telemetry, n_servers: usize) -> TierObs {
        let servers: Vec<Scope> = if n_servers > 1 {
            (0..n_servers)
                .map(|i| telemetry.scope(&format!("server/{i}")))
                .collect()
        } else {
            Vec::new()
        };
        TierObs {
            server: telemetry.scope("server"),
            last_servers: vec![ServerStats::default(); servers.len()],
            servers,
            last_server: ServerStats::default(),
            last_admission: 0,
        }
    }

    pub(crate) fn report(&mut self, rec: &mut Recorder, tier: &ServerTier, t: u64) {
        let server = self.server;
        let stats = tier.total_stats();
        let last = self.last_server;
        let queue_depth: usize = (0..tier.len()).map(|i| tier.server(i).queue_len()).sum();
        rec.gauge(server, Metric::ServerQueueDepth, queue_depth as f64, t);
        let occupancy: usize = (0..tier.len())
            .map(|i| tier.server(i).running_batch_size().unwrap_or(0))
            .sum();
        rec.gauge(server, Metric::BatchOccupancy, occupancy as f64, t);
        let d = stats.requests_received - last.requests_received;
        rec.counter(server, Metric::ServerRequests, d, t);
        let d = stats.completions - last.completions;
        rec.counter(server, Metric::ServerCompletions, d, t);
        let d = stats.rejections - last.rejections;
        rec.counter(server, Metric::ServerRejections, d, t);
        let d = stats.batches_executed - last.batches_executed;
        rec.counter(server, Metric::ServerBatches, d, t);
        let admission = tier.admission_rejections();
        let d = admission - self.last_admission;
        rec.counter(server, Metric::AdmissionRejections, d, t);
        self.last_admission = admission;
        self.last_server = stats;

        // Per-server scopes, only interned for multi-server tiers.
        for (i, &scope) in self.servers.iter().enumerate() {
            let s = tier.server(i);
            let stats = s.stats();
            let last = self.last_servers[i];
            rec.gauge(scope, Metric::ServerUp, tier.is_up(i) as u64 as f64, t);
            rec.gauge(scope, Metric::ServerQueueDepth, s.queue_len() as f64, t);
            let occupancy = s.running_batch_size().unwrap_or(0);
            rec.gauge(scope, Metric::BatchOccupancy, occupancy as f64, t);
            let d = stats.requests_received - last.requests_received;
            rec.counter(scope, Metric::ServerRequests, d, t);
            let d = stats.completions - last.completions;
            rec.counter(scope, Metric::ServerCompletions, d, t);
            let d = stats.rejections - last.rejections;
            rec.counter(scope, Metric::ServerRejections, d, t);
            let d = stats.batches_executed - last.batches_executed;
            rec.counter(scope, Metric::ServerBatches, d, t);
            self.last_servers[i] = stats;
        }
    }
}

/// Fleet-side observability state: one recorder for the (single)
/// simulation thread, plus the interned scopes it reports under.
///
/// Strictly write-only with respect to the simulation: nothing here
/// schedules events, advances RNG streams, or feeds back into routing
/// decisions, which is what keeps telemetry-on runs bit-identical to
/// telemetry-off runs.
struct FleetObs {
    telemetry: Telemetry,
    recorder: Recorder,
    engine: Scope,
    devices: Vec<Scope>,
    tier_obs: TierObs,
}

impl FleetObs {
    fn new(telemetry: &Telemetry, n_devices: usize, n_servers: usize) -> FleetObs {
        FleetObs {
            recorder: telemetry.recorder(),
            engine: telemetry.scope("engine"),
            devices: (0..n_devices)
                .map(|i| telemetry.scope(&format!("device/{i}")))
                .collect(),
            tier_obs: TierObs::new(telemetry, n_servers),
            telemetry: telemetry.clone(),
        }
    }
}

struct FleetWorld {
    core: FleetCore,
    tier: ServerTier,
    /// The tier's routing stream ("routing"); consumed only by
    /// power-of-two-choices routing with two or more live servers, so
    /// legacy single-server runs never advance it.
    routing_rng: ChaCha8Rng,
    batch_out: BatchOutput,
    obs: FleetObs,
}

impl FleetWorld {
    fn submit_to_server(&mut self, ctx: &mut Ctx<'_, FleetEvent>, request: Request) -> TierSubmit {
        let regulated = !tag_is_probe(request.tag);
        let outcome = self
            .tier
            .submit(ctx.now(), request, regulated, &mut self.routing_rng);
        if let TierSubmit::BatchStarted { server, done_at } = outcome {
            ctx.schedule_at(
                done_at,
                FleetEvent::BatchDone {
                    server,
                    epoch: self.tier.epoch(server),
                },
            );
        }
        outcome
    }

    /// Report this device's controller-period observations (and, from
    /// device 0, the shared engine and server state), then poll the
    /// collector. Purely observational: emits into the recorder's ring
    /// and never schedules events, so it cannot perturb the run.
    fn observe_tick(&mut self, ctx: &Ctx<'_, FleetEvent>, dev: usize, rep: &TickReport) {
        if !self.obs.recorder.is_enabled() {
            return;
        }
        let t = ctx.now().as_micros();
        let rec = &mut self.obs.recorder;
        let devs = &self.core.devs;
        observe_device_tick(
            rec,
            self.obs.devices[dev],
            t,
            self.core.config.stream.fps,
            rep,
            devs.po_target[dev],
            devs.tracker[dev].in_flight(),
            devs.probes[dev].len(),
            devs.heartbeat[dev],
        );

        // Shared state is reported once per controller period, by the
        // first device to tick in it.
        if dev == 0 {
            let engine = self.obs.engine;
            rec.gauge(
                engine,
                Metric::EventsHandled,
                ctx.events_handled() as f64,
                t,
            );
            rec.gauge(
                engine,
                Metric::PendingEvents,
                ctx.pending_events() as f64,
                t,
            );
            let wheel = self.core.config.engine.backend == QueueBackend::Wheel;
            rec.gauge(engine, Metric::QueueBackendWheel, wheel as u64 as f64, t);

            self.obs.tier_obs.report(rec, &self.tier, t);
            self.obs.telemetry.poll();
        }
    }
}

impl SimModel for FleetWorld {
    type Event = FleetEvent;

    fn handle(&mut self, ctx: &mut Ctx<'_, FleetEvent>, event: FleetEvent) {
        match event {
            FleetEvent::Capture(dev) => self.core.capture(ctx, &mut ScheduleUplink, dev),

            FleetEvent::LocalDone(dev) => self.core.local_done(ctx, dev),

            FleetEvent::Uplinked { tag } => {
                let now = ctx.now();
                let dev = tag_device(tag);
                let model = self.core.devs.offload_model[dev];
                let probe = tag_is_probe(tag);
                let request = Request {
                    tenant: TenantId(dev as u32),
                    model,
                    submitted_at: now,
                    tag,
                };
                let outcome = self.submit_to_server(ctx, request);
                if probe {
                    // Probes to a lost/rejecting tier simply never come
                    // back: the heartbeat stays down.
                    return;
                }
                match outcome {
                    // The routed server is down: the frame vanishes in
                    // flight, so its deadline fires as a Network-cause
                    // timeout (same as the single-server outage path).
                    TierSubmit::Lost => {}
                    // Turned away at the door: the server saw it, so
                    // this is a ServerLoad-cause timeout at the
                    // deadline, same as a batch-formation rejection.
                    TierSubmit::AdmissionRejected => self.core.apply_arrival(tag, now, true),
                    TierSubmit::Queued { .. } | TierSubmit::BatchStarted { .. } => {
                        self.core.apply_arrival(tag, now, false)
                    }
                }
            }

            FleetEvent::BatchDone { server, epoch } => {
                // A stale epoch means the batch belonged to a server
                // process that has since crashed: its results are gone.
                if epoch != self.tier.epoch(server) {
                    return;
                }
                let now = ctx.now();
                let propagation = self.core.config.link.propagation;
                if !self.core.config.engine.reuse_batch_buffers {
                    // Allocating baseline for `engine_bench`: fresh result
                    // vectors for every batch, like the pre-reuse code.
                    self.batch_out = BatchOutput::default();
                }
                self.tier.batch_done_into(server, now, &mut self.batch_out);
                for c in &self.batch_out.completions {
                    ctx.schedule_at(
                        now + propagation,
                        FleetEvent::Response { tag: c.request.tag },
                    );
                }
                for r in &self.batch_out.rejections {
                    if !tag_is_probe(r.request.tag) {
                        self.core.apply_batch_rejection(r.request.tag);
                    }
                }
                if let Some(done_at) = self.batch_out.next_done {
                    ctx.schedule_at(done_at, FleetEvent::BatchDone { server, epoch });
                }
            }

            FleetEvent::Response { tag } => self.core.apply_response(tag, ctx.now()),

            FleetEvent::Deadline { tag } => self.core.deadline(ctx.now(), tag),

            FleetEvent::Tick(dev) => {
                let rep = self.core.tick(ctx, &mut ScheduleUplink, dev);
                self.observe_tick(ctx, dev, &rep);
            }

            FleetEvent::ServerCrash(server) => self.tier.crash(server),

            FleetEvent::ServerRecover(server) => self.tier.recover(server),

            FleetEvent::NetworkChange { dev, step } => self.core.network_change(dev, step),
        }
    }
}

pub(crate) fn validate_fleet(config: &FleetConfig, controllers: &[Box<dyn Controller>]) {
    assert_eq!(
        config.devices.len(),
        controllers.len(),
        "one controller per device"
    );
    assert!(
        !config.devices.is_empty(),
        "fleet needs at least one device"
    );
    if let Some(schedules) = &config.per_device_network {
        assert_eq!(
            schedules.len(),
            config.devices.len(),
            "one network schedule per device"
        );
    }
}

/// The flattened network-change schedule: `(t_secs, device, step)` per
/// applied step, in the order the single-threaded engine schedules them.
pub(crate) fn network_change_events(config: &FleetConfig) -> Vec<(f64, Option<usize>, usize)> {
    match &config.per_device_network {
        Some(schedules) => schedules
            .iter()
            .enumerate()
            .flat_map(|(dev, schedule)| {
                schedule
                    .steps()
                    .iter()
                    .enumerate()
                    .skip(1)
                    .map(move |(step, &(t, _))| (t, Some(dev), step))
            })
            .collect(),
        None => config
            .network
            .steps()
            .iter()
            .enumerate()
            .skip(1)
            .map(|(step, &(t, _))| (t, None, step))
            .collect(),
    }
}

/// Assemble the fleet-wide result from per-device results plus the
/// tier's final state. Shared by the single-threaded and sharded
/// drivers so the aggregation is one piece of code.
pub(crate) fn finish_fleet(
    devices: Vec<FleetDeviceResult>,
    tier: &ServerTier,
    events_handled: u64,
) -> FleetResult {
    let successes: Vec<f64> = devices.iter().map(|d| d.offload_successes as f64).collect();
    let rejections_by_device: Vec<u64> = (0..devices.len())
        .map(|i| tier.rejections_for(TenantId(i as u32)))
        .collect();
    FleetResult {
        offload_fairness: jain_fairness_index(&successes),
        total_mean_throughput: devices.iter().map(|d| d.mean_throughput).sum(),
        server_stats: tier.total_stats(),
        per_server_stats: tier.per_server_stats(),
        admission_rejections: tier.admission_rejections(),
        rejections_by_device,
        events_handled,
        devices,
    }
}

/// Run a fleet of devices, one controller per device (same order as
/// `config.devices`).
///
/// `config.engine.shards > 1` dispatches to the sharded driver
/// ([`run_fleet_sharded`](crate::shard::run_fleet_sharded)); results
/// are bit-identical at any shard count.
pub fn run_fleet(config: FleetConfig, controllers: Vec<Box<dyn Controller>>) -> FleetResult {
    validate_fleet(&config, &controllers);
    if config.engine.shards > 1 {
        let shards = config.engine.shards;
        return crate::shard::run_fleet_sharded(config, controllers, shards);
    }
    let n = controllers.len();
    let end_at = config.end_at();
    let change_events = network_change_events(&config);
    let tier_config = config.tier_config();
    let tier = ServerTier::new(&tier_config);
    for outage in &config.outages {
        outage.validate(tier.len());
    }
    let routing_rng = RngFactory::new(config.seed).stream("routing");

    let backend = config.engine.backend;
    let controller_period = config.controller_period;
    let obs = FleetObs::new(&config.telemetry, n, tier.len());
    let outages = config.outages.clone();
    let devs = FleetDevices::build(&config, controllers, 0);
    let world = FleetWorld {
        core: FleetCore {
            config,
            devs,
            end_at,
        },
        tier,
        routing_rng,
        batch_out: BatchOutput::default(),
        obs,
    };
    let mut sim = Simulation::with_queue(world, EventQueue::with_backend(backend));
    for dev in 0..n {
        sim.schedule_at(SimTime::ZERO, FleetEvent::Capture(dev));
        sim.schedule_at(SimTime::ZERO + controller_period, FleetEvent::Tick(dev));
    }
    for (t, dev, step) in change_events {
        sim.schedule_at(
            SimTime::from_secs_f64(t),
            FleetEvent::NetworkChange { dev, step },
        );
    }
    for outage in outages {
        sim.schedule_at(
            SimTime::from_secs_f64(outage.from_secs),
            FleetEvent::ServerCrash(outage.server),
        );
        sim.schedule_at(
            SimTime::from_secs_f64(outage.until_secs),
            FleetEvent::ServerRecover(outage.server),
        );
    }
    sim.run_until(end_at);
    let events_handled = sim.events_handled();
    let world = sim.into_model();
    // Drain whatever the final ticks recorded. The last (partial) window
    // stays open until the caller's `Telemetry::finish`, so one pipeline
    // can span several runs (e.g. a sweep).
    world.obs.telemetry.poll();

    let device_results = world.core.devs.into_results();
    finish_fleet(device_results, &world.tier, events_handled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_core::FrameFeedback;
    use ff_server::{AdmissionPolicy, RoutingPolicy, ServerSpec};
    use ff_sim::RngFactory;

    fn short_fleet() -> FleetConfig {
        let mut c = FleetConfig::default();
        c.stream.total_frames = 900; // 30 s
        c
    }

    fn ff_controllers(n: usize) -> Vec<Box<dyn Controller>> {
        (0..n)
            .map(|_| Box::new(FrameFeedback::new()) as Box<dyn Controller>)
            .collect()
    }

    #[test]
    fn tag_layout_round_trips() {
        let t = make_tag(7, 123_456, false);
        assert_eq!(tag_device(t), 7);
        assert!(!tag_is_probe(t));
        let p = make_tag(65_000, 1, true);
        assert_eq!(tag_device(p), 65_000);
        assert!(tag_is_probe(p));
    }

    #[test]
    fn three_pis_share_the_server_on_an_ideal_network() {
        let result = run_fleet(short_fleet(), ff_controllers(3));
        assert_eq!(result.devices.len(), 3);
        // 3 devices * 30 fps = 90 rps offered at full offload — well below
        // the ~145 rps saturation point, so everyone converges near F_s.
        for d in &result.devices {
            let late = d.qos.aggregate(15.0, 30.0).unwrap();
            assert!(
                late.mean_throughput > 25.0,
                "{}: throughput {:.1}",
                d.device,
                late.mean_throughput
            );
        }
        assert!(result.total_mean_throughput > 75.0);
        assert!(
            result.offload_fairness > 0.95,
            "uncontended fleet should be fair, index {:.3}",
            result.offload_fairness
        );
    }

    #[test]
    fn wheel_backend_and_buffer_reuse_reproduce_the_heap_run_exactly() {
        // The engine_bench comparison in miniature: the allocating heap
        // baseline vs the wheel + reused buffers must be bit-identical.
        let mut baseline = short_fleet();
        baseline.engine = EngineOptions {
            backend: QueueBackend::Heap,
            reuse_batch_buffers: false,
            shards: 1,
        };
        let mut optimized = short_fleet();
        optimized.engine = EngineOptions {
            backend: QueueBackend::Wheel,
            reuse_batch_buffers: true,
            shards: 1,
        };
        let a = run_fleet(baseline, ff_controllers(3));
        let b = run_fleet(optimized, ff_controllers(3));
        for (da, db) in a.devices.iter().zip(&b.devices) {
            assert_eq!(da.qos.records(), db.qos.records());
            assert_eq!(da.frames_offloaded, db.frames_offloaded);
            assert_eq!(da.offload_successes, db.offload_successes);
            assert_eq!(da.offload_timeouts, db.offload_timeouts);
        }
        assert_eq!(a.server_stats, b.server_stats);
        assert_eq!(a.rejections_by_device, b.rejections_by_device);
        assert_eq!(a.events_handled, b.events_handled);
    }

    #[test]
    fn sharded_engine_option_reproduces_the_serial_fleet() {
        // The full differential suite lives in tests/shard_determinism.rs;
        // this is the in-module smoke: three devices on three shards,
        // dispatched through the public `run_fleet` entry point.
        let mut sharded = short_fleet();
        sharded.engine.shards = 3;
        let a = run_fleet(short_fleet(), ff_controllers(3));
        let b = run_fleet(sharded, ff_controllers(3));
        for (da, db) in a.devices.iter().zip(&b.devices) {
            assert_eq!(da.qos.records(), db.qos.records());
            assert_eq!(da.frames_offloaded, db.frames_offloaded);
            assert_eq!(da.frames_local, db.frames_local);
            assert_eq!(da.offload_successes, db.offload_successes);
            assert_eq!(da.offload_timeouts, db.offload_timeouts);
        }
        assert_eq!(a.server_stats, b.server_stats);
        assert_eq!(a.rejections_by_device, b.rejections_by_device);
        assert_eq!(a.events_handled, b.events_handled);
    }

    #[test]
    fn fleet_is_deterministic() {
        let a = run_fleet(short_fleet(), ff_controllers(3));
        let b = run_fleet(short_fleet(), ff_controllers(3));
        for (da, db) in a.devices.iter().zip(&b.devices) {
            assert_eq!(da.qos.records(), db.qos.records());
        }
        assert_eq!(a.server_stats, b.server_stats);
    }

    #[test]
    fn devices_see_independent_randomness() {
        // Two identical device kinds on a lossy link: independent RNG
        // streams make their timeout traces diverge.
        let mut config = short_fleet();
        config.devices = vec![
            FleetDeviceConfig {
                device: DeviceKind::Pi4BRev12,
                model: ModelKind::MobileNetV3Small,
            };
            2
        ];
        config.network = StepSchedule::constant(NetworkConditions::new(4.0, 7.0));
        let result = run_fleet(config, ff_controllers(2));
        assert_ne!(
            result.devices[0].offload_timeouts, result.devices[1].offload_timeouts,
            "identical timeout traces imply shared RNG streams"
        );
    }

    #[test]
    fn saturating_fleet_triggers_rejections_and_fair_share_helps() {
        // Nine devices at 30 fps → 270 rps offered at full offload, far
        // beyond the ~145 rps server: heavy contention.
        let mut config = short_fleet();
        config.devices = (0..9)
            .map(|_| FleetDeviceConfig {
                device: DeviceKind::Pi4BRev12,
                model: ModelKind::MobileNetV3Small,
            })
            .collect();

        config.policy = OverflowPolicy::RejectNewest;
        let newest = run_fleet(config.clone(), ff_controllers(9));
        config.policy = OverflowPolicy::FairShare;
        let fair = run_fleet(config, ff_controllers(9));

        assert!(newest.server_stats.rejections > 0);
        assert!(fair.server_stats.rejections > 0);
        // Both policies keep a symmetric fleet roughly fair.
        assert!(
            newest.offload_fairness > 0.85,
            "{:.3}",
            newest.offload_fairness
        );
        assert!(fair.offload_fairness > 0.85, "{:.3}", fair.offload_fairness);
    }

    #[test]
    fn fair_share_shields_adaptive_tenants_from_a_greedy_one() {
        // Seven adaptive devices plus one that always offloads everything
        // (ignoring feedback). Under FairShare, the greedy tenant — which
        // keeps the most requests queued once the others back off — must
        // absorb a disproportionate share of the rejections.
        let mut config = short_fleet();
        config.devices = (0..8)
            .map(|_| FleetDeviceConfig {
                device: DeviceKind::Pi4BRev12,
                model: ModelKind::MobileNetV3Small,
            })
            .collect();
        config.policy = OverflowPolicy::FairShare;
        let mut controllers = ff_controllers(7);
        controllers.push(Box::new(ff_baselines::AlwaysOffload::new()));
        let result = run_fleet(config, controllers);

        let greedy_rejections = result.rejections_by_device[7];
        let adaptive_mean: f64 = result.rejections_by_device[..7]
            .iter()
            .map(|&r| r as f64)
            .sum::<f64>()
            / 7.0;
        assert!(
            greedy_rejections as f64 > adaptive_mean,
            "greedy tenant got {greedy_rejections} rejections vs adaptive mean {adaptive_mean:.0}"
        );
    }

    #[test]
    fn fair_share_preserves_jain_fairness_under_a_bursty_tenant() {
        // Fairness regression at ~2x saturation: six devices at 30 fps
        // offer 180 rps against a batch-limit-6 server that completes
        // ~83 rps, and one tenant is bursty (always offloads everything,
        // ignoring feedback). The overflow policy decides who wins:
        // FairShare charges the burst back to its own tenant and keeps the
        // fleet's successful-offload split near-even (Jain >= 0.9), while
        // RejectNewest lets the bursty tenant's standing queue crowd out
        // the adaptive tenants' sparser submissions and fairness collapses
        // below that bar.
        let mut config = short_fleet();
        config.gpu = GpuProfile { batch_limit: 6 };
        config.devices = (0..6)
            .map(|_| FleetDeviceConfig {
                device: DeviceKind::Pi4BRev12,
                model: ModelKind::MobileNetV3Small,
            })
            .collect();
        let bursty_fleet = || {
            let mut controllers = ff_controllers(5);
            controllers.push(Box::new(ff_baselines::AlwaysOffload::new()) as Box<dyn Controller>);
            controllers
        };

        config.policy = OverflowPolicy::FairShare;
        let fair = run_fleet(config.clone(), bursty_fleet());
        config.policy = OverflowPolicy::RejectNewest;
        let newest = run_fleet(config, bursty_fleet());

        assert!(
            fair.offload_fairness >= 0.9,
            "FairShare must hold Jain >= 0.9 against a bursty tenant, got {:.3}",
            fair.offload_fairness
        );
        assert!(
            newest.offload_fairness < 0.9,
            "RejectNewest unexpectedly stayed fair ({:.3}) — the bursty \
             tenant should crowd out adaptive tenants",
            newest.offload_fairness
        );
        assert!(
            fair.offload_fairness > newest.offload_fairness,
            "FairShare ({:.3}) must beat RejectNewest ({:.3})",
            fair.offload_fairness,
            newest.offload_fairness
        );
    }

    #[test]
    fn degraded_network_hits_every_device() {
        let mut config = short_fleet();
        config.network = StepSchedule::constant(NetworkConditions::new(1.0, 7.0));
        let result = run_fleet(config, ff_controllers(3));
        for d in &result.devices {
            assert!(
                d.offload_timeouts > 0,
                "{} saw no timeouts on a dead link",
                d.device
            );
            // Controllers back off to the probe floor.
            let late = d.qos.aggregate(20.0, 30.0).unwrap();
            assert!(
                late.mean_po_target < 8.0,
                "{}: {}",
                d.device,
                late.mean_po_target
            );
        }
    }

    #[test]
    #[should_panic(expected = "one controller per device")]
    fn controller_count_mismatch_panics() {
        run_fleet(short_fleet(), ff_controllers(2));
    }

    #[test]
    fn per_device_mobility_schedules_apply_independently() {
        use ff_workload::{mobility_trace, MobilityConfig};
        let mut config = short_fleet();
        // Device 0 wanders; device 1 is pinned at a dead 1 Mbps; device 2
        // enjoys a clean 10 Mbps.
        let mut mobility = MobilityConfig::default();
        mobility.duration_secs = 30.0;
        let trace = mobility_trace(&mobility, &mut RngFactory::new(3).stream("fleet-mobility"));
        config.per_device_network = Some(vec![
            trace,
            StepSchedule::constant(NetworkConditions::new(1.0, 20.0)),
            StepSchedule::constant(NetworkConditions::new(10.0, 0.0)),
        ]);
        let result = run_fleet(config, ff_controllers(3));
        let late = |i: usize| result.devices[i].qos.aggregate(15.0, 30.0).unwrap();
        // The dead-link device falls to its probe floor; the clean device
        // offloads nearly everything.
        assert!(
            late(1).mean_po_target < 8.0,
            "dead link: {}",
            late(1).mean_po_target
        );
        assert!(
            late(2).mean_po_target > 25.0,
            "clean link: {}",
            late(2).mean_po_target
        );
        // The mobile device lands somewhere in between.
        let mobile = late(0).mean_po_target;
        assert!(mobile > 2.0 && mobile < 31.0, "mobile target {mobile}");
    }

    #[test]
    #[should_panic(expected = "one network schedule per device")]
    fn per_device_schedule_count_mismatch_panics() {
        let mut config = short_fleet();
        config.per_device_network = Some(vec![ff_workload::ideal_network()]);
        run_fleet(config, ff_controllers(3));
    }

    /// The bursty six-device scenario of
    /// `fair_share_preserves_jain_fairness_under_a_bursty_tenant`, tier
    /// edition: same offered load, same batch-limit-6 server.
    fn bursty_tier_config(admission: AdmissionPolicy) -> FleetConfig {
        let mut config = short_fleet();
        config.devices = (0..6)
            .map(|_| FleetDeviceConfig {
                device: DeviceKind::Pi4BRev12,
                model: ModelKind::MobileNetV3Small,
            })
            .collect();
        config.tier = Some(TierConfig {
            admission,
            ..TierConfig::single(GpuProfile { batch_limit: 6 }, OverflowPolicy::RejectNewest)
        });
        config
    }

    fn bursty_fleet() -> Vec<Box<dyn Controller>> {
        let mut controllers = ff_controllers(5);
        controllers.push(Box::new(ff_baselines::AlwaysOffload::new()) as Box<dyn Controller>);
        controllers
    }

    #[test]
    fn token_bucket_holds_fairness_where_reject_newest_collapses() {
        // The per-tenant token bucket is an *admission-side* fix for the
        // same collapse the FairShare overflow policy repairs on the
        // queue side: at ~2x saturation (180 rps offered vs ~83 rps
        // completed) a bursty tenant's standing queue crowds out the
        // adaptive tenants under RejectNewest. Capping every tenant at
        // its fair share (~83/6 ≈ 14 rps) before the queue keeps Jain
        // over successful offloads at >= 0.9; admit-all collapses below.
        let bucket = run_fleet(
            bursty_tier_config(AdmissionPolicy::TokenBucket {
                rate_rps: 14.0,
                burst: 14.0,
            }),
            bursty_fleet(),
        );
        let open = run_fleet(
            bursty_tier_config(AdmissionPolicy::AdmitAll),
            bursty_fleet(),
        );

        assert!(
            bucket.offload_fairness >= 0.9,
            "token bucket must hold Jain >= 0.9 against a bursty tenant, got {:.3}",
            bucket.offload_fairness
        );
        assert!(
            open.offload_fairness < 0.9,
            "admit-all over RejectNewest unexpectedly stayed fair ({:.3})",
            open.offload_fairness
        );
        assert!(
            bucket.admission_rejections > 0,
            "the bucket never clipped anything at 2x saturation"
        );
        assert_eq!(open.admission_rejections, 0);
    }

    #[test]
    fn po2c_beats_static_shard_on_deadline_misses_with_a_hot_shard() {
        // Hot shard by tenant placement: four devices over two equal
        // batch-limit-2 servers (~41 rps each). The two heavy tenants
        // (always-offload, 30 fps each) are devices 1 and 3 — static
        // sharding (`tenant % n`) lands *both* on server 1, 60 rps vs
        // 41 rps capacity, while server 0 idles next to the two
        // local-only tenants. Power-of-two choices compares live server
        // load per request and spreads the same 60 rps across both
        // servers, well under the tier's combined ~82 rps.
        let hot_shard_config = |routing: RoutingPolicy| {
            let mut config = short_fleet();
            config.devices = (0..4)
                .map(|_| FleetDeviceConfig {
                    device: DeviceKind::Pi4BRev12,
                    model: ModelKind::MobileNetV3Small,
                })
                .collect();
            config.tier = Some(TierConfig {
                routing,
                ..TierConfig::uniform(
                    2,
                    ServerSpec {
                        gpu: GpuProfile { batch_limit: 2 },
                        policy: OverflowPolicy::RejectNewest,
                    },
                )
            });
            config
        };
        let lineup = || {
            vec![
                Box::new(ff_baselines::LocalOnly::new()) as Box<dyn Controller>,
                Box::new(ff_baselines::AlwaysOffload::new()),
                Box::new(ff_baselines::LocalOnly::new()),
                Box::new(ff_baselines::AlwaysOffload::new()),
            ]
        };
        let miss_rate = |r: &FleetResult| {
            let offloaded: u64 = r.devices.iter().map(|d| d.frames_offloaded).sum();
            let timeouts: u64 = r.devices.iter().map(|d| d.offload_timeouts).sum();
            timeouts as f64 / offloaded.max(1) as f64
        };

        let shard = run_fleet(hot_shard_config(RoutingPolicy::StaticShard), lineup());
        let po2c = run_fleet(hot_shard_config(RoutingPolicy::PowerOfTwoChoices), lineup());

        assert!(
            miss_rate(&po2c) < miss_rate(&shard),
            "po2c miss rate {:.3} must beat static shard {:.3} with a hot shard",
            miss_rate(&po2c),
            miss_rate(&shard)
        );
        // The shard really was hot: static routing starved server 0.
        assert!(shard.per_server_stats[0].completions < shard.per_server_stats[1].completions);
    }

    #[test]
    fn rolling_restart_takes_servers_down_one_at_a_time() {
        // PR-1's crash machinery, per server: restart server 0 during
        // [5 s, 10 s) and server 1 during [12 s, 17 s). The tier never
        // loses both at once, so the fleet keeps completing work, and
        // each server's epoch guard discards its stale batch events.
        let mut config = short_fleet();
        config.tier = Some(TierConfig::uniform(2, ServerSpec::default()));
        config.outages = vec![
            TierOutage {
                server: 0,
                from_secs: 5.0,
                until_secs: 10.0,
            },
            TierOutage {
                server: 1,
                from_secs: 12.0,
                until_secs: 17.0,
            },
        ];
        let result = run_fleet(config, ff_controllers(3));

        assert_eq!(result.per_server_stats.len(), 2);
        for (i, s) in result.per_server_stats.iter().enumerate() {
            assert!(
                s.completions > 0,
                "server {i} completed nothing across the rolling restart"
            );
        }
        // Work still flowed overall, and the per-server split accounts
        // for every completion.
        assert!(result.server_stats.completions > 0);
        assert_eq!(
            result
                .per_server_stats
                .iter()
                .map(|s| s.completions)
                .sum::<u64>(),
            result.server_stats.completions
        );
    }

    #[test]
    #[should_panic(expected = "outage names server")]
    fn outage_beyond_tier_size_panics() {
        let mut config = short_fleet();
        config.outages = vec![TierOutage {
            server: 3,
            from_secs: 1.0,
            until_secs: 2.0,
        }];
        run_fleet(config, ff_controllers(3));
    }
}
