//! Slab-indexed in-flight bookkeeping for the fleet hot path.
//!
//! [`FlightTable`] is a drop-in replacement for the fleet's former
//! per-device `HashMap<u64, …, TagHash>` in [`crate::offload`]: same
//! life-cycle, same resolutions, same counters, but keyed by the
//! per-device sequence number already packed into the tag
//! (`fleet_tag_seq`) instead of hashing the whole tag. In-flight tags
//! of one device span at most the frames captured within one deadline
//! window (every entry is removed by its deadline event), so an
//! open-addressed ring indexed by `seq & mask` almost never collides;
//! when it would, the ring doubles and re-seats its entries. Lookups
//! are one masked index plus one compare — no hashing, no probing.
//!
//! [`ProbeTable`] plays the same role for heartbeat probes: at most
//! `ceil(deadline / controller_period)` probes are ever outstanding
//! (one per tick), so a tiny linear-scanned vec beats any map.
//!
//! The genuinely unordered maps (e.g. the live path's tag tables) keep
//! `TagHash`; this module is only for the fleet, where the tag encodes
//! its own index.

use crate::offload::{LatencyBreakdown, OffloadResolution, TimeoutCause};
use ff_sim::{SimDuration, SimTime};

/// Life-cycle stage of one in-flight offloaded frame (mirrors the
/// states of [`crate::offload::OffloadTracker`] exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    InNetwork,
    DroppedByNetwork,
    AtServer { arrived_at: SimTime },
    RejectedByServer,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u64,
    captured_at: SimTime,
    stage: Stage,
}

/// Deadline tracker for one fleet device, slab-indexed by the tag's
/// sequence bits. Semantically identical to
/// [`crate::offload::OffloadTracker`] (asserted by a differential
/// proptest below): `sent` panics on duplicates, stage updates on
/// missing tags are no-ops, resolutions are reported exactly once.
#[derive(Debug, Clone)]
pub struct FlightTable {
    deadline: SimDuration,
    /// Open-addressed ring, `slots.len()` a power of two. A tag lives
    /// at `seq & mask`; the build invariant is that no two live tags
    /// share a slot (we grow instead of probing).
    slots: Vec<Option<Entry>>,
    mask: u64,
    len: usize,
    resolved_success: u64,
    resolved_timeout: u64,
}

/// Initial ring capacity: at 30 fps and a 250 ms deadline at most
/// ~9 frames are ever in flight, so 32 slots absorb 4x that before the
/// first (re-seating) growth.
const INITIAL_SLOTS: usize = 32;

impl FlightTable {
    /// A table enforcing the given end-to-end deadline.
    pub fn new(deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        FlightTable {
            deadline,
            slots: vec![None; INITIAL_SLOTS],
            mask: (INITIAL_SLOTS - 1) as u64,
            len: 0,
            resolved_success: 0,
            resolved_timeout: 0,
        }
    }

    #[inline]
    fn slot_of(&self, tag: u64) -> usize {
        // The sequence number occupies the tag's low bits, so masking
        // the tag is masking the sequence.
        (tag & self.mask) as usize
    }

    /// Double the ring until every live entry has a private slot.
    #[cold]
    fn grow(&mut self) {
        let mut next = self.slots.len();
        'double: loop {
            next *= 2;
            let mask = (next - 1) as u64;
            let mut slots = vec![None; next];
            for e in self.slots.iter().flatten() {
                let s = &mut slots[(e.tag & mask) as usize];
                if s.is_some() {
                    // Live sequence numbers congruent at this size too:
                    // keep doubling.
                    continue 'double;
                }
                *s = Some(*e);
            }
            self.slots = slots;
            self.mask = mask;
            return;
        }
    }

    /// Register a frame the device just offloaded.
    pub fn sent(&mut self, tag: u64, captured_at: SimTime) {
        loop {
            let i = self.slot_of(tag);
            match &self.slots[i] {
                Some(e) if e.tag == tag => panic!("tag {tag} offloaded twice"),
                Some(_) => self.grow(),
                None => {
                    self.slots[i] = Some(Entry {
                        tag,
                        captured_at,
                        stage: Stage::InNetwork,
                    });
                    self.len += 1;
                    return;
                }
            }
        }
    }

    #[inline]
    fn get_mut(&mut self, tag: u64) -> Option<&mut Entry> {
        let i = self.slot_of(tag);
        match &mut self.slots[i] {
            Some(e) if e.tag == tag => Some(e),
            _ => None,
        }
    }

    #[inline]
    fn remove(&mut self, tag: u64) -> Option<Entry> {
        let i = self.slot_of(tag);
        match &self.slots[i] {
            Some(e) if e.tag == tag => {
                let e = *e;
                self.slots[i] = None;
                self.len -= 1;
                Some(e)
            }
            _ => None,
        }
    }

    /// The uplink dropped the frame; the cause is known early but the
    /// resolution still waits for the deadline event.
    pub fn network_dropped(&mut self, tag: u64) {
        if let Some(e) = self.get_mut(tag) {
            e.stage = Stage::DroppedByNetwork;
        }
    }

    /// The frame arrived at the server.
    pub fn arrived_at_server(&mut self, tag: u64, at: SimTime) {
        if let Some(e) = self.get_mut(tag) {
            e.stage = Stage::AtServer { arrived_at: at };
        }
    }

    /// The server rejected the request (admission or batch overflow).
    pub fn rejected_by_server(&mut self, tag: u64) {
        if let Some(e) = self.get_mut(tag) {
            e.stage = Stage::RejectedByServer;
        }
    }

    /// A response reached the device at `now`; `None` if the frame was
    /// already resolved by its deadline event.
    pub fn response_arrived(&mut self, tag: u64, now: SimTime) -> Option<OffloadResolution> {
        let e = self.remove(tag)?;
        let latency = now.saturating_since(e.captured_at);
        if latency <= self.deadline {
            self.resolved_success += 1;
            let breakdown = match e.stage {
                Stage::AtServer { arrived_at } => LatencyBreakdown {
                    uplink: Some(arrived_at.saturating_since(e.captured_at)),
                    server_and_down: Some(now.saturating_since(arrived_at)),
                },
                _ => LatencyBreakdown::default(),
            };
            Some(OffloadResolution::Success { latency, breakdown })
        } else {
            self.resolved_timeout += 1;
            Some(OffloadResolution::Timeout {
                cause: attribute(&e, self.deadline),
            })
        }
    }

    /// The deadline event for `tag` fired; `None` if the frame already
    /// succeeded.
    pub fn deadline_expired(&mut self, tag: u64, now: SimTime) -> Option<OffloadResolution> {
        let e = self.remove(tag)?;
        debug_assert!(now >= e.captured_at + self.deadline);
        self.resolved_timeout += 1;
        Some(OffloadResolution::Timeout {
            cause: attribute(&e, self.deadline),
        })
    }

    /// Requests still unresolved.
    pub fn in_flight(&self) -> usize {
        self.len
    }

    /// Offloads resolved as successes.
    pub fn successes(&self) -> u64 {
        self.resolved_success
    }

    /// Offloads resolved as timeouts.
    pub fn timeouts(&self) -> u64 {
        self.resolved_timeout
    }
}

fn attribute(e: &Entry, deadline: SimDuration) -> TimeoutCause {
    match e.stage {
        Stage::InNetwork | Stage::DroppedByNetwork => TimeoutCause::Network,
        Stage::RejectedByServer => TimeoutCause::ServerLoad,
        Stage::AtServer { arrived_at } => {
            let network_share = arrived_at.saturating_since(e.captured_at);
            if network_share > deadline / 2 {
                TimeoutCause::Network
            } else {
                TimeoutCause::ServerLoad
            }
        }
    }
}

/// Outstanding heartbeat probes for one device: a linear-scanned vec of
/// `(tag, sent_at)`. One probe leaves per controller period and dies at
/// its deadline, so the live set holds at most a couple of entries.
#[derive(Debug, Clone, Default)]
pub struct ProbeTable {
    live: Vec<(u64, SimTime)>,
}

impl ProbeTable {
    /// Record a probe sent at `sent_at`.
    pub fn insert(&mut self, tag: u64, sent_at: SimTime) {
        debug_assert!(self.live.iter().all(|&(t, _)| t != tag));
        self.live.push((tag, sent_at));
    }

    /// Remove a probe, returning when it was sent (or `None` if its
    /// deadline already reaped it).
    pub fn remove(&mut self, tag: u64) -> Option<SimTime> {
        let i = self.live.iter().position(|&(t, _)| t == tag)?;
        Some(self.live.swap_remove(i).1)
    }

    /// Probes still awaiting a response or deadline.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no probes are outstanding.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offload::OffloadTracker;
    use proptest::prelude::*;

    fn table() -> FlightTable {
        FlightTable::new(SimDuration::from_millis(250))
    }

    #[test]
    fn timely_response_is_a_success_with_latency() {
        let mut t = table();
        t.sent(1, SimTime::ZERO);
        t.arrived_at_server(1, SimTime::from_millis(40));
        let r = t.response_arrived(1, SimTime::from_millis(100)).unwrap();
        assert_eq!(
            r,
            OffloadResolution::Success {
                latency: SimDuration::from_millis(100),
                breakdown: LatencyBreakdown {
                    uplink: Some(SimDuration::from_millis(40)),
                    server_and_down: Some(SimDuration::from_millis(60)),
                },
            }
        );
        assert_eq!(t.successes(), 1);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn late_response_after_deadline_event_is_ignored() {
        let mut t = table();
        t.sent(3, SimTime::ZERO);
        assert!(t.deadline_expired(3, SimTime::from_millis(250)).is_some());
        assert!(t.response_arrived(3, SimTime::from_millis(400)).is_none());
        assert_eq!(t.timeouts(), 1);
        assert_eq!(t.successes(), 0);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn double_send_panics() {
        let mut t = table();
        t.sent(9, SimTime::ZERO);
        t.sent(9, SimTime::ZERO);
    }

    #[test]
    fn congruent_tags_force_growth_not_corruption() {
        // Tags 5, 5+32, 5+64 all land on slot 5 of the initial ring.
        let mut t = table();
        t.sent(5, SimTime::ZERO);
        t.sent(5 + 32, SimTime::from_millis(10));
        t.sent(5 + 64, SimTime::from_millis(20));
        assert_eq!(t.in_flight(), 3);
        t.arrived_at_server(5 + 32, SimTime::from_millis(30));
        assert!(t.response_arrived(5, SimTime::from_millis(40)).is_some());
        assert!(t
            .response_arrived(5 + 32, SimTime::from_millis(50))
            .is_some());
        assert!(t
            .deadline_expired(5 + 64, SimTime::from_millis(270))
            .is_some());
        assert_eq!(t.successes(), 2);
        assert_eq!(t.timeouts(), 1);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn probe_table_round_trips_and_reaps() {
        let mut p = ProbeTable::default();
        assert!(p.is_empty());
        p.insert(7, SimTime::from_millis(5));
        p.insert(9, SimTime::from_millis(10));
        assert_eq!(p.len(), 2);
        assert_eq!(p.remove(7), Some(SimTime::from_millis(5)));
        assert_eq!(p.remove(7), None);
        assert_eq!(p.remove(9), Some(SimTime::from_millis(10)));
        assert!(p.is_empty());
    }

    /// One randomized operation against both trackers.
    #[derive(Debug, Clone)]
    enum Op {
        Sent(u8),
        Dropped(u8),
        Arrived(u8),
        Rejected(u8),
        Response(u8),
        Deadline(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        (0u8..24, 0u8..6).prop_map(|(tag, kind)| match kind {
            0 => Op::Sent(tag),
            1 => Op::Dropped(tag),
            2 => Op::Arrived(tag),
            3 => Op::Rejected(tag),
            4 => Op::Response(tag),
            _ => Op::Deadline(tag),
        })
    }

    proptest! {
        /// Differential: any operation sequence drives `FlightTable`
        /// and the hash-map `OffloadTracker` to identical resolutions
        /// and counters. Time advances monotonically per step so both
        /// success and timeout paths are exercised.
        #[test]
        fn flight_table_matches_offload_tracker(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let deadline = SimDuration::from_millis(250);
            let mut slab = FlightTable::new(deadline);
            let mut map = OffloadTracker::new(deadline);
            let mut live: Vec<(u64, SimTime)> = Vec::new();
            for (step, op) in ops.into_iter().enumerate() {
                let now = SimTime::from_millis(step as u64 * 40);
                match op {
                    Op::Sent(tag) => {
                        let tag = tag as u64;
                        if !live.iter().any(|&(t, _)| t == tag) {
                            slab.sent(tag, now);
                            map.sent(tag, now);
                            live.push((tag, now));
                        }
                    }
                    Op::Dropped(tag) => {
                        slab.network_dropped(tag as u64);
                        map.network_dropped(tag as u64);
                    }
                    Op::Arrived(tag) => {
                        slab.arrived_at_server(tag as u64, now);
                        map.arrived_at_server(tag as u64, now);
                    }
                    Op::Rejected(tag) => {
                        slab.rejected_by_server(tag as u64);
                        map.rejected_by_server(tag as u64);
                    }
                    Op::Response(tag) => {
                        let a = slab.response_arrived(tag as u64, now);
                        let b = map.response_arrived(tag as u64, now);
                        prop_assert_eq!(a, b);
                        live.retain(|&(t, _)| t != tag as u64);
                    }
                    Op::Deadline(tag) => {
                        // Only fire deadlines that are actually due, to
                        // respect the trackers' debug assertions.
                        let due = match live.iter().find(|&&(t, _)| t == tag as u64) {
                            Some(&(_, captured)) => now >= map.deadline_for(captured),
                            None => true,
                        };
                        if due {
                            let a = slab.deadline_expired(tag as u64, now);
                            let b = map.deadline_expired(tag as u64, now);
                            prop_assert_eq!(a, b);
                            live.retain(|&(t, _)| t != tag as u64);
                        }
                    }
                }
                prop_assert_eq!(slab.in_flight(), map.in_flight());
                prop_assert_eq!(slab.successes(), map.successes());
                prop_assert_eq!(slab.timeouts(), map.timeouts());
            }
        }
    }
}
