//! Replay verification: re-execute a recorded trace through a fresh
//! [`DeviceRuntime`] and assert every decision matches bit-for-bit.
//!
//! A trace (`ff-trace`) is the exact call log of a `DeviceRuntime`: the
//! runtime's state is a pure function of that sequence, so driving a
//! freshly constructed runtime with the recorded calls must reproduce
//! every recorded output — routing decisions, response resolutions,
//! deadline verdicts, QoS records (compared on raw `f64` bits), probe
//! tags, and the end-of-run counters. [`replay_verify`] does exactly
//! that and reports the first divergence, which makes a trace both a
//! regression artifact ("this exact run must keep behaving like this")
//! and a cross-host check (a live recording verifies on any machine).

use crate::runtime::{
    trace_cause, trace_outcome, DeviceRuntime, RuntimeConfig, SubmitOutcome, Transport,
};
use crate::selection::ModelSelection;
use crate::splitter::Route;
use ff_baselines::{AllOrNothing, AlwaysOffload, LocalOnly};
use ff_core::{Controller, FrameFeedback};
use ff_sim::{SimDuration, SimTime};
use ff_trace::{Trace, TraceEvent, TraceRoute, TraceSubmitOutcome};

/// Statistics of a successful replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Total events replayed (including the `End` record).
    pub events: u64,
    /// Frame captures re-routed.
    pub captures: u64,
    /// Transport submissions re-verified (offloads and probes).
    pub submits: u64,
    /// Controller ticks whose QoS record matched bit-for-bit.
    pub ticks: u64,
}

/// The first point where a replay diverged from the recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayMismatch {
    /// Index of the offending event in `trace.events` (or the event
    /// count, for end-of-trace problems).
    pub index: usize,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl std::fmt::Display for ReplayMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay diverged at event {}: {}",
            self.index, self.detail
        )
    }
}

impl std::error::Error for ReplayMismatch {}

/// Build the controller named in a trace header, with its default
/// configuration — the same construction the recorded run used.
pub fn controller_by_name(name: &str) -> Option<Box<dyn Controller>> {
    match name {
        "framefeedback" => Some(Box::new(FrameFeedback::new())),
        "local-only" => Some(Box::new(LocalOnly::new())),
        "always-offload" => Some(Box::new(AlwaysOffload::new())),
        "all-or-nothing" => Some(Box::new(AllOrNothing::new())),
        _ => None,
    }
}

/// Transport stand-in for replay: the replayer arms it with the recorded
/// submission before each call that sends, and it checks the runtime
/// asks for exactly that submission — then answers with the recorded
/// verdict, so the replayed runtime observes the recorded world.
#[derive(Default)]
struct ReplayTransport {
    expected: Option<(u64, u64, SimTime, TraceSubmitOutcome)>,
    mismatch: Option<String>,
}

impl ReplayTransport {
    fn arm(&mut self, tag: u64, bytes: u64, at: SimTime, outcome: TraceSubmitOutcome) {
        debug_assert!(self.expected.is_none(), "previous submission unconsumed");
        self.expected = Some((tag, bytes, at, outcome));
    }

    fn note(&mut self, detail: String) {
        self.mismatch.get_or_insert(detail);
    }
}

impl Transport for ReplayTransport {
    fn send(&mut self, tag: u64, bytes: u64, now: SimTime) -> SubmitOutcome {
        let Some((etag, ebytes, eat, eout)) = self.expected.take() else {
            self.note(format!("unexpected transport send (tag {tag})"));
            return SubmitOutcome::FailedInstantly;
        };
        if (tag, bytes, now) != (etag, ebytes, eat) {
            self.note(format!(
                "submission mismatch: recorded (tag {etag}, {ebytes} B, t={} µs), \
                 replayed (tag {tag}, {bytes} B, t={} µs)",
                eat.as_micros(),
                now.as_micros()
            ));
        }
        match eout {
            TraceSubmitOutcome::Accepted => SubmitOutcome::Accepted,
            TraceSubmitOutcome::DroppedInNetwork => SubmitOutcome::DroppedInNetwork,
            TraceSubmitOutcome::FailedInstantly => SubmitOutcome::FailedInstantly,
        }
    }
}

/// Re-run `trace` through a fresh runtime with the controller named in
/// its header (see [`controller_by_name`]) and assert every recorded
/// decision reproduces exactly.
pub fn replay_verify(trace: &Trace) -> Result<ReplayReport, ReplayMismatch> {
    let mut controller = controller_by_name(&trace.header.controller).ok_or(ReplayMismatch {
        index: 0,
        detail: format!("unknown controller {:?} in header", trace.header.controller),
    })?;
    replay_verify_with(trace, controller.as_mut())
}

/// [`replay_verify`] with a caller-supplied controller (for controllers
/// outside the built-in lineup; it must have the recorded dynamics).
pub fn replay_verify_with(
    trace: &Trace,
    controller: &mut dyn Controller,
) -> Result<ReplayReport, ReplayMismatch> {
    let h = &trace.header;
    let selection =
        ModelSelection::from_code(h.selection, h.selection_margin).ok_or(ReplayMismatch {
            index: 0,
            detail: format!("unknown model-selection code {} in header", h.selection),
        })?;
    let mut rt = DeviceRuntime::new(
        RuntimeConfig {
            fs: h.fs,
            deadline: SimDuration::from_micros(h.deadline_us),
            controller_period: SimDuration::from_micros(h.controller_period_us),
            timeout_window: SimDuration::from_micros(h.timeout_window_us),
            probe_bytes: h.probe_bytes,
            selection,
            local_accuracy: h.local_accuracy,
            remote_accuracy: h.remote_accuracy,
        },
        controller,
    );
    let mut transport = ReplayTransport::default();
    let mut report = ReplayReport::default();
    let fail = |index: usize, detail: String| Err(ReplayMismatch { index, detail });

    let events = &trace.events;
    let mut i = 0;
    while i < events.len() {
        match &events[i] {
            TraceEvent::Capture {
                at,
                frame_id,
                bytes,
                route,
            } => {
                report.captures += 1;
                let got = rt.route_frame(*frame_id, *bytes, *at);
                let got_route = match got {
                    Route::Offload => TraceRoute::Offload,
                    Route::Local => TraceRoute::Local,
                };
                if got_route != *route {
                    return fail(
                        i,
                        format!(
                            "frame {frame_id}: recorded route {route:?}, replayed {got_route:?}"
                        ),
                    );
                }
                if got == Route::Offload {
                    // The triggering submission is recorded immediately
                    // after its capture.
                    let Some(TraceEvent::Submit {
                        at: sat,
                        tag,
                        bytes: sbytes,
                        outcome,
                    }) = events.get(i + 1)
                    else {
                        return fail(i + 1, "offloaded capture not followed by its submit".into());
                    };
                    transport.arm(*tag, *sbytes, *sat, *outcome);
                    rt.offload(&mut transport, *tag, *sbytes, *sat);
                    if let Some(detail) = transport.mismatch.take() {
                        return fail(i + 1, detail);
                    }
                    report.submits += 1;
                    i += 1; // consume the submit
                }
            }

            TraceEvent::Submit { tag, .. } => {
                return fail(
                    i,
                    format!("submit of tag {tag} without a triggering capture or tick"),
                );
            }

            TraceEvent::ServerArrival { at, tag } => rt.frame_arrived_at_server(*tag, *at),

            TraceEvent::ServerRejected { at, tag } => rt.frame_rejected_by_server(*tag, *at),

            TraceEvent::Response {
                at,
                tag,
                ok,
                outcome,
            } => {
                let got = trace_outcome(&rt.on_response(*tag, *at, *ok));
                if got != *outcome {
                    return fail(
                        i,
                        format!("response for tag {tag}: recorded {outcome:?}, replayed {got:?}"),
                    );
                }
            }

            TraceEvent::Deadline { at, tag, timed_out } => {
                let got = rt.on_deadline(*tag, *at).map(trace_cause);
                if got != *timed_out {
                    return fail(
                        i,
                        format!("deadline for tag {tag}: recorded {timed_out:?}, replayed {got:?}"),
                    );
                }
            }

            TraceEvent::ExpireDue { at, expired } => {
                let got: Vec<_> = rt
                    .expire_due(*at)
                    .into_iter()
                    .map(|(tag, c)| (tag, trace_cause(c)))
                    .collect();
                if got != *expired {
                    return fail(
                        i,
                        format!("expire sweep: recorded {expired:?}, replayed {got:?}"),
                    );
                }
            }

            TraceEvent::LocalDone { at, n } => rt.note_local_done(*n, *at),

            TraceEvent::Tick {
                at, qos, probe_tag, ..
            } => {
                // The tick's probe submission is recorded immediately
                // after the tick itself.
                let Some(TraceEvent::Submit {
                    at: sat,
                    tag,
                    bytes: sbytes,
                    outcome,
                }) = events.get(i + 1)
                else {
                    return fail(i + 1, "tick not followed by its probe submit".into());
                };
                transport.arm(*tag, *sbytes, *sat, *outcome);
                let out = rt.tick(*at, controller, &mut transport);
                if let Some(detail) = transport.mismatch.take() {
                    return fail(i + 1, detail);
                }
                if out.probe_tag != *probe_tag {
                    return fail(
                        i,
                        format!(
                            "tick probe tag: recorded {probe_tag}, replayed {}",
                            out.probe_tag
                        ),
                    );
                }
                let r = out.record;
                let got = [
                    r.t_secs,
                    r.pl,
                    r.po,
                    r.timeouts,
                    r.timeouts_network,
                    r.timeouts_load,
                    r.po_target,
                    r.accuracy_weighted_throughput,
                ];
                let want = [
                    qos.t_secs,
                    qos.pl,
                    qos.po,
                    qos.timeouts,
                    qos.timeouts_network,
                    qos.timeouts_load,
                    qos.po_target,
                    qos.accuracy_weighted_throughput,
                ];
                if got.map(f64::to_bits) != want.map(f64::to_bits) {
                    return fail(
                        i,
                        format!("tick QoS record: recorded {want:?}, replayed {got:?}"),
                    );
                }
                report.submits += 1;
                report.ticks += 1;
                i += 1; // consume the probe submit
            }

            TraceEvent::End {
                frames_offloaded,
                successes,
                timeouts,
                instant_failures,
                ..
            } => {
                let got = (
                    rt.frames_offloaded(),
                    rt.successes(),
                    rt.timeouts(),
                    rt.instant_failures(),
                );
                let want = (*frames_offloaded, *successes, *timeouts, *instant_failures);
                if got != want {
                    return fail(
                        i,
                        format!(
                            "end counters (offloaded, successes, timeouts, instant failures): \
                             recorded {want:?}, replayed {got:?}"
                        ),
                    );
                }
            }
        }
        i += 1;
    }
    report.events = events.len() as u64;
    Ok(report)
}
