//! In-flight offload bookkeeping and deadline enforcement.
//!
//! Every offloaded frame gets a deadline (`captured_at + 250 ms`, §II-B).
//! The tracker records where each request is in its life cycle so that
//! when the deadline event fires the device can decide whether the frame
//! timed out and, if so, attribute the cause (`T_n` network vs `T_l`
//! server load — Table I).

use crate::taghash::TagHash;
use ff_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// Cause attribution for a timeout (Table I's `T_n` / `T_l` split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutCause {
    /// The network dropped the frame or consumed most of the deadline.
    Network,
    /// The server rejected the request or queued it past the deadline.
    ServerLoad,
}

/// Life-cycle state of one in-flight offloaded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Sent; still traversing the uplink.
    InNetwork,
    /// The uplink dropped it; the device only learns at the deadline.
    DroppedByNetwork,
    /// Arrived at the server (at the recorded instant); awaiting batch.
    AtServer { arrived_at: SimTime },
    /// Rejected by the server's batch-overflow policy.
    RejectedByServer,
}

/// Where a successful offload's end-to-end latency was spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyBreakdown {
    /// Capture → arrival at the server (uplink serialization, queueing,
    /// retransmissions, propagation). `None` if the arrival stage was
    /// never reported.
    pub uplink: Option<SimDuration>,
    /// Arrival at the server → response at the device (batch queueing,
    /// execution, downlink propagation). `None` when `uplink` is `None`.
    pub server_and_down: Option<SimDuration>,
}

/// Resolution of an offloaded frame, reported exactly once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OffloadResolution {
    /// The response arrived with end-to-end latency within the deadline.
    Success {
        /// Capture-to-response latency.
        latency: SimDuration,
        /// Where the latency was spent.
        breakdown: LatencyBreakdown,
    },
    /// The deadline passed without a (timely) response.
    Timeout {
        /// Attributed cause (`T_n` vs `T_l`).
        cause: TimeoutCause,
    },
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    captured_at: SimTime,
    stage: Stage,
}

/// Tracks all offloaded frames that have not yet been resolved.
#[derive(Debug, Clone)]
pub struct OffloadTracker {
    deadline: SimDuration,
    in_flight: HashMap<u64, InFlight, TagHash>,
    resolved_success: u64,
    resolved_timeout: u64,
}

impl OffloadTracker {
    /// A tracker enforcing the given end-to-end deadline.
    pub fn new(deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        OffloadTracker {
            deadline,
            in_flight: HashMap::default(),
            resolved_success: 0,
            resolved_timeout: 0,
        }
    }

    /// The configured end-to-end deadline.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// The deadline instant for a frame captured at `captured_at`.
    pub fn deadline_for(&self, captured_at: SimTime) -> SimTime {
        captured_at + self.deadline
    }

    /// Register a frame the device just offloaded.
    pub fn sent(&mut self, tag: u64, captured_at: SimTime) {
        let prev = self.in_flight.insert(
            tag,
            InFlight {
                captured_at,
                stage: Stage::InNetwork,
            },
        );
        assert!(prev.is_none(), "tag {tag} offloaded twice");
    }

    /// The uplink reported this frame dropped (overflow or loss): the frame
    /// will time out; we already know the cause is the network.
    pub fn network_dropped(&mut self, tag: u64) {
        if let Some(f) = self.in_flight.get_mut(&tag) {
            f.stage = Stage::DroppedByNetwork;
        }
    }

    /// The frame arrived at the server.
    pub fn arrived_at_server(&mut self, tag: u64, at: SimTime) {
        if let Some(f) = self.in_flight.get_mut(&tag) {
            f.stage = Stage::AtServer { arrived_at: at };
        }
    }

    /// The server rejected the request (batch overflow).
    pub fn rejected_by_server(&mut self, tag: u64) {
        if let Some(f) = self.in_flight.get_mut(&tag) {
            f.stage = Stage::RejectedByServer;
        }
    }

    /// A response reached the device at `now`. Returns the resolution, or
    /// `None` if the frame was already resolved (late response after its
    /// deadline event fired).
    pub fn response_arrived(&mut self, tag: u64, now: SimTime) -> Option<OffloadResolution> {
        let f = self.in_flight.remove(&tag)?;
        let latency = now.saturating_since(f.captured_at);
        if latency <= self.deadline {
            self.resolved_success += 1;
            let breakdown = match f.stage {
                Stage::AtServer { arrived_at } => LatencyBreakdown {
                    uplink: Some(arrived_at.saturating_since(f.captured_at)),
                    server_and_down: Some(now.saturating_since(arrived_at)),
                },
                _ => LatencyBreakdown::default(),
            };
            Some(OffloadResolution::Success { latency, breakdown })
        } else {
            // Should not normally happen: the deadline event resolves the
            // frame first. Handle it anyway (events at the same instant).
            self.resolved_timeout += 1;
            Some(OffloadResolution::Timeout {
                cause: self.attribute(&f, now),
            })
        }
    }

    /// The deadline event for `tag` fired at `now`. Returns the timeout
    /// resolution, or `None` if the frame already succeeded.
    pub fn deadline_expired(&mut self, tag: u64, now: SimTime) -> Option<OffloadResolution> {
        let f = self.in_flight.remove(&tag)?;
        debug_assert!(now >= self.deadline_for(f.captured_at));
        self.resolved_timeout += 1;
        Some(OffloadResolution::Timeout {
            cause: self.attribute(&f, now),
        })
    }

    /// Resolve every in-flight frame whose deadline has strictly passed
    /// (`now > captured_at + deadline`), for hosts that poll instead of
    /// scheduling per-frame deadline events. Expired frames are returned
    /// in ascending tag order so polling hosts stay deterministic.
    pub fn expire_due(&mut self, now: SimTime) -> Vec<(u64, OffloadResolution)> {
        let mut due: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, f)| now > self.deadline_for(f.captured_at))
            .map(|(&tag, _)| tag)
            .collect();
        due.sort_unstable();
        due.into_iter()
            .map(|tag| {
                let resolution = self
                    .deadline_expired(tag, now)
                    .expect("frame was in flight");
                (tag, resolution)
            })
            .collect()
    }

    fn attribute(&self, f: &InFlight, _now: SimTime) -> TimeoutCause {
        match f.stage {
            Stage::InNetwork | Stage::DroppedByNetwork => TimeoutCause::Network,
            Stage::RejectedByServer => TimeoutCause::ServerLoad,
            Stage::AtServer { arrived_at } => {
                // The frame reached the server but the response was late.
                // Attribute by where the deadline budget went.
                let network_share = arrived_at.saturating_since(f.captured_at);
                if network_share > self.deadline / 2 {
                    TimeoutCause::Network
                } else {
                    TimeoutCause::ServerLoad
                }
            }
        }
    }

    /// Requests still unresolved.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Offloads resolved as successes.
    pub fn successes(&self) -> u64 {
        self.resolved_success
    }

    /// Offloads resolved as timeouts.
    pub fn timeouts(&self) -> u64 {
        self.resolved_timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> OffloadTracker {
        OffloadTracker::new(SimDuration::from_millis(250))
    }

    #[test]
    fn timely_response_is_a_success_with_latency() {
        let mut t = tracker();
        t.sent(1, SimTime::ZERO);
        t.arrived_at_server(1, SimTime::from_millis(40));
        let r = t.response_arrived(1, SimTime::from_millis(100)).unwrap();
        assert_eq!(
            r,
            OffloadResolution::Success {
                latency: SimDuration::from_millis(100),
                breakdown: LatencyBreakdown {
                    uplink: Some(SimDuration::from_millis(40)),
                    server_and_down: Some(SimDuration::from_millis(60)),
                },
            }
        );
        assert_eq!(t.successes(), 1);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn deadline_without_response_is_a_network_timeout_when_still_in_network() {
        let mut t = tracker();
        t.sent(1, SimTime::ZERO);
        let r = t.deadline_expired(1, SimTime::from_millis(250)).unwrap();
        assert_eq!(
            r,
            OffloadResolution::Timeout {
                cause: TimeoutCause::Network
            }
        );
        assert_eq!(t.timeouts(), 1);
    }

    #[test]
    fn server_rejection_is_a_load_timeout() {
        let mut t = tracker();
        t.sent(2, SimTime::ZERO);
        t.arrived_at_server(2, SimTime::from_millis(30));
        t.rejected_by_server(2);
        let r = t.deadline_expired(2, SimTime::from_millis(250)).unwrap();
        assert_eq!(
            r,
            OffloadResolution::Timeout {
                cause: TimeoutCause::ServerLoad
            }
        );
    }

    #[test]
    fn late_response_after_deadline_event_is_ignored() {
        let mut t = tracker();
        t.sent(3, SimTime::ZERO);
        assert!(t.deadline_expired(3, SimTime::from_millis(250)).is_some());
        assert!(
            t.response_arrived(3, SimTime::from_millis(400)).is_none(),
            "already resolved"
        );
        assert_eq!(t.timeouts(), 1);
        assert_eq!(t.successes(), 0);
    }

    #[test]
    fn deadline_event_after_success_is_ignored() {
        let mut t = tracker();
        t.sent(4, SimTime::ZERO);
        t.response_arrived(4, SimTime::from_millis(100));
        assert!(t.deadline_expired(4, SimTime::from_millis(250)).is_none());
    }

    #[test]
    fn slow_server_wait_is_attributed_to_load() {
        let mut t = tracker();
        t.sent(5, SimTime::ZERO);
        // Fast network (30 ms), then the server sat on it.
        t.arrived_at_server(5, SimTime::from_millis(30));
        let r = t.deadline_expired(5, SimTime::from_millis(250)).unwrap();
        assert_eq!(
            r,
            OffloadResolution::Timeout {
                cause: TimeoutCause::ServerLoad
            }
        );
    }

    #[test]
    fn slow_network_arrival_is_attributed_to_network() {
        let mut t = tracker();
        t.sent(6, SimTime::ZERO);
        // The uplink ate 200 of the 250 ms budget.
        t.arrived_at_server(6, SimTime::from_millis(200));
        let r = t.deadline_expired(6, SimTime::from_millis(250)).unwrap();
        assert_eq!(
            r,
            OffloadResolution::Timeout {
                cause: TimeoutCause::Network
            }
        );
    }

    #[test]
    fn network_drop_known_early_still_resolves_at_deadline() {
        let mut t = tracker();
        t.sent(7, SimTime::ZERO);
        t.network_dropped(7);
        assert_eq!(t.in_flight(), 1, "resolution waits for the deadline");
        let r = t.deadline_expired(7, SimTime::from_millis(250)).unwrap();
        assert_eq!(
            r,
            OffloadResolution::Timeout {
                cause: TimeoutCause::Network
            }
        );
    }

    #[test]
    fn borderline_response_at_exact_deadline_is_a_success() {
        let mut t = tracker();
        t.sent(8, SimTime::ZERO);
        let r = t.response_arrived(8, SimTime::from_millis(250)).unwrap();
        assert!(matches!(r, OffloadResolution::Success { .. }));
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn double_send_panics() {
        let mut t = tracker();
        t.sent(9, SimTime::ZERO);
        t.sent(9, SimTime::ZERO);
    }

    #[test]
    fn expire_due_is_strict_ordered_and_cause_attributed() {
        let mut t = tracker();
        t.sent(12, SimTime::ZERO);
        t.sent(3, SimTime::ZERO);
        t.arrived_at_server(3, SimTime::from_millis(20));
        t.rejected_by_server(3);
        t.sent(8, SimTime::from_millis(100));
        // At exactly the deadline nothing expires (a response at this
        // instant would still be a success).
        assert!(t.expire_due(SimTime::from_millis(250)).is_empty());
        let expired = t.expire_due(SimTime::from_millis(251));
        assert_eq!(
            expired,
            vec![
                (
                    3,
                    OffloadResolution::Timeout {
                        cause: TimeoutCause::ServerLoad
                    }
                ),
                (
                    12,
                    OffloadResolution::Timeout {
                        cause: TimeoutCause::Network
                    }
                ),
            ]
        );
        assert_eq!(t.in_flight(), 1, "tag 8 is not due yet");
        assert_eq!(t.timeouts(), 2);
    }

    #[test]
    fn counters_partition_resolutions() {
        let mut t = tracker();
        for tag in 0..10 {
            t.sent(tag, SimTime::ZERO);
        }
        for tag in 0..6 {
            t.response_arrived(tag, SimTime::from_millis(50));
        }
        for tag in 6..10 {
            t.deadline_expired(tag, SimTime::from_millis(250));
        }
        assert_eq!(t.successes(), 6);
        assert_eq!(t.timeouts(), 4);
        assert_eq!(t.in_flight(), 0);
    }
}
