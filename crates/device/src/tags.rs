//! The one `u64` tag space shared by every transport.
//!
//! A tag travels with each request through a link, a server queue, and a
//! response path, and is the only way the device-side bookkeeping can
//! recognize what came back. Three populations share the space:
//!
//! - **Frames** — plain sequence numbers (single-device hosts) or the
//!   packed fleet layout below, always `< BACKGROUND_TAG_BASE`;
//! - **Background requests** — `BACKGROUND_TAG_BASE + seq` (sim only);
//! - **Probes** — heartbeat frames at `>= PROBE_TAG_BASE`.
//!
//! The fleet additionally packs a device index into its frame tags:
//! bits 35..0 carry the per-device sequence, bits 56..36 the device
//! index (21 bits — room for the two-million-device tier of the sharded
//! engine benchmark), and probe tags set the [`PROBE_TAG_BASE`] bit on
//! top of the same layout. Because the packed frame part tops out at
//! bit 56, fleet frame tags can never wander into the background
//! (bit 61) or probe (bit 62) ranges — a property
//! `fleet_tags_never_alias_reserved_ranges` pins below. Historically
//! `fleet.rs` kept a private copy of this layout; this module is now
//! the single definition.

/// First tag of the heartbeat-probe range. Also used as the probe *bit*
/// in the fleet layout, so `is_probe_tag` gives one answer for both
/// single-device and fleet tags.
pub const PROBE_TAG_BASE: u64 = 1 << 62;

/// First tag of the background-tenant range (sim only).
pub const BACKGROUND_TAG_BASE: u64 = 1 << 61;

/// Whether a tag belongs to the heartbeat-probe range (either layout).
pub fn is_probe_tag(tag: u64) -> bool {
    tag >= PROBE_TAG_BASE
}

/// Bit position of the fleet device index within a packed tag.
pub const FLEET_DEV_SHIFT: u32 = 36;

/// Mask of the per-device sequence field in a packed fleet tag
/// (36 bits — a device would need 72 years at 30 fps to overflow it).
pub const FLEET_SEQ_MASK: u64 = (1 << FLEET_DEV_SHIFT) - 1;

/// Exclusive upper bound on the fleet device index (21 bits).
pub const FLEET_MAX_DEVICES: usize = 1 << 21;

// The packed frame layout must stay strictly below the reserved ranges;
// if anyone widens a field, this fails the build rather than aliasing.
const WIDEST_FLEET_FRAME_TAG: u64 =
    (((FLEET_MAX_DEVICES - 1) as u64) << FLEET_DEV_SHIFT) + FLEET_SEQ_MASK;
const _: () = assert!(
    WIDEST_FLEET_FRAME_TAG < BACKGROUND_TAG_BASE,
    "fleet frame tags must not reach the background/probe ranges"
);

/// Pack a fleet tag from a device index and per-device sequence number.
pub fn fleet_tag(dev: usize, seq: u64, probe: bool) -> u64 {
    assert!(dev < FLEET_MAX_DEVICES, "device index too large");
    assert!(seq <= FLEET_SEQ_MASK, "sequence overflow");
    (if probe { PROBE_TAG_BASE } else { 0 }) | ((dev as u64) << FLEET_DEV_SHIFT) | seq
}

/// The device index packed into a fleet tag.
pub fn fleet_tag_device(tag: u64) -> usize {
    ((tag & !PROBE_TAG_BASE) >> FLEET_DEV_SHIFT) as usize
}

/// The per-device sequence number packed into a fleet tag.
pub fn fleet_tag_seq(tag: u64) -> u64 {
    tag & FLEET_SEQ_MASK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_fields() {
        let t = fleet_tag(7, 123_456, false);
        assert_eq!(fleet_tag_device(t), 7);
        assert_eq!(fleet_tag_seq(t), 123_456);
        assert!(!is_probe_tag(t));
        let p = fleet_tag(65_000, 1, true);
        assert_eq!(fleet_tag_device(p), 65_000);
        assert_eq!(fleet_tag_seq(p), 1);
        assert!(is_probe_tag(p));
    }

    #[test]
    fn fleet_tags_never_alias_reserved_ranges() {
        // The widest possible frame tag stays below the background range,
        // so a fleet frame can never be mistaken for a background request
        // or a probe by any consumer of the shared constants.
        let widest = fleet_tag(FLEET_MAX_DEVICES - 1, FLEET_SEQ_MASK, false);
        assert!(widest < BACKGROUND_TAG_BASE);
        assert!(!is_probe_tag(widest));
        // And the widest probe tag keeps its probe bit recognizable while
        // still round-tripping the device index.
        let widest_probe = fleet_tag(FLEET_MAX_DEVICES - 1, FLEET_SEQ_MASK, true);
        assert!(is_probe_tag(widest_probe));
        assert_eq!(fleet_tag_device(widest_probe), FLEET_MAX_DEVICES - 1);
        // The probe bit is exactly the shared PROBE_TAG_BASE — one flag,
        // not two competing definitions (the historical bug).
        assert_eq!(widest_probe & PROBE_TAG_BASE, PROBE_TAG_BASE);
    }

    #[test]
    fn single_device_probe_tags_are_probe_in_the_fleet_view_too() {
        // Runtime probes are PROBE_TAG_BASE + seq; the unified predicate
        // classifies them identically.
        assert!(is_probe_tag(PROBE_TAG_BASE));
        assert!(is_probe_tag(PROBE_TAG_BASE + 42));
        assert!(!is_probe_tag(BACKGROUND_TAG_BASE));
        assert!(!is_probe_tag(0));
    }

    #[test]
    #[should_panic(expected = "device index too large")]
    fn oversized_device_index_is_rejected() {
        fleet_tag(FLEET_MAX_DEVICES, 0, false);
    }

    #[test]
    #[should_panic(expected = "sequence overflow")]
    fn oversized_sequence_is_rejected() {
        fleet_tag(0, FLEET_SEQ_MASK + 1, false);
    }
}
