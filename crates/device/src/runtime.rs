//! The shared device runtime: one control loop for sim and live.
//!
//! The paper's central claim is that a single controller runs unchanged
//! against a simulated network and a real one (§III). This module is where
//! that claim becomes structural: [`DeviceRuntime`] owns the per-frame
//! device loop — credit-based splitting, offload submission, in-flight
//! deadline tracking, probe heartbeats, `WindowedRate` interval
//! aggregation, `Controller::update`, and [`QosRecord`] emission — and the
//! discrete-event simulation (`experiment.rs`) and the wall-clock TCP
//! client (`ff-live`) are two thin adapters over it.
//!
//! Two abstractions make the runtime host-agnostic:
//!
//! - **Transport**: the runtime never touches a link or a socket; it hands
//!   each outgoing frame to a [`Transport`] and learns only whether the
//!   submission was accepted, dropped in the network, or failed instantly.
//! - **Clock**: every runtime method takes an explicit [`SimTime`] `now`.
//!   The simulator passes its event clock; the live client maps `Instant`s
//!   onto the same microsecond timeline with a [`WallClock`]. The runtime
//!   itself never reads a clock, which is what makes the two drivers
//!   bit-identical on identical inputs (see `tests/runtime_parity.rs`).
//!
//! Event-driven hosts (the sim) resolve deadlines with [`DeviceRuntime::on_deadline`]
//! at exactly-scheduled instants; polling hosts (the live client) call
//! [`DeviceRuntime::expire_due`] each iteration instead.

use crate::offload::{LatencyBreakdown, OffloadResolution, OffloadTracker, TimeoutCause};
use crate::selection::{deadline_risk, ModelSelection};
use crate::splitter::{FrameSplitter, Route};
use ff_core::{Controller, Measurement};
use ff_metrics::{QosLog, QosRecord, WindowedRate};
use ff_sim::{SimDuration, SimTime};
use ff_trace::{
    TickQos, TraceEvent, TraceHandle, TraceResponseOutcome, TraceRoute, TraceSubmitOutcome,
    TraceTimeoutCause,
};
use std::collections::HashMap;
use std::time::Instant;

// The tag-space partition lives in the shared [`crate::tags`] module;
// these re-exports keep the historical `runtime::` paths working.
pub use crate::tags::{is_probe_tag, BACKGROUND_TAG_BASE, PROBE_TAG_BASE};

/// What happened when a frame was handed to the transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The transport took the frame; a response may arrive later.
    Accepted,
    /// The transport dropped it (link overflow, shim loss). The device
    /// only learns at the deadline, but the cause is already known to be
    /// the network.
    DroppedInNetwork,
    /// The attempt failed synchronously (no connection — the live
    /// analogue of ECONNREFUSED). The runtime records the timeout
    /// immediately, which is what makes `T` track the attempted rate and
    /// parks the controller at the §III-A.1 probe floor during outages.
    FailedInstantly,
}

/// Where the runtime hands outgoing frames and probes. Implementations
/// wrap the simulated uplink (`experiment.rs`) or the TCP send queue and
/// impairment shim (`ff-live`).
pub trait Transport {
    /// Submit `bytes` of payload under `tag` at instant `now`.
    fn send(&mut self, tag: u64, bytes: u64, now: SimTime) -> SubmitOutcome;
}

/// Static parameters of the device control loop.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Source frame rate `F_s` in frames/s.
    pub fs: f64,
    /// End-to-end offload deadline (250 ms, §II-B).
    pub deadline: SimDuration,
    /// Controller measurement period (1 s, Table IV).
    pub controller_period: SimDuration,
    /// Trailing window for the timeout-rate input `T` ("the average of T
    /// from the last few seconds", §III-A.1).
    pub timeout_window: SimDuration,
    /// Payload size of heartbeat probes.
    pub probe_bytes: u64,
    /// Which model answers offload-routed frames. [`ModelSelection::AlwaysPaper`]
    /// reproduces the paper's runtime bit for bit.
    pub selection: ModelSelection,
    /// Top-1 accuracy of the on-device model (Table III), used by
    /// [`ModelSelection::ExpectedAccuracy`] and the accuracy-weighted
    /// throughput QoS field.
    pub local_accuracy: f64,
    /// Top-1 accuracy of the remote model (Table III).
    pub remote_accuracy: f64,
}

/// Result of [`DeviceRuntime::offload`].
#[derive(Debug, Clone, Copy)]
pub struct OffloadSubmission {
    /// The instant at which this frame times out if unanswered. Event-
    /// driven hosts schedule their deadline event here.
    pub deadline_at: SimTime,
    /// What the transport did with the frame.
    pub outcome: SubmitOutcome,
}

/// How a response (or deadline) resolved, from the host's point of view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameOutcome {
    /// The tag was a heartbeat probe (heartbeat state updated internally).
    Probe,
    /// The offload beat the deadline.
    Success {
        /// Capture-to-response latency.
        latency: SimDuration,
        /// Where the latency was spent.
        breakdown: LatencyBreakdown,
    },
    /// The offload missed the deadline (response too late, or the
    /// response itself carried a rejection already resolved by deadline).
    Timeout {
        /// Attributed cause (`T_n` vs `T_l`).
        cause: TimeoutCause,
    },
    /// A server rejection arrived; the frame stays in flight and resolves
    /// as a load timeout at its deadline (same as the sim's batch-overflow
    /// path).
    Rejected,
    /// The tag was already resolved (late response after its deadline).
    Stale,
}

/// Everything one controller tick produced.
#[derive(Debug, Clone, Copy)]
pub struct TickOutput {
    /// The QoS record just appended to the log.
    pub record: QosRecord,
    /// Tag of the heartbeat probe sent for the next interval.
    pub probe_tag: u64,
    /// When that probe expires. Event-driven hosts schedule a deadline
    /// event here; polling hosts can ignore it ([`DeviceRuntime::expire_due`]
    /// cleans overdue probes).
    pub probe_deadline_at: SimTime,
}

/// Maps wall-clock [`Instant`]s onto the runtime's [`SimTime`] axis
/// (microseconds since the run started). This is the live client's
/// "clock adapter": the runtime only ever sees `SimTime`, so the same
/// arithmetic runs in both hosts.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose `t = 0` is now.
    pub fn start() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }

    /// The wall-clock instant of `t = 0`.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// The current runtime instant.
    pub fn now(&self) -> SimTime {
        self.at(Instant::now())
    }

    /// The runtime instant of a wall-clock `instant` (saturating at 0 for
    /// instants before the origin).
    pub fn at(&self, instant: Instant) -> SimTime {
        SimTime::from_micros(instant.saturating_duration_since(self.origin).as_micros() as u64)
    }

    /// The wall-clock instant of a runtime time `t`.
    pub fn instant_at(&self, t: SimTime) -> Instant {
        self.origin + std::time::Duration::from_micros(t.as_micros())
    }
}

/// Interval counters reset at every controller tick.
#[derive(Debug, Default, Clone, Copy)]
struct IntervalCounters {
    sent: u64,
    local_done: u64,
    offload_success: u64,
    timeouts_network: u64,
    timeouts_load: u64,
}

/// The single implementation of the per-frame device control loop shared
/// by the discrete-event experiment and the live TCP client.
///
/// The runtime deliberately does **not** own the controller: hosts keep
/// their own (`Box<dyn Controller>` in the sim, `&mut dyn Controller` in
/// live) and lend it to [`DeviceRuntime::new`] and [`DeviceRuntime::tick`],
/// so controller ownership and borrow patterns stay a host concern.
#[derive(Debug)]
pub struct DeviceRuntime {
    config: RuntimeConfig,
    splitter: FrameSplitter,
    tracker: OffloadTracker,
    probes: HashMap<u64, SimTime>,
    probe_seq: u64,
    last_heartbeat_ok: bool,
    po_target: f64,
    interval: IntervalCounters,
    timeout_rate: WindowedRate,
    /// Latest timeout stamp fed to `timeout_rate`. Wall-clock hosts can
    /// observe slightly out-of-order stamps (a response stamped by a
    /// reader thread but drained after a newer loop stamp); `WindowedRate`
    /// requires monotone time, so stamps are clamped to this floor. A
    /// no-op for event-driven hosts, whose clock never runs backwards.
    timeout_clock_floor: SimTime,
    qos: QosLog,
    frames_offloaded: u64,
    instant_failures: u64,
    /// Binary event recording (`ff-trace`), disabled by default. Same
    /// contract as telemetry: strictly write-only, so results are
    /// bit-identical with recording on or off (`tests/trace_inert.rs`).
    trace: TraceHandle,
}

/// Map the runtime's transport verdict into the trace vocabulary.
fn trace_submit(outcome: SubmitOutcome) -> TraceSubmitOutcome {
    match outcome {
        SubmitOutcome::Accepted => TraceSubmitOutcome::Accepted,
        SubmitOutcome::DroppedInNetwork => TraceSubmitOutcome::DroppedInNetwork,
        SubmitOutcome::FailedInstantly => TraceSubmitOutcome::FailedInstantly,
    }
}

/// Map a timeout cause into the trace vocabulary.
pub(crate) fn trace_cause(cause: TimeoutCause) -> TraceTimeoutCause {
    match cause {
        TimeoutCause::Network => TraceTimeoutCause::Network,
        TimeoutCause::ServerLoad => TraceTimeoutCause::ServerLoad,
    }
}

/// Map a frame outcome into the trace vocabulary.
pub(crate) fn trace_outcome(outcome: &FrameOutcome) -> TraceResponseOutcome {
    match outcome {
        FrameOutcome::Probe => TraceResponseOutcome::Probe,
        FrameOutcome::Success { latency, .. } => TraceResponseOutcome::Success {
            latency_us: latency.as_micros(),
        },
        FrameOutcome::Timeout { cause } => TraceResponseOutcome::Timeout {
            cause: trace_cause(*cause),
        },
        FrameOutcome::Rejected => TraceResponseOutcome::Rejected,
        FrameOutcome::Stale => TraceResponseOutcome::Stale,
    }
}

impl DeviceRuntime {
    /// Build the runtime and make the bootstrap decision at `t = 0` (so
    /// policies with static targets, e.g. always-offload, act from the
    /// first frame). The heartbeat is pessimistic: no probe has been
    /// answered yet.
    pub fn new(config: RuntimeConfig, controller: &mut dyn Controller) -> Self {
        assert!(config.fs > 0.0, "F_s must be positive");
        assert!(config.probe_bytes > 0, "probes must carry a payload");
        assert!(
            !config.controller_period.is_zero(),
            "controller period must be positive"
        );
        let po_target = controller
            .update(&Measurement {
                fs: config.fs,
                po_achieved: 0.0,
                pl_achieved: 0.0,
                timeout_rate: 0.0,
                heartbeat_ok: false,
                dt_secs: config.controller_period.as_secs_f64(),
            })
            .po_target;
        DeviceRuntime {
            splitter: FrameSplitter::new(),
            tracker: OffloadTracker::new(config.deadline),
            probes: HashMap::new(),
            probe_seq: 0,
            last_heartbeat_ok: false,
            po_target,
            interval: IntervalCounters::default(),
            timeout_rate: WindowedRate::new(config.timeout_window),
            timeout_clock_floor: SimTime::ZERO,
            qos: QosLog::new(),
            frames_offloaded: 0,
            instant_failures: 0,
            trace: TraceHandle::disabled(),
            config,
        }
    }

    /// Attach a trace recorder (see `ff-trace`). Call right after
    /// [`DeviceRuntime::new`]; the bootstrap decision itself is not an
    /// event — replay reproduces it by constructing the runtime the
    /// same way.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Whether control-loop events are being recorded.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// Stop recording and return the encoded trace, closed with an
    /// [`TraceEvent::End`] counter record at `now`. `None` if recording
    /// was never enabled.
    pub fn finish_trace(&mut self, now: SimTime) -> Option<Vec<u8>> {
        let (frames_offloaded, successes, timeouts, instant_failures) = (
            self.frames_offloaded,
            self.successes(),
            self.timeouts(),
            self.instant_failures,
        );
        self.trace.record_with(|| TraceEvent::End {
            at: now,
            frames_offloaded,
            successes,
            timeouts,
            instant_failures,
        });
        std::mem::take(&mut self.trace).finish()
    }

    /// Route one captured frame against the current target.
    pub fn route(&mut self) -> Route {
        self.splitter.route(self.po_target, self.config.fs)
    }

    /// [`DeviceRuntime::route`] with the frame's identity attached, so
    /// the decision lands in the trace: records a capture event carrying
    /// the raw payload size (pre quality adaptation) and the route.
    /// Hosts that may record a trace use this; `route()` remains for
    /// callers without per-frame identity.
    pub fn route_frame(&mut self, frame_id: u64, bytes: u64, now: SimTime) -> Route {
        let mut route = self.splitter.route(self.po_target, self.config.fs);
        // Accuracy-aware demotion: an offload verdict may fall back to the
        // local model when the deadline risk discounts the remote model
        // below the local one. `AlwaysPaper` skips this entirely (not even
        // a rate-estimator read), keeping legacy runs bit-identical.
        if route == Route::Offload && self.config.selection != ModelSelection::AlwaysPaper {
            let risk = deadline_risk(self.timeout_rate.rate_at(now), self.po_target);
            if self.config.selection.prefers_local(
                self.config.local_accuracy,
                self.config.remote_accuracy,
                risk,
            ) {
                route = Route::Local;
            }
        }
        self.trace.record_with(|| TraceEvent::Capture {
            at: now,
            frame_id,
            bytes,
            route: match route {
                Route::Offload => TraceRoute::Offload,
                Route::Local => TraceRoute::Local,
            },
        });
        route
    }

    /// Offload one frame: count it, submit it through the transport, and
    /// start deadline tracking (unless the attempt failed instantly, in
    /// which case the timeout is recorded on the spot).
    pub fn offload(
        &mut self,
        transport: &mut dyn Transport,
        tag: u64,
        bytes: u64,
        captured_at: SimTime,
    ) -> OffloadSubmission {
        debug_assert!(tag < BACKGROUND_TAG_BASE, "frame tag in reserved range");
        self.interval.sent += 1;
        self.frames_offloaded += 1;
        let outcome = transport.send(tag, bytes, captured_at);
        self.trace.record_with(|| TraceEvent::Submit {
            at: captured_at,
            tag,
            bytes,
            outcome: trace_submit(outcome),
        });
        match outcome {
            SubmitOutcome::Accepted => self.tracker.sent(tag, captured_at),
            SubmitOutcome::DroppedInNetwork => {
                self.tracker.sent(tag, captured_at);
                self.tracker.network_dropped(tag);
            }
            SubmitOutcome::FailedInstantly => {
                self.instant_failures += 1;
                self.record_timeout(captured_at, TimeoutCause::Network);
            }
        }
        OffloadSubmission {
            deadline_at: captured_at + self.config.deadline,
            outcome,
        }
    }

    /// Count `n` completed local inferences (finishing at `now`) toward
    /// the current interval.
    pub fn note_local_done(&mut self, n: u64, now: SimTime) {
        self.trace
            .record_with(|| TraceEvent::LocalDone { at: now, n });
        self.interval.local_done += n;
    }

    /// A response for `tag` reached the device at `now`. `ok` is false for
    /// server rejections (batch overflow).
    pub fn on_response(&mut self, tag: u64, now: SimTime, ok: bool) -> FrameOutcome {
        let outcome = self.on_response_inner(tag, now, ok);
        self.trace.record_with(|| TraceEvent::Response {
            at: now,
            tag,
            ok,
            outcome: trace_outcome(&outcome),
        });
        outcome
    }

    fn on_response_inner(&mut self, tag: u64, now: SimTime, ok: bool) -> FrameOutcome {
        if is_probe_tag(tag) {
            if let Some(sent_at) = self.probes.remove(&tag) {
                if ok && now.saturating_since(sent_at) <= self.config.deadline {
                    self.last_heartbeat_ok = true;
                }
            }
            return FrameOutcome::Probe;
        }
        if !ok {
            self.tracker.rejected_by_server(tag);
            return FrameOutcome::Rejected;
        }
        match self.tracker.response_arrived(tag, now) {
            Some(OffloadResolution::Success { latency, breakdown }) => {
                self.interval.offload_success += 1;
                FrameOutcome::Success { latency, breakdown }
            }
            Some(OffloadResolution::Timeout { cause }) => {
                self.record_timeout(now, cause);
                FrameOutcome::Timeout { cause }
            }
            None => FrameOutcome::Stale,
        }
    }

    /// The frame arrived at the server (sim adapter: refines `T_n`/`T_l`
    /// attribution for late responses).
    pub fn frame_arrived_at_server(&mut self, tag: u64, at: SimTime) {
        self.trace
            .record_with(|| TraceEvent::ServerArrival { at, tag });
        if !is_probe_tag(tag) {
            self.tracker.arrived_at_server(tag, at);
        }
    }

    /// The server rejected the frame at `at` (batch overflow); it will
    /// resolve as a load timeout at its deadline.
    pub fn frame_rejected_by_server(&mut self, tag: u64, at: SimTime) {
        self.trace
            .record_with(|| TraceEvent::ServerRejected { at, tag });
        if !is_probe_tag(tag) {
            self.tracker.rejected_by_server(tag);
        }
    }

    /// The deadline event for `tag` fired at `now` (event-driven hosts).
    /// Returns the attributed cause if the frame actually timed out.
    pub fn on_deadline(&mut self, tag: u64, now: SimTime) -> Option<TimeoutCause> {
        if is_probe_tag(tag) {
            // An unresolved probe is a failed heartbeat; nothing to do —
            // the flag is already pessimistic.
            self.probes.remove(&tag);
            self.trace.record_with(|| TraceEvent::Deadline {
                at: now,
                tag,
                timed_out: None,
            });
            return None;
        }
        let result = if let Some(OffloadResolution::Timeout { cause }) =
            self.tracker.deadline_expired(tag, now)
        {
            self.record_timeout(now, cause);
            Some(cause)
        } else {
            None
        };
        self.trace.record_with(|| TraceEvent::Deadline {
            at: now,
            tag,
            timed_out: result.map(trace_cause),
        });
        result
    }

    /// Resolve every in-flight frame whose deadline has strictly passed
    /// (polling hosts call this each loop iteration), and discard overdue
    /// probes. Returns the expired frames in ascending tag order.
    pub fn expire_due(&mut self, now: SimTime) -> Vec<(u64, TimeoutCause)> {
        let deadline = self.config.deadline;
        self.probes
            .retain(|_, sent_at| now.saturating_since(*sent_at) <= deadline);
        let expired = self.tracker.expire_due(now);
        let mut out = Vec::with_capacity(expired.len());
        for (tag, resolution) in expired {
            if let OffloadResolution::Timeout { cause } = resolution {
                self.record_timeout(now, cause);
                out.push((tag, cause));
            }
        }
        self.trace.record_with(|| TraceEvent::ExpireDue {
            at: now,
            expired: out.iter().map(|&(tag, c)| (tag, trace_cause(c))).collect(),
        });
        out
    }

    /// One controller interval ended at `now`: measure, decide, emit the
    /// QoS record, reset the interval, and send the next heartbeat probe
    /// through the transport.
    pub fn tick(
        &mut self,
        now: SimTime,
        controller: &mut dyn Controller,
        transport: &mut dyn Transport,
    ) -> TickOutput {
        let dt = self.config.controller_period.as_secs_f64();
        let po = self.interval.sent as f64 / dt;
        let pl = self.interval.local_done as f64 / dt;
        let t_windowed = self.timeout_rate.rate_at(now);

        let m = Measurement {
            fs: self.config.fs,
            po_achieved: po,
            pl_achieved: pl,
            timeout_rate: t_windowed,
            heartbeat_ok: self.last_heartbeat_ok,
            dt_secs: dt,
        };
        self.po_target = controller.update(&m).po_target;

        // Accuracy-weighted throughput: completed inferences per second,
        // each weighted by its model's Table III top-1 accuracy. A timed-
        // out offload contributes nothing — which is exactly what the
        // ExpectedAccuracy selection policy optimises for.
        let accuracy_weighted = (self.config.local_accuracy * self.interval.local_done as f64
            + self.config.remote_accuracy * self.interval.offload_success as f64)
            / dt;
        self.qos.push_at(
            now,
            pl,
            po,
            self.interval.timeouts_network as f64 / dt,
            self.interval.timeouts_load as f64 / dt,
            self.po_target,
            accuracy_weighted,
        );
        let record = *self.qos.records().last().expect("record just pushed");
        self.interval = IntervalCounters::default();

        self.trace.record_with(|| TraceEvent::Tick {
            at: now,
            qos: TickQos {
                t_secs: record.t_secs,
                pl: record.pl,
                po: record.po,
                timeouts: record.timeouts,
                timeouts_network: record.timeouts_network,
                timeouts_load: record.timeouts_load,
                po_target: record.po_target,
                accuracy_weighted_throughput: record.accuracy_weighted_throughput,
            },
            timeout_rate: t_windowed,
            heartbeat_ok: m.heartbeat_ok,
            probe_tag: PROBE_TAG_BASE + self.probe_seq,
        });

        // Heartbeat for the next interval. The flag is pessimistic until a
        // timely probe response arrives.
        self.last_heartbeat_ok = false;
        let probe_tag = PROBE_TAG_BASE + self.probe_seq;
        self.probe_seq += 1;
        self.probes.insert(probe_tag, now);
        let probe_outcome = transport.send(probe_tag, self.config.probe_bytes, now);
        let probe_bytes = self.config.probe_bytes;
        self.trace.record_with(|| TraceEvent::Submit {
            at: now,
            tag: probe_tag,
            bytes: probe_bytes,
            outcome: trace_submit(probe_outcome),
        });

        TickOutput {
            record,
            probe_tag,
            probe_deadline_at: now + self.config.deadline,
        }
    }

    fn record_timeout(&mut self, now: SimTime, cause: TimeoutCause) {
        self.timeout_clock_floor = self.timeout_clock_floor.max(now);
        self.timeout_rate.record(self.timeout_clock_floor);
        match cause {
            TimeoutCause::Network => self.interval.timeouts_network += 1,
            TimeoutCause::ServerLoad => self.interval.timeouts_load += 1,
        }
    }

    /// The runtime's static parameters.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The controller's current offload-rate target (frames/s).
    pub fn po_target(&self) -> f64 {
        self.po_target
    }

    /// Frames handed to [`DeviceRuntime::offload`] (including instant
    /// failures).
    pub fn frames_offloaded(&self) -> u64 {
        self.frames_offloaded
    }

    /// Offloads whose response beat the deadline.
    pub fn successes(&self) -> u64 {
        self.tracker.successes()
    }

    /// Offloads that missed the deadline, including instant failures.
    pub fn timeouts(&self) -> u64 {
        self.tracker.timeouts() + self.instant_failures
    }

    /// Offload attempts that failed synchronously (no connection).
    pub fn instant_failures(&self) -> u64 {
        self.instant_failures
    }

    /// Offloads still awaiting a response or deadline.
    pub fn in_flight(&self) -> usize {
        self.tracker.in_flight()
    }

    /// The per-interval QoS log so far.
    pub fn qos(&self) -> &QosLog {
        &self.qos
    }

    /// Consume the runtime, yielding the QoS log.
    pub fn into_qos(self) -> QosLog {
        self.qos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_core::Decision;

    /// Offloads everything; lets tests steer the target directly.
    struct FixedTarget(f64);

    impl Controller for FixedTarget {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn update(&mut self, m: &Measurement) -> Decision {
            m.validate();
            Decision { po_target: self.0 }
        }
        fn po_target(&self) -> f64 {
            self.0
        }
        fn reset(&mut self) {}
    }

    /// Scripted transport returning a fixed outcome per call.
    struct Scripted(SubmitOutcome);

    impl Transport for Scripted {
        fn send(&mut self, _tag: u64, _bytes: u64, _now: SimTime) -> SubmitOutcome {
            self.0
        }
    }

    fn config() -> RuntimeConfig {
        RuntimeConfig {
            fs: 30.0,
            deadline: SimDuration::from_millis(250),
            controller_period: SimDuration::from_secs(1),
            timeout_window: SimDuration::from_secs(3),
            probe_bytes: 25_000,
            selection: ModelSelection::AlwaysPaper,
            local_accuracy: 0.68,
            remote_accuracy: 0.77,
        }
    }

    fn runtime(target: f64) -> (DeviceRuntime, FixedTarget) {
        let mut ctl = FixedTarget(target);
        let rt = DeviceRuntime::new(config(), &mut ctl);
        (rt, ctl)
    }

    #[test]
    fn bootstrap_decision_sets_the_initial_target() {
        let (rt, _) = runtime(30.0);
        assert_eq!(rt.po_target(), 30.0);
    }

    #[test]
    fn accepted_offload_resolves_by_response_or_deadline() {
        let (mut rt, _) = runtime(30.0);
        let sub = rt.offload(
            &mut Scripted(SubmitOutcome::Accepted),
            1,
            8_000,
            SimTime::ZERO,
        );
        assert_eq!(sub.deadline_at, SimTime::from_millis(250));
        assert_eq!(rt.in_flight(), 1);
        let out = rt.on_response(1, SimTime::from_millis(90), true);
        assert!(matches!(out, FrameOutcome::Success { latency, .. }
            if latency == SimDuration::from_millis(90)));
        assert_eq!(rt.successes(), 1);
        assert_eq!(rt.timeouts(), 0);
    }

    #[test]
    fn network_drop_times_out_at_the_deadline_with_network_cause() {
        let (mut rt, _) = runtime(30.0);
        rt.offload(
            &mut Scripted(SubmitOutcome::DroppedInNetwork),
            2,
            8_000,
            SimTime::ZERO,
        );
        assert_eq!(rt.in_flight(), 1, "drops resolve only at the deadline");
        let cause = rt.on_deadline(2, SimTime::from_millis(250));
        assert_eq!(cause, Some(TimeoutCause::Network));
        assert_eq!(rt.timeouts(), 1);
    }

    #[test]
    fn instant_failure_is_an_immediate_network_timeout() {
        let (mut rt, _) = runtime(30.0);
        rt.offload(
            &mut Scripted(SubmitOutcome::FailedInstantly),
            3,
            8_000,
            SimTime::ZERO,
        );
        assert_eq!(rt.in_flight(), 0);
        assert_eq!(rt.timeouts(), 1);
        assert_eq!(rt.instant_failures(), 1);
        assert_eq!(rt.frames_offloaded(), 1);
    }

    #[test]
    fn expire_due_resolves_only_strictly_overdue_frames_in_tag_order() {
        let (mut rt, _) = runtime(30.0);
        let mut tp = Scripted(SubmitOutcome::Accepted);
        rt.offload(&mut tp, 7, 8_000, SimTime::ZERO);
        rt.offload(&mut tp, 5, 8_000, SimTime::ZERO);
        rt.offload(&mut tp, 9, 8_000, SimTime::from_millis(100));
        assert!(rt.expire_due(SimTime::from_millis(250)).is_empty());
        let expired = rt.expire_due(SimTime::from_millis(251));
        assert_eq!(
            expired,
            vec![(5, TimeoutCause::Network), (7, TimeoutCause::Network)]
        );
        assert_eq!(rt.in_flight(), 1);
    }

    #[test]
    fn probe_response_within_deadline_sets_the_heartbeat() {
        let (mut rt, mut ctl) = runtime(15.0);
        let mut tp = Scripted(SubmitOutcome::Accepted);
        let out = rt.tick(SimTime::from_secs(1), &mut ctl, &mut tp);
        assert!(is_probe_tag(out.probe_tag));
        assert_eq!(out.probe_deadline_at, SimTime::from_millis(1250));
        rt.on_response(out.probe_tag, SimTime::from_millis(1100), true);
        // The next tick's measurement sees heartbeat_ok = true; observe it
        // indirectly: a second response for the same (consumed) probe is
        // inert, and an overdue probe would not have set the flag.
        assert!(rt.last_heartbeat_ok);
    }

    #[test]
    fn late_or_rejected_probe_leaves_the_heartbeat_pessimistic() {
        let (mut rt, mut ctl) = runtime(15.0);
        let mut tp = Scripted(SubmitOutcome::Accepted);
        let out = rt.tick(SimTime::from_secs(1), &mut ctl, &mut tp);
        rt.on_response(out.probe_tag, SimTime::from_secs(2), true); // late
        assert!(!rt.last_heartbeat_ok);
        let out = rt.tick(SimTime::from_secs(2), &mut ctl, &mut tp);
        rt.on_response(out.probe_tag, SimTime::from_millis(2050), false); // rejected
        assert!(!rt.last_heartbeat_ok);
    }

    #[test]
    fn tick_emits_interval_rates_and_resets_counters() {
        let (mut rt, mut ctl) = runtime(30.0);
        let mut tp = Scripted(SubmitOutcome::FailedInstantly);
        for tag in 0..10 {
            rt.offload(&mut tp, tag, 8_000, SimTime::from_millis(tag * 20));
        }
        rt.note_local_done(5, SimTime::from_millis(500));
        let out = rt.tick(SimTime::from_secs(1), &mut ctl, &mut tp);
        assert_eq!(out.record.po, 10.0);
        assert_eq!(out.record.pl, 5.0);
        assert_eq!(out.record.timeouts, 10.0);
        assert_eq!(out.record.timeouts_network, 10.0);
        assert_eq!(out.record.po_target, 30.0);
        assert_eq!(rt.qos().len(), 1);
        // Counters reset: a second empty tick reports zero rates.
        let out = rt.tick(SimTime::from_secs(2), &mut ctl, &mut tp);
        assert_eq!(out.record.po, 0.0);
        assert_eq!(out.record.pl, 0.0);
        assert_eq!(out.record.timeouts, 0.0);
    }

    #[test]
    fn rejection_resolves_as_a_load_timeout_at_the_deadline() {
        let (mut rt, _) = runtime(30.0);
        rt.offload(
            &mut Scripted(SubmitOutcome::Accepted),
            4,
            8_000,
            SimTime::ZERO,
        );
        assert_eq!(
            rt.on_response(4, SimTime::from_millis(60), false),
            FrameOutcome::Rejected
        );
        assert_eq!(rt.in_flight(), 1, "rejections resolve at the deadline");
        assert_eq!(
            rt.on_deadline(4, SimTime::from_millis(250)),
            Some(TimeoutCause::ServerLoad)
        );
    }

    #[test]
    fn splitter_actuates_the_bootstrap_target() {
        let (mut rt, _) = runtime(15.0);
        let offloads = (0..30).filter(|_| rt.route() == Route::Offload).count();
        assert_eq!(offloads, 15, "half target offloads every other frame");
    }

    #[test]
    fn wall_clock_round_trips_instants() {
        let clock = WallClock::start();
        let t = SimTime::from_millis(1234);
        assert_eq!(clock.at(clock.instant_at(t)), t);
        assert_eq!(clock.at(clock.origin()), SimTime::ZERO);
        // Instants before the origin saturate to t = 0 rather than panic.
        let early = clock.origin() - std::time::Duration::from_millis(5);
        assert_eq!(clock.at(early), SimTime::ZERO);
    }
}
