//! # ff-device — the measured edge device and the experiment runner
//!
//! Models the Raspberry Pi of the paper's evaluation: a 30 fps frame
//! source, a credit-based [`FrameSplitter`] actuating the controller's
//! offload rate, a no-buffer [`LocalEngine`] calibrated to Table II, an
//! [`OffloadTracker`] enforcing the 250 ms end-to-end deadline with
//! `T_n`/`T_l` cause attribution, and the [`CpuModel`] reproducing the
//! §II-A CPU-usage observation.
//!
//! The per-frame control loop itself lives in [`runtime`]: a
//! [`DeviceRuntime`] that is clock- and transport-agnostic, driven here by
//! the discrete-event simulation and in `ff-live` by the wall-clock TCP
//! client — one loop, two hosts.
//!
//! [`run_experiment`] wires the device, the `ff-net` uplink, the
//! `ff-server` batching server, background tenants, and any
//! `ff_core::Controller` into one deterministic discrete-event run — the
//! substitution for the paper's physical testbed that every figure and
//! table regeneration is built on.

#![warn(missing_docs)]

mod content;
mod cpu;
mod experiment;
mod fleet;
mod flight;
mod local;
mod offload;
mod quality;
mod replay;
pub mod runtime;
mod selection;
mod selector;
pub mod shard;
mod splitter;
pub mod taghash;
pub mod tags;
mod trace;

pub use content::{content_scenario, content_scenarios, CONTENT_SCENARIO_NAMES};
pub use cpu::{CpuModel, EnergyModel};
pub use experiment::{
    run_experiment, run_experiment_traced, run_experiment_with_telemetry, ExperimentConfig,
    ExperimentResult, ServerOutage,
};
pub use fleet::{
    run_fleet, EngineOptions, FleetConfig, FleetDeviceConfig, FleetDeviceResult, FleetResult,
    TierOutage,
};
pub use flight::{FlightTable, ProbeTable};
pub use local::{LocalEngine, LocalOutcome};
pub use offload::{LatencyBreakdown, OffloadResolution, OffloadTracker, TimeoutCause};
pub use quality::{QualityAdapter, QualityConfig};
pub use replay::{
    controller_by_name, replay_verify, replay_verify_with, ReplayMismatch, ReplayReport,
};
pub use runtime::{
    is_probe_tag, DeviceRuntime, FrameOutcome, OffloadSubmission, RuntimeConfig, SubmitOutcome,
    TickOutput, Transport, WallClock, BACKGROUND_TAG_BASE, PROBE_TAG_BASE,
};
pub use selection::{deadline_risk, ModelSelection};
pub use selector::{ModelSelector, SelectorConfig};
pub use shard::run_fleet_sharded;
pub use splitter::{FrameSplitter, Route};
pub use trace::{FrameFate, FrameRecord, FrameTrace, TraceSummary};
