//! Accuracy-aware model selection.
//!
//! The paper's runtime always offloads to the large remote model when
//! the splitter says "offload" ([`ModelSelection::AlwaysPaper`]). The
//! content-aware extension adds [`ModelSelection::ExpectedAccuracy`]: a
//! per-frame choice between the small on-device model and the large
//! remote one, maximising *expected* accuracy — the remote model is
//! better on paper (Table III), but a remote inference that misses its
//! deadline contributes nothing, so under high deadline risk the local
//! model's guaranteed answer wins.
//!
//! House contract: `AlwaysPaper` is the serde default and does zero
//! extra work per frame (not even a rate-estimator read), so legacy
//! runs are bit-identical to the pre-selection runtime — pinned by
//! `tests/content_inert.rs`.

use serde::{Deserialize, Serialize};

/// Which model answers a frame routed to "offload" by the splitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ModelSelection {
    /// Always use the remote model, exactly as in the paper.
    #[default]
    AlwaysPaper,
    /// Offload only when the remote model's accuracy, discounted by the
    /// current deadline risk, still beats the local model's.
    ExpectedAccuracy {
        /// Hysteresis margin: offloading must win by at least this much
        /// expected accuracy, so borderline frames stay local rather
        /// than flapping with the risk estimate.
        margin: f64,
    },
}

impl ModelSelection {
    /// Whether a splitter "offload" verdict should be demoted to local
    /// inference, given run-constant model accuracies and the current
    /// deadline-risk estimate (probability an offload misses its
    /// deadline, in `[0, 1]`).
    ///
    /// Expected accuracy of offloading is `remote · (1 − risk)`: a
    /// timed-out frame scores zero. The local model always answers in
    /// time, so its expected accuracy is just `local`.
    pub fn prefers_local(&self, local_accuracy: f64, remote_accuracy: f64, risk: f64) -> bool {
        match *self {
            ModelSelection::AlwaysPaper => false,
            ModelSelection::ExpectedAccuracy { margin } => {
                remote_accuracy * (1.0 - risk) < local_accuracy + margin
            }
        }
    }

    /// Stable wire code for the trace header (schema v2).
    pub fn code(&self) -> u8 {
        match self {
            ModelSelection::AlwaysPaper => 0,
            ModelSelection::ExpectedAccuracy { .. } => 1,
        }
    }

    /// The hysteresis margin, or 0 for the legacy policy.
    pub fn margin(&self) -> f64 {
        match *self {
            ModelSelection::AlwaysPaper => 0.0,
            ModelSelection::ExpectedAccuracy { margin } => margin,
        }
    }

    /// Rebuild from the trace-header wire pair. `None` for unknown codes.
    pub fn from_code(code: u8, margin: f64) -> Option<Self> {
        match code {
            0 => Some(ModelSelection::AlwaysPaper),
            1 => Some(ModelSelection::ExpectedAccuracy { margin }),
            _ => None,
        }
    }
}

/// Deadline risk from the windowed timeout rate and the offload-rate
/// target: the fraction of recent offloads that timed out, clamped to
/// a probability. The `max(1)` floor keeps the estimate finite when the
/// controller has throttled the target to zero.
pub fn deadline_risk(timeout_rate: f64, po_target: f64) -> f64 {
    (timeout_rate / po_target.max(1.0)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_paper_never_demotes() {
        let s = ModelSelection::AlwaysPaper;
        assert!(!s.prefers_local(0.99, 0.01, 1.0));
        assert!(!s.prefers_local(0.68, 0.77, 0.0));
    }

    #[test]
    fn expected_accuracy_demotes_exactly_when_discounted_remote_loses() {
        let s = ModelSelection::ExpectedAccuracy { margin: 0.0 };
        // Table III-ish: local 0.68, remote 0.77.
        assert!(!s.prefers_local(0.68, 0.77, 0.0)); // healthy: offload
        assert!(s.prefers_local(0.68, 0.77, 0.5)); // 0.385 < 0.68: local
                                                   // Break-even risk is 1 - 0.68/0.77 ≈ 0.1169.
        assert!(!s.prefers_local(0.68, 0.77, 0.11));
        assert!(s.prefers_local(0.68, 0.77, 0.12));
    }

    #[test]
    fn margin_shifts_the_break_even_point() {
        let none = ModelSelection::ExpectedAccuracy { margin: 0.0 };
        let some = ModelSelection::ExpectedAccuracy { margin: 0.05 };
        assert!(!none.prefers_local(0.68, 0.77, 0.08));
        assert!(some.prefers_local(0.68, 0.77, 0.08));
    }

    #[test]
    fn risk_estimate_is_a_probability() {
        assert_eq!(deadline_risk(0.0, 4.0), 0.0);
        assert_eq!(deadline_risk(2.0, 4.0), 0.5);
        assert_eq!(deadline_risk(9.0, 4.0), 1.0);
        // Throttled target: floor the divisor rather than divide by zero.
        assert_eq!(deadline_risk(0.5, 0.0), 0.5);
    }

    #[test]
    fn wire_codes_round_trip() {
        for s in [
            ModelSelection::AlwaysPaper,
            ModelSelection::ExpectedAccuracy { margin: 0.05 },
        ] {
            assert_eq!(ModelSelection::from_code(s.code(), s.margin()), Some(s));
        }
        assert_eq!(ModelSelection::from_code(9, 0.0), None);
    }

    #[test]
    fn serde_default_is_the_legacy_policy() {
        assert_eq!(ModelSelection::default(), ModelSelection::AlwaysPaper);
    }
}
