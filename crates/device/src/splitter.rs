//! Frame-level actuation of the controller's offload rate.
//!
//! The controller outputs a *rate* (`P_o` frames/s); the device must turn
//! it into per-frame offload/local decisions. A credit (token-bucket)
//! splitter does this deterministically and with zero long-run bias: each
//! captured frame earns `po_target / F_s` credits, and a frame is
//! offloaded exactly when a whole credit is available.

/// Per-frame routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Send this frame to the edge server.
    Offload,
    /// Hand this frame to the local inference engine (which may drop it if
    /// busy — that is the engine's concern, not the splitter's).
    Local,
}

/// Credit-based deterministic rate splitter.
#[derive(Debug, Clone, Default)]
pub struct FrameSplitter {
    credit: f64,
}

impl FrameSplitter {
    /// A splitter with zero accumulated credit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Route one captured frame given the current targets.
    pub fn route(&mut self, po_target: f64, fs: f64) -> Route {
        assert!(fs > 0.0, "F_s must be positive");
        assert!(
            (0.0..=fs + 1e-9).contains(&po_target),
            "P_o target {po_target} outside [0, F_s={fs}]"
        );
        self.advance(po_target / fs)
    }

    /// Route one captured frame from a pre-computed credit increment
    /// (`po_target / fs`). Callers that route at frame rate can compute
    /// the division once per target update and validate it there; the
    /// result is bit-identical to [`FrameSplitter::route`] with the same
    /// operands.
    pub fn advance(&mut self, incr: f64) -> Route {
        self.credit += incr;
        if self.credit >= 1.0 {
            self.credit -= 1.0;
            Route::Offload
        } else {
            Route::Local
        }
    }

    /// Forget accumulated credit (e.g. on controller reset).
    pub fn reset(&mut self) {
        self.credit = 0.0;
    }

    /// Current fractional credit, for inspection.
    pub fn credit(&self) -> f64 {
        self.credit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn offload_count(po: f64, fs: f64, frames: usize) -> usize {
        let mut s = FrameSplitter::new();
        (0..frames)
            .filter(|_| s.route(po, fs) == Route::Offload)
            .count()
    }

    #[test]
    fn zero_target_never_offloads() {
        assert_eq!(offload_count(0.0, 30.0, 300), 0);
    }

    #[test]
    fn full_target_always_offloads() {
        assert_eq!(offload_count(30.0, 30.0, 300), 300);
    }

    #[test]
    fn half_target_offloads_every_other_frame() {
        let mut s = FrameSplitter::new();
        let routes: Vec<Route> = (0..10).map(|_| s.route(15.0, 30.0)).collect();
        // Credit 0.5, 1.0→offload, 0.5, 1.0→offload...
        assert_eq!(routes.iter().filter(|r| **r == Route::Offload).count(), 5);
        // Offloads are evenly spaced, not bursty.
        let positions: Vec<usize> = routes
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Route::Offload)
            .map(|(i, _)| i)
            .collect();
        for w in positions.windows(2) {
            assert_eq!(w[1] - w[0], 2, "offloads must alternate");
        }
    }

    #[test]
    fn long_run_rate_matches_target() {
        for po in [3.0, 7.5, 13.0, 22.1, 29.0] {
            let n = 3_000;
            let got = offload_count(po, 30.0, n) as f64;
            let expected = po / 30.0 * n as f64;
            assert!(
                (got - expected).abs() <= 1.0,
                "target {po}: offloaded {got} of {n}, expected {expected}"
            );
        }
    }

    #[test]
    fn rate_changes_apply_smoothly() {
        let mut s = FrameSplitter::new();
        let mut offloads = 0;
        for _ in 0..30 {
            if s.route(30.0, 30.0) == Route::Offload {
                offloads += 1;
            }
        }
        assert_eq!(offloads, 30);
        for _ in 0..30 {
            if s.route(0.0, 30.0) == Route::Offload {
                offloads += 1;
            }
        }
        assert_eq!(offloads, 30, "no stale credit after target drops to 0");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn target_above_fs_panics() {
        FrameSplitter::new().route(31.0, 30.0);
    }

    #[test]
    fn reset_clears_credit() {
        let mut s = FrameSplitter::new();
        s.route(15.0, 30.0);
        assert!(s.credit() > 0.0);
        s.reset();
        assert_eq!(s.credit(), 0.0);
    }

    proptest! {
        /// Over any horizon, the offloaded count differs from the ideal
        /// fluid count by at most one frame (zero long-run bias).
        #[test]
        fn prop_credit_splitter_is_unbiased(
            po_frac in 0.0f64..=1.0,
            frames in 1usize..2_000,
        ) {
            let fs = 30.0;
            let po = po_frac * fs;
            let got = offload_count(po, fs, frames) as f64;
            let ideal = po / fs * frames as f64;
            prop_assert!((got - ideal).abs() <= 1.0, "got {got}, ideal {ideal}");
        }

        /// Rate conservation for arbitrary `F_s` and per-frame targets:
        /// every frame gets exactly one route, so the achieved split
        /// satisfies `P_o + P_l = F_s`, and the offloaded share never
        /// exceeds the credit actually earned (`P_o ≤ Σ target/F_s`,
        /// rounded up) — i.e. `P_o + P_l ≤ F_s` with no over-offload.
        #[test]
        fn prop_achieved_split_conserves_capture_rate(
            fs in 1.0f64..120.0,
            targets in proptest::collection::vec(0.0f64..=1.0, 1..500),
        ) {
            let mut s = FrameSplitter::new();
            let mut offloads = 0usize;
            let mut locals = 0usize;
            let mut earned = 0.0;
            for frac in &targets {
                let po = frac * fs;
                earned += po / fs;
                match s.route(po, fs) {
                    Route::Offload => offloads += 1,
                    Route::Local => locals += 1,
                }
            }
            prop_assert_eq!(offloads + locals, targets.len());
            prop_assert!(
                (offloads as f64) <= earned + 1e-6,
                "offloaded {} frames but only earned {:.6} credits",
                offloads, earned
            );
        }

        /// The credit balance is never negative and never reaches a whole
        /// frame after routing (a full credit is always spent immediately),
        /// for arbitrary `F_s` and any target sequence.
        #[test]
        fn prop_credit_stays_in_unit_interval(
            fs in 1.0f64..120.0,
            targets in proptest::collection::vec(0.0f64..=1.0, 1..500),
        ) {
            let mut s = FrameSplitter::new();
            for frac in &targets {
                s.route(frac * fs, fs);
                prop_assert!(
                    (0.0..1.0).contains(&s.credit()),
                    "credit {} escaped [0, 1)", s.credit()
                );
            }
        }

        /// Credits are conserved across control-interval boundaries: the
        /// fractional credit left when the target changes carries into the
        /// next interval, so `offloads + credit == Σ target/F_s` exactly
        /// (up to float error) no matter where the boundary falls.
        #[test]
        fn prop_credits_conserved_across_interval_boundaries(
            fs in 1.0f64..120.0,
            first_frac in 0.0f64..=1.0,
            second_frac in 0.0f64..=1.0,
            first_len in 1usize..300,
            second_len in 1usize..300,
        ) {
            let mut s = FrameSplitter::new();
            let mut offloads = 0usize;
            for (frac, len) in [(first_frac, first_len), (second_frac, second_len)] {
                for _ in 0..len {
                    if s.route(frac * fs, fs) == Route::Offload {
                        offloads += 1;
                    }
                }
            }
            let earned = first_frac * first_len as f64 + second_frac * second_len as f64;
            prop_assert!(
                (offloads as f64 + s.credit() - earned).abs() < 1e-6,
                "offloads {} + credit {:.9} != earned {:.9}",
                offloads, s.credit(), earned
            );
        }
    }
}
