//! Named content-aware scenarios: scene-change workloads paired with
//! the paper's network degradation.
//!
//! The paper evaluates on uniform frame streams; the content-aware
//! extension asks what happens when *what is in the frames* varies.
//! Each scenario here pairs a deterministic [`SceneScript`] (per-frame
//! information scores on a dedicated RNG stream) with a network that
//! collapses mid-run, a semantic [`FilterConfig`], and an asymmetric
//! model pair: MobileNetV3Small on the device, EfficientNetB0 on the
//! server. The remote model is more accurate, so the
//! [`ModelSelection::ExpectedAccuracy`](crate::ModelSelection) policy
//! has a real trade to make — offload for accuracy while the deadline
//! risk is low, fall back to the local model when the collapsed network
//! would eat the remote edge.
//!
//! These are first-class scenario names: `ffexp --scenario scene-bursty`
//! runs one, [`content_scenarios`] feeds all three into a
//! `SweepSpec`-style grid, and the `content_sweep` bench binary commits
//! the accuracy-vs-miss-rate table over them.

use crate::experiment::ExperimentConfig;
use ff_models::{DeviceKind, ModelKind};
use ff_net::NetworkConditions;
use ff_workload::{
    scene_bursty, scene_cut_storm, scene_static, FilterConfig, SceneScript, StepSchedule,
};

/// The three named content scenarios, in canonical order.
pub const CONTENT_SCENARIO_NAMES: [&str; 3] = ["scene-static", "scene-bursty", "scene-cut-storm"];

/// The content scenarios' network: healthy, then a hard collapse window
/// (sub-megabit uplink plus loss, far past the point where a 250 ms
/// deadline survives a full frame), then recovery. The window is placed
/// per scenario — the whole point of the content axis is *what the
/// camera sees while the network is down*.
fn collapse_network(start_secs: f64, end_secs: f64) -> StepSchedule<NetworkConditions> {
    let c = NetworkConditions::new;
    StepSchedule::new(vec![
        (0.0, c(10.0, 0.0)),
        (start_secs, c(0.8, 7.0)),
        (end_secs, c(10.0, 0.0)),
    ])
}

fn content_config(
    script: SceneScript,
    network: StepSchedule<NetworkConditions>,
) -> ExperimentConfig {
    let mut config = ExperimentConfig::default();
    // The fastest Pi of Table II: 13.4 fps on MobileNetV3Small, so the
    // filtered calm-phase stream (~7-8 fps) fits on-device with headroom.
    config.device = DeviceKind::Pi4BRev14;
    config.network = network;
    config.scene = Some(script);
    // Stricter than the default filter: a static camera's resting
    // information (~0.15) sits below `skip_below`, so calm stretches are
    // mostly near-duplicates and the survivors fit the local engine.
    config.filter = Some(FilterConfig {
        skip_below: 0.22,
        shrink_below: 0.4,
        shrink_factor: 0.5,
    });
    config.remote_model = Some(ModelKind::EfficientNetB0);
    config
}

/// Build one content scenario by name (see [`CONTENT_SCENARIO_NAMES`]).
///
/// The returned config keeps `selection` at the legacy
/// `ModelSelection::AlwaysPaper`; callers compare policies by
/// overriding that field.
pub fn content_scenario(name: &str) -> Option<ExperimentConfig> {
    // Collapse windows are scenario-specific: for the static and bursty
    // scenes the network dies during a calm stretch (the filtered stream
    // fits the local model, so accuracy-aware demotion has somewhere to
    // go); for the cut storm it dies mid-storm, when every frame matters
    // and no policy can save the run — the honest negative control.
    let (script, network) = match name {
        "scene-static" => (scene_static(), collapse_network(25.0, 50.0)),
        "scene-bursty" => (scene_bursty(), collapse_network(30.0, 50.0)),
        "scene-cut-storm" => (scene_cut_storm(), collapse_network(30.0, 50.0)),
        _ => return None,
    };
    Some(content_config(script, network))
}

/// All three content scenarios as labelled configs — the exact shape of
/// a sweep spec's `scenarios` axis.
pub fn content_scenarios() -> Vec<(String, ExperimentConfig)> {
    CONTENT_SCENARIO_NAMES
        .iter()
        .map(|&name| {
            (
                name.to_string(),
                content_scenario(name).expect("canonical name"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::ModelSelection;

    #[test]
    fn every_canonical_name_builds() {
        for name in CONTENT_SCENARIO_NAMES {
            let config = content_scenario(name).expect(name);
            assert!(config.scene.is_some(), "{name} must carry a scene");
            assert!(config.filter.is_some(), "{name} must carry a filter");
            assert_eq!(config.remote_model, Some(ModelKind::EfficientNetB0));
            assert_eq!(config.selection, ModelSelection::AlwaysPaper);
        }
        assert!(content_scenario("scene-nope").is_none());
    }

    #[test]
    fn scenario_axis_matches_canonical_order() {
        let labels: Vec<String> = content_scenarios().into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels, CONTENT_SCENARIO_NAMES.to_vec());
    }
}
