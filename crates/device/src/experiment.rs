//! The end-to-end experiment: one measured edge device, the emulated
//! uplink, the multi-tenant server, background load, and a pluggable
//! controller — wired into the discrete-event simulation.
//!
//! This is the substitution for the paper's physical testbed (§IV-A).
//! Every evaluation artifact (Figures 2–4, Tables V & VI, the CPU-usage
//! observation) is produced by configuring and running this model.
//!
//! The device control loop itself (splitting, deadline tracking, probes,
//! interval aggregation, `Controller::update`) lives in the shared
//! [`DeviceRuntime`](crate::runtime::DeviceRuntime); this module is the
//! discrete-event **adapter**: it turns simulation events into runtime
//! calls and implements [`Transport`] over the emulated `ff-net` uplink.
//! The wall-clock TCP client in `ff-live` is the other adapter over the
//! very same runtime.

use crate::cpu::CpuModel;
use crate::local::{LocalEngine, LocalOutcome};
use crate::quality::{QualityAdapter, QualityConfig};
use crate::runtime::{
    DeviceRuntime, FrameOutcome, RuntimeConfig, SubmitOutcome, Transport, BACKGROUND_TAG_BASE,
};
use crate::selection::ModelSelection;
use crate::selector::{ModelSelector, SelectorConfig};
use crate::splitter::Route;
use crate::trace::{timeout_fate, FrameFate, FrameRecord, FrameTrace};
use ff_core::Controller;
use ff_metrics::{LatencyStats, LatencySummary, QosLog};
use ff_models::{DeviceKind, GpuProfile, ModelKind};
use ff_net::{Link, LinkConfig, LinkStats, LossModel, NetworkConditions, SendOutcome};
use ff_server::{
    BatchOutput, OverflowPolicy, PoissonArrivals, Request, ServerStats, ServerTier, TenantId,
    TierConfig, TierSubmit,
};
use ff_sim::{Ctx, RngFactory, SimDuration, SimModel, SimTime, Simulation};
use ff_telemetry::{Metric, Recorder, Scope, Telemetry};
use ff_trace::{TraceHandle, TraceHeader};
use ff_workload::{
    FilterConfig, FilterStats, FilterVerdict, FrameSource, FrameStream, ReplayCursor, ReplayFrames,
    SceneScript, SemanticFilter, StepSchedule, StreamConfig,
};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The measured device's tenant id; background tenants start at 1000.
const DEVICE_TENANT: TenantId = TenantId(0);
const BACKGROUND_TENANT: TenantId = TenantId(1000);

/// Full configuration of one experiment run.
///
/// Serializable: the `ffexp` CLI accepts a JSON file with this exact
/// shape (`ffexp --dump-config` emits the defaults as a template).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Master seed; every stochastic component derives its own stream.
    pub seed: u64,
    /// The measured edge device (paper: the Pis of Table II).
    pub device: DeviceKind,
    /// The classification model (paper: MobileNetV3Small for Figs. 2–4).
    pub model: ModelKind,
    /// Frame stream parameters (30 fps, 4,000 frames).
    pub stream: StreamConfig,
    /// End-to-end deadline (250 ms, §II-B).
    pub deadline: SimDuration,
    /// Static link parameters.
    pub link: LinkConfig,
    /// Network schedule (Table V, Fig. 2 injection, or ideal).
    pub network: StepSchedule<NetworkConditions>,
    /// Optional loss-process override (e.g. Gilbert–Elliott bursts). When
    /// set, it replaces the schedule's Bernoulli loss at every phase; the
    /// schedule's bandwidth still applies.
    pub loss_model: Option<LossModel>,
    /// Background offered load schedule in requests/s (Table VI or zero).
    pub background: StepSchedule<f64>,
    /// Controller measurement period (1 s, Table IV).
    pub controller_period: SimDuration,
    /// Trailing window for the timeout-rate input `T` ("the average of T
    /// from the last few seconds", §III-A.1).
    pub timeout_window: SimDuration,
    /// Server GPU profile (batch limit 15).
    pub gpu: GpuProfile,
    /// Constant additional tenants sharing the server (the paper runs
    /// three Pis concurrently; the two unmeasured ones are peers).
    pub peer_devices: u32,
    /// Offered offload rate of each peer in frames/s.
    pub peer_rate_fps: f64,
    /// Enable the §II-D adaptive-quality extension: JPEG quality steps
    /// down under network-attributed timeouts and recovers when clean.
    pub adaptive_quality: Option<QualityConfig>,
    /// Record the fate of every individual frame (memory ∝ stream length).
    pub record_trace: bool,
    /// Enable the adaptive local-model ladder: sustained offloading
    /// upgrades the local model to a slower, more accurate one.
    pub adaptive_local_model: Option<SelectorConfig>,
    /// Optional server outage window: the server process crashes at
    /// `from_secs` (losing its queue and running batch) and a fresh
    /// process returns at `until_secs`. While down, nothing that enters
    /// the uplink ever reaches the server — offloads and probes resolve
    /// only by their deadlines, so the controller sees `T` equal to the
    /// attempted rate and must fall back to the §III-A.1 probe floor.
    pub outage: Option<ServerOutage>,
    /// Replace the generative frame source with a recorded capture
    /// schedule (e.g. extracted from a binary trace via
    /// `ReplayFrames::from_trace`): same capture instants, same raw
    /// sizes, no frame-stream RNG. `stream` still supplies `fps` and
    /// compression parameters.
    #[serde(default)]
    pub replay: Option<ReplayFrames>,
    /// Explicit server-tier topology (N servers, routing policy,
    /// admission policy). `None` — the default, so existing JSON
    /// configs still parse — means the legacy single server built from
    /// `gpu`, which is bit-identical to the pre-tier path. The legacy
    /// `outage` window takes the whole tier down at once.
    #[serde(default)]
    pub tier: Option<TierConfig>,
    /// Scene-change script scoring each generated frame's information
    /// content on a dedicated RNG stream ("scene"). `None` — the default
    /// — draws nothing and is bit-identical to the pre-scene source.
    /// Ignored for replayed capture schedules (recorded sizes already
    /// embed any content structure).
    #[serde(default)]
    pub scene: Option<SceneScript>,
    /// Semantic frame filter (skip/shrink/pass). Only acts on frames
    /// that carry an information score, i.e. requires `scene`; `None`
    /// passes every frame untouched.
    #[serde(default)]
    pub filter: Option<FilterConfig>,
    /// Accuracy-aware model selection. The default `AlwaysPaper` is the
    /// paper's always-remote policy, bit-identical to the pre-selection
    /// runtime (`tests/content_inert.rs`).
    #[serde(default)]
    pub selection: ModelSelection,
    /// The model served remotely. `None` — the default — means the
    /// device model `model` runs on the server too (the paper's setup);
    /// `Some` enables the small-local / large-remote split whose
    /// accuracies feed [`ModelSelection::ExpectedAccuracy`].
    #[serde(default)]
    pub remote_model: Option<ModelKind>,
}

/// A server crash-and-restart window (see [`ExperimentConfig::outage`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerOutage {
    /// Crash instant in seconds from the start of the run.
    pub from_secs: f64,
    /// Recovery instant in seconds; must be after `from_secs`.
    pub until_secs: f64,
}

impl ServerOutage {
    fn validate(&self) {
        assert!(
            self.from_secs.is_finite() && self.from_secs >= 0.0,
            "outage start must be finite and >= 0"
        );
        assert!(
            self.until_secs.is_finite() && self.until_secs > self.from_secs,
            "outage must end after it starts"
        );
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 42,
            device: DeviceKind::Pi4BRev12,
            model: ModelKind::MobileNetV3Small,
            stream: StreamConfig::default(),
            deadline: SimDuration::from_millis(250),
            link: LinkConfig::default(),
            network: ff_workload::ideal_network(),
            loss_model: None,
            background: StepSchedule::constant(0.0),
            controller_period: SimDuration::from_secs(1),
            timeout_window: SimDuration::from_secs(3),
            gpu: GpuProfile::default(),
            peer_devices: 2,
            peer_rate_fps: 13.0,
            adaptive_quality: None,
            record_trace: false,
            adaptive_local_model: None,
            outage: None,
            replay: None,
            tier: None,
            scene: None,
            filter: None,
            selection: ModelSelection::AlwaysPaper,
            remote_model: None,
        }
    }
}

/// Everything an experiment run produces.
///
/// `Deserialize` + `Clone` make the result round-trippable through the
/// `ff-sweep` content-hash cache (a cached cell is read back from JSON
/// instead of re-simulated).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Name of the controller that produced this run.
    pub controller: String,
    /// Per-second QoS records (Table I notation).
    pub qos: QosLog,
    /// Latency order statistics over successful offloads.
    pub offload_latency: Option<LatencySummary>,
    /// Breakdown: capture -> server arrival (uplink share).
    pub uplink_latency: Option<LatencySummary>,
    /// Breakdown: server arrival -> response at the device.
    pub server_latency: Option<LatencySummary>,
    /// Uplink counters (drops, retransmissions).
    pub link_stats: LinkStats,
    /// Server counters (batches, rejections).
    pub server_stats: ServerStats,
    /// Modeled mean device CPU usage over the run (percent).
    pub cpu_usage_pct: f64,
    /// Fraction of the run the local inference engine spent computing.
    pub local_busy_fraction: f64,
    /// Frames the source produced.
    pub frames_generated: u64,
    /// Frames routed to the uplink.
    pub frames_offloaded: u64,
    /// Frames routed to the local engine (including skipped ones).
    pub frames_local: u64,
    /// Offloads whose response beat the deadline.
    pub offload_successes: u64,
    /// Offloads that missed the deadline (`T`).
    pub offload_timeouts: u64,
    /// Mean total throughput `P` over the run (frames/s).
    pub mean_throughput: f64,
    /// Mean predicted top-1 accuracy over offloaded frames, reflecting
    /// any adaptive-quality downgrades (`None` when nothing offloaded).
    pub mean_offload_accuracy: Option<f64>,
    /// Mean JPEG quality at which frames were offloaded.
    pub mean_offload_quality: Option<f64>,
    /// Per-frame records (only when `record_trace` was set).
    pub trace: Option<Vec<FrameRecord>>,
    /// Mean predicted top-1 accuracy over locally inferred frames
    /// (reflects adaptive-local-model upgrades).
    pub mean_local_accuracy: Option<f64>,
    /// Per-server counters, in tier order (defaulted for results cached
    /// before the tier existed).
    #[serde(default)]
    pub per_server_stats: Vec<ServerStats>,
    /// Requests turned away by the tier's admission policy.
    #[serde(default)]
    pub admission_rejections: u64,
    /// Semantic-filter verdict counts (`None` when no filter ran).
    /// Conservation is structural: `passed + shrunk + skipped ==
    /// captured`, and skipped frames appear in no other frame counter.
    #[serde(default)]
    pub filter_stats: Option<FilterStats>,
    /// Mean accuracy-weighted throughput over intervals that completed
    /// at least one frame (Table III weighting; see `QosAggregate`).
    #[serde(default)]
    pub mean_accuracy_weighted_throughput: f64,
}

enum Event {
    Capture,
    LocalDone,
    Uplinked {
        tag: u64,
    },
    /// Server `server`'s running batch completes. `epoch` guards against
    /// batch-done events scheduled by a server process that has since
    /// crashed: a stale epoch means the batch was lost with the crash
    /// and the event must be ignored.
    BatchDone {
        server: usize,
        epoch: u64,
    },
    Response {
        tag: u64,
    },
    Deadline {
        tag: u64,
    },
    Tick,
    NetworkChange(usize),
    LoadChange(usize),
    BackgroundArrival,
    ServerCrash,
    ServerRecover,
}

/// The sim side of the [`Transport`] seam: frames enter the emulated
/// uplink, and deliveries become `Uplinked` events on the simulation's
/// calendar.
struct SimTransport<'a, 'b> {
    ctx: &'a mut Ctx<'b, Event>,
    link: &'a mut Link<ChaCha8Rng>,
}

impl Transport for SimTransport<'_, '_> {
    fn send(&mut self, tag: u64, bytes: u64, now: SimTime) -> SubmitOutcome {
        debug_assert_eq!(now, self.ctx.now(), "sim transport called out of sync");
        match self.link.send(now, bytes) {
            SendOutcome::Delivered { at } => {
                self.ctx.schedule_at(at, Event::Uplinked { tag });
                SubmitOutcome::Accepted
            }
            SendOutcome::Dropped(_) => SubmitOutcome::DroppedInNetwork,
        }
    }
}

/// Experiment-side observability state (see `FleetObs` in `fleet.rs`
/// for the invariants: strictly write-only, never schedules events).
///
/// Lives outside [`ExperimentConfig`] because the config is the
/// serializable `ffexp` surface; telemetry is a process-local pipeline
/// handle and is threaded in via [`run_experiment_with_telemetry`].
struct ExpObs {
    telemetry: Telemetry,
    recorder: Recorder,
    device: Scope,
    engine: Scope,
    /// Tier-aggregate scope; stays named "server" at any N so pinned
    /// scope ids keep working.
    server: Scope,
    /// Per-server scopes ("server/{i}"), interned only for N > 1 tiers.
    servers: Vec<Scope>,
    last_server: ServerStats,
    last_servers: Vec<ServerStats>,
    last_admission: u64,
    last_offloaded: u64,
    last_local: u64,
    last_instant_failures: u64,
}

impl ExpObs {
    fn new(telemetry: &Telemetry, n_servers: usize) -> ExpObs {
        let servers: Vec<Scope> = if n_servers > 1 {
            (0..n_servers)
                .map(|i| telemetry.scope(&format!("server/{i}")))
                .collect()
        } else {
            Vec::new()
        };
        ExpObs {
            recorder: telemetry.recorder(),
            device: telemetry.scope("device/0"),
            engine: telemetry.scope("engine"),
            server: telemetry.scope("server"),
            last_server: ServerStats::default(),
            last_servers: vec![ServerStats::default(); servers.len()],
            servers,
            last_admission: 0,
            last_offloaded: 0,
            last_local: 0,
            last_instant_failures: 0,
            telemetry: telemetry.clone(),
        }
    }
}

struct World {
    config: ExperimentConfig,
    controller: Box<dyn Controller>,
    runtime: DeviceRuntime,
    source: FrameStream<ChaCha8Rng>,
    engine: LocalEngine<ChaCha8Rng>,
    link: Link<ChaCha8Rng>,
    tier: ServerTier,
    /// The tier's routing stream ("routing"); consumed only by
    /// power-of-two-choices routing with two or more live servers, so
    /// legacy single-server runs never advance it.
    routing_rng: ChaCha8Rng,
    /// Reused batch-completion buffers: one allocation for the whole run
    /// instead of three fresh `Vec`s per finished batch.
    batch_out: BatchOutput,
    bg_arrivals: PoissonArrivals<ChaCha8Rng>,
    bg_rate: f64,
    bg_pending: bool,
    bg_seq: u64,
    latencies: LatencyStats,
    uplink_latencies: LatencyStats,
    server_latencies: LatencyStats,
    frames_local: u64,
    filter: Option<SemanticFilter>,
    /// The model classifying offloaded frames (`remote_model` when set,
    /// else the device model — the paper's single-model setup).
    offload_model: ModelKind,
    quality: Option<QualityAdapter>,
    accuracy_sum: f64,
    quality_sum: f64,
    trace: FrameTrace,
    local_running: Option<u64>,
    local_pending: Option<u64>,
    selector: Option<ModelSelector>,
    current_local_accuracy: f64,
    local_accuracy_sum: f64,
    local_done_total: u64,
    end_at: SimTime,
    obs: ExpObs,
}

impl World {
    fn offload_frame(
        &mut self,
        ctx: &mut Ctx<'_, Event>,
        tag: u64,
        captured_at: SimTime,
        bytes: u64,
    ) {
        let submission = {
            let mut transport = SimTransport {
                ctx: &mut *ctx,
                link: &mut self.link,
            };
            self.runtime
                .offload(&mut transport, tag, bytes, captured_at)
        };
        ctx.schedule_at(submission.deadline_at, Event::Deadline { tag });
    }

    fn submit_to_server(&mut self, ctx: &mut Ctx<'_, Event>, request: Request) -> TierSubmit {
        // The measured device's real frames are subject to admission
        // control; probes and the modeled background tenants are not.
        let regulated =
            request.tenant == DEVICE_TENANT && !crate::runtime::is_probe_tag(request.tag);
        let outcome = self
            .tier
            .submit(ctx.now(), request, regulated, &mut self.routing_rng);
        if let TierSubmit::BatchStarted { server, done_at } = outcome {
            ctx.schedule_at(
                done_at,
                Event::BatchDone {
                    server,
                    epoch: self.tier.epoch(server),
                },
            );
        }
        outcome
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, Event>) {
        let now = ctx.now();
        let out = {
            let mut transport = SimTransport {
                ctx: &mut *ctx,
                link: &mut self.link,
            };
            self.runtime
                .tick(now, self.controller.as_mut(), &mut transport)
        };
        if let Some(adapter) = &mut self.quality {
            adapter.update(out.record.timeouts_network);
        }
        if let Some(selector) = &mut self.selector {
            let before = selector.model();
            let after = selector.update(out.record.po_target / self.config.stream.fps);
            if before != after {
                self.engine.set_rate_fps(selector.local_rate_fps());
                self.current_local_accuracy = after.profile().top1_accuracy;
            }
        }
        ctx.schedule_at(
            out.probe_deadline_at,
            Event::Deadline { tag: out.probe_tag },
        );

        let next = now + self.config.controller_period;
        if next <= self.end_at {
            ctx.schedule_at(next, Event::Tick);
        }

        self.observe_tick(ctx, &out.record);
    }

    /// Report the controller-period observations to telemetry, then
    /// poll the collector. Purely observational (see `FleetWorld`).
    fn observe_tick(&mut self, ctx: &Ctx<'_, Event>, record: &ff_metrics::QosRecord) {
        if !self.obs.recorder.is_enabled() {
            return;
        }
        let t = ctx.now().as_micros();
        let rec = &mut self.obs.recorder;
        let fs = self.config.stream.fps;

        let device = self.obs.device;
        rec.gauge(device, Metric::Po, record.po, t);
        rec.gauge(device, Metric::Pl, record.pl, t);
        rec.gauge(device, Metric::TimeoutRate, record.timeouts, t);
        rec.gauge(device, Metric::TimeoutsNetwork, record.timeouts_network, t);
        rec.gauge(device, Metric::TimeoutsLoad, record.timeouts_load, t);
        rec.gauge(device, Metric::PoTarget, record.po_target, t);
        let err = fs - (record.po + record.pl);
        rec.gauge(device, Metric::ControllerError, err, t);
        rec.gauge(device, Metric::InFlight, self.runtime.in_flight() as f64, t);
        let offloaded = self.runtime.frames_offloaded();
        rec.counter(
            device,
            Metric::FramesOffloaded,
            offloaded - self.obs.last_offloaded,
            t,
        );
        self.obs.last_offloaded = offloaded;
        rec.counter(
            device,
            Metric::FramesLocal,
            self.frames_local - self.obs.last_local,
            t,
        );
        self.obs.last_local = self.frames_local;
        let failures = self.runtime.instant_failures();
        rec.counter(
            device,
            Metric::InstantFailures,
            failures - self.obs.last_instant_failures,
            t,
        );
        self.obs.last_instant_failures = failures;

        let engine = self.obs.engine;
        rec.gauge(
            engine,
            Metric::EventsHandled,
            ctx.events_handled() as f64,
            t,
        );
        rec.gauge(
            engine,
            Metric::PendingEvents,
            ctx.pending_events() as f64,
            t,
        );

        // Tier aggregate under the legacy "server" scope.
        let server = self.obs.server;
        let stats = self.tier.total_stats();
        let last = self.obs.last_server;
        let queue_depth: usize = (0..self.tier.len())
            .map(|i| self.tier.server(i).queue_len())
            .sum();
        rec.gauge(server, Metric::ServerQueueDepth, queue_depth as f64, t);
        let occupancy: usize = (0..self.tier.len())
            .map(|i| self.tier.server(i).running_batch_size().unwrap_or(0))
            .sum();
        rec.gauge(server, Metric::BatchOccupancy, occupancy as f64, t);
        let d = stats.requests_received - last.requests_received;
        rec.counter(server, Metric::ServerRequests, d, t);
        let d = stats.completions - last.completions;
        rec.counter(server, Metric::ServerCompletions, d, t);
        let d = stats.rejections - last.rejections;
        rec.counter(server, Metric::ServerRejections, d, t);
        let d = stats.batches_executed - last.batches_executed;
        rec.counter(server, Metric::ServerBatches, d, t);
        let admission = self.tier.admission_rejections();
        let d = admission - self.obs.last_admission;
        rec.counter(server, Metric::AdmissionRejections, d, t);
        self.obs.last_admission = admission;
        self.obs.last_server = stats;

        // Per-server scopes, only interned for multi-server tiers.
        for (i, &scope) in self.obs.servers.iter().enumerate() {
            let s = self.tier.server(i);
            let stats = s.stats();
            let last = self.obs.last_servers[i];
            rec.gauge(scope, Metric::ServerUp, self.tier.is_up(i) as u64 as f64, t);
            rec.gauge(scope, Metric::ServerQueueDepth, s.queue_len() as f64, t);
            let occupancy = s.running_batch_size().unwrap_or(0);
            rec.gauge(scope, Metric::BatchOccupancy, occupancy as f64, t);
            let d = stats.requests_received - last.requests_received;
            rec.counter(scope, Metric::ServerRequests, d, t);
            let d = stats.completions - last.completions;
            rec.counter(scope, Metric::ServerCompletions, d, t);
            let d = stats.rejections - last.rejections;
            rec.counter(scope, Metric::ServerRejections, d, t);
            let d = stats.batches_executed - last.batches_executed;
            rec.counter(scope, Metric::ServerBatches, d, t);
            self.obs.last_servers[i] = stats;
        }

        self.obs.telemetry.poll();
    }

    fn schedule_background(&mut self, ctx: &mut Ctx<'_, Event>) {
        if self.bg_pending {
            return;
        }
        if let Some(at) = self.bg_arrivals.next_after(ctx.now(), self.bg_rate) {
            self.bg_pending = true;
            ctx.schedule_at(at, Event::BackgroundArrival);
        }
    }

    fn total_background_rate(&self, t_secs: f64) -> f64 {
        self.config.background.value_at(t_secs)
            + self.config.peer_devices as f64 * self.config.peer_rate_fps
    }
}

impl SimModel for World {
    type Event = Event;

    fn handle(&mut self, ctx: &mut Ctx<'_, Event>, event: Event) {
        match event {
            Event::Capture => {
                let Some(frame) = self.source.next_frame() else {
                    return;
                };
                let now = ctx.now();
                debug_assert_eq!(frame.captured_at, now, "capture event out of sync");
                // The semantic filter sits between capture and the
                // splitter; it only sees frames with an information
                // score (generated streams with a scene script).
                let mut frame_bytes = frame.bytes;
                if let (Some(filter), Some(info)) = (&mut self.filter, self.source.last_info()) {
                    match filter.verdict(info, frame.bytes) {
                        FilterVerdict::Pass => {}
                        FilterVerdict::Shrink { bytes } => frame_bytes = bytes,
                        FilterVerdict::Skip => {
                            // Never reaches the splitter; counted only in
                            // the filter stats and the per-frame trace.
                            self.trace.captured(
                                frame.id.0,
                                now,
                                frame.bytes,
                                FrameFate::FilteredOut,
                            );
                            if !self.source.exhausted() {
                                let next = self.source.next_capture_time();
                                ctx.schedule_at(next, Event::Capture);
                            }
                            return;
                        }
                    }
                }
                match self.runtime.route_frame(frame.id.0, frame_bytes, now) {
                    Route::Offload => {
                        let resolution = self.config.stream.compression.resolution;
                        let (bytes, quality) = match &self.quality {
                            Some(adapter) => (
                                (frame_bytes as f64 * adapter.byte_scale(resolution)).round()
                                    as u64,
                                adapter.quality(),
                            ),
                            None => (frame_bytes, self.config.stream.compression.quality),
                        };
                        self.accuracy_sum += ff_models::predicted_top1(
                            self.offload_model,
                            ff_models::Compression::new(quality, resolution),
                        );
                        self.quality_sum += quality as f64;
                        self.trace
                            .captured(frame.id.0, now, bytes.max(1), FrameFate::Unresolved);
                        self.offload_frame(ctx, frame.id.0, now, bytes.max(1));
                    }
                    Route::Local => {
                        self.trace
                            .captured(frame.id.0, now, frame_bytes, FrameFate::Unresolved);
                        match self.engine.offer(now) {
                            LocalOutcome::Started { done_at } => {
                                ctx.schedule_at(done_at, Event::LocalDone);
                                self.local_running = Some(frame.id.0);
                            }
                            LocalOutcome::Queued => {
                                self.local_pending = Some(frame.id.0);
                            }
                            LocalOutcome::Replaced => {
                                if let Some(skipped) = self.local_pending.replace(frame.id.0) {
                                    self.trace.resolve(skipped, FrameFate::LocalSkipped);
                                }
                            }
                        }
                        self.frames_local += 1;
                    }
                }
                if !self.source.exhausted() {
                    let next = self.source.next_capture_time();
                    ctx.schedule_at(next, Event::Capture);
                }
            }

            Event::LocalDone => {
                self.runtime.note_local_done(1, ctx.now());
                self.local_done_total += 1;
                self.local_accuracy_sum += self.current_local_accuracy;
                if let Some(finished) = self.local_running.take() {
                    self.trace.resolve(finished, FrameFate::LocalCompleted);
                }
                if let Some(next_done) = self.engine.complete(ctx.now()) {
                    ctx.schedule_at(next_done, Event::LocalDone);
                    self.local_running = self.local_pending.take();
                }
            }

            Event::Uplinked { tag } => {
                let now = ctx.now();
                let request = Request {
                    tenant: DEVICE_TENANT,
                    model: self.config.model,
                    submitted_at: now,
                    tag,
                };
                match self.submit_to_server(ctx, request) {
                    // The packet crossed the link into a dead endpoint.
                    // The frame stays un-arrived, so its timeout is
                    // attributed to the network side (no server saw it).
                    TierSubmit::Lost => {}
                    // Turned away at the door: the tier saw it, so the
                    // timeout is attributed to server load, exactly like
                    // a batch-formation rejection.
                    TierSubmit::AdmissionRejected => {
                        self.runtime.frame_arrived_at_server(tag, now);
                        self.runtime.frame_rejected_by_server(tag, now);
                    }
                    TierSubmit::Queued { .. } | TierSubmit::BatchStarted { .. } => {
                        self.runtime.frame_arrived_at_server(tag, now);
                    }
                }
            }

            Event::BatchDone { server, epoch } => {
                if epoch != self.tier.epoch(server) {
                    // Scheduled by a server process that has since crashed;
                    // the batch died with it.
                    return;
                }
                let now = ctx.now();
                self.tier.batch_done_into(server, now, &mut self.batch_out);
                for c in &self.batch_out.completions {
                    if c.request.tenant == DEVICE_TENANT {
                        let at = now + self.config.link.propagation;
                        ctx.schedule_at(at, Event::Response { tag: c.request.tag });
                    }
                }
                for r in &self.batch_out.rejections {
                    if r.request.tenant == DEVICE_TENANT && r.request.tag < BACKGROUND_TAG_BASE {
                        self.runtime.frame_rejected_by_server(r.request.tag, now);
                    }
                }
                if let Some(done_at) = self.batch_out.next_done {
                    ctx.schedule_at(done_at, Event::BatchDone { server, epoch });
                }
            }

            Event::Response { tag } => {
                let now = ctx.now();
                match self.runtime.on_response(tag, now, true) {
                    FrameOutcome::Success { latency, breakdown } => {
                        let latency_ms = latency.as_secs_f64() * 1_000.0;
                        self.latencies.record_ms(latency_ms);
                        self.trace
                            .resolve(tag, FrameFate::OffloadSucceeded { latency_ms });
                        if let (Some(up), Some(srv)) = (breakdown.uplink, breakdown.server_and_down)
                        {
                            self.uplink_latencies.record_ms(up.as_secs_f64() * 1_000.0);
                            self.server_latencies.record_ms(srv.as_secs_f64() * 1_000.0);
                        }
                    }
                    FrameOutcome::Timeout { cause } => {
                        self.trace.resolve(tag, timeout_fate(cause));
                    }
                    // Probes are absorbed by the runtime; `Stale` means the
                    // deadline event already resolved this frame. Sim
                    // responses always carry `ok = true` (rejections arrive
                    // through the batch path), so `Rejected` cannot occur.
                    FrameOutcome::Probe | FrameOutcome::Stale | FrameOutcome::Rejected => {}
                }
            }

            Event::Deadline { tag } => {
                if let Some(cause) = self.runtime.on_deadline(tag, ctx.now()) {
                    self.trace.resolve(tag, timeout_fate(cause));
                }
            }

            Event::Tick => self.tick(ctx),

            Event::NetworkChange(step) => {
                let conditions = self.config.network.steps()[step].1;
                self.link.set_conditions(conditions);
                if let Some(model) = self.config.loss_model {
                    self.link.set_loss_model(model);
                }
            }

            Event::LoadChange(step) => {
                let t = self.config.background.steps()[step].0;
                self.bg_rate = self.total_background_rate(t);
                self.schedule_background(ctx);
            }

            Event::BackgroundArrival => {
                self.bg_pending = false;
                let now = ctx.now();
                let tag = BACKGROUND_TAG_BASE + self.bg_seq;
                self.bg_seq += 1;
                let request = Request {
                    tenant: BACKGROUND_TENANT,
                    model: self.config.model,
                    submitted_at: now,
                    tag,
                };
                self.submit_to_server(ctx, request);
                self.schedule_background(ctx);
            }

            Event::ServerCrash => {
                // The legacy outage semantics: the whole tier goes dark
                // at once (for N = 1 this is exactly the old behaviour).
                for i in 0..self.tier.len() {
                    self.tier.crash(i);
                }
            }

            Event::ServerRecover => {
                for i in 0..self.tier.len() {
                    self.tier.recover(i);
                }
            }
        }
    }
}

/// Run one experiment with the given controller.
pub fn run_experiment(
    config: ExperimentConfig,
    controller: Box<dyn Controller>,
) -> ExperimentResult {
    run_experiment_with_telemetry(config, controller, &Telemetry::disabled())
}

/// Like [`run_experiment`], but reporting into an observability
/// pipeline. Results are bit-identical to a telemetry-off run (the
/// pipeline is strictly write-only with respect to the simulation);
/// the final partial window stays open until the caller's
/// [`Telemetry::finish`], so one pipeline can span several runs.
///
/// Telemetry is a parameter rather than an [`ExperimentConfig`] field
/// because the config is the serializable `ffexp` CLI surface, while a
/// pipeline handle is inherently process-local.
pub fn run_experiment_with_telemetry(
    config: ExperimentConfig,
    controller: Box<dyn Controller>,
    telemetry: &Telemetry,
) -> ExperimentResult {
    run_experiment_inner(config, controller, telemetry, false).0
}

/// Like [`run_experiment`], but also recording the run into a binary
/// `ff-trace` event log, returned alongside the result. Recording is
/// strictly write-only: the [`ExperimentResult`] is bit-identical to an
/// untraced run (see `tests/trace_inert.rs`), and the trace replay-
/// verifies against a fresh runtime (`crate::replay_verify`).
pub fn run_experiment_traced(
    config: ExperimentConfig,
    controller: Box<dyn Controller>,
) -> (ExperimentResult, Vec<u8>) {
    let (result, trace) = run_experiment_inner(config, controller, &Telemetry::disabled(), true);
    (result, trace.expect("recording was requested"))
}

fn run_experiment_inner(
    config: ExperimentConfig,
    mut controller: Box<dyn Controller>,
    telemetry: &Telemetry,
    record_binary_trace: bool,
) -> (ExperimentResult, Option<Vec<u8>>) {
    let rng = RngFactory::new(config.seed);
    let fs = config.stream.fps;
    if let Some(outage) = &config.outage {
        outage.validate();
    }

    // Run-constant Table III accuracies: the device model answers local
    // frames, `remote_model` (when set) answers offloaded ones.
    let local_accuracy = config.model.profile().top1_accuracy;
    let offload_model = config.remote_model.unwrap_or(config.model);
    let remote_accuracy = offload_model.profile().top1_accuracy;

    // The runtime makes the bootstrap decision at t = 0 so policies with
    // static targets (e.g. always-offload) act from the first frame.
    let mut runtime = DeviceRuntime::new(
        RuntimeConfig {
            fs,
            deadline: config.deadline,
            controller_period: config.controller_period,
            timeout_window: config.timeout_window,
            probe_bytes: config.stream.compression.mean_frame_bytes(),
            selection: config.selection,
            local_accuracy,
            remote_accuracy,
        },
        controller.as_mut(),
    );
    if record_binary_trace {
        runtime.set_trace(TraceHandle::recording(&TraceHeader {
            fs,
            deadline_us: config.deadline.as_micros(),
            controller_period_us: config.controller_period.as_micros(),
            timeout_window_us: config.timeout_window.as_micros(),
            probe_bytes: config.stream.compression.mean_frame_bytes(),
            seed: config.seed,
            controller: controller.name().to_string(),
            selection: config.selection.code(),
            selection_margin: config.selection.margin(),
            local_accuracy,
            remote_accuracy,
        }));
    }

    // A replayed schedule ends at its recorded last capture; a generated
    // one at `total_frames` intervals. Both get the deadline tail so the
    // final offloads can resolve.
    let stream_end = match &config.replay {
        Some(replay) => replay.duration() + config.stream.frame_interval(),
        None => config.stream.stream_duration(),
    };
    let end_at = SimTime::ZERO + stream_end + config.deadline;
    let initial_conditions = *config.network.value_at(0.0);
    let initial_bg =
        config.background.value_at(0.0) + config.peer_devices as f64 * config.peer_rate_fps;

    let mut link = Link::new(config.link, initial_conditions, rng.stream("link"));
    if let Some(model) = config.loss_model {
        link.set_loss_model(model);
    }
    let source = match (&config.replay, &config.scene) {
        (Some(replay), _) => FrameStream::Replay(ReplayCursor::new(replay.clone())),
        (None, Some(script)) => FrameStream::Generated(FrameSource::with_scene(
            config.stream,
            rng.stream("frames"),
            script.clone(),
            rng.stream("scene"),
        )),
        (None, None) => {
            FrameStream::Generated(FrameSource::new(config.stream, rng.stream("frames")))
        }
    };
    let tier_config = config
        .tier
        .clone()
        .unwrap_or_else(|| TierConfig::single(config.gpu, OverflowPolicy::default()));
    let tier = ServerTier::new(&tier_config);
    let n_servers = tier.len();
    let world = World {
        runtime,
        source,
        engine: LocalEngine::new(config.device, config.model, rng.stream("local")),
        link,
        tier,
        routing_rng: rng.stream("routing"),
        batch_out: BatchOutput::default(),
        bg_arrivals: PoissonArrivals::new(rng.stream("background")),
        bg_rate: initial_bg,
        bg_pending: false,
        bg_seq: 0,
        latencies: LatencyStats::new(),
        uplink_latencies: LatencyStats::new(),
        server_latencies: LatencyStats::new(),
        frames_local: 0,
        filter: config.filter.map(SemanticFilter::new),
        offload_model,
        quality: config.adaptive_quality.map(QualityAdapter::new),
        accuracy_sum: 0.0,
        quality_sum: 0.0,
        trace: FrameTrace::with_capacity(config.record_trace, config.stream.total_frames as usize),
        local_running: None,
        local_pending: None,
        selector: config
            .adaptive_local_model
            .clone()
            .map(|c| ModelSelector::new(c, config.device)),
        current_local_accuracy: config.model.profile().top1_accuracy,
        local_accuracy_sum: 0.0,
        local_done_total: 0,
        end_at,
        obs: ExpObs::new(telemetry, n_servers),
        controller,
        config,
    };

    let controller_period = world.config.controller_period;
    let outage = world.config.outage;
    let network_steps: Vec<f64> = world
        .config
        .network
        .steps()
        .iter()
        .map(|&(t, _)| t)
        .collect();
    let background_steps: Vec<f64> = world
        .config
        .background
        .steps()
        .iter()
        .map(|&(t, _)| t)
        .collect();

    // Pre-size the calendar: steady state holds one deadline per in-flight
    // offload plus captures, ticks, and batch completions — well under 512
    // even at full offload. Sized once, the heap never reallocates, which
    // matters when a sweep executes thousands of runs back to back.
    let mut sim = Simulation::with_event_capacity(world, 512);
    let first_capture = sim.model().source.next_capture_time();
    sim.schedule_at(first_capture, Event::Capture);
    sim.schedule_at(SimTime::ZERO + controller_period, Event::Tick);
    for (i, &t) in network_steps.iter().enumerate().skip(1) {
        sim.schedule_at(SimTime::from_secs_f64(t), Event::NetworkChange(i));
    }
    for (i, &t) in background_steps.iter().enumerate().skip(1) {
        sim.schedule_at(SimTime::from_secs_f64(t), Event::LoadChange(i));
    }
    // Kick off the initial background process.
    sim.schedule_at(SimTime::ZERO, Event::LoadChange(0));
    if let Some(outage) = outage {
        sim.schedule_at(SimTime::from_secs_f64(outage.from_secs), Event::ServerCrash);
        sim.schedule_at(
            SimTime::from_secs_f64(outage.until_secs),
            Event::ServerRecover,
        );
    }

    sim.run_until(end_at);
    let now = sim.now();
    let mut world = sim.into_model();
    world.obs.telemetry.poll();

    let local_busy_fraction = world.engine.busy_fraction(now);
    let frames_generated = world.source.generated();
    let frames_offloaded = world.runtime.frames_offloaded();
    let offload_share = if frames_generated == 0 {
        0.0
    } else {
        (frames_offloaded as f64 / frames_generated as f64).min(1.0)
    };
    let cpu_usage_pct = CpuModel::default().usage_pct(local_busy_fraction, offload_share);
    let offload_successes = world.runtime.successes();
    let offload_timeouts = world.runtime.timeouts();
    let binary_trace = world.runtime.finish_trace(now);
    let qos = world.runtime.into_qos();

    let result = ExperimentResult {
        controller: world.controller.name().to_string(),
        offload_latency: world.latencies.summary(),
        uplink_latency: world.uplink_latencies.summary(),
        server_latency: world.server_latencies.summary(),
        link_stats: world.link.stats(),
        server_stats: world.tier.total_stats(),
        per_server_stats: world.tier.per_server_stats(),
        admission_rejections: world.tier.admission_rejections(),
        cpu_usage_pct,
        local_busy_fraction,
        frames_generated,
        frames_offloaded,
        frames_local: world.frames_local,
        offload_successes,
        offload_timeouts,
        mean_throughput: qos.mean_throughput(),
        mean_offload_accuracy: (frames_offloaded > 0)
            .then(|| world.accuracy_sum / frames_offloaded as f64),
        mean_offload_quality: (frames_offloaded > 0)
            .then(|| world.quality_sum / frames_offloaded as f64),
        mean_local_accuracy: (world.local_done_total > 0)
            .then(|| world.local_accuracy_sum / world.local_done_total as f64),
        trace: world.trace.is_enabled().then(|| world.trace.into_records()),
        filter_stats: world.filter.as_ref().map(|f| f.stats()),
        mean_accuracy_weighted_throughput: qos.mean_accuracy_weighted(),
        qos,
    };
    (result, binary_trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_baselines::{AllOrNothing, AlwaysOffload, LocalOnly};
    use ff_core::FrameFeedback;

    fn short_config() -> ExperimentConfig {
        let mut c = ExperimentConfig::default();
        c.stream.total_frames = 900; // 30 s at 30 fps
        c.peer_devices = 0;
        c
    }

    #[test]
    fn local_only_throughput_is_the_table_ii_rate() {
        let result = run_experiment(short_config(), Box::new(LocalOnly::new()));
        assert_eq!(result.controller, "local-only");
        assert_eq!(result.frames_offloaded, 0);
        let p = result.mean_throughput;
        assert!(
            (p - 13.0).abs() < 1.5,
            "local-only throughput {p:.1}, expected ~13 (Pi 4B r1.2, MNv3Small)"
        );
        assert_eq!(result.offload_timeouts, 0);
    }

    #[test]
    fn always_offload_on_ideal_network_reaches_fs() {
        let result = run_experiment(short_config(), Box::new(AlwaysOffload::new()));
        let p = result.mean_throughput;
        assert!(
            p > 27.0,
            "always-offload under ideal conditions got {p:.1}, expected ~30"
        );
        assert!(result.offload_latency.unwrap().p95_ms < 250.0);
    }

    #[test]
    fn framefeedback_ramps_to_full_offload_on_ideal_network() {
        let result = run_experiment(short_config(), Box::new(FrameFeedback::new()));
        // Ramp at +0.1·F_s per second: full offloading from ~t=10 s.
        let late = result.qos.aggregate(15.0, 30.0).unwrap();
        assert!(
            late.mean_po_target > 28.0,
            "P_o target after ramp {:.1}, expected ~30",
            late.mean_po_target
        );
        assert!(late.mean_throughput > 26.0);
    }

    #[test]
    fn all_or_nothing_offloads_when_heartbeats_succeed() {
        let result = run_experiment(short_config(), Box::new(AllOrNothing::new()));
        let late = result.qos.aggregate(5.0, 30.0).unwrap();
        assert!(
            late.mean_po > 25.0,
            "heartbeats succeed on the ideal network; got P_o {:.1}",
            late.mean_po
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_experiment(short_config(), Box::new(FrameFeedback::new()));
        let b = run_experiment(short_config(), Box::new(FrameFeedback::new()));
        assert_eq!(a.frames_offloaded, b.frames_offloaded);
        assert_eq!(a.offload_timeouts, b.offload_timeouts);
        assert_eq!(a.qos.records().len(), b.qos.records().len());
        for (ra, rb) in a.qos.records().iter().zip(b.qos.records()) {
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = short_config();
        cfg.seed = 1;
        let a = run_experiment(cfg.clone(), Box::new(FrameFeedback::new()));
        cfg.seed = 2;
        let b = run_experiment(cfg, Box::new(FrameFeedback::new()));
        // Same macro behaviour, different micro trace: frame-size jitter
        // and service jitter shift individual latencies.
        assert_ne!(
            a.offload_latency.unwrap().mean_ms,
            b.offload_latency.unwrap().mean_ms
        );
    }

    #[test]
    fn server_outage_drives_target_to_probe_floor_and_recovers() {
        let mut cfg = short_config();
        cfg.stream.total_frames = 2700; // 90 s at 30 fps
        cfg.outage = Some(ServerOutage {
            from_secs: 20.0,
            until_secs: 70.0,
        });
        let result = run_experiment(cfg, Box::new(FrameFeedback::new()));

        // Before the crash the controller is ramping normally.
        let before = result.qos.aggregate(15.0, 20.0).unwrap();
        assert!(
            before.mean_po_target > 20.0,
            "pre-outage target {:.1} should be near F_s",
            before.mean_po_target
        );

        // §III-A.1: with every offload failing, P_o settles at 0.1·F_s.
        let floor = 0.1 * 30.0;
        let during = result.qos.aggregate(50.0, 70.0).unwrap();
        assert!(
            (during.mean_po_target - floor).abs() <= 0.5,
            "outage target {:.2} should sit at the {floor:.1} fps probe floor",
            during.mean_po_target
        );

        // Recovery within 5 controller intervals of the server's return.
        let recovered_at = result
            .qos
            .records()
            .iter()
            .find(|r| r.t_secs >= 70.0 && r.po_target > floor + 0.5)
            .map(|r| r.t_secs)
            .expect("target never left the probe floor after recovery");
        assert!(
            recovered_at <= 75.0,
            "target recovered only at t={recovered_at:.0}s"
        );
        let after = result.qos.aggregate(82.0, 90.0).unwrap();
        assert!(
            after.mean_po_target > 25.0,
            "post-recovery target {:.1} should be back near F_s",
            after.mean_po_target
        );

        // Throughput never collapses below the local floor (§II-A.5).
        assert!(during.mean_throughput > 10.0);
    }

    #[test]
    fn outage_requests_vanish_rather_than_complete() {
        let mut cfg = short_config();
        cfg.outage = Some(ServerOutage {
            from_secs: 5.0,
            until_secs: 25.0,
        });
        let down = run_experiment(cfg, Box::new(AlwaysOffload::new()));
        let up = run_experiment(short_config(), Box::new(AlwaysOffload::new()));
        assert!(down.offload_timeouts > 200, "the outage must cost timeouts");
        assert!(
            down.server_stats.completions < up.server_stats.completions / 2,
            "a 20 s outage in a 30 s run must slash completions ({} vs {})",
            down.server_stats.completions,
            up.server_stats.completions
        );
    }

    #[test]
    #[should_panic(expected = "outage must end after it starts")]
    fn inverted_outage_window_is_rejected() {
        let mut cfg = short_config();
        cfg.outage = Some(ServerOutage {
            from_secs: 10.0,
            until_secs: 10.0,
        });
        run_experiment(cfg, Box::new(FrameFeedback::new()));
    }

    #[test]
    fn bad_network_drives_framefeedback_to_the_probe_floor() {
        let mut cfg = short_config();
        cfg.stream.total_frames = 1800; // 60 s
        cfg.network = StepSchedule::constant(NetworkConditions::new(1.0, 30.0));
        let result = run_experiment(cfg, Box::new(FrameFeedback::new()));
        let late = result.qos.aggregate(30.0, 60.0).unwrap();
        // §III-A.1: P_o stabilizes at ~0.1·F_s when offloading always fails.
        assert!(
            late.mean_po_target < 6.0,
            "P_o target {:.1} should sit near the 3 fps probe floor",
            late.mean_po_target
        );
        // Throughput stays near the local rate: the controller protects
        // P >= P_l (§II-A.5).
        assert!(
            late.mean_throughput > 10.0,
            "throughput {:.1} collapsed below the local floor",
            late.mean_throughput
        );
    }

    #[test]
    fn always_offload_collapses_on_a_bad_network() {
        let mut cfg = short_config();
        cfg.network = StepSchedule::constant(NetworkConditions::new(1.0, 30.0));
        let ff = run_experiment(cfg.clone(), Box::new(FrameFeedback::new()));
        let ao = run_experiment(cfg, Box::new(AlwaysOffload::new()));
        assert!(
            ff.mean_throughput > 1.5 * ao.mean_throughput,
            "FrameFeedback {:.1} must beat always-offload {:.1} on a bad network",
            ff.mean_throughput,
            ao.mean_throughput
        );
    }

    #[test]
    fn cpu_usage_drops_when_offloading() {
        let local = run_experiment(short_config(), Box::new(LocalOnly::new()));
        let offload = run_experiment(short_config(), Box::new(AlwaysOffload::new()));
        assert!(
            local.cpu_usage_pct > 45.0,
            "local-only CPU {:.1}%, paper ~50.2%",
            local.cpu_usage_pct
        );
        assert!(
            offload.cpu_usage_pct < 30.0,
            "offloading CPU {:.1}%, paper ~22.3%",
            offload.cpu_usage_pct
        );
    }

    #[test]
    fn background_load_produces_server_pressure() {
        let mut cfg = short_config();
        cfg.background = StepSchedule::constant(170.0); // beyond saturation (~150)
        let result = run_experiment(cfg, Box::new(AlwaysOffload::new()));
        assert!(
            result.server_stats.rejections > 0,
            "overloaded server must reject"
        );
        assert!(
            result.offload_timeouts > 0,
            "saturation must cause timeouts"
        );
    }

    #[test]
    fn frame_trace_accounts_for_every_frame() {
        use crate::trace::TraceSummary;
        let mut cfg = short_config();
        cfg.record_trace = true;
        cfg.network = StepSchedule::constant(NetworkConditions::new(4.0, 3.0));
        let result = run_experiment(cfg, Box::new(FrameFeedback::new()));
        let trace = result.trace.as_ref().expect("trace was requested");
        assert_eq!(trace.len() as u64, result.frames_generated);
        let summary = TraceSummary::of(trace);
        assert_eq!(summary.total(), result.frames_generated);
        // Cross-check against the aggregate counters.
        assert_eq!(
            summary.offload_succeeded + summary.offload_timed_out + summary.unresolved,
            result.frames_offloaded,
            "offload fates must match the offload count"
        );
        assert_eq!(summary.offload_succeeded, result.offload_successes);
        assert!(summary.local_completed > 0);
        assert!(
            summary.unresolved <= 20,
            "only horizon stragglers may stay unresolved"
        );
        // Capture times are monotone at the frame cadence.
        for w in trace.windows(2) {
            assert!(w[1].captured_secs > w[0].captured_secs);
        }
    }

    #[test]
    fn trace_is_absent_unless_requested() {
        let result = run_experiment(short_config(), Box::new(LocalOnly::new()));
        assert!(result.trace.is_none());
    }

    #[test]
    fn qos_log_has_one_record_per_second() {
        let result = run_experiment(short_config(), Box::new(LocalOnly::new()));
        // 30 s stream → ~30 ticks.
        let n = result.qos.records().len();
        assert!((29..=31).contains(&n), "got {n} records");
    }
}
