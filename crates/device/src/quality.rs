//! Adaptive compression quality (the §II-D trade-off, closed-loop).
//!
//! The paper observes that lighter compression improves accuracy but
//! "both [resolution and quality] increase the number of bytes per frame
//! that need to be transferred" — and leaves exploiting that trade-off
//! open. [`QualityAdapter`] closes the loop: when *network-attributed*
//! timeouts persist, it steps the JPEG quality down (smaller frames fit
//! the thinner pipe); after sustained clean intervals it steps back up
//! toward the accuracy-preserving default. Load-attributed timeouts do
//! not trigger downgrades — smaller frames cannot unclog a saturated
//! GPU, only the rate controller can.

use ff_models::Compression;
use serde::{Deserialize, Serialize};

/// Configuration of the quality adaptation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityConfig {
    /// Highest (default) quality.
    pub max_quality: u8,
    /// Floor below which accuracy degrades too far to be useful.
    pub min_quality: u8,
    /// Quality decrement per reaction.
    pub step: u8,
    /// Network-timeout rate (frames/s) that triggers a downgrade.
    pub downgrade_threshold: f64,
    /// Consecutive clean intervals required before an upgrade.
    pub upgrade_after_clean: u32,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            max_quality: 90,
            min_quality: 40,
            step: 10,
            downgrade_threshold: 1.0,
            upgrade_after_clean: 5,
        }
    }
}

/// The quality-ladder controller.
#[derive(Debug, Clone)]
pub struct QualityAdapter {
    config: QualityConfig,
    quality: u8,
    clean_streak: u32,
}

impl QualityAdapter {
    /// An adapter starting at the configured maximum quality.
    pub fn new(config: QualityConfig) -> Self {
        assert!(
            config.min_quality >= 1 && config.min_quality <= config.max_quality,
            "quality bounds must satisfy 1 <= min <= max"
        );
        assert!(config.step > 0, "step must be positive");
        QualityAdapter {
            quality: config.max_quality,
            config,
            clean_streak: 0,
        }
    }

    /// Current JPEG quality.
    pub fn quality(&self) -> u8 {
        self.quality
    }

    /// Frame-size scaling factor relative to running at `max_quality`:
    /// multiply baseline frame bytes by this.
    pub fn byte_scale(&self, resolution: u32) -> f64 {
        let now = Compression::new(self.quality, resolution).mean_frame_bytes() as f64;
        let base = Compression::new(self.config.max_quality, resolution).mean_frame_bytes() as f64;
        now / base
    }

    /// Feed one measurement interval: the network-attributed timeout rate
    /// (frames/s). Returns the quality for the next interval.
    pub fn update(&mut self, network_timeout_rate: f64) -> u8 {
        assert!(
            network_timeout_rate.is_finite() && network_timeout_rate >= 0.0,
            "timeout rate must be finite and non-negative"
        );
        if network_timeout_rate > self.config.downgrade_threshold {
            self.clean_streak = 0;
            self.quality = self
                .quality
                .saturating_sub(self.config.step)
                .max(self.config.min_quality);
        } else if network_timeout_rate == 0.0 {
            self.clean_streak += 1;
            if self.clean_streak >= self.config.upgrade_after_clean
                && self.quality < self.config.max_quality
            {
                self.quality = (self.quality + self.config.step).min(self.config.max_quality);
                self.clean_streak = 0;
            }
        } else {
            // Tolerated low-grade timeouts: hold position.
            self.clean_streak = 0;
        }
        self.quality
    }

    /// Reset to the default quality.
    pub fn reset(&mut self) {
        self.quality = self.config.max_quality;
        self.clean_streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adapter() -> QualityAdapter {
        QualityAdapter::new(QualityConfig::default())
    }

    #[test]
    fn starts_at_max_quality() {
        assert_eq!(adapter().quality(), 90);
    }

    #[test]
    fn network_timeouts_step_quality_down_to_the_floor() {
        let mut a = adapter();
        for expected in [80, 70, 60, 50, 40, 40, 40] {
            assert_eq!(a.update(5.0), expected);
        }
    }

    #[test]
    fn sustained_clean_intervals_recover_quality() {
        let mut a = adapter();
        a.update(5.0); // 80
        a.update(5.0); // 70
        for _ in 0..4 {
            assert_eq!(a.update(0.0), 70, "not yet enough clean streak");
        }
        assert_eq!(a.update(0.0), 80, "5th clean interval upgrades");
        for _ in 0..4 {
            a.update(0.0);
        }
        assert_eq!(a.update(0.0), 90);
        // At max: further clean intervals are a no-op.
        for _ in 0..10 {
            assert_eq!(a.update(0.0), 90);
        }
    }

    #[test]
    fn tolerated_timeouts_hold_position_and_break_the_streak() {
        let mut a = adapter();
        a.update(5.0); // 80
        for _ in 0..4 {
            a.update(0.0);
        }
        a.update(0.5); // tolerated: holds, resets streak
        assert_eq!(a.quality(), 80);
        for _ in 0..4 {
            assert_eq!(a.update(0.0), 80);
        }
        assert_eq!(a.update(0.0), 90);
    }

    #[test]
    fn byte_scale_shrinks_with_quality() {
        let mut a = adapter();
        assert!((a.byte_scale(224) - 1.0).abs() < 1e-12);
        a.update(5.0);
        a.update(5.0); // quality 70
        let scale = a.byte_scale(224);
        assert!(
            scale < 0.75,
            "q70 frames should be well under q90 size, got {scale}"
        );
        assert!(scale > 0.3);
    }

    #[test]
    fn reset_restores_defaults() {
        let mut a = adapter();
        a.update(5.0);
        a.reset();
        assert_eq!(a.quality(), 90);
    }

    #[test]
    #[should_panic(expected = "quality bounds")]
    fn inverted_bounds_rejected() {
        QualityAdapter::new(QualityConfig {
            min_quality: 95,
            max_quality: 90,
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rate_rejected() {
        adapter().update(f64::NAN);
    }
}
