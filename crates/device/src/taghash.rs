//! A deterministic, allocation-free hasher for `u64` frame tags.
//!
//! The hot per-frame maps ([`crate::OffloadTracker`]'s in-flight table,
//! the fleet's probe table) are keyed by dense `u64` tags. The standard
//! library's default SipHash is keyed per-process and ~10× slower than a
//! single multiply, and its per-process keying means map *iteration
//! order* varies between runs — every consumer here either never
//! iterates or sorts after collecting, but a fixed hash removes that
//! hazard entirely while shaving a measurable slice off the per-frame
//! event cost.
//!
//! The hash is Fibonacci multiplicative hashing: `tag · ⌊2⁶⁴/φ⌋`. The
//! odd multiplier is a bijection on `u64`, and the golden-ratio
//! constant spreads consecutive tags across the *high* bits, which is
//! exactly what hashbrown's control bytes and bucket index consume.
//! Tags are not attacker-controlled, so HashDoS keying is unnecessary.

use std::hash::{BuildHasher, Hasher};

/// `⌊2⁶⁴ / φ⌋`, forced odd — the classic Fibonacci-hashing multiplier.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Hasher state; see the module docs for the construction.
#[derive(Debug, Default, Clone)]
pub struct TagHasher(u64);

impl Hasher for TagHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write_u64(&mut self, tag: u64) {
        self.0 = (self.0 ^ tag).wrapping_mul(PHI);
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    /// Generic fallback so non-integer keys still hash correctly; the
    /// hot paths only ever take the `write_u64` route.
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }
}

/// `BuildHasher` producing [`TagHasher`]s; use as the `S` parameter of
/// `HashMap`/`HashSet` (`HashMap::default()` works once `S = TagHash`).
#[derive(Debug, Default, Clone)]
pub struct TagHash;

impl BuildHasher for TagHash {
    type Hasher = TagHasher;

    #[inline]
    fn build_hasher(&self) -> TagHasher {
        TagHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn consecutive_tags_differ_in_the_high_bits() {
        let h = |tag: u64| {
            let mut s = TagHash.build_hasher();
            s.write_u64(tag);
            s.finish()
        };
        // hashbrown consumes the top 7 bits for its control byte; dense
        // tags must not collide there.
        let tops: std::collections::HashSet<u64> = (0..64).map(|t| h(t) >> 57).collect();
        assert!(tops.len() > 32, "only {} distinct top bytes", tops.len());
    }

    #[test]
    fn map_with_tag_hash_behaves_like_a_map() {
        let mut m: HashMap<u64, u64, TagHash> = HashMap::default();
        for tag in 0..1000u64 {
            assert!(m.insert(tag, tag * 3).is_none());
        }
        for tag in 0..1000u64 {
            assert_eq!(m.remove(&tag), Some(tag * 3));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn hash_is_deterministic_across_builders() {
        let mut a = TagHash.build_hasher();
        let mut b = TagHash.build_hasher();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
