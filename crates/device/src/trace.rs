//! Per-frame tracing.
//!
//! The QoS log aggregates per second; when debugging a controller (or
//! explaining a single timeout burst) you want the fate of *every frame*.
//! With `ExperimentConfig::record_trace` enabled, the experiment emits
//! one [`FrameRecord`] per captured frame, suitable for timeline
//! rendering or offline analysis (serialized alongside the JSON results).

use crate::offload::TimeoutCause;
use ff_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How a frame left the system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FrameFate {
    /// Inferred on-device.
    LocalCompleted,
    /// Routed to the local engine but skipped (engine and pending slot
    /// both busy).
    LocalSkipped,
    /// Offloaded; the response beat the deadline.
    OffloadSucceeded {
        /// End-to-end latency in milliseconds.
        latency_ms: f64,
    },
    /// Offloaded; the deadline passed.
    OffloadTimedOut {
        /// Whether the timeout was attributed to the network (`T_n`) as
        /// opposed to server load (`T_l`).
        network: bool,
    },
    /// Offloaded; still unresolved when the experiment ended.
    Unresolved,
    /// Dropped by the semantic filter before reaching the splitter
    /// (near-duplicate content; never entered the control loop).
    FilteredOut,
}

/// The life of one captured frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameRecord {
    /// Zero-based capture index.
    pub frame_id: u64,
    /// Capture instant in seconds since stream start.
    pub captured_secs: f64,
    /// Compressed payload size in bytes.
    pub bytes: u64,
    /// How the frame left the system.
    pub fate: FrameFate,
}

/// Collects frame records during a run (when enabled).
///
/// A trace built by [`with_capacity`](FrameTrace::with_capacity) with a
/// non-zero capacity is **bounded**: memory never grows past the cap, and
/// once it fills, each new frame evicts the oldest record (drop-oldest).
/// Evictions are counted in [`dropped`](FrameTrace::dropped) and surfaced
/// in [`TraceSummary`], so accounting stays exact for arbitrarily long
/// runs. A zero capacity (the [`new`](FrameTrace::new) path) keeps the
/// historical unbounded behaviour.
#[derive(Debug, Default)]
pub struct FrameTrace {
    records: VecDeque<FrameRecord>,
    enabled: bool,
    /// Hard record cap; 0 = unbounded.
    capacity: usize,
    /// Frame id of the oldest retained record.
    base: u64,
    /// Records evicted by the drop-oldest cap.
    dropped: u64,
}

impl FrameTrace {
    /// A trace that records only when `enabled` (unbounded).
    pub fn new(enabled: bool) -> Self {
        Self::with_capacity(enabled, 0)
    }

    /// A trace bounded to at most `capacity` retained frames: the buffer
    /// is allocated once up front, and past the cap the oldest record is
    /// dropped (and counted) for each new capture. `capacity == 0` means
    /// unbounded. When disabled, nothing is allocated.
    pub fn with_capacity(enabled: bool, capacity: usize) -> Self {
        FrameTrace {
            records: VecDeque::with_capacity(if enabled { capacity } else { 0 }),
            enabled,
            capacity: if enabled { capacity } else { 0 },
            base: 0,
            dropped: 0,
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records evicted by the drop-oldest cap so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Register a captured frame with a provisional fate (overwritten on
    /// resolution). Frame ids must arrive in order.
    pub fn captured(&mut self, frame_id: u64, at: SimTime, bytes: u64, fate: FrameFate) {
        if !self.enabled {
            return;
        }
        debug_assert_eq!(
            self.base + self.records.len() as u64,
            frame_id,
            "frames must be traced in capture order"
        );
        if self.capacity > 0 && self.records.len() == self.capacity {
            self.records.pop_front();
            self.base += 1;
            self.dropped += 1;
        }
        self.records.push_back(FrameRecord {
            frame_id,
            captured_secs: at.as_secs_f64(),
            bytes,
            fate,
        });
    }

    /// Update the fate of a previously captured frame. Resolving a frame
    /// the drop-oldest cap already evicted is a silent no-op.
    pub fn resolve(&mut self, frame_id: u64, fate: FrameFate) {
        if !self.enabled {
            return;
        }
        if frame_id < self.base {
            return; // evicted by the cap; its fate is lost by design
        }
        let record = self
            .records
            .get_mut((frame_id - self.base) as usize)
            .expect("resolving an untraced frame");
        record.fate = fate;
    }

    /// The retained records, oldest first (empty when disabled).
    pub fn into_records(self) -> Vec<FrameRecord> {
        self.records.into_iter().collect()
    }

    /// Fate counts of the retained records plus the eviction count.
    pub fn summary(&self) -> TraceSummary {
        let (a, b) = self.records.as_slices();
        let mut s = TraceSummary::of(a);
        let tail = TraceSummary::of(b);
        s.local_completed += tail.local_completed;
        s.local_skipped += tail.local_skipped;
        s.offload_succeeded += tail.offload_succeeded;
        s.offload_timed_out += tail.offload_timed_out;
        s.unresolved += tail.unresolved;
        s.filtered_out += tail.filtered_out;
        s.dropped = self.dropped;
        s
    }

    /// Number of retained frames (excluding dropped ones).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Fate-count summary of a trace, for quick assertions and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TraceSummary {
    /// Frames inferred on-device.
    pub local_completed: u64,
    /// Frames skipped at the local engine.
    pub local_skipped: u64,
    /// Offloads that beat the deadline.
    pub offload_succeeded: u64,
    /// Offloads that missed the deadline.
    pub offload_timed_out: u64,
    /// Frames still unresolved at the experiment horizon.
    pub unresolved: u64,
    /// Frames dropped by the semantic filter.
    pub filtered_out: u64,
    /// Records evicted by the trace's drop-oldest cap (not represented
    /// in the other counts).
    pub dropped: u64,
}

impl TraceSummary {
    /// Count the fates in a record slice (`dropped` stays 0; use
    /// [`FrameTrace::summary`] to include evictions).
    pub fn of(records: &[FrameRecord]) -> TraceSummary {
        let mut s = TraceSummary::default();
        for r in records {
            match r.fate {
                FrameFate::LocalCompleted => s.local_completed += 1,
                FrameFate::LocalSkipped => s.local_skipped += 1,
                FrameFate::OffloadSucceeded { .. } => s.offload_succeeded += 1,
                FrameFate::OffloadTimedOut { .. } => s.offload_timed_out += 1,
                FrameFate::Unresolved => s.unresolved += 1,
                FrameFate::FilteredOut => s.filtered_out += 1,
            }
        }
        s
    }

    /// Sum of all fate counts plus evictions (= frames captured).
    pub fn total(&self) -> u64 {
        self.local_completed
            + self.local_skipped
            + self.offload_succeeded
            + self.offload_timed_out
            + self.unresolved
            + self.filtered_out
            + self.dropped
    }
}

/// Convert a timeout cause into the trace's network flag.
pub(crate) fn timeout_fate(cause: TimeoutCause) -> FrameFate {
    FrameFate::OffloadTimedOut {
        network: cause == TimeoutCause::Network,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = FrameTrace::new(false);
        t.captured(0, SimTime::ZERO, 100, FrameFate::Unresolved);
        t.resolve(0, FrameFate::LocalCompleted);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn with_capacity_pre_sizes_only_when_enabled() {
        let on = FrameTrace::with_capacity(true, 500);
        assert!(on.records.capacity() >= 500);
        let off = FrameTrace::with_capacity(false, 500);
        assert_eq!(off.records.capacity(), 0);
        // Behaviour is unchanged by pre-sizing.
        let mut t = FrameTrace::with_capacity(true, 2);
        t.captured(0, SimTime::ZERO, 9, FrameFate::Unresolved);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn capture_then_resolve_updates_the_fate() {
        let mut t = FrameTrace::new(true);
        t.captured(0, SimTime::ZERO, 100, FrameFate::Unresolved);
        t.captured(1, SimTime::from_millis(33), 110, FrameFate::LocalCompleted);
        t.resolve(0, FrameFate::OffloadSucceeded { latency_ms: 120.0 });
        let records = t.into_records();
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0].fate,
            FrameFate::OffloadSucceeded { latency_ms: 120.0 }
        );
        assert_eq!(records[1].fate, FrameFate::LocalCompleted);
        assert_eq!(records[1].captured_secs, 0.033);
    }

    #[test]
    fn summary_partitions_fates() {
        let records = vec![
            FrameRecord {
                frame_id: 0,
                captured_secs: 0.0,
                bytes: 1,
                fate: FrameFate::LocalCompleted,
            },
            FrameRecord {
                frame_id: 1,
                captured_secs: 0.1,
                bytes: 1,
                fate: FrameFate::OffloadTimedOut { network: true },
            },
            FrameRecord {
                frame_id: 2,
                captured_secs: 0.2,
                bytes: 1,
                fate: FrameFate::OffloadSucceeded { latency_ms: 80.0 },
            },
        ];
        let s = TraceSummary::of(&records);
        assert_eq!(s.local_completed, 1);
        assert_eq!(s.offload_timed_out, 1);
        assert_eq!(s.offload_succeeded, 1);
        assert_eq!(s.total(), 3);
    }

    #[test]
    #[should_panic(expected = "untraced")]
    fn resolving_unknown_frame_panics() {
        FrameTrace::new(true).resolve(5, FrameFate::LocalCompleted);
    }

    #[test]
    fn capacity_caps_memory_with_drop_oldest() {
        let mut t = FrameTrace::with_capacity(true, 3);
        for id in 0..10u64 {
            t.captured(
                id,
                SimTime::from_millis(id * 33),
                100,
                FrameFate::Unresolved,
            );
        }
        assert_eq!(t.len(), 3, "retained records must never exceed the cap");
        assert_eq!(t.dropped(), 7);
        let summary = t.summary();
        assert_eq!(summary.dropped, 7);
        assert_eq!(summary.total(), 10, "kept + dropped = captured");
        let records = t.into_records();
        let ids: Vec<u64> = records.iter().map(|r| r.frame_id).collect();
        assert_eq!(ids, vec![7, 8, 9], "oldest records are the ones evicted");
    }

    #[test]
    fn resolving_an_evicted_frame_is_a_silent_no_op() {
        let mut t = FrameTrace::with_capacity(true, 2);
        for id in 0..5u64 {
            t.captured(id, SimTime::ZERO, 1, FrameFate::Unresolved);
        }
        // Frames 0..=2 were evicted; late resolutions must not panic or
        // corrupt the retained window.
        t.resolve(0, FrameFate::LocalCompleted);
        t.resolve(2, FrameFate::OffloadSucceeded { latency_ms: 10.0 });
        // A retained frame still resolves normally.
        t.resolve(4, FrameFate::OffloadTimedOut { network: true });
        let records = t.into_records();
        assert_eq!(records[0].frame_id, 3);
        assert_eq!(records[0].fate, FrameFate::Unresolved);
        assert_eq!(
            records[1].fate,
            FrameFate::OffloadTimedOut { network: true }
        );
    }

    #[test]
    fn zero_capacity_stays_unbounded() {
        let mut t = FrameTrace::new(true);
        for id in 0..1000u64 {
            t.captured(id, SimTime::ZERO, 1, FrameFate::LocalCompleted);
        }
        assert_eq!(t.len(), 1000);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.summary().total(), 1000);
    }
}
