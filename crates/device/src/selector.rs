//! Adaptive local-model selection (the [38]-style extension).
//!
//! The paper's related work cites adaptive DL model selection on embedded
//! systems; FrameFeedback itself pins one local model. But when the
//! controller has pushed most frames to the server, the local engine only
//! handles the leftovers — so it can afford a slower, *more accurate*
//! model. [`ModelSelector`] implements that ladder: sustained high
//! offloading upgrades the local model; when offloading collapses and the
//! device must carry the stream again, it immediately drops back to the
//! fastest model to protect the throughput floor.

use ff_models::{DeviceKind, ModelKind};
use serde::{Deserialize, Serialize};

/// Configuration of the local-model ladder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectorConfig {
    /// Models ordered fastest → most accurate. The first entry is the
    /// safe default.
    pub ladder: Vec<ModelKind>,
    /// Offload share of `F_s` above which an upgrade is considered.
    pub upgrade_share: f64,
    /// Offload share below which the selector immediately downgrades to
    /// the fastest model.
    pub downgrade_share: f64,
    /// Consecutive high-offload intervals required per upgrade step.
    pub upgrade_after: u32,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        SelectorConfig {
            ladder: vec![
                ModelKind::MobileNetV3Small,
                ModelKind::MobileNetV3Large,
                ModelKind::EfficientNetB0,
            ],
            upgrade_share: 0.8,
            downgrade_share: 0.5,
            upgrade_after: 5,
        }
    }
}

/// The local-model ladder controller.
#[derive(Debug, Clone)]
pub struct ModelSelector {
    config: SelectorConfig,
    device: DeviceKind,
    level: usize,
    high_streak: u32,
}

impl ModelSelector {
    /// A selector starting on the ladder's fastest model.
    pub fn new(config: SelectorConfig, device: DeviceKind) -> Self {
        assert!(!config.ladder.is_empty(), "ladder needs at least one model");
        assert!(
            config.downgrade_share < config.upgrade_share,
            "downgrade share must be below upgrade share (hysteresis)"
        );
        ModelSelector {
            config,
            device,
            level: 0,
            high_streak: 0,
        }
    }

    /// The currently selected local model.
    pub fn model(&self) -> ModelKind {
        self.config.ladder[self.level]
    }

    /// The local inference rate of the current model on this device.
    pub fn local_rate_fps(&self) -> f64 {
        self.device.local_rate_fps(self.model())
    }

    /// Feed one interval's offload share (`P_o target / F_s`). Returns the
    /// model for the next interval.
    pub fn update(&mut self, offload_share: f64) -> ModelKind {
        assert!(
            offload_share.is_finite() && offload_share >= 0.0,
            "offload share must be finite and non-negative"
        );
        if offload_share < self.config.downgrade_share {
            // The device is carrying real load again: fastest model, now.
            self.level = 0;
            self.high_streak = 0;
        } else if offload_share >= self.config.upgrade_share {
            self.high_streak += 1;
            if self.high_streak >= self.config.upgrade_after
                && self.level + 1 < self.config.ladder.len()
            {
                self.level += 1;
                self.high_streak = 0;
            }
        } else {
            // Hysteresis band: hold.
            self.high_streak = 0;
        }
        self.model()
    }

    /// Return to the fastest model and forget streaks.
    pub fn reset(&mut self) {
        self.level = 0;
        self.high_streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selector() -> ModelSelector {
        ModelSelector::new(SelectorConfig::default(), DeviceKind::Pi4BRev12)
    }

    #[test]
    fn starts_on_the_fastest_model() {
        let s = selector();
        assert_eq!(s.model(), ModelKind::MobileNetV3Small);
        assert!((s.local_rate_fps() - 13.0).abs() < 0.01);
    }

    #[test]
    fn sustained_offloading_climbs_the_ladder() {
        let mut s = selector();
        for _ in 0..4 {
            assert_eq!(s.update(0.95), ModelKind::MobileNetV3Small);
        }
        assert_eq!(
            s.update(0.95),
            ModelKind::MobileNetV3Large,
            "5th interval upgrades"
        );
        for _ in 0..4 {
            s.update(0.95);
        }
        assert_eq!(s.update(0.95), ModelKind::EfficientNetB0);
        // Top of the ladder: stays.
        for _ in 0..10 {
            assert_eq!(s.update(0.95), ModelKind::EfficientNetB0);
        }
    }

    #[test]
    fn offload_collapse_drops_straight_to_the_fastest() {
        let mut s = selector();
        for _ in 0..10 {
            s.update(0.95);
        }
        assert_eq!(
            s.model(),
            ModelKind::EfficientNetB0,
            "two upgrades in 10 intervals"
        );
        assert_eq!(s.update(0.1), ModelKind::MobileNetV3Small, "immediate drop");
    }

    #[test]
    fn hysteresis_band_holds_position() {
        let mut s = selector();
        for _ in 0..5 {
            s.update(0.95);
        }
        assert_eq!(s.model(), ModelKind::MobileNetV3Large);
        for _ in 0..20 {
            assert_eq!(s.update(0.65), ModelKind::MobileNetV3Large);
        }
    }

    #[test]
    fn upgraded_model_is_more_accurate_but_slower() {
        let mut s = selector();
        let fast = (s.local_rate_fps(), s.model().profile().top1_accuracy);
        for _ in 0..5 {
            s.update(0.95);
        }
        let slow = (s.local_rate_fps(), s.model().profile().top1_accuracy);
        assert!(slow.0 < fast.0, "rate must drop ({} -> {})", fast.0, slow.0);
        assert!(
            slow.1 > fast.1,
            "accuracy must rise ({} -> {})",
            fast.1,
            slow.1
        );
    }

    #[test]
    fn reset_returns_to_the_base_model() {
        let mut s = selector();
        for _ in 0..5 {
            s.update(0.95);
        }
        s.reset();
        assert_eq!(s.model(), ModelKind::MobileNetV3Small);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_rejected() {
        let mut config = SelectorConfig::default();
        config.downgrade_share = 0.9;
        ModelSelector::new(config, DeviceKind::Pi4BRev12);
    }

    #[test]
    #[should_panic(expected = "ladder")]
    fn empty_ladder_rejected() {
        let config = SelectorConfig {
            ladder: vec![],
            ..Default::default()
        };
        ModelSelector::new(config, DeviceKind::Pi4BRev12);
    }
}
