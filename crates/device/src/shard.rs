//! Sharded fleet driver: conservative time-window parallel DES.
//!
//! Partitions the fleet's devices into K contiguous shards, each owning
//! a private [`Simulation`] (its own timing wheel, its own ChaCha8
//! streams — derived from **global** device indices so the partition
//! never changes any device's randomness). The [`ServerTier`] lives on
//! the coordinator (the calling thread), which merges cross-shard
//! traffic between rounds.
//!
//! ## The window protocol
//!
//! The lookahead bound is the uplink propagation floor
//! `W = LinkConfig::propagation`: `Link::send` delivers no earlier than
//! `send + W` (serialization and retransmissions only push arrivals
//! later), and `NetworkConditions` never change propagation mid-run. So
//! every device→server submission sent during window `r` arrives in
//! window `r + 1` or later, and every server→device response (scheduled
//! at `batch_done + W`) likewise lands at least one window after the
//! batch completion. Simulated time `[0, end]` is cut into windows of
//! `W` microseconds and each round `r` runs two strictly alternating
//! phases (see [`ff_sim::run_phased`]):
//!
//! ```text
//! coordinator r: merge submissions deposited by device rounds < r,
//!                pop server items with at < window_end(r) in MergeKey
//!                order, drive the tier, emit per-shard feedback
//! -- barrier --
//! shard r:       apply feedback with at < window_end(r) interleaved
//!                with local events by timestamp, then run the local
//!                simulation up to window_end(r) − 1µs, then deposit
//!                the submissions generated this window
//! -- barrier --
//! ```
//!
//! The conservative bound makes round `r`'s server inputs complete
//! before the coordinator runs, so no rollback is ever needed and the
//! phase schedule is independent of thread timing.
//!
//! ## Determinism
//!
//! The single-threaded engine breaks timestamp ties by insertion order.
//! The coordinator reproduces that order *without* a global insertion
//! counter via [`MergeKey`] `(at, ins, class, tie)`:
//!
//! * `ins` — the simulated instant the legacy engine would have
//!   *inserted* the event: a submission's send time, a batch
//!   completion's scheduling time, `0` for setup-time outage events.
//!   Events inserted at different instants pop in insertion order, and
//!   `ins` recovers exactly that.
//! * `class` — orders same-`(at, ins)` groups the way the legacy
//!   insertion sequence does: outages (scheduled at setup) before batch
//!   completions (scheduled mid-run) before probe submissions (sent by
//!   controller ticks) before frame submissions (sent by captures) —
//!   ticks pop before captures at every shared instant because ticks
//!   are (re)scheduled a full period ahead of captures' one frame
//!   interval.
//! * `tie` — within a class: the global device index for submissions
//!   (simultaneous captures pop in device order), emission order for
//!   batch completions and outages.
//!
//! Feedback is applied inside each shard sorted by
//! `(at, class, emission seq)` where arrival-class feedback (the
//! request reached the tier, possibly admission-rejected) is applied
//! *before* local events at `at` — the legacy `Uplinked` handler runs
//! before the same-send `Deadline` — and batch-class feedback
//! (responses, batch-formation rejections) *after* local events at
//! `at`, matching the legacy insertion order of `Response`/`BatchDone`
//! events against ticks and deadlines. The residual same-microsecond
//! reorderings this admits are provably immaterial (the handlers touch
//! disjoint state); DESIGN.md §"Sharded engine" carries the full
//! argument. The end-to-end contract — bit-identical [`FleetResult`]s
//! at any shard count — is pinned by `tests/shard_determinism.rs`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::mem;
use std::sync::Mutex;

use crate::fleet::{
    finish_fleet, network_change_events, observe_device_tick, validate_fleet, FleetConfig,
    FleetCore, FleetDevices, FleetEvent, FleetResult, TierObs, UplinkSink,
};
use crate::tags::{fleet_tag_device as tag_device, is_probe_tag as tag_is_probe};
use ff_core::Controller;
use ff_models::ModelKind;
use ff_server::{BatchOutput, Request, ServerTier, TenantId, TierSubmit};
use ff_sim::{run_phased, Ctx, EventQueue, RngFactory, SimDuration, SimModel, SimTime, Simulation};
use ff_telemetry::{Recorder, Scope};

/// Merge-key classes, in legacy insertion-sequence order for equal
/// `(at, ins)`.
const CLASS_OUTAGE: u8 = 0;
const CLASS_BATCH: u8 = 1;
const CLASS_PROBE: u8 = 2;
const CLASS_FRAME: u8 = 3;

/// Deterministic ordering key for the coordinator's server-event merge.
/// See the module docs for the role of each field; the derived
/// lexicographic `Ord` *is* the merge order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MergeKey {
    /// Simulated instant the event fires.
    pub at: SimTime,
    /// Simulated instant the legacy engine would have inserted it.
    pub ins: SimTime,
    /// Tie class for equal `(at, ins)` (outage < batch < probe < frame).
    pub class: u8,
    /// Final tie-break: device index or emission sequence.
    pub tie: u64,
}

enum ItemKind {
    Outage { server: usize, recover: bool },
    BatchDone { server: usize, epoch: u64 },
    Submission { tag: u64 },
}

struct ServerItem {
    key: MergeKey,
    kind: ItemKind,
}

impl PartialEq for ServerItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for ServerItem {}
impl PartialOrd for ServerItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ServerItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A device→server uplink delivery crossing the shard boundary.
struct Submission {
    /// Arrival instant at the tier (`≥ sent_at + W`).
    at: SimTime,
    /// Send instant — the legacy insertion time of the `Uplinked` event.
    sent_at: SimTime,
    tag: u64,
}

/// Feedback classes: arrival-class applies *before* local events at its
/// instant, batch-class *after* (see module docs).
const FB_ARRIVAL: u8 = 0;
const FB_BATCH: u8 = 1;

enum FeedbackKind {
    /// The request reached the tier (and, when flagged, was turned away
    /// at the admission door). Never emitted for probes.
    Arrived { admission_rejected: bool },
    /// Batch-formation overflow rejected the request.
    BatchRejected,
    /// A response (probe or frame) reaches the device at `at`.
    Response,
}

/// A server→device notification crossing the shard boundary.
struct Feedback {
    at: SimTime,
    class: u8,
    /// Coordinator emission sequence — global, so same-instant feedback
    /// applies in the order the legacy engine would have inserted it.
    seq: u64,
    tag: u64,
    kind: FeedbackKind,
}

/// The shard-side uplink sink: deliveries become outbox submissions for
/// the coordinator instead of local `Uplinked` events.
struct OutboxSink {
    outbox: Vec<Submission>,
}

impl UplinkSink for OutboxSink {
    #[inline]
    fn delivered(
        &mut self,
        _ctx: &mut Ctx<'_, FleetEvent>,
        sent_at: SimTime,
        at: SimTime,
        tag: u64,
    ) {
        self.outbox.push(Submission { at, sent_at, tag });
    }
}

/// One shard's simulation model: the shared [`FleetCore`] handlers over
/// this shard's device range, with all server-side events unreachable
/// (they live on the coordinator).
struct ShardDeviceWorld {
    core: FleetCore,
    sink: OutboxSink,
    recorder: Recorder,
    /// Telemetry scopes for the shard's devices, by local index.
    scopes: Vec<Scope>,
}

impl SimModel for ShardDeviceWorld {
    type Event = FleetEvent;

    fn handle(&mut self, ctx: &mut Ctx<'_, FleetEvent>, event: FleetEvent) {
        match event {
            FleetEvent::Capture(dev) => self.core.capture(ctx, &mut self.sink, dev),
            FleetEvent::LocalDone(dev) => self.core.local_done(ctx, dev),
            FleetEvent::Tick(dev) => {
                let rep = self.core.tick(ctx, &mut self.sink, dev);
                if self.recorder.is_enabled() {
                    let local = dev - self.core.devs.base;
                    let devs = &self.core.devs;
                    observe_device_tick(
                        &mut self.recorder,
                        self.scopes[local],
                        ctx.now().as_micros(),
                        self.core.config.stream.fps,
                        &rep,
                        devs.po_target[local],
                        devs.tracker[local].in_flight(),
                        devs.probes[local].len(),
                        devs.heartbeat[local],
                    );
                }
            }
            FleetEvent::Deadline { tag } => self.core.deadline(ctx.now(), tag),
            FleetEvent::NetworkChange { dev, step } => self.core.network_change(dev, step),
            FleetEvent::Uplinked { .. }
            | FleetEvent::BatchDone { .. }
            | FleetEvent::Response { .. }
            | FleetEvent::ServerCrash(_)
            | FleetEvent::ServerRecover(_) => {
                unreachable!("server-side event scheduled inside a device shard")
            }
        }
    }
}

/// Per-shard worker state threaded through [`run_phased`].
struct ShardState {
    sim: Simulation<ShardDeviceWorld>,
    /// Feedback received but not yet applicable (its window hasn't
    /// started locally).
    pending: Vec<Feedback>,
    /// Applied `Response` feedback — each one is a `Response` event the
    /// legacy engine would have popped, counted back into
    /// `events_handled`.
    responses_applied: u64,
}

/// Run a fleet partitioned into `shards` device shards, one worker
/// thread per shard plus the coordinator on the calling thread.
/// Bit-identical to [`crate::fleet::run_fleet`] at any shard count
/// (including `shards = 1`); shard counts above the device count are
/// clamped.
///
/// This is the dispatch target of `EngineOptions::shards > 1`; calling
/// it directly ignores `config.engine.shards` in favor of the `shards`
/// argument (which is how the differential tests compare counts).
pub fn run_fleet_sharded(
    config: FleetConfig,
    controllers: Vec<Box<dyn Controller>>,
    shards: usize,
) -> FleetResult {
    validate_fleet(&config, &controllers);
    let n = controllers.len();
    let k = shards.clamp(1, n);
    let w_us = config.link.propagation.as_micros();
    assert!(
        w_us >= 1,
        "sharded execution derives its lookahead window from the link \
         propagation floor, which must be at least 1µs"
    );
    let end_at = config.end_at();
    let end_us = end_at.as_micros();
    let rounds = end_us / w_us + 1;
    // Exclusive upper bound of window `r` (clipped so the last window
    // covers `end_at` inclusively, like the legacy `run_until(end_at)`).
    let window_end_us = move |r: u64| ((r + 1) * w_us).min(end_us + 1);

    // ---- Coordinator state: the tier and its merge heap. ----
    let tier_config = config.tier_config();
    let mut tier = ServerTier::new(&tier_config);
    for outage in &config.outages {
        outage.validate(tier.len());
    }
    let mut routing_rng = RngFactory::new(config.seed).stream("routing");
    let mut heap: BinaryHeap<Reverse<ServerItem>> = BinaryHeap::new();
    let mut outage_tie = 0u64;
    for outage in &config.outages {
        for (t, recover) in [(outage.from_secs, false), (outage.until_secs, true)] {
            heap.push(Reverse(ServerItem {
                key: MergeKey {
                    at: SimTime::from_secs_f64(t),
                    ins: SimTime::ZERO,
                    class: CLASS_OUTAGE,
                    tie: outage_tie,
                },
                kind: ItemKind::Outage {
                    server: outage.server,
                    recover,
                },
            }));
            outage_tie += 1;
        }
    }
    let offload_models: Vec<ModelKind> = config
        .devices
        .iter()
        .map(|d| config.remote_model.unwrap_or(d.model))
        .collect();
    let propagation = config.link.propagation;
    let reuse_buffers = config.engine.reuse_batch_buffers;
    let mut batch_out = BatchOutput::default();
    let telemetry = config.telemetry.clone();
    let mut coord_rec = telemetry.recorder();
    let mut tier_obs = TierObs::new(&telemetry, tier.len());
    let period_us = config.controller_period.as_micros();
    let mut next_report_us = period_us;
    let mut fb_seq = 0u64;
    let mut batch_tie = 0u64;
    let mut server_popped = 0u64;

    // ---- Shard partition: contiguous, first `big` shards one larger. ----
    let per = n / k;
    let big = n % k;
    let shard_of = move |g: usize| {
        let cut = big * (per + 1);
        if g < cut {
            g / (per + 1)
        } else {
            big + (g - cut) / per
        }
    };

    let change_events = network_change_events(&config);
    let mut states = Vec::with_capacity(k);
    let mut remaining = controllers;
    let mut offset = 0usize;
    for s in 0..k {
        let size = per + usize::from(s < big);
        let chunk: Vec<Box<dyn Controller>> = remaining.drain(..size).collect();
        let devs = FleetDevices::build(&config, chunk, offset);
        let scopes: Vec<Scope> = (offset..offset + size)
            .map(|g| telemetry.scope(&format!("device/{g}")))
            .collect();
        let world = ShardDeviceWorld {
            core: FleetCore {
                config: config.clone(),
                devs,
                end_at,
            },
            sink: OutboxSink { outbox: Vec::new() },
            recorder: telemetry.recorder(),
            scopes,
        };
        let mut sim =
            Simulation::with_queue(world, EventQueue::with_backend(config.engine.backend));
        for g in offset..offset + size {
            sim.schedule_at(SimTime::ZERO, FleetEvent::Capture(g));
            sim.schedule_at(
                SimTime::ZERO + config.controller_period,
                FleetEvent::Tick(g),
            );
        }
        for &(t, dev, step) in &change_events {
            let mine = match dev {
                // Shared schedule steps replicate into every shard
                // (each shard updates its own links); the duplicate
                // event pops are deducted from `events_handled` below.
                None => true,
                Some(d) => d >= offset && d < offset + size,
            };
            if mine {
                sim.schedule_at(
                    SimTime::from_secs_f64(t),
                    FleetEvent::NetworkChange { dev, step },
                );
            }
        }
        states.push(ShardState {
            sim,
            pending: Vec::new(),
            responses_applied: 0,
        });
        offset += size;
    }

    // ---- Mailboxes. The mutexes are for `Sync` soundness only: the
    // barrier protocol guarantees the coordinator and the workers never
    // touch them in the same phase, so every lock is uncontended. ----
    let submissions: Vec<Mutex<Vec<Submission>>> = (0..k).map(|_| Mutex::new(Vec::new())).collect();
    let feedback: Vec<Mutex<Vec<Feedback>>> = (0..k).map(|_| Mutex::new(Vec::new())).collect();

    let coordinator =
        |r: u64| {
            // Merge everything the previous device round deposited. The
            // conservative bound guarantees all submissions with an arrival
            // inside this window are already here.
            for mailbox in &submissions {
                let mut box_ = mailbox.lock().unwrap();
                for sub in box_.drain(..) {
                    let class = if tag_is_probe(sub.tag) {
                        CLASS_PROBE
                    } else {
                        CLASS_FRAME
                    };
                    heap.push(Reverse(ServerItem {
                        key: MergeKey {
                            at: sub.at,
                            ins: sub.sent_at,
                            class,
                            tie: tag_device(sub.tag) as u64,
                        },
                        kind: ItemKind::Submission { tag: sub.tag },
                    }));
                }
            }
            let b_us = window_end_us(r);
            let b = SimTime::from_micros(b_us);
            while heap.peek().is_some_and(|Reverse(item)| item.key.at < b) {
                let Reverse(item) = heap.pop().unwrap();
                // Every pop corresponds to one event the legacy engine
                // would have popped (stale-epoch batch completions
                // included — their guard ran inside the handler).
                server_popped += 1;
                let now = item.key.at;
                match item.kind {
                    ItemKind::Outage { server, recover } => {
                        if recover {
                            tier.recover(server);
                        } else {
                            tier.crash(server);
                        }
                    }
                    ItemKind::Submission { tag } => {
                        let dev = tag_device(tag);
                        let probe = tag_is_probe(tag);
                        let request = Request {
                            tenant: TenantId(dev as u32),
                            model: offload_models[dev],
                            submitted_at: now,
                            tag,
                        };
                        let outcome = tier.submit(now, request, !probe, &mut routing_rng);
                        if let TierSubmit::BatchStarted { server, done_at } = outcome {
                            heap.push(Reverse(ServerItem {
                                key: MergeKey {
                                    at: done_at,
                                    ins: now,
                                    class: CLASS_BATCH,
                                    tie: batch_tie,
                                },
                                kind: ItemKind::BatchDone {
                                    server,
                                    epoch: tier.epoch(server),
                                },
                            }));
                            batch_tie += 1;
                        }
                        if !probe {
                            let kind = match outcome {
                                // Routed to a dead server: lost in flight,
                                // the deadline will fire as a network-cause
                                // timeout without any feedback.
                                TierSubmit::Lost => None,
                                TierSubmit::AdmissionRejected => Some(FeedbackKind::Arrived {
                                    admission_rejected: true,
                                }),
                                TierSubmit::Queued { .. } | TierSubmit::BatchStarted { .. } => {
                                    Some(FeedbackKind::Arrived {
                                        admission_rejected: false,
                                    })
                                }
                            };
                            if let Some(kind) = kind {
                                feedback[shard_of(dev)].lock().unwrap().push(Feedback {
                                    at: now,
                                    class: FB_ARRIVAL,
                                    seq: fb_seq,
                                    tag,
                                    kind,
                                });
                                fb_seq += 1;
                            }
                        }
                    }
                    ItemKind::BatchDone { server, epoch } => {
                        if epoch != tier.epoch(server) {
                            continue;
                        }
                        if !reuse_buffers {
                            batch_out = BatchOutput::default();
                        }
                        tier.batch_done_into(server, now, &mut batch_out);
                        for c in &batch_out.completions {
                            let at = now + propagation;
                            // Past `end_at` the legacy engine schedules the
                            // response but never pops it.
                            if at <= end_at {
                                let tag = c.request.tag;
                                feedback[shard_of(tag_device(tag))].lock().unwrap().push(
                                    Feedback {
                                        at,
                                        class: FB_BATCH,
                                        seq: fb_seq,
                                        tag,
                                        kind: FeedbackKind::Response,
                                    },
                                );
                                fb_seq += 1;
                            }
                        }
                        for rej in &batch_out.rejections {
                            let tag = rej.request.tag;
                            if !tag_is_probe(tag) {
                                feedback[shard_of(tag_device(tag))].lock().unwrap().push(
                                    Feedback {
                                        at: now,
                                        class: FB_BATCH,
                                        seq: fb_seq,
                                        tag,
                                        kind: FeedbackKind::BatchRejected,
                                    },
                                );
                                fb_seq += 1;
                            }
                        }
                        if let Some(done_at) = batch_out.next_done {
                            heap.push(Reverse(ServerItem {
                                key: MergeKey {
                                    at: done_at,
                                    ins: now,
                                    class: CLASS_BATCH,
                                    tie: batch_tie,
                                },
                                kind: ItemKind::BatchDone { server, epoch },
                            }));
                            batch_tie += 1;
                        }
                    }
                }
            }
            // Tier-side telemetry at controller-period boundaries (the
            // legacy engine reports from device 0's tick; results carry no
            // telemetry so the report site is free to differ).
            if coord_rec.is_enabled() {
                while next_report_us < b_us && next_report_us <= end_us {
                    tier_obs.report(&mut coord_rec, &tier, next_report_us);
                    next_report_us += period_us;
                }
            }
            if telemetry.is_enabled() {
                telemetry.poll();
            }
        };

    let worker = |shard: usize, r: u64, state: &mut ShardState| {
        {
            let mut inbox = feedback[shard].lock().unwrap();
            state.pending.append(&mut inbox);
        }
        let b_us = window_end_us(r);
        state
            .pending
            .sort_unstable_by_key(|f| (f.at, f.class, f.seq));
        let cut = state.pending.partition_point(|f| f.at.as_micros() < b_us);
        for f in state.pending.drain(..cut) {
            match f.kind {
                FeedbackKind::Arrived { admission_rejected } => {
                    // Arrival-class: the legacy `Uplinked` handler runs
                    // before the same-send `Deadline` at this instant,
                    // so apply before local events at `f.at`.
                    state.sim.run_until(f.at - SimDuration::from_micros(1));
                    state
                        .sim
                        .model_mut()
                        .core
                        .apply_arrival(f.tag, f.at, admission_rejected);
                }
                FeedbackKind::BatchRejected => {
                    state.sim.run_until(f.at);
                    state.sim.model_mut().core.apply_batch_rejection(f.tag);
                }
                FeedbackKind::Response => {
                    state.sim.run_until(f.at);
                    state.sim.model_mut().core.apply_response(f.tag, f.at);
                    state.responses_applied += 1;
                }
            }
        }
        state.sim.run_until(SimTime::from_micros(b_us - 1));
        let out = mem::take(&mut state.sim.model_mut().sink.outbox);
        if !out.is_empty() {
            submissions[shard].lock().unwrap().extend(out);
        }
    };

    let states = run_phased(states, rounds, coordinator, worker);

    // ---- Reassembly. Shards are contiguous, so concatenating their
    // results in shard order is global device order. ----
    let mut device_results = Vec::with_capacity(n);
    let mut shard_events = 0u64;
    let mut responses_applied = 0u64;
    for state in states {
        shard_events += state.sim.events_handled();
        responses_applied += state.responses_applied;
        let world = state.sim.into_model();
        device_results.extend(world.core.devs.into_results());
    }
    // Shared network-schedule steps were replicated into every shard;
    // the legacy engine pops each exactly once.
    let shared_changes = if config.per_device_network.is_none() {
        config
            .network
            .steps()
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(_, &(t, _))| SimTime::from_secs_f64(t) <= end_at)
            .count() as u64
    } else {
        0
    };
    let events_handled =
        shard_events + responses_applied + server_popped - (k as u64 - 1) * shared_changes;
    if telemetry.is_enabled() {
        telemetry.poll();
    }
    finish_fleet(device_results, &tier, events_handled)
}

/// Test hooks for the merge-order proptest in
/// `tests/shard_determinism.rs`.
#[doc(hidden)]
pub mod testhooks {
    pub use super::MergeKey;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Pop order of a set of merge keys through the coordinator's heap
    /// — by construction independent of push order, which is what makes
    /// the merge invariant under shard-completion timing.
    pub fn merge_order(keys: Vec<MergeKey>) -> Vec<MergeKey> {
        let mut heap: BinaryHeap<Reverse<MergeKey>> = keys.into_iter().map(Reverse).collect();
        let mut out = Vec::with_capacity(heap.len());
        while let Some(Reverse(k)) = heap.pop() {
            out.push(k);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(at: u64, ins: u64, class: u8, tie: u64) -> MergeKey {
        MergeKey {
            at: SimTime::from_micros(at),
            ins: SimTime::from_micros(ins),
            class,
            tie,
        }
    }

    #[test]
    fn merge_key_orders_like_the_legacy_insertion_sequence() {
        // Same instant: a setup-scheduled outage pops before a mid-run
        // batch completion, which pops before tick-sent probes, which
        // pop before capture-sent frames; submissions tie-break in
        // device order, batch completions in emission order.
        let ordered = vec![
            key(5_000, 0, CLASS_OUTAGE, 0),
            key(5_000, 1_000, CLASS_BATCH, 3),
            key(5_000, 1_000, CLASS_BATCH, 7),
            key(5_000, 1_000, CLASS_PROBE, 2),
            key(5_000, 1_000, CLASS_FRAME, 0),
            key(5_000, 1_000, CLASS_FRAME, 4),
            key(5_000, 2_000, CLASS_FRAME, 1),
            key(6_000, 0, CLASS_OUTAGE, 1),
        ];
        let mut shuffled = ordered.clone();
        shuffled.reverse();
        shuffled.swap(0, 3);
        assert_eq!(testhooks::merge_order(shuffled), ordered);
    }

    #[test]
    fn earlier_insertion_wins_at_equal_fire_times() {
        // A batch completion scheduled at t=1ms and a frame sent at
        // t=2ms both firing at t=9ms: the batch completion was inserted
        // first, so it pops first — `ins` recovers insertion order.
        let batch = key(9_000, 1_000, CLASS_BATCH, 99);
        let frame = key(9_000, 2_000, CLASS_FRAME, 0);
        assert_eq!(
            testhooks::merge_order(vec![frame, batch]),
            vec![batch, frame]
        );
    }
}
