//! The on-device inference engine.
//!
//! A single-server queue with a **one-frame latest-frame buffer**: while
//! an inference runs, the most recently captured frame waits in a pending
//! slot (a newer arrival replaces — skips — the older one, as real-time
//! video pipelines do). This keeps the engine busy back to back, so its
//! saturated throughput equals the Table II rate instead of losing time
//! to frame-cadence quantization.
//!
//! Service time is `1 / P_l` with small multiplicative jitter (CPU
//! inference time varies a few percent run to run); the mean is
//! calibrated to the measured Table II rates via `ff-models`.

use ff_models::{DeviceKind, ModelKind};
use ff_sim::{SimDuration, SimTime};
use rand::Rng;

/// Outcome of offering a frame to the local engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalOutcome {
    /// Inference started; the caller must schedule a completion event.
    Started {
        /// Instant at which the inference finishes.
        done_at: SimTime,
    },
    /// The engine is busy; the frame waits in the pending slot.
    Queued,
    /// The engine is busy and the pending slot was occupied: this frame
    /// replaced the older pending frame, which is skipped.
    Replaced,
}

/// The local (on-device) inference engine.
#[derive(Debug, Clone)]
pub struct LocalEngine<R: Rng> {
    mean_service: SimDuration,
    jitter: f64,
    busy_until: Option<SimTime>,
    pending: bool,
    rng: R,
    /// Cumulative time spent computing, for CPU accounting.
    busy_time: SimDuration,
    completed: u64,
    skipped: u64,
}

impl<R: Rng> LocalEngine<R> {
    /// An engine calibrated to `device` running `model` (Table II rates).
    pub fn new(device: DeviceKind, model: ModelKind, rng: R) -> Self {
        Self::with_rate(device.local_rate_fps(model), rng)
    }

    /// An engine with an explicit service rate in frames/s.
    pub fn with_rate(rate_fps: f64, rng: R) -> Self {
        assert!(rate_fps > 0.0, "local rate must be positive");
        LocalEngine {
            mean_service: SimDuration::from_secs_f64(1.0 / rate_fps),
            jitter: 0.05,
            busy_until: None,
            pending: false,
            rng,
            busy_time: SimDuration::ZERO,
            completed: 0,
            skipped: 0,
        }
    }

    /// The engine's mean service rate in frames/s.
    pub fn rate_fps(&self) -> f64 {
        1.0 / self.mean_service.as_secs_f64()
    }

    /// Switch the service rate (a local-model change). Applies to
    /// services started from now on; an in-flight inference finishes at
    /// its old speed.
    pub fn set_rate_fps(&mut self, rate_fps: f64) {
        assert!(rate_fps > 0.0, "local rate must be positive");
        self.mean_service = SimDuration::from_secs_f64(1.0 / rate_fps);
    }

    /// Whether the engine is computing at `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        self.busy_until.is_some_and(|t| t > now)
    }

    fn start_service(&mut self, now: SimTime) -> SimTime {
        let factor = if self.jitter == 0.0 {
            1.0
        } else {
            self.rng.gen_range(1.0 - self.jitter..=1.0 + self.jitter)
        };
        let service = self.mean_service.mul_f64(factor);
        let done = now + service;
        self.busy_until = Some(done);
        self.busy_time += service;
        done
    }

    /// Offer a frame at `now`.
    pub fn offer(&mut self, now: SimTime) -> LocalOutcome {
        if self.is_busy(now) {
            return if self.pending {
                self.skipped += 1;
                LocalOutcome::Replaced
            } else {
                self.pending = true;
                LocalOutcome::Queued
            };
        }
        let done_at = self.start_service(now);
        LocalOutcome::Started { done_at }
    }

    /// The caller's completion event fired at `now`. Returns the next
    /// completion instant if the pending frame starts immediately.
    pub fn complete(&mut self, now: SimTime) -> Option<SimTime> {
        debug_assert!(
            self.busy_until.is_some_and(|t| t == now),
            "completion event out of sync with engine state"
        );
        self.busy_until = None;
        self.completed += 1;
        if self.pending {
            self.pending = false;
            Some(self.start_service(now))
        } else {
            None
        }
    }

    /// Frames inferred locally so far (services completed).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Frames skipped because both the engine and the pending slot were
    /// occupied.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Fraction of `[0, now]` spent computing — the input to the CPU
    /// usage model.
    pub fn busy_fraction(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        // busy_time may exceed `now` by the tail of an in-flight inference.
        (self.busy_time.as_secs_f64() / now.as_secs_f64()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_sim::RngFactory;
    use rand_chacha::ChaCha8Rng;

    fn engine(rate: f64) -> LocalEngine<ChaCha8Rng> {
        LocalEngine::with_rate(rate, RngFactory::new(11).stream("local"))
    }

    /// Drive an engine with a fixed-cadence stream and return completions/s.
    fn saturate(rate: f64, offered_fps: f64, secs: u64) -> f64 {
        let mut e = engine(rate);
        let dt = SimDuration::from_secs_f64(1.0 / offered_fps);
        let horizon = SimTime::from_secs(secs);
        let mut next_offer = SimTime::ZERO;
        let mut next_done: Option<SimTime> = None;
        loop {
            match next_done {
                Some(d) if d <= next_offer => {
                    next_done = e.complete(d);
                }
                _ => {
                    if next_offer >= horizon {
                        break;
                    }
                    if let LocalOutcome::Started { done_at } = e.offer(next_offer) {
                        next_done = Some(done_at);
                    }
                    next_offer += dt;
                }
            }
        }
        e.completed() as f64 / secs as f64
    }

    #[test]
    fn calibrated_to_table_ii() {
        let e = LocalEngine::new(
            DeviceKind::Pi4BRev12,
            ModelKind::MobileNetV3Small,
            RngFactory::new(1).stream("x"),
        );
        assert!((e.rate_fps() - 13.0).abs() < 0.01);
    }

    #[test]
    fn busy_engine_queues_then_replaces() {
        let mut e = engine(10.0); // ~100 ms service
        let LocalOutcome::Started { done_at } = e.offer(SimTime::ZERO) else {
            panic!("idle engine must start")
        };
        assert!(done_at.as_millis() >= 90 && done_at.as_millis() <= 110);
        assert_eq!(e.offer(SimTime::from_millis(30)), LocalOutcome::Queued);
        assert_eq!(e.offer(SimTime::from_millis(60)), LocalOutcome::Replaced);
        assert_eq!(e.skipped(), 1);
        // Completion immediately starts the pending frame.
        let next = e.complete(done_at);
        assert!(next.is_some(), "pending frame must start back to back");
        assert_eq!(e.completed(), 1);
    }

    #[test]
    fn saturated_throughput_matches_the_calibrated_rate() {
        let fps = saturate(13.0, 30.0, 100);
        assert!(
            (fps - 13.0).abs() < 0.7,
            "saturated local rate {fps:.2}, expected ~13"
        );
    }

    #[test]
    fn underloaded_engine_matches_the_offered_rate() {
        let fps = saturate(13.0, 5.0, 100);
        assert!(
            (fps - 5.0).abs() < 0.3,
            "underloaded rate {fps:.2}, expected ~5"
        );
    }

    #[test]
    fn busy_fraction_saturates_to_one() {
        let mut e = engine(13.0);
        let mut now = SimTime::ZERO;
        let mut done: Option<SimTime> = None;
        for _ in 0..300 {
            if let Some(d) = done {
                if d <= now {
                    done = e.complete(d);
                }
            }
            if let LocalOutcome::Started { done_at } = e.offer(now) {
                done = Some(done_at);
            }
            now += SimDuration::from_secs_f64(1.0 / 30.0);
        }
        let f = e.busy_fraction(now);
        assert!(f > 0.9 && f <= 1.0, "saturated busy fraction {f}");
    }

    #[test]
    fn idle_engine_has_zero_busy_fraction() {
        let e = engine(13.0);
        assert_eq!(e.busy_fraction(SimTime::from_secs(10)), 0.0);
        assert_eq!(e.busy_fraction(SimTime::ZERO), 0.0);
    }

    #[test]
    fn service_jitter_is_bounded() {
        let mut e = engine(10.0);
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            if let LocalOutcome::Started { done_at } = e.offer(now) {
                let ms = (done_at - now).as_millis();
                assert!((95..=105).contains(&ms), "service {ms} ms");
                e.complete(done_at);
                now = done_at;
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = engine(0.0);
    }

    #[test]
    fn rate_switch_applies_to_new_services() {
        let mut e = engine(10.0);
        let LocalOutcome::Started { done_at } = e.offer(SimTime::ZERO) else {
            panic!()
        };
        e.set_rate_fps(2.0); // 500 ms services from now on
                             // The in-flight service still completes at ~100 ms.
        assert!(done_at.as_millis() <= 110);
        e.complete(done_at);
        let LocalOutcome::Started { done_at: d2 } = e.offer(done_at) else {
            panic!()
        };
        let ms = (d2 - done_at).as_millis();
        assert!((475..=525).contains(&ms), "new service {ms} ms");
    }
}
