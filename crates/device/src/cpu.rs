//! Device CPU-usage model (the §II-A.5 energy observation).
//!
//! The paper measures: "Raspberry Pi CPU usage drops from 50.2% to 22.3%
//! on average when transitioning from local execution to offloading."
//! We model device CPU as a base (capture + JPEG encode + OS) plus a
//! local-inference component proportional to the engine's busy fraction
//! plus a small networking component proportional to the offload share.
//! The two coefficients are calibrated so the model reproduces both of
//! the paper's endpoints exactly.

/// CPU usage model calibrated to the paper's measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Always-on share: capture, encode, OS (percent).
    pub base_pct: f64,
    /// Added at 100% local-inference busy fraction (percent).
    pub local_coeff_pct: f64,
    /// Added at full offloading (`P_o = F_s`): serialization + TCP stack
    /// (percent).
    pub offload_coeff_pct: f64,
}

impl Default for CpuModel {
    /// Calibration: local-only (busy=1, offload=0) → 50.2%;
    /// full offloading (busy=0, offload share=1) → 22.3%.
    fn default() -> Self {
        CpuModel {
            base_pct: 15.0,
            local_coeff_pct: 35.2,
            offload_coeff_pct: 7.3,
        }
    }
}

impl CpuModel {
    /// Predicted average CPU usage in percent.
    ///
    /// * `local_busy_fraction` — fraction of time the inference engine
    ///   computed (0..=1),
    /// * `offload_share` — offloaded frames as a fraction of `F_s` (0..=1).
    pub fn usage_pct(&self, local_busy_fraction: f64, offload_share: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&local_busy_fraction),
            "busy fraction must be in [0, 1], got {local_busy_fraction}"
        );
        assert!(
            (0.0..=1.0 + 1e-9).contains(&offload_share),
            "offload share must be in [0, 1], got {offload_share}"
        );
        self.base_pct
            + self.local_coeff_pct * local_busy_fraction
            + self.offload_coeff_pct * offload_share
    }
}

/// Device power/energy model (the §II-A.5 energy remark, quantified).
///
/// The paper observes that "effective offloading leads to lower power
/// usage on edge devices" but does not measure power. A Raspberry Pi 4B
/// draws ~2.7 W idle and ~6.4 W under full 4-core load; power scales
/// approximately linearly with CPU utilization between those points, so
/// we map the calibrated CPU model onto that line and derive
/// energy-per-inference — the metric an energy-constrained deployment
/// would actually optimize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Power at 0% CPU (watts). Pi 4B measured idle draw.
    pub idle_watts: f64,
    /// Additional power at 100% CPU (watts).
    pub dynamic_watts: f64,
    /// The CPU model translating activity into utilization.
    pub cpu: CpuModel,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            idle_watts: 2.7,
            dynamic_watts: 3.7,
            cpu: CpuModel::default(),
        }
    }
}

impl EnergyModel {
    /// Average device power in watts for the given operating point.
    pub fn power_watts(&self, local_busy_fraction: f64, offload_share: f64) -> f64 {
        let cpu = self.cpu.usage_pct(local_busy_fraction, offload_share);
        self.idle_watts + self.dynamic_watts * (cpu / 100.0)
    }

    /// Energy per successful inference in joules: average power divided by
    /// the achieved throughput. Returns `None` for zero throughput.
    pub fn joules_per_inference(
        &self,
        local_busy_fraction: f64,
        offload_share: f64,
        throughput_fps: f64,
    ) -> Option<f64> {
        assert!(
            throughput_fps >= 0.0 && throughput_fps.is_finite(),
            "throughput must be finite and non-negative"
        );
        (throughput_fps > 0.0)
            .then(|| self.power_watts(local_busy_fraction, offload_share) / throughput_fps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_only_endpoint_matches_paper() {
        let m = CpuModel::default();
        assert!((m.usage_pct(1.0, 0.0) - 50.2).abs() < 1e-9);
    }

    #[test]
    fn full_offload_endpoint_matches_paper() {
        let m = CpuModel::default();
        assert!((m.usage_pct(0.0, 1.0) - 22.3).abs() < 1e-9);
    }

    #[test]
    fn offloading_always_cheaper_than_local() {
        let m = CpuModel::default();
        assert!(m.usage_pct(0.0, 1.0) < m.usage_pct(1.0, 0.0));
        // Mixed operation lies between the endpoints.
        let mixed = m.usage_pct(0.5, 0.5);
        assert!(mixed > m.usage_pct(0.0, 1.0) && mixed < m.usage_pct(1.0, 0.0));
    }

    #[test]
    fn idle_device_is_just_the_base() {
        let m = CpuModel::default();
        assert_eq!(m.usage_pct(0.0, 0.0), m.base_pct);
    }

    #[test]
    #[should_panic(expected = "busy fraction")]
    fn out_of_range_busy_fraction_panics() {
        CpuModel::default().usage_pct(1.5, 0.0);
    }

    #[test]
    fn power_interpolates_between_idle_and_full_load() {
        let e = EnergyModel::default();
        let idle = e.power_watts(0.0, 0.0);
        let local = e.power_watts(1.0, 0.0);
        let offload = e.power_watts(0.0, 1.0);
        assert!(idle > 2.7 && idle < 4.0, "idle-ish draw {idle}");
        assert!(
            local > offload,
            "local {local} W must exceed offloading {offload} W"
        );
        assert!(local < 6.4 + 1e-9, "cannot exceed full-load draw");
    }

    #[test]
    fn offloading_is_more_energy_efficient_per_inference() {
        // The real payoff: local-only does ~13 fps at high power;
        // offloading does ~30 fps at low power.
        let e = EnergyModel::default();
        let local = e.joules_per_inference(1.0, 0.0, 13.0).unwrap();
        let offload = e.joules_per_inference(0.0, 1.0, 30.0).unwrap();
        assert!(
            offload < local / 2.0,
            "offloading {offload:.3} J/inf should be far below local {local:.3} J/inf"
        );
    }

    #[test]
    fn zero_throughput_yields_no_energy_figure() {
        assert!(EnergyModel::default()
            .joules_per_inference(0.0, 0.0, 0.0)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "throughput")]
    fn negative_throughput_panics() {
        EnergyModel::default().joules_per_inference(0.0, 0.0, -1.0);
    }
}
