//! # ff-net — the emulated wireless uplink
//!
//! Reproduces the paper's NetEm-degraded network (§IV-C.1) inside the
//! discrete-event simulation: FIFO rate limiting with a bounded buffer,
//! per-packet Bernoulli loss with ARQ retransmission rounds, and one-way
//! propagation delay. Conditions ([`NetworkConditions`]) are mutable
//! mid-run, which is how the Table V schedule is applied.

#![warn(missing_docs)]

mod conditions;
mod link;
mod loss;

pub use conditions::NetworkConditions;
pub use link::{DropReason, Link, LinkConfig, LinkStats, SendOutcome};
pub use loss::{GilbertElliott, LossModel, LossProcess};
