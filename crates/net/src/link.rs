//! The wireless uplink emulator — our NetEm equivalent (§IV-C.1).
//!
//! The paper degrades a real Wi-Fi link with Linux NetEm rate limits and
//! packet loss. This module reproduces the two mechanisms end to end:
//!
//! * **Rate limiting** — a FIFO serialization queue: a frame starts
//!   transmitting when the link frees up and occupies it for
//!   `bytes·8 / bandwidth` (including retransmitted bytes). A bounded
//!   backlog models the token-bucket buffer; sends arriving at a full
//!   queue are dropped, as NetEm's `limit` does.
//! * **Packet loss** — each MTU-sized packet of a frame is lost i.i.d.
//!   with the configured probability. Lost packets are retransmitted by a
//!   stop-and-wait-per-round ARQ: every extra round adds one RTO to frame
//!   latency and re-serializes the lost bytes. A frame whose packets
//!   exhaust `max_attempts` rounds is dropped (the transport gives up).
//!
//! The controller never sees any of this structure — only the resulting
//! end-to-end latency and timeout pattern, which is the paper's premise.

use crate::conditions::NetworkConditions;
use crate::loss::{LossModel, LossProcess};
use ff_sim::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Static link parameters (the parts NetEm does not vary).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Packet size used for loss draws (Ethernet MTU).
    pub mtu_bytes: u64,
    /// One-way propagation + protocol overhead delay.
    pub propagation: SimDuration,
    /// Retransmission timeout added per ARQ round.
    pub rto: SimDuration,
    /// Maximum transmission rounds per packet before the frame is dropped.
    pub max_attempts: u32,
    /// Maximum queued serialization backlog; beyond this, sends are dropped.
    pub max_backlog: SimDuration,
    /// Opt-in fast path: draw per-round loss counts with a single
    /// binomial inversion instead of one RNG draw per packet
    /// ([`LossProcess::batch_lost`]). Statistically equivalent, but it
    /// changes how many RNG values each frame consumes, so runs are not
    /// bit-identical to the default per-packet path — hence off by
    /// default. Ignored for Gilbert–Elliott loss (always per-packet).
    #[serde(default)]
    pub fast_loss: bool,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            mtu_bytes: 1_500,
            propagation: SimDuration::from_millis(5),
            rto: SimDuration::from_millis(120),
            max_attempts: 4,
            max_backlog: SimDuration::from_millis(600),
            fast_loss: false,
        }
    }
}

/// Why a send failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The serialization queue was full when the frame arrived.
    QueueOverflow,
    /// A packet was lost `max_attempts` times in a row.
    LossExceeded,
}

/// Result of offering a frame to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The frame (all packets) arrives at the far end.
    Delivered {
        /// Delivery instant at the server side.
        at: SimTime,
    },
    /// The frame never arrives.
    Dropped(DropReason),
}

impl SendOutcome {
    /// The delivery instant, or `None` if the frame was dropped.
    pub fn delivered_at(self) -> Option<SimTime> {
        match self {
            SendOutcome::Delivered { at } => Some(at),
            SendOutcome::Dropped(_) => None,
        }
    }
}

/// Counters the link keeps for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Frames offered to the link (`send` calls).
    pub frames_offered: u64,
    /// Frames that reached the far end.
    pub frames_delivered: u64,
    /// Frames dropped because the serialization backlog was full.
    pub frames_dropped_overflow: u64,
    /// Frames dropped after exhausting retransmission attempts.
    pub frames_dropped_loss: u64,
    /// Packets transmitted, including retransmissions.
    pub packets_sent: u64,
    /// Packets lost across all transmission rounds.
    pub packets_lost: u64,
}

/// A stateful emulated uplink.
#[derive(Debug, Clone)]
pub struct Link<R: Rng> {
    config: LinkConfig,
    conditions: NetworkConditions,
    loss: LossProcess,
    busy_until: SimTime,
    rng: R,
    stats: LinkStats,
}

impl<R: Rng> Link<R> {
    /// A link with the given static parameters and initial conditions.
    pub fn new(config: LinkConfig, conditions: NetworkConditions, rng: R) -> Self {
        assert!(config.mtu_bytes > 0, "MTU must be positive");
        assert!(config.max_attempts > 0, "at least one attempt is required");
        let loss = LossProcess::new(LossModel::bernoulli(conditions.loss_probability()));
        Link {
            config,
            conditions,
            loss,
            busy_until: SimTime::ZERO,
            rng,
            stats: LinkStats::default(),
        }
    }

    /// Apply new NetEm conditions (a Table V phase change). Frames already
    /// serialized keep their old delivery times, matching how a real rate
    /// change only affects subsequent packets. The loss process resets to
    /// i.i.d. Bernoulli at the new rate (NetEm `loss X%` semantics).
    pub fn set_conditions(&mut self, c: NetworkConditions) {
        self.conditions = c;
        self.loss
            .set_model(LossModel::bernoulli(c.loss_probability()));
    }

    /// Replace the packet-loss process (e.g. a Gilbert–Elliott burst
    /// model) while keeping the bandwidth from `conditions`. The next
    /// `set_conditions` call reverts to Bernoulli loss.
    pub fn set_loss_model(&mut self, model: LossModel) {
        self.loss.set_model(model);
    }

    /// The active loss model.
    pub fn loss_model(&self) -> LossModel {
        self.loss.model()
    }

    /// The conditions currently in force.
    pub fn conditions(&self) -> NetworkConditions {
        self.conditions
    }

    /// The static link parameters.
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Outstanding serialization backlog at `now`.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Offer a `bytes`-sized frame to the link at `now`.
    pub fn send(&mut self, now: SimTime, bytes: u64) -> SendOutcome {
        assert!(bytes > 0, "cannot send an empty frame");
        self.stats.frames_offered += 1;

        if self.backlog(now) > self.config.max_backlog {
            self.stats.frames_dropped_overflow += 1;
            return SendOutcome::Dropped(DropReason::QueueOverflow);
        }

        let n_packets = bytes.div_ceil(self.config.mtu_bytes);

        // Per-packet transmission rounds (stop-and-wait ARQ per round):
        // round r retransmits every packet still lost after round r−1.
        let mut rounds: u32 = 1;
        let mut outstanding = n_packets; // packets needing (re)transmission this round
        let mut total_packets_sent: u64 = 0;
        let mut gave_up = false;
        loop {
            total_packets_sent += outstanding;
            let lost = if self.config.fast_loss {
                self.loss.batch_lost(outstanding, &mut self.rng)
            } else {
                (0..outstanding)
                    .filter(|_| self.loss.packet_lost(&mut self.rng))
                    .count() as u64
            };
            self.stats.packets_lost += lost;
            if lost == 0 {
                break;
            }
            if rounds >= self.config.max_attempts {
                gave_up = true;
                break;
            }
            rounds += 1;
            outstanding = lost;
        }
        self.stats.packets_sent += total_packets_sent;

        // All transmitted bytes occupy the link: the original frame plus
        // one MTU per retransmitted packet (retransmissions of the short
        // final packet are over-counted by < 1 MTU per round — negligible).
        let retransmitted = total_packets_sent - n_packets;
        let tx_bytes = bytes + retransmitted * self.config.mtu_bytes;
        let serialization =
            SimDuration::from_secs_f64(self.conditions.serialization_secs(tx_bytes));

        let start = self.busy_until.max(now);
        self.busy_until = start + serialization;

        if gave_up {
            self.stats.frames_dropped_loss += 1;
            return SendOutcome::Dropped(DropReason::LossExceeded);
        }

        let retrans_extra = self.config.rto * (rounds - 1) as u64;
        let at = self.busy_until + self.config.propagation + retrans_extra;
        self.stats.frames_delivered += 1;
        SendOutcome::Delivered { at }
    }

    /// Observed per-packet loss fraction so far.
    pub fn observed_loss(&self) -> f64 {
        if self.stats.packets_sent == 0 {
            return 0.0;
        }
        self.stats.packets_lost as f64 / self.stats.packets_sent as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_sim::RngFactory;
    use proptest::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn link(bw_mbps: f64, loss_pct: f64) -> Link<ChaCha8Rng> {
        Link::new(
            LinkConfig::default(),
            NetworkConditions::new(bw_mbps, loss_pct),
            RngFactory::new(7).stream("link"),
        )
    }

    #[test]
    fn lossless_delivery_time_is_serialization_plus_propagation() {
        let mut l = link(10.0, 0.0);
        // 25 KB at 10 Mbps = 20 ms; + 5 ms propagation.
        let out = l.send(SimTime::ZERO, 25_000);
        let at = out.delivered_at().expect("lossless link delivers");
        assert_eq!(at.as_millis(), 25);
    }

    #[test]
    fn fifo_backlog_delays_subsequent_frames() {
        let mut l = link(10.0, 0.0);
        let a = l.send(SimTime::ZERO, 25_000).delivered_at().unwrap();
        let b = l.send(SimTime::ZERO, 25_000).delivered_at().unwrap();
        assert_eq!(b - a, SimDuration::from_millis(20), "second frame queues");
        assert_eq!(l.backlog(SimTime::ZERO), SimDuration::from_millis(40));
        // After the backlog drains, a new frame is unqueued again.
        let later = SimTime::from_millis(100);
        assert_eq!(l.backlog(later), SimDuration::ZERO);
        let c = l.send(later, 25_000).delivered_at().unwrap();
        assert_eq!(c - later, SimDuration::from_millis(25));
    }

    #[test]
    fn queue_overflow_drops_frames() {
        let mut l = link(1.0, 0.0); // 25 KB takes 200 ms at 1 Mbps
        let mut delivered = 0;
        let mut dropped = 0;
        // Offer 30 frames at the same instant: backlog cap (600 ms) admits
        // only the first few.
        for _ in 0..30 {
            match l.send(SimTime::ZERO, 25_000) {
                SendOutcome::Delivered { .. } => delivered += 1,
                SendOutcome::Dropped(DropReason::QueueOverflow) => dropped += 1,
                SendOutcome::Dropped(r) => panic!("unexpected drop {r:?}"),
            }
        }
        assert!((3..=5).contains(&delivered), "delivered {delivered}");
        assert_eq!(delivered + dropped, 30);
        assert_eq!(l.stats().frames_dropped_overflow, dropped as u64);
    }

    #[test]
    fn loss_adds_rto_latency() {
        // At 30% per-packet loss, a 17-packet frame almost surely needs
        // at least one retransmission round.
        let mut l = link(10.0, 30.0);
        let mut extra_latency_seen = false;
        for i in 0..50u64 {
            let now = SimTime::from_secs(i);
            if let SendOutcome::Delivered { at } = l.send(now, 25_000) {
                let lat = at - now;
                if lat >= LinkConfig::default().rto {
                    extra_latency_seen = true;
                }
            }
        }
        assert!(extra_latency_seen, "retransmission rounds must add RTO");
        assert!(l.observed_loss() > 0.15 && l.observed_loss() < 0.45);
    }

    #[test]
    fn extreme_loss_eventually_gives_up() {
        let mut l = link(10.0, 90.0);
        let mut drops = 0;
        for i in 0..20u64 {
            if let SendOutcome::Dropped(DropReason::LossExceeded) =
                l.send(SimTime::from_secs(i), 25_000)
            {
                drops += 1;
            }
        }
        assert!(drops > 10, "90% loss should exhaust attempts, got {drops}");
    }

    #[test]
    fn zero_loss_never_drops_for_loss() {
        let mut l = link(10.0, 0.0);
        for i in 0..100u64 {
            let _ = l.send(SimTime::from_secs(i), 25_000);
        }
        assert_eq!(l.stats().frames_dropped_loss, 0);
        assert_eq!(l.stats().packets_lost, 0);
        assert_eq!(l.observed_loss(), 0.0);
    }

    #[test]
    fn conditions_change_applies_to_new_frames() {
        let mut l = link(10.0, 0.0);
        let fast = l.send(SimTime::ZERO, 25_000).delivered_at().unwrap();
        l.set_conditions(NetworkConditions::new(1.0, 0.0));
        let t1 = SimTime::from_secs(1);
        let slow = l.send(t1, 25_000).delivered_at().unwrap();
        assert!((slow - t1).as_millis() > 4 * (fast - SimTime::ZERO).as_millis());
    }

    #[test]
    fn stats_account_for_every_frame() {
        let mut l = link(4.0, 7.0);
        for i in 0..200u64 {
            let _ = l.send(SimTime::from_millis(i * 33), 25_000);
        }
        let s = l.stats();
        assert_eq!(s.frames_offered, 200);
        assert_eq!(
            s.frames_delivered + s.frames_dropped_loss + s.frames_dropped_overflow,
            200
        );
    }

    #[test]
    fn observed_loss_tracks_configured_loss() {
        let mut l = link(100.0, 7.0); // high bandwidth: no overflow noise
        for i in 0..2_000u64 {
            let _ = l.send(SimTime::from_millis(i * 10), 25_000);
        }
        let obs = l.observed_loss();
        // Retransmissions re-draw loss, so observed per-packet loss stays
        // near the configured 7%.
        assert!((obs - 0.07).abs() < 0.01, "observed {obs:.4}");
    }

    #[test]
    fn fast_loss_is_off_by_default_and_absent_configs_deserialize_off() {
        assert!(!LinkConfig::default().fast_loss);
        // Configs serialized before the flag existed must keep the
        // bit-reproducible per-packet path.
        let mut json = serde_json::to_value(&LinkConfig::default()).unwrap();
        if let serde::Value::Obj(entries) = &mut json {
            entries.retain(|(k, _)| k != "fast_loss");
        }
        let cfg: LinkConfig = serde_json::from_value(&json).unwrap();
        assert!(!cfg.fast_loss);
    }

    #[test]
    fn fast_loss_tracks_configured_loss_with_fewer_rng_draws() {
        let config = LinkConfig {
            fast_loss: true,
            ..LinkConfig::default()
        };
        let mut l = Link::new(
            config,
            NetworkConditions::new(100.0, 7.0),
            RngFactory::new(7).stream("link"),
        );
        for i in 0..2_000u64 {
            let _ = l.send(SimTime::from_millis(i * 10), 25_000);
        }
        let obs = l.observed_loss();
        assert!((obs - 0.07).abs() < 0.01, "observed {obs:.4}");
        let s = l.stats();
        assert_eq!(
            s.frames_delivered + s.frames_dropped_loss + s.frames_dropped_overflow,
            2_000
        );
    }

    #[test]
    #[should_panic(expected = "empty frame")]
    fn empty_send_panics() {
        link(10.0, 0.0).send(SimTime::ZERO, 0);
    }

    proptest! {
        /// Delivery never happens before serialization + propagation could
        /// physically complete, and never before `now`.
        #[test]
        fn prop_delivery_respects_physics(
            bytes in 1u64..200_000,
            bw in 1.0f64..100.0,
            loss in 0.0f64..20.0,
            seed in 0u64..50,
        ) {
            let mut l = Link::new(
                LinkConfig::default(),
                NetworkConditions::new(bw, loss),
                RngFactory::new(seed).stream("prop"),
            );
            let now = SimTime::from_secs(1);
            if let SendOutcome::Delivered { at } = l.send(now, bytes) {
                let physical_floor = SimDuration::from_secs_f64(
                    NetworkConditions::new(bw, 0.0).serialization_secs(bytes)
                ) + LinkConfig::default().propagation;
                prop_assert!(at >= now + physical_floor);
            }
        }

        /// Backlog is monotone under repeated sends at a fixed instant.
        #[test]
        fn prop_backlog_monotone(count in 1usize..20, bytes in 1_000u64..50_000) {
            let mut l = link(10.0, 0.0);
            let mut prev = SimDuration::ZERO;
            for _ in 0..count {
                let _ = l.send(SimTime::ZERO, bytes);
                let b = l.backlog(SimTime::ZERO);
                prop_assert!(b >= prev);
                prev = b;
            }
        }
    }
}
