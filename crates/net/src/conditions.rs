//! Network condition descriptors (the knobs NetEm turns in §IV-C.1).

use serde::{Deserialize, Serialize};

/// Network conditions in force on a link (Table V columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConditions {
    /// Link bandwidth in Mbps.
    ///
    /// Table V prints "kbps", but the schedule's values (1–10) only
    /// reproduce Figure 3's three regimes at Mbps scale — see DESIGN.md,
    /// "Unit calibration note".
    pub bandwidth_mbps: f64,
    /// Packet loss probability in percent (applied per MTU-sized packet).
    pub loss_pct: f64,
}

impl NetworkConditions {
    /// Validated conditions.
    pub fn new(bandwidth_mbps: f64, loss_pct: f64) -> Self {
        assert!(
            bandwidth_mbps > 0.0 && bandwidth_mbps.is_finite(),
            "bandwidth must be positive and finite, got {bandwidth_mbps}"
        );
        assert!(
            (0.0..=100.0).contains(&loss_pct),
            "loss must be a percentage in [0, 100], got {loss_pct}"
        );
        NetworkConditions {
            bandwidth_mbps,
            loss_pct,
        }
    }

    /// The ideal condition used before degradation phases: 10 Mbps, no loss.
    pub fn ideal() -> Self {
        NetworkConditions::new(10.0, 0.0)
    }

    /// Loss probability as a fraction in `[0, 1]`.
    pub fn loss_probability(&self) -> f64 {
        self.loss_pct / 100.0
    }

    /// Seconds needed to serialize `bytes` onto the link.
    pub fn serialization_secs(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 / (self.bandwidth_mbps * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_scales_with_bytes_and_bandwidth() {
        let c = NetworkConditions::new(10.0, 0.0);
        // 1.25 MB at 10 Mbps = 1 s.
        assert!((c.serialization_secs(1_250_000) - 1.0).abs() < 1e-9);
        let slow = NetworkConditions::new(1.0, 0.0);
        assert!((slow.serialization_secs(1_250_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn loss_probability_is_a_fraction() {
        assert_eq!(NetworkConditions::new(1.0, 7.0).loss_probability(), 0.07);
        assert_eq!(NetworkConditions::ideal().loss_probability(), 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        NetworkConditions::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "loss")]
    fn over_100pct_loss_rejected() {
        NetworkConditions::new(1.0, 101.0);
    }
}
