//! Packet-loss processes.
//!
//! NetEm's plain `loss X%` is i.i.d. Bernoulli, and that is what the
//! paper configures (§IV-C.1). Real wireless links, however, lose packets
//! in **bursts** — the paper itself notes wireless loss "in the tens of
//! percentage points" [37] — and burstiness changes the *pattern* of
//! deadline violations a controller sees: the same average loss rate
//! produces calm stretches punctuated by storms instead of steady
//! attrition. We therefore support both:
//!
//! * [`LossModel::Bernoulli`] — i.i.d. loss, NetEm-equivalent,
//! * [`LossModel::GilbertElliott`] — the classic two-state Markov burst
//!   model (good state: low loss; bad state: high loss), which NetEm also
//!   offers as `loss gemodel`.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A per-packet loss process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// Independent loss with the given probability.
    Bernoulli {
        /// Per-packet loss probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Markov (Gilbert–Elliott) loss.
    GilbertElliott(GilbertElliott),
}

/// Parameters of the Gilbert–Elliott model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// P(good → bad) per packet.
    pub p_good_to_bad: f64,
    /// P(bad → good) per packet.
    pub p_bad_to_good: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A burst model with the given **average** loss rate: rare
    /// transitions into a high-loss state calibrated so the stationary
    /// loss equals `avg_loss`. Mean burst length ≈ 20 packets.
    pub fn with_average_loss(avg_loss: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&avg_loss),
            "average loss must be in [0, 0.5), got {avg_loss}"
        );
        let loss_bad = 0.6;
        let loss_good = 0.0;
        // Stationary probability of the bad state needed for the target:
        // avg = pi_bad * loss_bad  =>  pi_bad = avg / loss_bad.
        let pi_bad = avg_loss / loss_bad;
        // With p_bad_to_good fixed (mean burst 20 packets), solve
        // pi_bad = p_gb / (p_gb + p_bg).
        let p_bad_to_good = 0.05;
        let p_good_to_bad = pi_bad * p_bad_to_good / (1.0 - pi_bad);
        GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            loss_good,
            loss_bad,
        }
    }

    /// The stationary (long-run average) loss probability.
    pub fn stationary_loss(&self) -> f64 {
        let pi_bad = self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good);
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }

    fn validate(&self) {
        for (name, v) in [
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
        ] {
            assert!(
                (0.0..=1.0).contains(&v),
                "{name} must be a probability, got {v}"
            );
        }
        assert!(
            self.p_good_to_bad + self.p_bad_to_good > 0.0,
            "the chain must be able to move"
        );
    }
}

impl LossModel {
    /// No loss at all.
    pub const NONE: LossModel = LossModel::Bernoulli { p: 0.0 };

    /// Validated Bernoulli model.
    pub fn bernoulli(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss must be a probability");
        LossModel::Bernoulli { p }
    }

    /// Long-run average loss probability.
    pub fn average_loss(&self) -> f64 {
        match self {
            LossModel::Bernoulli { p } => *p,
            LossModel::GilbertElliott(ge) => ge.stationary_loss(),
        }
    }
}

/// The stateful side of a loss process (the Markov state for GE).
#[derive(Debug, Clone)]
pub struct LossProcess {
    model: LossModel,
    in_bad_state: bool,
}

impl LossProcess {
    /// A process starting in the good state.
    pub fn new(model: LossModel) -> Self {
        if let LossModel::GilbertElliott(ge) = &model {
            ge.validate();
        }
        LossProcess {
            model,
            // Start in the good state: bursts are exceptional events.
            in_bad_state: false,
        }
    }

    /// The configured loss model.
    pub fn model(&self) -> LossModel {
        self.model
    }

    /// Swap the model (a schedule step); the Markov state resets to good.
    pub fn set_model(&mut self, model: LossModel) {
        if let LossModel::GilbertElliott(ge) = &model {
            ge.validate();
        }
        self.model = model;
        self.in_bad_state = false;
    }

    /// Draw the fate of one packet: `true` = lost.
    pub fn packet_lost<R: Rng>(&mut self, rng: &mut R) -> bool {
        match self.model {
            LossModel::Bernoulli { p } => p > 0.0 && rng.gen_bool(p),
            LossModel::GilbertElliott(ge) => {
                // Transition first, then draw loss in the new state.
                if self.in_bad_state {
                    if rng.gen_bool(ge.p_bad_to_good) {
                        self.in_bad_state = false;
                    }
                } else if ge.p_good_to_bad > 0.0 && rng.gen_bool(ge.p_good_to_bad) {
                    self.in_bad_state = true;
                }
                let p = if self.in_bad_state {
                    ge.loss_bad
                } else {
                    ge.loss_good
                };
                p > 0.0 && rng.gen_bool(p)
            }
        }
    }

    /// Draw how many of `n` packets are lost in a single step.
    ///
    /// For i.i.d. Bernoulli loss this inverts the Binomial(n, p) CDF
    /// with **one** uniform draw instead of `n` independent draws. The
    /// loss count has exactly the right distribution, but the RNG
    /// consumes fewer values than `n` calls to
    /// [`packet_lost`](Self::packet_lost) would, so runs using it are
    /// not bit-identical to per-packet runs — which is why the link
    /// only uses it behind the opt-in `fast_loss` flag.
    ///
    /// Gilbert–Elliott loss is inherently sequential (the Markov state
    /// advances per packet), so it falls back to per-packet draws and
    /// stays bit-identical.
    pub fn batch_lost<R: Rng>(&mut self, n: u64, rng: &mut R) -> u64 {
        match self.model {
            LossModel::Bernoulli { p } => {
                if n == 0 || p <= 0.0 {
                    return 0; // no RNG draw: nothing is at stake
                }
                if p >= 1.0 {
                    return n; // no RNG draw: every packet is lost
                }
                // Invert the Binomial(n, p) CDF: walk the pmf upward
                // from k = 0 until it covers the uniform draw. Expected
                // work is O(np); frames are at most a few hundred MTU
                // packets, so the walk is short. If q^n underflows to
                // zero (enormous n), the walk degenerates to returning
                // n, which is out of range for any real frame size.
                let u: f64 = rng.gen();
                let q = 1.0 - p;
                let mut pmf = q.powf(n as f64);
                let mut cdf = pmf;
                let mut k = 0u64;
                while u > cdf && k < n {
                    pmf *= (n - k) as f64 * p / ((k + 1) as f64 * q);
                    k += 1;
                    cdf += pmf;
                }
                k
            }
            LossModel::GilbertElliott(_) => (0..n).filter(|_| self.packet_lost(rng)).count() as u64,
        }
    }

    /// Whether the process is currently in the bad (bursty) state.
    pub fn in_burst(&self) -> bool {
        self.in_bad_state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_sim::RngFactory;

    fn draw_n(process: &mut LossProcess, n: usize, seed: u64) -> Vec<bool> {
        let mut rng = RngFactory::new(seed).stream("loss-test");
        (0..n).map(|_| process.packet_lost(&mut rng)).collect()
    }

    #[test]
    fn bernoulli_matches_configured_rate() {
        let mut p = LossProcess::new(LossModel::bernoulli(0.07));
        let losses = draw_n(&mut p, 100_000, 1);
        let rate = losses.iter().filter(|&&l| l).count() as f64 / losses.len() as f64;
        assert!((rate - 0.07).abs() < 0.005, "observed {rate:.4}");
    }

    #[test]
    fn zero_loss_never_loses() {
        let mut p = LossProcess::new(LossModel::NONE);
        assert!(draw_n(&mut p, 10_000, 2).iter().all(|&l| !l));
    }

    #[test]
    fn gilbert_elliott_hits_the_target_average() {
        let ge = GilbertElliott::with_average_loss(0.07);
        assert!((ge.stationary_loss() - 0.07).abs() < 1e-12);
        let mut p = LossProcess::new(LossModel::GilbertElliott(ge));
        let losses = draw_n(&mut p, 400_000, 3);
        let rate = losses.iter().filter(|&&l| l).count() as f64 / losses.len() as f64;
        assert!((rate - 0.07).abs() < 0.01, "observed {rate:.4}");
    }

    #[test]
    fn gilbert_elliott_is_burstier_than_bernoulli_at_equal_average() {
        // Burstiness metric: probability that a loss is immediately
        // followed by another loss. For Bernoulli this equals the loss
        // rate; for GE it approaches the bad-state loss rate.
        let conditional_loss = |model: LossModel, seed: u64| {
            let mut p = LossProcess::new(model);
            let losses = draw_n(&mut p, 400_000, seed);
            let mut pairs = 0u64;
            let mut loss_then_loss = 0u64;
            for w in losses.windows(2) {
                if w[0] {
                    pairs += 1;
                    if w[1] {
                        loss_then_loss += 1;
                    }
                }
            }
            loss_then_loss as f64 / pairs.max(1) as f64
        };
        let bern = conditional_loss(LossModel::bernoulli(0.07), 4);
        let ge = conditional_loss(
            LossModel::GilbertElliott(GilbertElliott::with_average_loss(0.07)),
            5,
        );
        assert!(bern < 0.12, "Bernoulli conditional loss {bern:.3}");
        assert!(
            ge > 3.0 * bern,
            "GE conditional loss {ge:.3} should dwarf Bernoulli's {bern:.3}"
        );
    }

    #[test]
    fn burst_state_is_visible_and_resets_on_model_change() {
        let ge = GilbertElliott {
            p_good_to_bad: 1.0, // deterministically enter the burst
            p_bad_to_good: 0.0,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let mut p = LossProcess::new(LossModel::GilbertElliott(ge));
        let mut rng = RngFactory::new(6).stream("x");
        assert!(!p.in_burst());
        assert!(p.packet_lost(&mut rng));
        assert!(p.in_burst());
        p.set_model(LossModel::NONE);
        assert!(!p.in_burst());
    }

    #[test]
    fn batch_lost_matches_the_binomial_mean() {
        let mut p = LossProcess::new(LossModel::bernoulli(0.07));
        let mut rng = RngFactory::new(11).stream("batch");
        let n = 17u64;
        let trials = 100_000u64;
        let total: u64 = (0..trials).map(|_| p.batch_lost(n, &mut rng)).sum();
        let mean = total as f64 / trials as f64;
        let expected = n as f64 * 0.07;
        assert!((mean - expected).abs() < 0.02, "mean {mean:.4}");
    }

    #[test]
    fn batch_lost_matches_the_binomial_spread() {
        // Beyond the mean: check the full shape via the variance, which
        // a buggy inversion (e.g. always returning the mode) would miss.
        let mut p = LossProcess::new(LossModel::bernoulli(0.3));
        let mut rng = RngFactory::new(12).stream("spread");
        let n = 10u64;
        let trials = 100_000u64;
        let draws: Vec<u64> = (0..trials).map(|_| p.batch_lost(n, &mut rng)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / trials as f64;
        let var = draws
            .iter()
            .map(|&k| (k as f64 - mean).powi(2))
            .sum::<f64>()
            / trials as f64;
        let expected_var = n as f64 * 0.3 * 0.7; // np(1-p) = 2.1
        assert!((var - expected_var).abs() < 0.05, "variance {var:.4}");
        assert!(draws.iter().all(|&k| k <= n), "count exceeds n");
    }

    #[test]
    fn batch_lost_edge_cases_consume_no_rng() {
        let mut zero = LossProcess::new(LossModel::NONE);
        let mut certain = LossProcess::new(LossModel::bernoulli(1.0));
        let mut some = LossProcess::new(LossModel::bernoulli(0.2));
        let mut rng = RngFactory::new(13).stream("edges");
        let mut twin = rng.clone();
        assert_eq!(zero.batch_lost(50, &mut rng), 0);
        assert_eq!(certain.batch_lost(50, &mut rng), 50);
        assert_eq!(some.batch_lost(0, &mut rng), 0);
        // The RNG is untouched: the next value matches the twin's first.
        assert_eq!(rng.gen::<u64>(), twin.gen::<u64>());
    }

    #[test]
    fn gilbert_elliott_batch_is_bit_identical_to_per_packet() {
        let ge = LossModel::GilbertElliott(GilbertElliott::with_average_loss(0.1));
        let mut batch = LossProcess::new(ge);
        let mut single = LossProcess::new(ge);
        let mut rng_a = RngFactory::new(14).stream("ge");
        let mut rng_b = rng_a.clone();
        for n in [1u64, 5, 17, 40] {
            let via_batch = batch.batch_lost(n, &mut rng_a);
            let via_loop = (0..n).filter(|_| single.packet_lost(&mut rng_b)).count() as u64;
            assert_eq!(via_batch, via_loop);
            assert_eq!(batch.in_burst(), single.in_burst());
        }
        // Both RNGs advanced by exactly the same number of draws.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn average_loss_accessor_is_consistent() {
        assert_eq!(LossModel::bernoulli(0.07).average_loss(), 0.07);
        let ge = GilbertElliott::with_average_loss(0.1);
        assert!((LossModel::GilbertElliott(ge).average_loss() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "average loss")]
    fn half_loss_target_rejected() {
        GilbertElliott::with_average_loss(0.5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_bernoulli_rejected() {
        LossModel::bernoulli(1.5);
    }
}
