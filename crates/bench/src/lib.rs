//! # ff-bench — regeneration harness for every table and figure
//!
//! Shared plumbing for the experiment binaries (`src/bin/*.rs`), each of
//! which regenerates one artifact of the paper's evaluation:
//!
//! | Binary                | Artifact |
//! |-----------------------|----------|
//! | `table2_local_rates`  | Table II — measured local rates `P_l` |
//! | `table3_accuracy`     | Table III — model accuracy (+ §II-D trade-off) |
//! | `table4_settings`     | Table IV — controller settings validation |
//! | `fig2_gain_sweep`     | Fig. 2 — `P_o` under gain variants, loss at 27 s |
//! | `fig3_network`        | Fig. 3 + Table V — throughput under network degradation |
//! | `fig4_server_load`    | Fig. 4 + Table VI — throughput under server load |
//! | `cpu_usage`           | §II-A CPU usage observation |
//! | `combined_stress`     | §IV-C combined network × load (extension X2) |
//! | `sweep`               | `ff-sweep` engine benchmark → `BENCH_sweep.json` |
//! | `soak`                | reactor live-tier fleet soak → `BENCH_live.json` |
//! | `dashboard`           | live terminal fleet view over telemetry export |
//!
//! Each binary prints a human-readable table and exports the raw series
//! as JSON under `target/experiments/`. Grid-shaped experiments
//! (`seed_sweep`, `fig2_gain_sweep`, `deadline_sweep`, `pid_ablation`,
//! and the [`run_lineup`] lineups) execute through the `ff-sweep`
//! work-stealing engine — one worker per core, deterministic
//! aggregation, `FF_SWEEP_WORKERS` / `FF_SWEEP_CACHE_DIR` to override.

mod dashboard;
pub mod gate;
pub mod soak;

pub use dashboard::Dashboard;

use ff_baselines::{AllOrNothing, AlwaysOffload, LocalOnly};
use ff_core::{Controller, FrameFeedback};
use ff_device::{ExperimentConfig, ExperimentResult};
use ff_metrics::{render_chart, ChartConfig, ChartSeries};
use ff_sweep::{run_sweep, SweepOptions, SweepSpec};
use serde::Serialize;

/// Return the value following `flag` in a CLI argument list, if any —
/// the shared flag parser of the experiment binaries.
pub fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The four controllers of §IV-B, freshly constructed.
pub fn controller_lineup() -> Vec<Box<dyn Controller>> {
    vec![
        Box::new(FrameFeedback::new()),
        Box::new(LocalOnly::new()),
        Box::new(AlwaysOffload::new()),
        Box::new(AllOrNothing::new()),
    ]
}

/// Run the same experiment configuration under every controller.
///
/// Backed by the `ff-sweep` engine: the four runs execute in parallel
/// (one per core, `FF_SWEEP_WORKERS` to override) and aggregate in
/// lineup order. Results are bit-identical to running
/// [`run_experiment`] serially per controller.
pub fn run_lineup(config: &ExperimentConfig) -> Vec<ExperimentResult> {
    let spec = SweepSpec::lineup("lineup", config.clone());
    run_sweep(&spec, &SweepOptions::from_env())
        .cells
        .into_iter()
        .map(|c| c.result)
        .collect()
}

/// A labelled time range for per-phase reporting.
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    pub label: &'static str,
    pub from_secs: f64,
    pub to_secs: f64,
}

/// Print a per-phase mean-throughput table for a set of results, matching
/// the structure of the paper's figures (one line per controller).
pub fn print_phase_table(results: &[ExperimentResult], phases: &[Phase]) {
    print!("{:<16}", "controller");
    for p in phases {
        print!(" {:>14}", p.label);
    }
    println!(" {:>10}", "mean P");
    for r in results {
        print!("{:<16}", r.controller);
        for p in phases {
            let v = r
                .qos
                .aggregate(p.from_secs, p.to_secs)
                .map_or(f64::NAN, |a| a.mean_throughput);
            print!(" {:>14.1}", v);
        }
        println!(" {:>10.1}", r.mean_throughput);
    }
}

/// Print per-second `(t, P, P_l, P_o, P_o target)` series for one result —
/// the raw points behind the figures.
pub fn print_series(result: &ExperimentResult) {
    println!("# controller = {}", result.controller);
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8}",
        "t(s)", "P", "P_l", "P_o", "Po*"
    );
    for rec in result.qos.records() {
        println!(
            "{:>6.0} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            rec.t_secs,
            rec.throughput(),
            rec.pl,
            rec.po,
            rec.po_target
        );
    }
}

/// Symbols used for the controller series in terminal charts, in
/// `controller_lineup()` order.
pub const CHART_SYMBOLS: [char; 4] = ['F', 'l', 'a', 'n'];

/// Render the per-second throughput `P` of several results as a terminal
/// line chart (the visual form of Figures 3 and 4).
pub fn print_throughput_chart(title: &str, results: &[ExperimentResult]) {
    let series_points: Vec<Vec<(f64, f64)>> = results
        .iter()
        .map(|r| {
            r.qos
                .records()
                .iter()
                .map(|rec| (rec.t_secs, rec.throughput()))
                .collect()
        })
        .collect();
    let series: Vec<ChartSeries<'_>> = results
        .iter()
        .zip(&series_points)
        .enumerate()
        .map(|(i, (r, points))| ChartSeries {
            label: &r.controller,
            symbol: CHART_SYMBOLS[i % CHART_SYMBOLS.len()],
            points,
        })
        .collect();
    println!("{title}");
    print!(
        "{}",
        render_chart(
            &ChartConfig {
                y_label: "P (frames/s)",
                x_label: "t (s)",
                ..Default::default()
            },
            &series,
        )
    );
}

/// Render the `P_o` target of one result as a terminal chart (the visual
/// form of Figure 2's traces).
pub fn print_po_target_chart(title: &str, labelled: &[(String, &ExperimentResult)]) {
    let series_points: Vec<Vec<(f64, f64)>> = labelled
        .iter()
        .map(|(_, r)| {
            r.qos
                .records()
                .iter()
                .map(|rec| (rec.t_secs, rec.po_target))
                .collect()
        })
        .collect();
    let symbols = ['1', '2', '3', '4', '5', '6', '7', '8'];
    let series: Vec<ChartSeries<'_>> = labelled
        .iter()
        .zip(&series_points)
        .enumerate()
        .map(|(i, ((label, _), points))| ChartSeries {
            label,
            symbol: symbols[i % symbols.len()],
            points,
        })
        .collect();
    println!("{title}");
    print!(
        "{}",
        render_chart(
            &ChartConfig {
                y_label: "P_o target (frames/s)",
                x_label: "t (s)",
                ..Default::default()
            },
            &series,
        )
    );
}

/// Write a serializable result set as pretty JSON under
/// `target/experiments/<name>.json`; returns the path.
pub fn export_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_has_the_four_policies() {
        let names: Vec<&str> = controller_lineup().iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "framefeedback",
                "local-only",
                "always-offload",
                "all-or-nothing"
            ]
        );
    }

    #[test]
    fn run_lineup_produces_one_result_per_controller() {
        let mut config = ExperimentConfig::default();
        config.stream.total_frames = 150; // 5 s, keep the test fast
        config.peer_devices = 0;
        let results = run_lineup(&config);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.frames_generated, 150);
        }
    }

    #[test]
    fn export_json_round_trips() {
        let path = export_json("selftest", &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        let back: Vec<i32> = serde_json::from_str(&body).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
