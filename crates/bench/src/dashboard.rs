//! Terminal fleet dashboard: pure rendering over telemetry snapshots.
//!
//! [`Dashboard`] folds a stream of `ff_telemetry::Snapshot`s — from an
//! in-process subscriber channel, a JSONL file, or the `ff-live` TCP
//! export — into a live terminal view: a per-device QoS table, server
//! and engine counters, trend charts (via `ff_metrics::chart`), and the
//! most recent log events. It performs no I/O and holds no clock; the
//! `ff-bench dashboard` binary owns transport and redraw pacing, which
//! keeps this module deterministic and snapshot-testable.

use ff_metrics::{render_chart, ChartConfig, ChartSeries};
use ff_telemetry::Snapshot;
use std::collections::VecDeque;

/// How many recent log lines the dashboard retains.
const LOG_LINES: usize = 6;

/// How many trend points each chart series retains (oldest dropped).
const TREND_POINTS: usize = 512;

/// Accumulated dashboard state. Feed it snapshots with
/// [`ingest`](Dashboard::ingest); draw it with [`render`](Dashboard::render).
#[derive(Debug, Default)]
pub struct Dashboard {
    last: Option<Snapshot>,
    /// `(t_secs, Σ po)` across device scopes.
    po_total: VecDeque<(f64, f64)>,
    /// `(t_secs, Σ pl)` across device scopes.
    pl_total: VecDeque<(f64, f64)>,
    /// `(t_secs, Σ timeout rate)` across device scopes.
    timeout_total: VecDeque<(f64, f64)>,
    /// `(t_secs, server queue depth)`.
    queue_depth: VecDeque<(f64, f64)>,
    /// Most recent log events, formatted.
    logs: VecDeque<String>,
    snapshots_seen: u64,
}

fn is_device_scope(scope: &str) -> bool {
    scope.starts_with("device/") || scope == "live/device"
}

fn gauge(snapshot: &Snapshot, scope: &str, metric: &str) -> Option<f64> {
    snapshot
        .scopes
        .iter()
        .find(|s| s.scope == scope)?
        .gauges
        .iter()
        .find(|g| g.metric == metric)
        .map(|g| g.value)
}

fn counter(snapshot: &Snapshot, scope: &str, metric: &str) -> Option<u64> {
    snapshot
        .scopes
        .iter()
        .find(|s| s.scope == scope)?
        .counters
        .iter()
        .find(|c| c.metric == metric)
        .map(|c| c.value)
}

fn push_trend(series: &mut VecDeque<(f64, f64)>, point: (f64, f64)) {
    if series.len() == TREND_POINTS {
        series.pop_front();
    }
    series.push_back(point);
}

impl Dashboard {
    /// An empty dashboard.
    pub fn new() -> Dashboard {
        Dashboard::default()
    }

    /// How many snapshots have been folded in.
    pub fn snapshots_seen(&self) -> u64 {
        self.snapshots_seen
    }

    /// Fold one snapshot into the view state.
    pub fn ingest(&mut self, snapshot: Snapshot) {
        self.snapshots_seen += 1;
        let t_secs = snapshot.t_us as f64 / 1e6;

        let (mut po, mut pl, mut timeouts) = (0.0, 0.0, 0.0);
        let mut any_device = false;
        for s in snapshot.scopes.iter().filter(|s| is_device_scope(&s.scope)) {
            for g in &s.gauges {
                match g.metric.as_str() {
                    "po" => {
                        po += g.value;
                        any_device = true;
                    }
                    "pl" => pl += g.value,
                    "timeout_rate" => timeouts += g.value,
                    _ => {}
                }
            }
        }
        if any_device {
            push_trend(&mut self.po_total, (t_secs, po));
            push_trend(&mut self.pl_total, (t_secs, pl));
            push_trend(&mut self.timeout_total, (t_secs, timeouts));
        }
        for server_scope in ["server", "live/server"] {
            if let Some(depth) = gauge(&snapshot, server_scope, "server_queue_depth") {
                push_trend(&mut self.queue_depth, (t_secs, depth));
            }
        }

        for s in &snapshot.scopes {
            for log in &s.logs {
                let line = format!(
                    "[{:>8.2}s {:<5}] {:<12} {}",
                    log.t_us as f64 / 1e6,
                    log.level,
                    s.scope,
                    log.code
                );
                if self.logs.len() == LOG_LINES {
                    self.logs.pop_front();
                }
                self.logs.push_back(line);
            }
        }

        self.last = Some(snapshot);
    }

    /// Render the current state as a multi-line terminal view.
    pub fn render(&self) -> String {
        let Some(last) = &self.last else {
            return String::from("ff fleet dashboard — waiting for snapshots...\n");
        };
        let mut out = String::new();
        out.push_str(&format!(
            "ff fleet dashboard — t={:.1}s  snapshot #{} (seq {})  dropped_events={}\n\n",
            last.t_us as f64 / 1e6,
            self.snapshots_seen,
            last.seq,
            last.dropped_events,
        ));

        // Per-device QoS table from the latest snapshot's gauges.
        out.push_str(&format!(
            "{:<14} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9}\n",
            "device", "P_o", "P_l", "T", "Po*", "in-flight", "offloaded"
        ));
        for s in last.scopes.iter().filter(|s| is_device_scope(&s.scope)) {
            let g = |metric: &str| gauge(last, &s.scope, metric).unwrap_or(f64::NAN);
            let offloaded = counter(last, &s.scope, "frames_offloaded").unwrap_or(0);
            out.push_str(&format!(
                "{:<14} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>9.0} {:>9}\n",
                s.scope,
                g("po"),
                g("pl"),
                g("timeout_rate"),
                g("po_target"),
                g("in_flight"),
                offloaded,
            ));
        }

        // Server and engine lines (whichever scopes are present).
        for server_scope in ["server", "live/server"] {
            if let Some(depth) = gauge(last, server_scope, "server_queue_depth") {
                let c = |metric: &str| counter(last, server_scope, metric).unwrap_or(0);
                out.push_str(&format!(
                    "\n{:<14} queue={:<4.0} batch={:<4.0} requests={} completions={} \
                     rejections={} batches={}\n",
                    server_scope,
                    depth,
                    gauge(last, server_scope, "batch_occupancy").unwrap_or(0.0),
                    c("server_requests"),
                    c("server_completions"),
                    c("server_rejections"),
                    c("server_batches"),
                ));
                let chaos = c("chaos_drops") + c("chaos_disconnects") + c("chaos_stalls");
                if chaos > 0 {
                    out.push_str(&format!(
                        "{:<14} chaos: drops={} disconnects={} stalls={}\n",
                        "",
                        c("chaos_drops"),
                        c("chaos_disconnects"),
                        c("chaos_stalls"),
                    ));
                }
            }
        }
        if let Some(events) = gauge(last, "engine", "events_handled") {
            out.push_str(&format!(
                "{:<14} events={:.0} pending={:.0}\n",
                "engine",
                events,
                gauge(last, "engine", "pending_events").unwrap_or(0.0),
            ));
        }

        // Trend charts.
        if self.po_total.len() >= 2 {
            let po: Vec<(f64, f64)> = self.po_total.iter().copied().collect();
            let pl: Vec<(f64, f64)> = self.pl_total.iter().copied().collect();
            let timeouts: Vec<(f64, f64)> = self.timeout_total.iter().copied().collect();
            out.push('\n');
            out.push_str(&render_chart(
                &ChartConfig {
                    height: 10,
                    y_label: "fleet rates (frames/s)",
                    x_label: "t (s)",
                    ..Default::default()
                },
                &[
                    ChartSeries {
                        label: "sum P_o",
                        symbol: 'o',
                        points: &po,
                    },
                    ChartSeries {
                        label: "sum P_l",
                        symbol: 'l',
                        points: &pl,
                    },
                    ChartSeries {
                        label: "sum T",
                        symbol: 't',
                        points: &timeouts,
                    },
                ],
            ));
        }
        if self.queue_depth.len() >= 2 {
            let depth: Vec<(f64, f64)> = self.queue_depth.iter().copied().collect();
            out.push('\n');
            out.push_str(&render_chart(
                &ChartConfig {
                    height: 8,
                    y_label: "server queue depth (frames)",
                    x_label: "t (s)",
                    ..Default::default()
                },
                &[ChartSeries {
                    label: "queue",
                    symbol: 'q',
                    points: &depth,
                }],
            ));
        }

        if !self.logs.is_empty() {
            out.push_str("\nrecent events:\n");
            for line in &self.logs {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_telemetry::{
        CounterValue, GaugeValue, LogEntry, ScopeSnapshot, Snapshot, SNAPSHOT_SCHEMA_VERSION,
    };

    fn device_scope(name: &str, po: f64, pl: f64) -> ScopeSnapshot {
        ScopeSnapshot {
            scope: name.to_string(),
            counters: vec![CounterValue {
                metric: "frames_offloaded".into(),
                value: 17,
            }],
            gauges: vec![
                GaugeValue {
                    metric: "po".into(),
                    value: po,
                },
                GaugeValue {
                    metric: "pl".into(),
                    value: pl,
                },
                GaugeValue {
                    metric: "timeout_rate".into(),
                    value: 0.5,
                },
                GaugeValue {
                    metric: "po_target".into(),
                    value: po + 1.0,
                },
                GaugeValue {
                    metric: "in_flight".into(),
                    value: 3.0,
                },
            ],
            latencies: vec![],
            logs: vec![],
        }
    }

    fn snapshot(seq: u64, t_us: u64) -> Snapshot {
        Snapshot {
            schema: SNAPSHOT_SCHEMA_VERSION,
            seq,
            t_us,
            window_us: 1_000_000,
            dropped_events: 0,
            scopes: vec![
                device_scope("device/0", 12.0, 9.0),
                device_scope("device/1", 8.0, 10.0),
                ScopeSnapshot {
                    scope: "server".into(),
                    counters: vec![CounterValue {
                        metric: "server_requests".into(),
                        value: 40 * (seq + 1),
                    }],
                    gauges: vec![GaugeValue {
                        metric: "server_queue_depth".into(),
                        value: 4.0 + seq as f64,
                    }],
                    latencies: vec![],
                    logs: vec![LogEntry {
                        t_us: t_us.saturating_sub(1),
                        level: "warn".into(),
                        code: "chaos_drop".into(),
                    }],
                },
            ],
        }
    }

    #[test]
    fn empty_dashboard_renders_a_waiting_banner() {
        let d = Dashboard::new();
        assert!(d.render().contains("waiting for snapshots"));
    }

    #[test]
    fn renders_device_table_server_line_and_logs() {
        let mut d = Dashboard::new();
        d.ingest(snapshot(0, 1_000_000));
        let view = d.render();
        assert!(view.contains("device/0"));
        assert!(view.contains("device/1"));
        assert!(view.contains("queue=4"));
        assert!(view.contains("chaos_drop"));
        // One snapshot: no trend chart yet.
        assert!(!view.contains("fleet rates"));
    }

    #[test]
    fn charts_appear_once_a_trend_exists() {
        let mut d = Dashboard::new();
        for seq in 0..5 {
            d.ingest(snapshot(seq, (seq + 1) * 1_000_000));
        }
        let view = d.render();
        assert_eq!(d.snapshots_seen(), 5);
        assert!(view.contains("fleet rates (frames/s)"));
        assert!(view.contains("server queue depth (frames)"));
        assert!(view.contains("o=sum P_o"));
    }

    #[test]
    fn trend_memory_is_bounded() {
        let mut d = Dashboard::new();
        for seq in 0..(TREND_POINTS as u64 + 100) {
            d.ingest(snapshot(seq, (seq + 1) * 1_000_000));
        }
        assert_eq!(d.po_total.len(), TREND_POINTS);
        assert_eq!(d.queue_depth.len(), TREND_POINTS);
        assert_eq!(d.logs.len(), LOG_LINES);
    }
}
