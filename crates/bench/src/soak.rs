//! Fleet soak over the reactor live tier, with a DES cross-check.
//!
//! The soak stands up one [`ReactorServer`] and drives `N` reactor
//! devices against it over loopback for a sustained wall-clock window —
//! every device the same `DeviceRuntime` + `FrameFeedback` pair the
//! simulator runs, all multiplexed on one client event-loop thread. The
//! harness then runs the *identical scenario* through the DES
//! (`ff_device::run_fleet`: same device count, same hardware profile,
//! same capture rate, deadline and tick, ideal network) and checks the
//! fleet-mean per-device throughput of the live run against the
//! simulated one within [`SOAK_THROUGHPUT_TOLERANCE_FPS`].
//!
//! Everything the report claims is backed by a conservation law: per
//! device, `offloaded == successes + timeouts` with nothing in flight
//! at exit (instant failures and paced drops are *inside* `timeouts` —
//! the runtime records them as such the moment they happen), and
//! captured frames route to exactly one of offload/local/skipped.
//!
//! The scenario is deliberately saturating: `N` devices each probing at
//! 30 fps against one ~143 frames/s server park the controllers at the
//! §III-A.1 probe floor, so the soak exercises the backpressure path
//! (server rejections, bounded write buffers) continuously rather than
//! only at the edges.

use crate::export_json;
use ff_core::{Controller, FrameFeedback};
use ff_device::{run_fleet, FleetConfig, FleetDeviceConfig};
use ff_metrics::LogHistogram;
use ff_models::{DeviceKind, ModelKind};
use ff_reactor::{
    run_reactor_fleet, FleetClientConfig, FleetSummary, ReactorDeviceConfig, ReactorServer,
    ReactorServerConfig, ReactorServerStats,
};
use ff_workload::StreamConfig;
use serde::Serialize;
use std::io;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Allowed absolute gap between the live fleet's mean per-device
/// throughput and the DES twin's, in frames/s.
///
/// The dominant term of per-device throughput is the local rate
/// (13.4 fps for the soak's Pi 4B Rev 1.4 profile); the offload share
/// of a saturated 1k-device fleet is under 0.2 fps/device. One frame
/// per second of slack absorbs wall-clock scheduling jitter (the live
/// tier pays real syscalls and a real CPU) while still catching a
/// parked local engine, a leaking offload path, or a controller that
/// never recovers from the probe floor.
pub const SOAK_THROUGHPUT_TOLERANCE_FPS: f64 = 1.0;

/// Camera rate of the soak scenario (the paper's 30 fps source).
pub const SOAK_FS: f64 = 30.0;

/// Hardware/model pair of every soak device (Table II's fastest Pi).
pub const SOAK_DEVICE: DeviceKind = DeviceKind::Pi4BRev14;
/// Model of every soak device.
pub const SOAK_MODEL: ModelKind = ModelKind::MobileNetV3Small;

/// Soak harness knobs (CLI flags of the `soak` binary).
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Concurrent live devices.
    pub devices: usize,
    /// Capture window per device, seconds of wall-clock.
    pub secs: u64,
    /// Skip the DES cross-check (report `sim: null`).
    pub skip_sim: bool,
}

impl Default for SoakOptions {
    fn default() -> Self {
        SoakOptions {
            devices: 1024,
            secs: 75,
            skip_sim: false,
        }
    }
}

/// The per-device configuration of the soak scenario: the DES twin's
/// parameters transplanted onto the reactor client.
pub fn soak_device_config(secs: u64) -> ReactorDeviceConfig {
    ReactorDeviceConfig {
        fs: SOAK_FS,
        duration: Duration::from_secs(secs),
        deadline: Duration::from_millis(250),
        // The DES twin draws frame sizes from the same compression
        // model with jitter zeroed; the live tier sends the mean.
        frame_bytes: StreamConfig::default().compression.mean_frame_bytes(),
        local_rate_fps: SOAK_DEVICE.local_rate_fps(SOAK_MODEL),
        tick: Duration::from_secs(1),
        timeout_window: Duration::from_secs(3),
        ..ReactorDeviceConfig::default()
    }
}

/// The DES twin of the soak scenario: `devices` identical Pis on an
/// ideal network, same capture rate, deadline and controller period,
/// contending for the default (single) batching server.
pub fn soak_sim_config(devices: usize, secs: u64) -> FleetConfig {
    let mut c = FleetConfig::default();
    c.devices = vec![
        FleetDeviceConfig {
            device: SOAK_DEVICE,
            model: SOAK_MODEL,
        };
        devices
    ];
    c.stream.total_frames = (secs as f64 * SOAK_FS) as u64;
    // The live tier sends every frame at the mean compressed size; give
    // the twin the same deterministic sizes.
    c.stream.size_jitter = 0.0;
    c
}

/// Live-side aggregate of one soak run.
#[derive(Debug, Serialize)]
pub struct SoakLiveReport {
    /// Frames captured across the fleet.
    pub frames_captured: u64,
    /// Offload attempts (including instant failures).
    pub frames_offloaded: u64,
    /// Offloads answered within the deadline.
    pub offload_successes: u64,
    /// Offloads that timed out (network + load + instant failures).
    pub offload_timeouts: u64,
    /// Offloads rejected by the transport before leaving a device.
    pub instant_failures: u64,
    /// Local inferences completed.
    pub local_completed: u64,
    /// Local-routed frames skipped by a saturated local engine.
    pub local_skipped: u64,
    /// Frames the per-device pacers dropped.
    pub paced_drops: u64,
    /// Sends rejected by a bounded write buffer after acceptance.
    pub late_backpressure: u64,
    /// Successful re-dials after lost connections.
    pub reconnects: u64,
    /// Failed dial attempts.
    pub dial_failures: u64,
    /// Completed inferences (local + offload) per wall-clock second —
    /// the figure the perf gate tracks.
    pub sustained_frames_per_sec: f64,
    /// p99 offload round-trip latency, milliseconds (absent when
    /// nothing succeeded).
    pub offload_p99_latency_ms: Option<f64>,
    /// Fleet mean of per-device mean throughput `P`, frames/s.
    pub mean_device_throughput_fps: f64,
    /// Offloads still unresolved at exit, summed over devices (must be
    /// zero for conservation).
    pub in_flight_at_end: u64,
    /// Devices whose conservation law held.
    pub devices_conserved: usize,
    /// Whether every device conserved frames: `offloaded == successes +
    /// timeouts` with nothing in flight.
    pub frames_conserved: bool,
    /// Readiness events the client poller delivered.
    pub client_ready_events: u64,
    /// Wall-clock length of the fleet run, seconds.
    pub elapsed_secs: f64,
}

/// Server-side counters at the end of the soak.
#[derive(Debug, Serialize)]
pub struct SoakServerReport {
    /// Requests received.
    pub requests: u64,
    /// Inferences completed and replied OK.
    pub completions: u64,
    /// Requests rejected by the batcher (overload).
    pub rejections: u64,
    /// Batches executed.
    pub batches: u64,
    /// Replies dropped by full bounded write buffers.
    pub writer_drops: u64,
    /// Connections accepted over the run.
    pub connections: u64,
    /// Connections still open at the end of the run (0 once the fleet
    /// has hung up — a nonzero value means stuck connections).
    pub open_connections: u64,
    /// Readiness events the server poller delivered.
    pub ready_events: u64,
    /// Consecutive same-connection writes coalesced into one flush.
    pub coalesced_writes: u64,
}

impl SoakServerReport {
    fn snapshot(stats: &ReactorServerStats) -> Self {
        let c = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed);
        SoakServerReport {
            requests: c(&stats.requests),
            completions: c(&stats.completions),
            rejections: c(&stats.rejections),
            batches: c(&stats.batches),
            writer_drops: c(&stats.writer_drops),
            connections: c(&stats.connections),
            open_connections: c(&stats.open_connections),
            ready_events: c(&stats.ready_events),
            coalesced_writes: c(&stats.coalesced_writes),
        }
    }
}

/// The DES cross-check: the identical scenario run through `run_fleet`.
#[derive(Debug, Serialize)]
pub struct SoakSimReport {
    /// Fleet mean of per-device mean throughput in the simulator.
    pub mean_device_throughput_fps: f64,
    /// Live minus sim fleet-mean throughput, frames/s.
    pub delta_fps: f64,
    /// Allowed absolute gap ([`SOAK_THROUGHPUT_TOLERANCE_FPS`]).
    pub tolerance_fps: f64,
    /// `|delta| <= tolerance`.
    pub within_tolerance: bool,
    /// Simulated server completions (scale reference for the live
    /// server's `completions`).
    pub server_completions: u64,
}

/// The whole `BENCH_live.json` artifact.
#[derive(Debug, Serialize)]
pub struct SoakReport {
    /// Artifact schema version.
    pub schema: u32,
    /// Concurrent live devices.
    pub devices: usize,
    /// Configured capture window per device, seconds.
    pub duration_secs: u64,
    /// Live-side aggregates.
    pub live: SoakLiveReport,
    /// Server-side counters.
    pub server: SoakServerReport,
    /// DES cross-check (`None` when `--skip-sim`).
    pub sim: Option<SoakSimReport>,
}

impl SoakReport {
    /// The soak's pass verdict: frames conserved, no stuck connections,
    /// and (when the twin ran) live-vs-sim within tolerance.
    pub fn passed(&self) -> bool {
        self.live.frames_conserved
            && self.server.open_connections == 0
            && self.sim.as_ref().is_none_or(|s| s.within_tolerance)
    }
}

fn fleet_controllers(n: usize) -> Vec<Box<dyn Controller>> {
    (0..n)
        .map(|_| Box::new(FrameFeedback::new()) as Box<dyn Controller>)
        .collect()
}

/// Run the live half of the soak: start a reactor server on an
/// ephemeral loopback port, drive `devices` reactor devices for `secs`
/// seconds, and aggregate both sides.
pub fn run_soak_live(devices: usize, secs: u64) -> io::Result<(SoakLiveReport, SoakServerReport)> {
    let server = ReactorServer::start("127.0.0.1:0", ReactorServerConfig::default())?;
    let config = FleetClientConfig {
        device: soak_device_config(secs),
        ..FleetClientConfig::default()
    };
    let fleet = run_reactor_fleet(server.addr(), &config, fleet_controllers(devices))?;
    let live = summarize_live(&fleet);
    // Give in-flight replies to already-closed sockets a beat to drain
    // so `open_connections` reflects steady state, not a race.
    std::thread::sleep(Duration::from_millis(200));
    let server_report = SoakServerReport::snapshot(server.stats());
    server.shutdown();
    Ok((live, server_report))
}

fn summarize_live(fleet: &FleetSummary) -> SoakLiveReport {
    let mut live = SoakLiveReport {
        frames_captured: 0,
        frames_offloaded: 0,
        offload_successes: 0,
        offload_timeouts: 0,
        instant_failures: 0,
        local_completed: 0,
        local_skipped: 0,
        paced_drops: 0,
        late_backpressure: 0,
        reconnects: 0,
        dial_failures: 0,
        sustained_frames_per_sec: 0.0,
        offload_p99_latency_ms: None,
        mean_device_throughput_fps: 0.0,
        in_flight_at_end: 0,
        devices_conserved: 0,
        frames_conserved: fleet.frames_conserved(),
        client_ready_events: fleet.ready_events,
        elapsed_secs: fleet.elapsed.as_secs_f64(),
    };
    let mut latency = LogHistogram::for_latency_ms();
    let mut throughput_sum = 0.0;
    for d in &fleet.devices {
        live.frames_captured += d.frames;
        live.frames_offloaded += d.offloaded;
        live.offload_successes += d.successes;
        live.offload_timeouts += d.timeouts;
        live.instant_failures += d.instant_failures;
        live.local_completed += d.local_completed;
        live.local_skipped += d.local_skipped;
        live.paced_drops += d.paced_drops;
        live.late_backpressure += d.late_backpressure;
        live.reconnects += d.reconnects;
        live.dial_failures += d.dial_failures;
        live.in_flight_at_end += d.in_flight_at_end as u64;
        live.devices_conserved += usize::from(d.frames_conserved());
        latency.merge(&d.latency_ms);
        throughput_sum += d.qos.mean_throughput();
    }
    live.offload_p99_latency_ms = latency.percentile(0.99);
    if !fleet.devices.is_empty() {
        live.mean_device_throughput_fps = throughput_sum / fleet.devices.len() as f64;
    }
    if live.elapsed_secs > 0.0 {
        live.sustained_frames_per_sec =
            (live.local_completed + live.offload_successes) as f64 / live.elapsed_secs;
    }
    live
}

/// Run the DES twin and compare fleet-mean throughput against the live
/// run's.
pub fn run_soak_sim(devices: usize, secs: u64, live_mean_fps: f64) -> SoakSimReport {
    let config = soak_sim_config(devices, secs);
    let result = run_fleet(config, fleet_controllers(devices));
    let sim_mean = if result.devices.is_empty() {
        0.0
    } else {
        result
            .devices
            .iter()
            .map(|d| d.mean_throughput)
            .sum::<f64>()
            / result.devices.len() as f64
    };
    let delta = live_mean_fps - sim_mean;
    SoakSimReport {
        mean_device_throughput_fps: sim_mean,
        delta_fps: delta,
        tolerance_fps: SOAK_THROUGHPUT_TOLERANCE_FPS,
        within_tolerance: delta.abs() <= SOAK_THROUGHPUT_TOLERANCE_FPS,
        server_completions: result.server_stats.completions,
    }
}

/// Run the full soak (live fleet, then the DES twin unless skipped) and
/// assemble the `BENCH_live.json` artifact.
pub fn run_soak(opts: &SoakOptions) -> io::Result<SoakReport> {
    let (live, server) = run_soak_live(opts.devices, opts.secs)?;
    let sim = if opts.skip_sim {
        None
    } else {
        Some(run_soak_sim(
            opts.devices,
            opts.secs,
            live.mean_device_throughput_fps,
        ))
    };
    Ok(SoakReport {
        schema: 1,
        devices: opts.devices,
        duration_secs: opts.secs,
        live,
        server,
        sim,
    })
}

/// Export the report under `target/experiments/` (the binary also
/// writes the committed copy at an explicit `--out` path).
pub fn export_soak(report: &SoakReport) -> io::Result<std::path::PathBuf> {
    export_json("soak_live", report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_soak_conserves_and_cross_checks() {
        // 4 devices × 3 s: small enough for CI, long enough for three
        // controller ticks per device.
        let report = run_soak(&SoakOptions {
            devices: 4,
            secs: 3,
            skip_sim: false,
        })
        .unwrap();
        assert!(report.live.frames_captured > 0);
        assert!(report.live.frames_conserved, "conservation: {report:?}");
        assert_eq!(report.live.devices_conserved, 4);
        assert_eq!(report.server.open_connections, 0);
        let sim = report.sim.as_ref().unwrap();
        assert!(
            sim.mean_device_throughput_fps > 0.0,
            "twin produced no throughput"
        );
        // The tolerance claim itself is asserted by the full-scale soak
        // (and the CI smoke); a 3 s run only checks the plumbing agrees
        // on scale.
        assert!(
            (report.live.mean_device_throughput_fps - sim.mean_device_throughput_fps).abs() < 8.0,
            "live {} vs sim {} wildly apart",
            report.live.mean_device_throughput_fps,
            sim.mean_device_throughput_fps
        );
    }
}
