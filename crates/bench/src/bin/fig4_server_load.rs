//! Regenerates **Figure 4** (and prints **Table VI**): total inference
//! throughput `P` for each controller while other devices inject the
//! Table VI background request volume, 4,000 frames at 30 fps.
//!
//! Paper expectations (shape): "Up until about 150 additional requests,
//! our Pi can fit in some offloading when controlled by FrameFeedback.
//! The other controllers have lower throughput due to their inability to
//! adapt in a fine-grained way."
//!
//! The four controller runs execute as an `ff-sweep` grid (via
//! `run_lineup`), one worker per core.

use ff_bench::{
    export_json, print_phase_table, print_series, print_throughput_chart, run_lineup, Phase,
};
use ff_device::ExperimentConfig;
use ff_workload::table_vi;

fn main() {
    let mut config = ExperimentConfig::default();
    config.background = table_vi();
    // The Table VI rates are the *entire* injected volume; the two peer
    // devices of the network experiment are folded into the schedule here.
    config.peer_devices = 0;

    println!("== Table VI: server load schedule ==");
    println!("{:>9} {:>14}", "time(s)", "request rate");
    let steps = config.background.steps().to_vec();
    for (i, (start, rate)) in steps.iter().enumerate() {
        let end = steps
            .get(i + 1)
            .map_or("+".to_string(), |(t, _)| format!("{t:.0}"));
        println!("{:>4.0}-{:<4} {:>14.0}", start, end, rate);
    }
    println!();

    let results = run_lineup(&config);

    println!("== Figure 4: mean throughput P per load phase ==");
    let phases = [
        Phase {
            label: "0-10 (idle)",
            from_secs: 0.0,
            to_secs: 10.0,
        },
        Phase {
            label: "10-20 (90)",
            from_secs: 10.0,
            to_secs: 20.0,
        },
        Phase {
            label: "20-35 (120)",
            from_secs: 20.0,
            to_secs: 35.0,
        },
        Phase {
            label: "35-50 (135)",
            from_secs: 35.0,
            to_secs: 50.0,
        },
        Phase {
            label: "50-60 (150)",
            from_secs: 50.0,
            to_secs: 60.0,
        },
        Phase {
            label: "60-75 (130)",
            from_secs: 60.0,
            to_secs: 75.0,
        },
        Phase {
            label: "75-90 (120)",
            from_secs: 75.0,
            to_secs: 90.0,
        },
        Phase {
            label: "90-100 (90)",
            from_secs: 90.0,
            to_secs: 100.0,
        },
        Phase {
            label: "100+ (idle)",
            from_secs: 100.0,
            to_secs: 134.0,
        },
    ];
    print_phase_table(&results, &phases);
    println!();

    // FrameFeedback must keep fitting in offloading as load rises, and
    // never fall below the local floor.
    let ff = &results[0];
    let local = &results[1];
    for p in &phases {
        let f = ff.qos.aggregate(p.from_secs, p.to_secs).unwrap();
        let l = local.qos.aggregate(p.from_secs, p.to_secs).unwrap();
        println!(
            "phase {:<12} framefeedback P={:5.1} (P_o target {:4.1})  local-only P={:5.1}",
            p.label, f.mean_throughput, f.mean_po_target, l.mean_throughput
        );
    }
    println!();

    print_throughput_chart("== Figure 4 (terminal rendering) ==", &results);
    println!();

    println!("== Per-second series (FrameFeedback) ==");
    print_series(ff);

    match export_json("fig4_server_load", &results) {
        Ok(path) => println!("\nraw series exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
