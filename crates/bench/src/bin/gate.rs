//! `ff-bench gate` — enforced regression gate over the committed perf
//! baselines (`BENCH_engine.json`, `BENCH_sweep.json`,
//! `BENCH_live.json`).
//!
//! Re-measures every engine tier recorded in the committed v2 artifact
//! (plus the sweep tier and the reactor live tier) and exits non-zero
//! when any measured rate falls more than `--tolerance` (default 0.20)
//! below its committed baseline. Designed to run in CI after
//! `cargo build --release`. Rates are throughput figures, so a
//! shortened run (`--frames-cap` for the DES, `--live-secs` for the
//! wall-clock soak) stays comparable to the committed full-length
//! baselines; fleet *size* is not reduced because per-event cost varies
//! with it — instead, tiers larger than `--max-devices` are skipped, as
//! are sharded entries with more shards than the host has cores. Skips
//! are reported, never silent.
//!
//! Usage: `gate [--tolerance F] [--engine-baseline PATH]
//! [--sweep-baseline PATH] [--live-baseline PATH] [--skip-sweep]
//! [--skip-engine] [--skip-live] [--max-devices N] [--frames-cap N]
//! [--cells N] [--reps N] [--live-secs S]`

use ff_bench::gate::{
    measure_engine_events_per_sec, measure_live_frames_per_sec, measure_sweep_runs_per_sec,
    EngineBaseline, GateCheck, LiveBaseline, SweepBaseline,
};
use ff_bench::parse_flag;

fn load<T: serde::Deserialize>(path: &str, what: &str) -> T {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("gate: cannot read {what} baseline {path}: {e}"));
    serde_json::from_str(&body)
        .unwrap_or_else(|e| panic!("gate: cannot parse {what} baseline {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tolerance: f64 = parse_flag(&args, "--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20);
    let engine_baseline =
        parse_flag(&args, "--engine-baseline").unwrap_or_else(|| "BENCH_engine.json".into());
    let sweep_baseline =
        parse_flag(&args, "--sweep-baseline").unwrap_or_else(|| "BENCH_sweep.json".into());
    let max_devices: usize = parse_flag(&args, "--max-devices")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 17);
    let frames_cap: u64 = parse_flag(&args, "--frames-cap")
        .and_then(|v| v.parse().ok())
        .unwrap_or(900);
    let cells: usize = parse_flag(&args, "--cells")
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let reps: usize = parse_flag(&args, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let live_baseline =
        parse_flag(&args, "--live-baseline").unwrap_or_else(|| "BENCH_live.json".into());
    let live_secs: u64 = parse_flag(&args, "--live-secs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let skip_sweep = args.iter().any(|a| a == "--skip-sweep");
    let skip_engine = args.iter().any(|a| a == "--skip-engine");
    let skip_live = args.iter().any(|a| a == "--skip-live");
    assert!(
        (0.0..1.0).contains(&tolerance),
        "gate: --tolerance must be in [0, 1)"
    );

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "== ff-bench gate: tolerance {:.0}% (fail below {:.0}% of baseline), \
         {host_cores} cores ==\n",
        tolerance * 100.0,
        (1.0 - tolerance) * 100.0
    );

    let mut checks: Vec<GateCheck> = Vec::new();
    if !skip_engine {
        let baseline: EngineBaseline = load(&engine_baseline, "engine");
        assert!(
            !baseline.tiers.is_empty(),
            "gate: engine baseline {engine_baseline} has an empty tier array"
        );
        for tier in &baseline.tiers {
            if tier.devices > max_devices {
                println!(
                    "engine/{}: skipped ({} devices > --max-devices {max_devices})",
                    tier.name, tier.devices
                );
                continue;
            }
            let frames = tier.frames_per_device.min(frames_cap);
            println!(
                "measuring engine/{}: {} devices x {frames} frames, best of {reps}...",
                tier.name, tier.devices
            );
            let measured = measure_engine_events_per_sec(tier.devices, frames, reps, 1);
            checks.push(GateCheck {
                name: format!("engine/{}", tier.name),
                baseline: tier.optimized.events_per_sec,
                measured,
                tolerance,
            });
            for entry in &tier.sharded {
                if entry.shards > host_cores {
                    println!(
                        "engine/{} x{}: skipped ({} shards > {host_cores} cores)",
                        tier.name, entry.shards, entry.shards
                    );
                    continue;
                }
                println!(
                    "measuring engine/{} x{}: {} devices x {frames} frames, best of {reps}...",
                    tier.name, entry.shards, tier.devices
                );
                let measured =
                    measure_engine_events_per_sec(tier.devices, frames, reps, entry.shards);
                checks.push(GateCheck {
                    name: format!("engine/{} x{}", tier.name, entry.shards),
                    baseline: entry.events_per_sec,
                    measured,
                    tolerance,
                });
            }
        }
    }
    if !skip_sweep {
        let baseline: SweepBaseline = load(&sweep_baseline, "sweep");
        println!("measuring sweep tier: {cells} cells serial, best of {reps}...");
        let measured = measure_sweep_runs_per_sec(cells, reps);
        checks.push(GateCheck {
            name: "sweep".into(),
            baseline: baseline.serial.runs_per_sec,
            measured,
            tolerance,
        });
    }
    if !skip_live {
        let baseline: LiveBaseline = load(&live_baseline, "live");
        if baseline.devices > max_devices {
            println!(
                "live: skipped ({} devices > --max-devices {max_devices})",
                baseline.devices
            );
        } else {
            println!(
                "measuring live tier: {} devices x {live_secs} s wall-clock soak...",
                baseline.devices
            );
            let measured = measure_live_frames_per_sec(baseline.devices, live_secs);
            checks.push(GateCheck {
                name: "live".into(),
                baseline: baseline.live.sustained_frames_per_sec,
                measured,
                tolerance,
            });
        }
    }

    println!();
    let mut failed = false;
    for c in &checks {
        println!("{c}");
        failed |= !c.passed();
    }
    if checks.is_empty() {
        println!("gate: nothing to check (all tiers skipped)");
    }
    if failed {
        eprintln!("\ngate: FAIL — a measured rate regressed past the tolerance");
        std::process::exit(1);
    }
    println!("\ngate: PASS");
}
