//! `ff-bench gate` — enforced regression gate over the committed perf
//! baselines (`BENCH_engine.json`, `BENCH_sweep.json`).
//!
//! Re-measures the two bench tiers and exits non-zero when either
//! measured rate falls more than `--tolerance` (default 0.20) below its
//! committed baseline. Designed to run in CI after `cargo build
//! --release`; both rates are throughput figures, so a reduced tier
//! (`--devices`/`--frames`/`--cells`) stays comparable to the committed
//! full-tier baselines.
//!
//! Usage: `gate [--tolerance F] [--engine-baseline PATH]
//! [--sweep-baseline PATH] [--skip-sweep] [--skip-engine]
//! [--devices N] [--frames N] [--cells N] [--reps N]`

use ff_bench::gate::{
    measure_engine_events_per_sec, measure_sweep_runs_per_sec, EngineBaseline, GateCheck,
    SweepBaseline,
};
use ff_bench::parse_flag;

fn load<T: serde::Deserialize>(path: &str, what: &str) -> T {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("gate: cannot read {what} baseline {path}: {e}"));
    serde_json::from_str(&body)
        .unwrap_or_else(|e| panic!("gate: cannot parse {what} baseline {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tolerance: f64 = parse_flag(&args, "--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20);
    let engine_baseline =
        parse_flag(&args, "--engine-baseline").unwrap_or_else(|| "BENCH_engine.json".into());
    let sweep_baseline =
        parse_flag(&args, "--sweep-baseline").unwrap_or_else(|| "BENCH_sweep.json".into());
    let devices: usize = parse_flag(&args, "--devices")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let frames: u64 = parse_flag(&args, "--frames")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);
    let cells: usize = parse_flag(&args, "--cells")
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let reps: usize = parse_flag(&args, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let skip_sweep = args.iter().any(|a| a == "--skip-sweep");
    let skip_engine = args.iter().any(|a| a == "--skip-engine");
    assert!(
        (0.0..1.0).contains(&tolerance),
        "gate: --tolerance must be in [0, 1)"
    );

    println!(
        "== ff-bench gate: tolerance {:.0}% (fail below {:.0}% of baseline) ==\n",
        tolerance * 100.0,
        (1.0 - tolerance) * 100.0
    );

    let mut checks: Vec<GateCheck> = Vec::new();
    if !skip_engine {
        let baseline: EngineBaseline = load(&engine_baseline, "engine");
        println!("measuring engine tier: {devices} devices x {frames} frames, best of {reps}...");
        let measured = measure_engine_events_per_sec(devices, frames, reps);
        checks.push(GateCheck {
            name: "engine",
            baseline: baseline.optimized.events_per_sec,
            measured,
            tolerance,
        });
    }
    if !skip_sweep {
        let baseline: SweepBaseline = load(&sweep_baseline, "sweep");
        println!("measuring sweep tier: {cells} cells serial, best of {reps}...");
        let measured = measure_sweep_runs_per_sec(cells, reps);
        checks.push(GateCheck {
            name: "sweep",
            baseline: baseline.serial.runs_per_sec,
            measured,
            tolerance,
        });
    }

    println!();
    let mut failed = false;
    for c in &checks {
        println!("{c}");
        failed |= !c.passed();
    }
    if checks.is_empty() {
        println!("gate: nothing to check (both tiers skipped)");
    }
    if failed {
        eprintln!("\ngate: FAIL — a measured rate regressed past the tolerance");
        std::process::exit(1);
    }
    println!("\ngate: PASS");
}
