//! Extension: FrameFeedback's PD control vs. TCP-style AIMD.
//!
//! AIMD is the obvious off-the-shelf alternative for "probe up, back off
//! on congestion". The comparison isolates what the proportional and
//! derivative terms buy: AIMD's fixed additive climb recovers slowly
//! after a backoff, while the PD controller's error-proportional steps
//! (clamped at +0.1·F_s) close large gaps quickly and its derivative
//! term damps the hunt around capacity.

use ff_baselines::Aimd;
use ff_bench::export_json;
use ff_core::FrameFeedback;
use ff_device::{run_experiment, ExperimentConfig, ExperimentResult};
use ff_workload::{table_v, table_vi};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    controller: String,
    mean_throughput: f64,
    timeouts: u64,
}

fn run_pair(label: &str, config: &ExperimentConfig, rows: &mut Vec<Row>) -> (f64, f64) {
    let ff = run_experiment(config.clone(), Box::new(FrameFeedback::new()));
    let aimd = run_experiment(config.clone(), Box::new(Aimd::new()));
    println!(
        "{:<10} framefeedback {:>5.1} fps ({} timeouts)   aimd {:>5.1} fps ({} timeouts)",
        label, ff.mean_throughput, ff.offload_timeouts, aimd.mean_throughput, aimd.offload_timeouts
    );
    let push = |rows: &mut Vec<Row>, r: &ExperimentResult| {
        rows.push(Row {
            scenario: label.to_string(),
            controller: r.controller.clone(),
            mean_throughput: r.mean_throughput,
            timeouts: r.offload_timeouts,
        })
    };
    push(rows, &ff);
    push(rows, &aimd);
    (ff.mean_throughput, aimd.mean_throughput)
}

fn main() {
    println!("== PD control (FrameFeedback) vs additive-increase/multiplicative-decrease ==\n");
    let mut rows = Vec::new();

    let mut network = ExperimentConfig::default();
    network.network = table_v();
    let (ff_net, aimd_net) = run_pair("table5", &network, &mut rows);

    let mut load = ExperimentConfig::default();
    load.background = table_vi();
    load.peer_devices = 0;
    let (ff_load, aimd_load) = run_pair("table6", &load, &mut rows);

    println!(
        "\nPD advantage: {:+.1} fps on the network scenario, {:+.1} fps under server load.",
        ff_net - aimd_net,
        ff_load - aimd_load
    );
    println!(
        "AIMD's 1 fps/s climb needs ~30 s to regain full offloading after a halving;\n\
         the PD controller's proportional step recovers at the +3 fps/s clamp."
    );

    match export_json("aimd_vs_pd", &rows) {
        Ok(path) => println!("rows exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
