//! Extension: adaptive local-model selection (the related-work [38]
//! idea, composed with FrameFeedback).
//!
//! When the controller offloads nearly everything, the local engine only
//! classifies the leftovers — so it can afford a slower, more accurate
//! model, and drop back to the fast one the moment offloading collapses.
//! Run on a network that is healthy, then dies, then recovers.

use ff_bench::export_json;
use ff_core::FrameFeedback;
use ff_device::{run_experiment, ExperimentConfig, SelectorConfig};
use ff_net::NetworkConditions;
use ff_workload::StepSchedule;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    mean_throughput: f64,
    mean_local_accuracy_pct: f64,
    healthy_phase_p: f64,
    dead_phase_p: f64,
}

fn scenario() -> StepSchedule<NetworkConditions> {
    StepSchedule::new(vec![
        (0.0, NetworkConditions::new(10.0, 0.0)),  // healthy
        (45.0, NetworkConditions::new(1.0, 20.0)), // collapse
        (90.0, NetworkConditions::new(10.0, 0.0)), // recovery
    ])
}

fn run(adaptive: bool) -> Row {
    let mut config = ExperimentConfig::default();
    config.network = scenario();
    config.peer_devices = 0;
    if adaptive {
        config.adaptive_local_model = Some(SelectorConfig::default());
    }
    let r = run_experiment(config, Box::new(FrameFeedback::new()));
    Row {
        variant: if adaptive {
            "adaptive-local-model"
        } else {
            "fixed-mnv3small"
        }
        .into(),
        mean_throughput: r.mean_throughput,
        mean_local_accuracy_pct: r.mean_local_accuracy.unwrap_or(f64::NAN) * 100.0,
        healthy_phase_p: r.qos.aggregate(20.0, 45.0).unwrap().mean_throughput,
        dead_phase_p: r.qos.aggregate(55.0, 90.0).unwrap().mean_throughput,
    }
}

fn main() {
    println!("== adaptive local model: healthy -> dead link -> recovery ==\n");
    println!(
        "{:<22} {:>8} {:>14} {:>12} {:>10}",
        "variant", "mean P", "local acc %", "P healthy", "P dead"
    );
    let rows = vec![run(false), run(true)];
    for r in &rows {
        println!(
            "{:<22} {:>8.1} {:>14.2} {:>12.1} {:>10.1}",
            r.variant,
            r.mean_throughput,
            r.mean_local_accuracy_pct,
            r.healthy_phase_p,
            r.dead_phase_p
        );
    }

    let fixed = &rows[0];
    let adaptive = &rows[1];
    println!(
        "\nduring full offloading the adaptive variant classifies its leftover local \
         frames {:+.2} accuracy points better,",
        adaptive.mean_local_accuracy_pct - fixed.mean_local_accuracy_pct
    );
    println!(
        "and when the link dies it falls back to the fast model, keeping the dead-phase \
         floor within {:.1} fps of the fixed variant ({:.1} vs {:.1}).",
        (adaptive.dead_phase_p - fixed.dead_phase_p).abs(),
        adaptive.dead_phase_p,
        fixed.dead_phase_p
    );

    match export_json("model_selection", &rows) {
        Ok(path) => println!("rows exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
