//! Extension: bursty (Gilbert–Elliott) vs. i.i.d. packet loss.
//!
//! The paper's NetEm setup uses independent loss; its reference [37]
//! notes real wireless links lose in bursts, sometimes tens of percent.
//! At the *same average* loss rate, bursts change the timeout pattern a
//! controller sees: calm stretches punctuated by storms. This experiment
//! runs every controller at 7% average loss under both processes and
//! reports how the throughput and the controller's behaviour differ.

use ff_bench::{export_json, run_lineup, Phase};
use ff_device::ExperimentConfig;
use ff_net::{GilbertElliott, LossModel, NetworkConditions};
use ff_workload::StepSchedule;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    process: String,
    controller: String,
    mean_throughput: f64,
    timeouts: u64,
    po_target_std: f64,
}

fn config(loss_model: Option<LossModel>) -> ExperimentConfig {
    let mut c = ExperimentConfig::default();
    // 10 Mbps with 7% average loss: bandwidth is ample, loss is the only
    // disturbance, isolating the loss-process effect.
    c.network = StepSchedule::constant(NetworkConditions::new(10.0, 7.0));
    c.loss_model = loss_model;
    c.peer_devices = 0;
    c
}

fn po_target_std(result: &ff_device::ExperimentResult) -> f64 {
    let targets: Vec<f64> = result
        .qos
        .records()
        .iter()
        .skip(15) // past the ramp
        .map(|r| r.po_target)
        .collect();
    let mean = targets.iter().sum::<f64>() / targets.len() as f64;
    (targets.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / targets.len() as f64).sqrt()
}

fn main() {
    println!("== bursty vs i.i.d. loss at 7% average (10 Mbps link) ==\n");
    let mut rows = Vec::new();

    for (label, model) in [
        ("bernoulli", None),
        (
            "gilbert-elliott",
            Some(LossModel::GilbertElliott(
                GilbertElliott::with_average_loss(0.07),
            )),
        ),
    ] {
        println!("--- {label} ---");
        let results = run_lineup(&config(model));
        let phases = [Phase {
            label: "steady (15s+)",
            from_secs: 15.0,
            to_secs: 134.0,
        }];
        ff_bench::print_phase_table(&results, &phases);
        for r in &results {
            rows.push(Row {
                process: label.to_string(),
                controller: r.controller.clone(),
                mean_throughput: r.mean_throughput,
                timeouts: r.offload_timeouts,
                po_target_std: po_target_std(r),
            });
        }
        println!();
    }

    // The comparison the extension is after: how much more does the
    // controller's target wander under bursts, and at what cost?
    let find = |proc: &str, ctl: &str| {
        rows.iter()
            .find(|r| r.process == proc && r.controller == ctl)
            .expect("row exists")
    };
    let ff_iid = find("bernoulli", "framefeedback");
    let ff_ge = find("gilbert-elliott", "framefeedback");
    println!(
        "framefeedback P_o-target std: i.i.d. {:.2} vs bursty {:.2}; \
         mean P: {:.1} vs {:.1}",
        ff_iid.po_target_std, ff_ge.po_target_std, ff_iid.mean_throughput, ff_ge.mean_throughput
    );
    let aon_iid = find("bernoulli", "all-or-nothing");
    let aon_ge = find("gilbert-elliott", "all-or-nothing");
    println!(
        "all-or-nothing mean P: i.i.d. {:.1} vs bursty {:.1} \
         (bursts leave long clean stretches, which interval policies exploit; \
         steady attrition defeats them)",
        aon_iid.mean_throughput, aon_ge.mean_throughput
    );

    match export_json("bursty_loss", &rows) {
        Ok(path) => println!("\nrows exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
