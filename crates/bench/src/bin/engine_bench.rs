//! `ff-bench engine_bench` — benchmarks the simulation **engine** itself
//! and emits `BENCH_engine.json`, the repo's DES-throughput perf artifact.
//!
//! Version 2 of the artifact is a **tier array**: the fleet is measured
//! at several sizes (256 / 1k / 10k / 100k devices, 1M behind `--huge`)
//! so the committed file records a throughput *trajectory*, not a single
//! point. Every tier runs the optimized engine single-sharded and at
//! each requested shard count (`--shards`, default `2,4`), and every
//! sharded run is **asserted bit-identical** to the single-shard run —
//! the conservative-window sharded driver must be a pure speedup.
//!
//! The smallest tier additionally runs the full three-way comparison the
//! v1 artifact carried:
//!
//! 1. the **baseline** engine (binary-heap event queue, fresh batch
//!    allocations per batch),
//! 2. the **optimized** engine (timing-wheel event queue, reused batch
//!    buffers), verified bit-identical to the baseline — every
//!    per-device QoS log, the server stats, and the event count,
//! 3. an informational `fast_loss` pass (single binomial draw per loss
//!    round). That pass changes how many RNG values each frame consumes,
//!    so it is *excluded* from the bit-identity check.
//!
//! Each configuration runs up to `--reps` times (large tiers cap their
//! own repetition count) and the fastest repetition is reported —
//! min-time measurement keeps the committed artifact stable on busy
//! hosts. Repetitions interleave the configurations round-robin so a
//! transient background-load burst cannot systematically penalize just
//! one side of a comparison. `host_cores` is recorded per tier: sharded
//! rates measured on fewer cores than shards are identity checks, not
//! scaling claims.
//!
//! Usage: `engine_bench [--devices N] [--frames N] [--reps N]
//! [--shards CSV] [--max-devices N] [--frames-cap N] [--huge]
//! [--out PATH]`
//!
//! `--devices`/`--frames` reshape the smallest (comparison) tier only —
//! CI uses this for a fast correctness smoke. `--max-devices` skips
//! larger tiers entirely and `--frames-cap` shortens every tier's run,
//! so a reduced grid still exercises the full multi-tier code path.

use ff_bench::gate::{engine_fleet_config, optimized_engine};
use ff_bench::parse_flag;
use ff_core::{Controller, FrameFeedback};
use ff_device::{run_fleet, EngineOptions, FleetConfig, FleetResult};
use ff_sim::QueueBackend;
use serde::Serialize;
use std::time::Instant;

/// The measured fleet sizes. Frames per device shrink as the fleet
/// grows so every tier stays a few-second measurement; the rate
/// (events/second) is what the trajectory compares.
struct TierSpec {
    name: &'static str,
    devices: usize,
    frames: u64,
    /// Repetition ceiling: the big tiers are slow enough that one or
    /// two repetitions dominate scheduling noise.
    reps_cap: usize,
    /// Only the smallest tier runs the heap-vs-wheel comparison; the
    /// larger tiers measure the optimized engine and its sharded runs.
    compare: bool,
    /// Gated behind `--huge`: the million-device tier allocates several
    /// GB of device state.
    huge: bool,
}

const TIERS: &[TierSpec] = &[
    TierSpec {
        name: "256",
        devices: 256,
        frames: 4_000,
        reps_cap: usize::MAX,
        compare: true,
        huge: false,
    },
    TierSpec {
        name: "1k",
        devices: 1_024,
        frames: 1_000,
        reps_cap: 3,
        compare: false,
        huge: false,
    },
    TierSpec {
        name: "10k",
        devices: 10_240,
        frames: 120,
        reps_cap: 2,
        compare: false,
        huge: false,
    },
    TierSpec {
        name: "100k",
        devices: 102_400,
        frames: 60,
        reps_cap: 1,
        compare: false,
        huge: false,
    },
    TierSpec {
        name: "1m",
        devices: 1_048_576,
        frames: 30,
        reps_cap: 1,
        compare: false,
        huge: true,
    },
];

#[derive(Serialize, Clone)]
struct EngineRun {
    backend: String,
    shards: usize,
    reuse_batch_buffers: bool,
    fast_loss: bool,
    events_handled: u64,
    elapsed_secs: f64,
    events_per_sec: f64,
}

#[derive(Serialize)]
struct TierReport {
    name: String,
    devices: usize,
    frames_per_device: u64,
    sim_seconds: f64,
    /// Repetitions per configuration; each run reports its fastest.
    reps: usize,
    /// Cores available when *this tier* was measured — sharded rates
    /// only demonstrate scaling when `host_cores >= shards`.
    host_cores: usize,
    /// `null` on the non-comparison tiers.
    baseline: Option<EngineRun>,
    optimized: EngineRun,
    /// Informational only: changes RNG draw counts, so its results are
    /// not comparable bit-for-bit with the other runs. `null` on the
    /// non-comparison tiers.
    fast_loss: Option<EngineRun>,
    /// Baseline elapsed / optimized elapsed, on the comparison tier
    /// (`null` elsewhere).
    speedup: Option<f64>,
    /// Heap-vs-wheel identity on the comparison tier; sharded-vs-single
    /// identity everywhere a sharded run exists. Asserted, so a written
    /// artifact always carries `true`.
    qos_identical: bool,
    sharded: Vec<EngineRun>,
}

#[derive(Serialize)]
struct EngineReport {
    /// Artifact schema version (2 = tier array).
    schema: u32,
    scenario: String,
    shard_counts: Vec<usize>,
    fast_loss_note: String,
    tiers: Vec<TierReport>,
}

fn controllers(n: usize) -> Vec<Box<dyn Controller>> {
    (0..n)
        .map(|_| Box::new(FrameFeedback::new()) as Box<dyn Controller>)
        .collect()
}

/// Per-configuration min-time accumulator. Every repetition is asserted
/// bit-identical to the first, so the timing loop doubles as a
/// determinism check.
struct TimedConfig {
    label: String,
    config: FleetConfig,
    best: Option<(FleetResult, f64)>,
}

impl TimedConfig {
    fn new(label: impl Into<String>, config: FleetConfig) -> Self {
        TimedConfig {
            label: label.into(),
            config,
            best: None,
        }
    }

    /// Run the configuration once and fold the timing into the minimum.
    fn run_once(&mut self) {
        let n = self.config.devices.len();
        let start = Instant::now();
        let result = run_fleet(self.config.clone(), controllers(n));
        let elapsed = start.elapsed().as_secs_f64();
        self.best = match self.best.take() {
            None => Some((result, elapsed)),
            Some((prev, prev_elapsed)) => {
                assert!(
                    results_identical(&prev, &result),
                    "two repetitions of the {} configuration diverged",
                    self.label
                );
                if elapsed < prev_elapsed {
                    Some((result, elapsed))
                } else {
                    Some((prev, prev_elapsed))
                }
            }
        };
    }

    /// The fastest repetition so far, as a report entry.
    fn finish(self, reps: usize) -> (FleetResult, EngineRun) {
        let (result, elapsed) = self.best.expect("at least one repetition ran");
        let run = EngineRun {
            backend: format!("{:?}", self.config.engine.backend).to_lowercase(),
            shards: self.config.engine.shards,
            reuse_batch_buffers: self.config.engine.reuse_batch_buffers,
            fast_loss: self.config.link.fast_loss,
            events_handled: result.events_handled,
            elapsed_secs: elapsed,
            events_per_sec: result.events_handled as f64 / elapsed,
        };
        println!(
            "  {:<12} {:>10} events in {:6.2}s  ({:>9.0} events/s, best of {reps})",
            self.label, run.events_handled, run.elapsed_secs, run.events_per_sec
        );
        (result, run)
    }
}

/// Bit-identity over everything the simulation computes: per-device QoS
/// logs and counters, the shared-server stats, and the event count.
fn results_identical(a: &FleetResult, b: &FleetResult) -> bool {
    a.server_stats == b.server_stats
        && a.rejections_by_device == b.rejections_by_device
        && a.events_handled == b.events_handled
        && a.devices.len() == b.devices.len()
        && a.devices.iter().zip(&b.devices).all(|(x, y)| {
            x.qos.records() == y.qos.records()
                && x.frames_offloaded == y.frames_offloaded
                && x.frames_local == y.frames_local
                && x.offload_successes == y.offload_successes
                && x.offload_timeouts == y.offload_timeouts
        })
}

/// Measure one tier: the optimized engine, its sharded variants, and —
/// on the comparison tier — the heap baseline and the informational
/// fast-loss pass.
fn run_tier(
    tier: &TierSpec,
    devices: usize,
    frames: u64,
    reps: usize,
    shard_counts: &[usize],
) -> TierReport {
    let baseline_engine = EngineOptions {
        backend: QueueBackend::Heap,
        reuse_batch_buffers: false,
        shards: 1,
    };
    let config = |engine, fast_loss| engine_fleet_config(devices, frames, engine, fast_loss);
    let sim_seconds = config(baseline_engine, false)
        .stream
        .stream_duration()
        .as_secs_f64();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "tier {}: {devices} devices x {frames} frames \
         ({sim_seconds:.0}s simulated, {reps} reps, {host_cores} cores)",
        tier.name
    );

    // Repetitions are interleaved round-robin rather than run
    // config-by-config: a background-load burst then inflates one
    // *round* (discarded by the per-config minimum) instead of one
    // *configuration* (which would skew a speedup ratio).
    let mut baseline = tier
        .compare
        .then(|| TimedConfig::new("baseline", config(baseline_engine, false)));
    let mut optimized = TimedConfig::new("optimized", config(optimized_engine(), false));
    // Informational: the opt-in fast loss path on top of the optimized
    // engine. Different RNG draw counts => different (equally valid)
    // trajectory, so no identity assertion against the other runs.
    let mut fast_loss = tier
        .compare
        .then(|| TimedConfig::new("fast-loss", config(optimized_engine(), true)));
    let mut sharded: Vec<TimedConfig> = shard_counts
        .iter()
        .filter(|&&k| k > 1 && k <= devices)
        .map(|&k| {
            let engine = EngineOptions {
                shards: k,
                ..optimized_engine()
            };
            TimedConfig::new(format!("wheel x{k}"), config(engine, false))
        })
        .collect();
    for _ in 0..reps.max(1) {
        if let Some(b) = baseline.as_mut() {
            b.run_once();
        }
        optimized.run_once();
        if let Some(f) = fast_loss.as_mut() {
            f.run_once();
        }
        for s in &mut sharded {
            s.run_once();
        }
    }

    let base = baseline.map(|b| b.finish(reps));
    let (opt_result, opt_run) = optimized.finish(reps);
    let fast_run = fast_loss.map(|f| f.finish(reps).1);
    let sharded_runs: Vec<EngineRun> = sharded
        .into_iter()
        .map(|s| {
            let label = s.label.clone();
            let (result, run) = s.finish(reps);
            assert!(
                results_identical(&opt_result, &result),
                "tier {}: the {label} sharded run diverged from the \
                 single-shard optimized engine",
                tier.name
            );
            run
        })
        .collect();
    let speedup = base.as_ref().map(|(base_result, base_run)| {
        assert!(
            results_identical(base_result, &opt_result),
            "tier {}: the optimized engine diverged from the heap baseline",
            tier.name
        );
        base_run.elapsed_secs / opt_run.elapsed_secs
    });
    if let Some(s) = speedup {
        println!("  identical: true   speedup: {s:.2}x");
    }

    TierReport {
        name: tier.name.into(),
        devices,
        frames_per_device: frames,
        sim_seconds,
        reps,
        host_cores,
        baseline: base.map(|(_, run)| run),
        optimized: opt_run,
        fast_loss: fast_run,
        speedup,
        qos_identical: true,
        sharded: sharded_runs,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let devices: usize = parse_flag(&args, "--devices")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let frames: u64 = parse_flag(&args, "--frames")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);
    let out = parse_flag(&args, "--out").unwrap_or_else(|| "BENCH_engine.json".into());
    let reps: usize = parse_flag(&args, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let huge = args.iter().any(|a| a == "--huge");
    let max_devices: usize = parse_flag(&args, "--max-devices")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if huge { 1 << 21 } else { 1 << 17 });
    let frames_cap: u64 = parse_flag(&args, "--frames-cap")
        .and_then(|v| v.parse().ok())
        .unwrap_or(u64::MAX);
    let shard_counts: Vec<usize> = parse_flag(&args, "--shards")
        .unwrap_or_else(|| "2,4".into())
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("--shards: '{s}' is not a shard count"))
        })
        .collect();

    println!(
        "== ff-sim engine benchmark: multi-tier Table V fleet, \
         shard counts {shard_counts:?} ==\n"
    );

    let mut tiers = Vec::new();
    for tier in TIERS {
        if tier.huge && !huge {
            continue;
        }
        // --devices/--frames reshape the comparison tier (CI smoke);
        // the larger tiers keep their fixed shapes.
        let (d, f) = if tier.compare {
            (devices, frames)
        } else {
            (tier.devices, tier.frames)
        };
        if d > max_devices {
            println!(
                "tier {}: skipped ({d} devices > --max-devices {max_devices})",
                tier.name
            );
            continue;
        }
        tiers.push(run_tier(
            tier,
            d,
            f.min(frames_cap),
            reps.min(tier.reps_cap).max(1),
            &shard_counts,
        ));
        println!();
    }
    assert!(
        !tiers.is_empty(),
        "--max-devices excluded every tier; nothing measured"
    );

    let report = EngineReport {
        schema: 2,
        scenario: "table-v".into(),
        shard_counts,
        fast_loss_note: "opt-in fast_loss changes RNG draw counts; excluded from the \
                         bit-identity check and the speedup figure"
            .into(),
        tiers,
    };
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, body).expect("write benchmark report");
    println!("report written to {out}");
}
