//! `ff-bench engine_bench` — benchmarks the simulation **engine** itself
//! and emits `BENCH_engine.json`, the repo's DES-throughput perf artifact.
//!
//! The workload is a fleet-scale run: N identical devices (default 64)
//! on the Table V network schedule, all contending for the shared
//! server — large enough that the event calendar holds hundreds of
//! pending events and the queue backend dominates per-event overhead.
//! The binary:
//!
//! 1. runs the fleet with the **baseline** engine (binary-heap event
//!    queue, fresh batch-result allocations per batch),
//! 2. runs the identical fleet with the **optimized** engine
//!    (timing-wheel event queue, reused batch buffers) and **verifies
//!    bit-identical results** — every per-device QoS log, the server
//!    stats, and the event count must match exactly,
//! 3. runs a third, informational pass with `fast_loss` on top (single
//!    binomial draw per loss round). That pass changes how many RNG
//!    values each frame consumes, so it is *excluded* from the
//!    bit-identity check and reported separately,
//! 4. writes the measurements to `BENCH_engine.json` (or `--out PATH`).
//!
//! Each configuration runs `--reps` times (default 5) and the fastest
//! repetition is reported — min-time measurement keeps the committed
//! artifact stable on busy or single-core hosts. Repetitions interleave
//! the configurations round-robin so a transient background-load burst
//! cannot systematically penalize just one side of the comparison.
//!
//! Usage: `engine_bench [--devices N] [--frames N] [--reps N] [--out PATH]`

use ff_bench::gate::{engine_fleet_config, optimized_engine};
use ff_bench::parse_flag;
use ff_core::{Controller, FrameFeedback};
use ff_device::{run_fleet, EngineOptions, FleetConfig, FleetResult};
use ff_sim::QueueBackend;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize, Clone)]
struct EngineRun {
    backend: String,
    reuse_batch_buffers: bool,
    fast_loss: bool,
    events_handled: u64,
    elapsed_secs: f64,
    events_per_sec: f64,
}

#[derive(Serialize)]
struct EngineReport {
    scenario: String,
    devices: usize,
    frames_per_device: u64,
    sim_seconds: f64,
    /// Repetitions per configuration; each run reports its fastest.
    reps: usize,
    baseline: EngineRun,
    optimized: EngineRun,
    /// Informational only: changes RNG draw counts, so its results are
    /// not comparable bit-for-bit with the other two runs.
    fast_loss: EngineRun,
    fast_loss_note: String,
    qos_identical: bool,
    speedup: f64,
    host_cores: usize,
}

fn fleet_config(
    devices: usize,
    frames: u64,
    engine: EngineOptions,
    fast_loss: bool,
) -> FleetConfig {
    // Shared with `ff-bench gate`, which re-measures this exact tier
    // against the committed baseline.
    engine_fleet_config(devices, frames, engine, fast_loss)
}

fn controllers(n: usize) -> Vec<Box<dyn Controller>> {
    (0..n)
        .map(|_| Box::new(FrameFeedback::new()) as Box<dyn Controller>)
        .collect()
}

/// Per-configuration min-time accumulator. Every repetition is asserted
/// bit-identical to the first, so the timing loop doubles as a
/// determinism check.
struct TimedConfig {
    label: &'static str,
    config: FleetConfig,
    best: Option<(FleetResult, f64)>,
}

impl TimedConfig {
    fn new(label: &'static str, config: FleetConfig) -> Self {
        TimedConfig {
            label,
            config,
            best: None,
        }
    }

    /// Run the configuration once and fold the timing into the minimum.
    fn run_once(&mut self) {
        let n = self.config.devices.len();
        let start = Instant::now();
        let result = run_fleet(self.config.clone(), controllers(n));
        let elapsed = start.elapsed().as_secs_f64();
        self.best = match self.best.take() {
            None => Some((result, elapsed)),
            Some((prev, prev_elapsed)) => {
                assert!(
                    results_identical(&prev, &result),
                    "two repetitions of the {} configuration diverged",
                    self.label
                );
                if elapsed < prev_elapsed {
                    Some((result, elapsed))
                } else {
                    Some((prev, prev_elapsed))
                }
            }
        };
    }

    /// The fastest repetition so far, as a report entry.
    fn finish(self, reps: usize) -> (FleetResult, EngineRun) {
        let (result, elapsed) = self.best.expect("at least one repetition ran");
        let run = EngineRun {
            backend: format!("{:?}", self.config.engine.backend).to_lowercase(),
            reuse_batch_buffers: self.config.engine.reuse_batch_buffers,
            fast_loss: self.config.link.fast_loss,
            events_handled: result.events_handled,
            elapsed_secs: elapsed,
            events_per_sec: result.events_handled as f64 / elapsed,
        };
        println!(
            "{:<10} {:>10} events in {:6.2}s  ({:>9.0} events/s, best of {reps})",
            self.label, run.events_handled, run.elapsed_secs, run.events_per_sec
        );
        (result, run)
    }
}

/// Bit-identity over everything the simulation computes: per-device QoS
/// logs and counters, the shared-server stats, and the event count.
fn results_identical(a: &FleetResult, b: &FleetResult) -> bool {
    a.server_stats == b.server_stats
        && a.rejections_by_device == b.rejections_by_device
        && a.events_handled == b.events_handled
        && a.devices.len() == b.devices.len()
        && a.devices.iter().zip(&b.devices).all(|(x, y)| {
            x.qos.records() == y.qos.records()
                && x.frames_offloaded == y.frames_offloaded
                && x.frames_local == y.frames_local
                && x.offload_successes == y.offload_successes
                && x.offload_timeouts == y.offload_timeouts
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let devices: usize = parse_flag(&args, "--devices")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let frames: u64 = parse_flag(&args, "--frames")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);
    let out = parse_flag(&args, "--out").unwrap_or_else(|| "BENCH_engine.json".into());
    let reps: usize = parse_flag(&args, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    let baseline_engine = EngineOptions {
        backend: QueueBackend::Heap,
        reuse_batch_buffers: false,
    };
    let optimized_engine = optimized_engine();
    let sim_seconds = fleet_config(devices, frames, baseline_engine, false)
        .stream
        .stream_duration()
        .as_secs_f64();
    println!(
        "== ff-sim engine benchmark: {devices} devices x {frames} frames \
         (Table V schedule, {sim_seconds:.0}s simulated) ==\n"
    );

    // Repetitions are interleaved baseline/optimized/fast-loss rather
    // than run config-by-config: a background-load burst then inflates
    // one *round* (discarded by the per-config minimum) instead of one
    // *configuration* (which would skew the speedup ratio).
    let mut baseline = TimedConfig::new(
        "baseline",
        fleet_config(devices, frames, baseline_engine, false),
    );
    let mut optimized = TimedConfig::new(
        "optimized",
        fleet_config(devices, frames, optimized_engine, false),
    );
    // Informational: the opt-in fast loss path on top of the optimized
    // engine. Different RNG draw counts => different (equally valid)
    // trajectory, so no identity assertion against the other two.
    let mut fast_loss = TimedConfig::new(
        "fast-loss",
        fleet_config(devices, frames, optimized_engine, true),
    );
    for _ in 0..reps.max(1) {
        baseline.run_once();
        optimized.run_once();
        fast_loss.run_once();
    }
    let (base_result, base_run) = baseline.finish(reps);
    let (opt_result, opt_run) = optimized.finish(reps);
    let (_, fast_run) = fast_loss.finish(reps);

    let qos_identical = results_identical(&base_result, &opt_result);
    assert!(
        qos_identical,
        "the optimized engine diverged from the heap baseline"
    );
    let speedup = base_run.elapsed_secs / opt_run.elapsed_secs;
    println!("\nidentical: {qos_identical}   speedup: {speedup:.2}x");

    let report = EngineReport {
        scenario: "table-v".into(),
        devices,
        frames_per_device: frames,
        sim_seconds,
        reps,
        baseline: base_run,
        optimized: opt_run,
        fast_loss: fast_run,
        fast_loss_note: "opt-in fast_loss changes RNG draw counts; excluded from the \
                         bit-identity check and the speedup figure"
            .into(),
        qos_identical,
        speedup,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, body).expect("write benchmark report");
    println!("\nreport written to {out}");
}
