//! Extension: a server crash-and-restart in the middle of the run.
//!
//! The paper's failure injections degrade the network or load the
//! server; here the server *process dies* at t=30 s (losing its queue
//! and running batch) and a fresh one returns at t=90 s. This is the
//! §III-A.1 scenario in its purest form: while the server is down every
//! offloaded frame times out, so `T` equals the attempted rate and the
//! only fixed point of the piecewise error is the probe floor `0.1·F_s`
//! — 3 fps at 30 fps. The run demonstrates the descent to the floor,
//! the hold, and the recovery ramp once the server returns.

use ff_bench::{export_json, print_phase_table, print_po_target_chart, run_lineup, Phase};
use ff_device::{ExperimentConfig, ServerOutage};
use serde::Serialize;

const OUTAGE_FROM: f64 = 30.0;
const OUTAGE_UNTIL: f64 = 90.0;

#[derive(Serialize)]
struct Row {
    controller: String,
    mean_po_target_outage: f64,
    mean_throughput_outage: f64,
    mean_throughput_recovered: f64,
    timeouts: u64,
}

fn config() -> ExperimentConfig {
    let mut c = ExperimentConfig::default();
    c.stream.total_frames = 3_600; // 120 s at 30 fps
    c.peer_devices = 0;
    c.outage = Some(ServerOutage {
        from_secs: OUTAGE_FROM,
        until_secs: OUTAGE_UNTIL,
    });
    c
}

fn main() {
    println!(
        "== server outage: crash at t={OUTAGE_FROM:.0}s, restart at t={OUTAGE_UNTIL:.0}s ==\n"
    );
    let results = run_lineup(&config());

    let phases = [
        Phase {
            label: "healthy ramp",
            from_secs: 10.0,
            to_secs: OUTAGE_FROM,
        },
        Phase {
            label: "outage (settled)",
            from_secs: 60.0,
            to_secs: OUTAGE_UNTIL,
        },
        Phase {
            label: "recovered",
            from_secs: 100.0,
            to_secs: 120.0,
        },
    ];
    print_phase_table(&results, &phases);
    println!();

    let labelled: Vec<(String, &ff_device::ExperimentResult)> =
        results.iter().map(|r| (r.controller.clone(), r)).collect();
    print_po_target_chart("== P_o target through the outage ==", &labelled);
    println!();

    let mut rows = Vec::new();
    for r in &results {
        let outage = r.qos.aggregate(60.0, OUTAGE_UNTIL).expect("outage window");
        let recovered = r.qos.aggregate(100.0, 120.0).expect("recovery window");
        rows.push(Row {
            controller: r.controller.clone(),
            mean_po_target_outage: outage.mean_po_target,
            mean_throughput_outage: outage.mean_throughput,
            mean_throughput_recovered: recovered.mean_throughput,
            timeouts: r.offload_timeouts,
        });
    }

    let ff = rows
        .iter()
        .find(|r| r.controller == "framefeedback")
        .expect("framefeedback row");
    let floor = 0.1 * 30.0;
    println!(
        "framefeedback settled at {:.2} fps during the outage (probe floor {floor:.1} fps), \
         then recovered to {:.1} fps throughput",
        ff.mean_po_target_outage, ff.mean_throughput_recovered
    );
    let ao = rows
        .iter()
        .find(|r| r.controller == "always-offload")
        .expect("always-offload row");
    println!(
        "always-offload kept firing into the dead server: {} timeouts vs framefeedback's {}",
        ao.timeouts, ff.timeouts
    );

    match export_json("outage", &rows) {
        Ok(path) => println!("\nrows exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
