//! Regenerates **Figure 3** (and prints **Table V**): total inference
//! throughput `P` for each controller under the network-degradation
//! schedule, 4,000 frames at 30 fps.
//!
//! Paper expectations (shape, not absolute numbers):
//! * all controllers ≈ equal at the extremes (ideal network / dead network),
//! * FrameFeedback beats all-or-nothing by 50%–3× in the intermediate
//!   phases (around t ≈ 40 s and beyond t ≈ 90 s),
//! * always-offload is clearly suboptimal once conditions degrade.
//!
//! The four controller runs execute as an `ff-sweep` grid (via
//! `run_lineup`), one worker per core.

use ff_bench::{
    export_json, print_phase_table, print_series, print_throughput_chart, run_lineup, Phase,
};
use ff_device::ExperimentConfig;
use ff_workload::table_v;

fn main() {
    let mut config = ExperimentConfig::default();
    config.network = table_v();

    println!("== Table V: network schedule ==");
    println!(
        "{:>9} {:>17} {:>9}",
        "time(s)", "bandwidth(Mbps)", "loss(%)"
    );
    let steps = config.network.steps().to_vec();
    for (i, (start, c)) in steps.iter().enumerate() {
        let end = steps
            .get(i + 1)
            .map_or("+".to_string(), |(t, _)| format!("{t:.0}"));
        println!(
            "{:>4.0}-{:<4} {:>17} {:>9}",
            start, end, c.bandwidth_mbps, c.loss_pct
        );
    }
    println!();

    let results = run_lineup(&config);

    println!("== Figure 3: mean throughput P per network phase ==");
    let phases = [
        Phase {
            label: "0-30 (10Mbps)",
            from_secs: 0.0,
            to_secs: 30.0,
        },
        Phase {
            label: "30-45 (4Mbps)",
            from_secs: 30.0,
            to_secs: 45.0,
        },
        Phase {
            label: "45-60 (1Mbps)",
            from_secs: 45.0,
            to_secs: 60.0,
        },
        Phase {
            label: "60-90 (10Mbps)",
            from_secs: 60.0,
            to_secs: 90.0,
        },
        Phase {
            label: "90-105 (7%loss)",
            from_secs: 90.0,
            to_secs: 105.0,
        },
        Phase {
            label: "105+ (4M,7%)",
            from_secs: 105.0,
            to_secs: 134.0,
        },
    ];
    print_phase_table(&results, &phases);
    println!();

    // The headline comparison the paper calls out: FrameFeedback vs
    // all-or-nothing in the intermediate phases.
    let ff = &results[0];
    let aon = &results[3];
    for p in [&phases[1], &phases[4], &phases[5]] {
        let a = ff
            .qos
            .aggregate(p.from_secs, p.to_secs)
            .unwrap()
            .mean_throughput;
        let b = aon
            .qos
            .aggregate(p.from_secs, p.to_secs)
            .unwrap()
            .mean_throughput;
        println!(
            "phase {:<16} framefeedback/all-or-nothing = {:.2}x ({:.1} vs {:.1})",
            p.label,
            a / b.max(1e-9),
            a,
            b
        );
    }
    println!();

    print_throughput_chart("== Figure 3 (terminal rendering) ==", &results);
    println!();

    println!("== Per-second series (FrameFeedback) ==");
    print_series(ff);

    match export_json("fig3_network", &results) {
        Ok(path) => println!("\nraw series exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
