//! Regenerates the **§II-A CPU-usage observation**: "Raspberry Pi CPU
//! usage drops from 50.2% to 22.3% on average when transitioning from
//! local execution to offloading" — by running the local-only and
//! always-offload experiments and reading the modeled CPU usage.

use ff_baselines::{AlwaysOffload, LocalOnly};
use ff_bench::export_json;
use ff_core::FrameFeedback;
use ff_device::{run_experiment, EnergyModel, ExperimentConfig};

fn main() {
    let mut config = ExperimentConfig::default();
    config.stream.total_frames = 1_800; // 60 s
    config.peer_devices = 0;

    let local = run_experiment(config.clone(), Box::new(LocalOnly::new()));
    let offload = run_experiment(config.clone(), Box::new(AlwaysOffload::new()));
    let ff = run_experiment(config, Box::new(FrameFeedback::new()));

    println!("== §II-A: device CPU usage by policy (ideal network) ==");
    println!(
        "{:<16} {:>10} {:>18} {:>16}",
        "controller", "CPU %", "local busy frac", "offload share"
    );
    for r in [&local, &offload, &ff] {
        println!(
            "{:<16} {:>10.1} {:>18.2} {:>16.2}",
            r.controller,
            r.cpu_usage_pct,
            r.local_busy_fraction,
            r.frames_offloaded as f64 / r.frames_generated as f64
        );
    }
    println!();
    println!(
        "paper: local 50.2% -> offloading 22.3%; measured: {:.1}% -> {:.1}%",
        local.cpu_usage_pct, offload.cpu_usage_pct
    );

    // Energy extension (§II-A.5 remark, quantified).
    let energy = EnergyModel::default();
    println!(
        "
== energy model (Pi 4B 2.7 W idle / 6.4 W full load) =="
    );
    println!(
        "{:<16} {:>10} {:>14}",
        "controller", "power W", "J / inference"
    );
    for r in [&local, &offload, &ff] {
        let share = r.frames_offloaded as f64 / r.frames_generated.max(1) as f64;
        let watts = energy.power_watts(r.local_busy_fraction, share);
        let jpi = energy
            .joules_per_inference(r.local_busy_fraction, share, r.mean_throughput)
            .unwrap_or(f64::NAN);
        println!("{:<16} {:>10.2} {:>14.3}", r.controller, watts, jpi);
    }

    let rows = [&local, &offload, &ff]
        .iter()
        .map(|r| (r.controller.clone(), r.cpu_usage_pct))
        .collect::<Vec<_>>();
    match export_json("cpu_usage", &rows) {
        Ok(path) => println!("raw rows exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
