//! Extension: the content-aware sweep — scene scripts × model-selection
//! policy, accuracy vs deadline misses.
//!
//! The paper's workload is content-blind: every frame is worth the same.
//! The content layer scores frames with a scene script, filters the
//! uninformative ones, and lets [`ModelSelection::ExpectedAccuracy`]
//! demote offloads to the local model when deadline risk eats the remote
//! model's accuracy edge. This grid runs the three named scene scenarios
//! under both policies and prints the accuracy-vs-miss-rate table that
//! `CONTENT_SWEEP.md` commits.
//!
//! Flags: `--frames N` (stream length, default 1800), `--seed S`
//! (default 42), `--md PATH` (rewrite the committed markdown table).
//! `FF_SWEEP_WORKERS` controls parallelism.

use ff_bench::{export_json, parse_flag};
use ff_device::{content_scenarios, ModelSelection};
use ff_sweep::{run_sweep, ControllerSpec, SweepOptions, SweepSpec};
use serde::Serialize;

#[derive(Serialize)]
struct ContentRow {
    scenario: String,
    selection: String,
    seed: u64,
    mean_throughput: f64,
    accuracy_weighted_throughput: f64,
    /// QoS intervals in the run, and how many saw at least one inference.
    /// `accuracy_weighted_throughput` averages over active intervals only
    /// (all-skipped seconds don't dilute it), so the cross-metric sanity
    /// bound is on totals: `aw · active <= mean_throughput · intervals`.
    intervals: usize,
    active_intervals: usize,
    deadline_miss_rate: f64,
    frames_offloaded: u64,
    frames_local: u64,
    frames_skipped: u64,
    frames_shrunk: u64,
}

fn spec(frames: u64, seed: u64) -> SweepSpec {
    let mut scenarios = Vec::new();
    for (name, mut config) in content_scenarios() {
        config.stream.total_frames = frames;
        for (policy, selection) in [
            ("paper", ModelSelection::AlwaysPaper),
            // A small hysteresis margin keeps the policy local through
            // the risk estimate's decay dips instead of re-probing the
            // dead network every timeout-window length.
            (
                "expected-accuracy",
                ModelSelection::ExpectedAccuracy { margin: 0.04 },
            ),
        ] {
            let mut config = config.clone();
            config.selection = selection;
            scenarios.push((format!("{name}/{policy}"), config));
        }
    }
    SweepSpec {
        name: "content_sweep".into(),
        scenarios,
        seeds: vec![seed],
        routings: Vec::new(),
        admissions: Vec::new(),
        controllers: vec![("framefeedback".into(), ControllerSpec::framefeedback())],
    }
}

fn table(rows: &[ContentRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "| scenario | selection | mean P | accuracy-weighted P | miss rate | skipped | shrunk |\n",
    );
    out.push_str("|---|---|---:|---:|---:|---:|---:|\n");
    for row in rows {
        out.push_str(&format!(
            "| {} | {} | {:.2} | {:.2} | {:.3} | {} | {} |\n",
            row.scenario,
            row.selection,
            row.mean_throughput,
            row.accuracy_weighted_throughput,
            row.deadline_miss_rate,
            row.frames_skipped,
            row.frames_shrunk
        ));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let frames: u64 = parse_flag(&args, "--frames")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_800);
    let seed: u64 = parse_flag(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let md_path = parse_flag(&args, "--md");

    println!("== content sweep: scene x selection, {frames} frames, seed {seed} ==\n");

    let report = run_sweep(&spec(frames, seed), &SweepOptions::from_env());
    println!(
        "{} cells in {:.1}s\n",
        report.cells.len(),
        report.elapsed_secs
    );

    let mut rows = Vec::with_capacity(report.cells.len());
    for cell in &report.cells {
        let r = &cell.result;
        let (scenario, selection) = cell
            .key
            .scenario
            .split_once('/')
            .expect("scenario labels are scene/policy");
        let stats = r.filter_stats.expect("content scenarios carry a filter");
        assert!(stats.conserved(), "filter counters must conserve frames");
        let agg = r.qos.aggregate_all().expect("runs produce QoS records");
        let miss_rate = if r.frames_offloaded == 0 {
            0.0
        } else {
            r.offload_timeouts as f64 / r.frames_offloaded as f64
        };
        rows.push(ContentRow {
            scenario: scenario.to_string(),
            selection: selection.to_string(),
            seed: cell.key.seed,
            mean_throughput: r.mean_throughput,
            accuracy_weighted_throughput: r.mean_accuracy_weighted_throughput,
            intervals: agg.intervals,
            active_intervals: agg.active_intervals,
            deadline_miss_rate: miss_rate,
            frames_offloaded: r.frames_offloaded,
            frames_local: r.frames_local,
            frames_skipped: stats.skipped,
            frames_shrunk: stats.shrunk,
        });
    }

    let md = table(&rows);
    print!("{md}");

    // The winning criterion the tests pin at a smaller scale: the
    // accuracy-aware policy must beat the paper split on
    // accuracy-weighted throughput in at least 2 of the 3 scenarios.
    let mut wins = 0;
    for pair in rows.chunks(2) {
        let (paper, expected) = (&pair[0], &pair[1]);
        assert_eq!(paper.selection, "paper");
        assert_eq!(expected.selection, "expected-accuracy");
        if expected.accuracy_weighted_throughput > paper.accuracy_weighted_throughput {
            wins += 1;
        }
    }
    println!("\nexpected-accuracy wins on accuracy-weighted throughput in {wins}/3 scenarios");
    assert!(
        wins >= 2,
        "expected-accuracy must win at least 2 of 3 scene scenarios \
         (won {wins}; the scenarios' network collapse starts 25-30 s in, \
         so runs shorter than ~1200 frames / 40 s never reach it)"
    );

    if let Some(path) = md_path {
        let body = format!(
            "# Content-aware sweep: accuracy vs deadline misses\n\n\
             Scene scripts x model-selection policy over a mid-run network\n\
             collapse, MobileNetV3Small on the device and EfficientNetB0 on\n\
             the server. Regenerate with:\n\n\
             ```sh\n\
             cargo run --release -p ff-bench --bin content_sweep -- --md CONTENT_SWEEP.md\n\
             ```\n\n\
             `{frames}` frames per run, seed `{seed}`.\n\n{md}\n\
             The accuracy-aware policy demotes offloads to the on-device\n\
             model while the collapsed network eats the remote model's\n\
             accuracy edge: it wins on accuracy-weighted throughput in\n\
             {wins}/3 scenarios while the paper split keeps offloading\n\
             into timeouts. (Note `accuracy-weighted P` averages over\n\
             *active* intervals only, so on sparse scenes it can exceed\n\
             the all-interval `mean P`.)\n"
        );
        match std::fs::write(&path, body) {
            Ok(()) => println!("markdown table written to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    match export_json("content_sweep", &rows) {
        Ok(path) => println!("rows exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
