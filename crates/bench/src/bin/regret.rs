//! Extension: regret against a clairvoyant oracle.
//!
//! How much throughput does FrameFeedback leave on the table by having to
//! *learn* conditions it cannot see? For every Table V phase we hold the
//! conditions constant and grid-search the best **static** offload rate —
//! a clairvoyant per-phase oracle no online controller can beat in steady
//! state. The gap between FrameFeedback's per-phase throughput in the
//! real (changing) scenario and the oracle's is the price of adaptation:
//! transients after each phase change plus any steady-state hunting.

use ff_baselines::Fixed;
use ff_bench::export_json;
use ff_core::FrameFeedback;
use ff_device::{run_experiment, ExperimentConfig, ExperimentResult};
use ff_net::NetworkConditions;
use ff_workload::{table_v, StepSchedule};
use serde::Serialize;

/// Steady-state throughput of a fixed offload rate under constant
/// conditions (40 s run, first 10 s discarded as warm-up).
fn steady_throughput(conditions: NetworkConditions, po: f64) -> f64 {
    let mut config = ExperimentConfig::default();
    config.network = StepSchedule::constant(conditions);
    config.stream.total_frames = 1_200; // 40 s
    run_experiment(config, Box::new(Fixed::new(po)))
        .qos
        .aggregate(10.0, 40.0)
        .map_or(0.0, |a| a.mean_throughput)
}

/// Grid-search the oracle rate for one condition.
fn oracle(conditions: NetworkConditions) -> (f64, f64) {
    let mut best = (0.0, f64::NEG_INFINITY);
    let mut po = 0.0;
    while po <= 30.0 + 1e-9 {
        let p = steady_throughput(conditions, po);
        if p > best.1 {
            best = (po, p);
        }
        po += 1.5;
    }
    best
}

#[derive(Serialize)]
struct Row {
    phase: String,
    oracle_po: f64,
    oracle_p: f64,
    ff_p: f64,
    regret: f64,
}

fn main() {
    println!("== regret vs a clairvoyant per-phase oracle (Table V) ==\n");

    // FrameFeedback on the real, changing scenario.
    let mut config = ExperimentConfig::default();
    config.network = table_v();
    let ff: ExperimentResult = run_experiment(config, Box::new(FrameFeedback::new()));

    let phases = [
        ("0-30 10Mbps", 0.0, 30.0, NetworkConditions::new(10.0, 0.0)),
        ("30-45 4Mbps", 30.0, 45.0, NetworkConditions::new(4.0, 0.0)),
        ("45-60 1Mbps", 45.0, 60.0, NetworkConditions::new(1.0, 0.0)),
        (
            "60-90 10Mbps",
            60.0,
            90.0,
            NetworkConditions::new(10.0, 0.0),
        ),
        ("90-105 +7%", 90.0, 105.0, NetworkConditions::new(10.0, 7.0)),
        ("105+ 4M+7%", 105.0, 134.0, NetworkConditions::new(4.0, 7.0)),
    ];

    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>8}",
        "phase", "oracle Po*", "oracle P", "FF P", "regret"
    );
    let mut rows = Vec::new();
    let mut total_regret = 0.0;
    let mut total_oracle = 0.0;
    for (label, from, to, conditions) in phases {
        let (opo, op) = oracle(conditions);
        let fp = ff.qos.aggregate(from, to).unwrap().mean_throughput;
        let regret = op - fp;
        total_regret += regret * (to - from);
        total_oracle += op * (to - from);
        println!("{label:<14} {opo:>10.1} {op:>10.1} {fp:>8.1} {regret:>8.1}");
        rows.push(Row {
            phase: label.to_string(),
            oracle_po: opo,
            oracle_p: op,
            ff_p: fp,
            regret,
        });
    }

    let relative = total_regret / total_oracle;
    println!(
        "\ntime-weighted regret: {:.1}% of the oracle's throughput — the total \
         price of online adaptation (phase-change transients + steady-state hunting).",
        relative * 100.0
    );
    assert!(
        relative < 0.35,
        "regret {relative:.2} implausibly high — controller or calibration broke"
    );

    match export_json("regret", &rows) {
        Ok(path) => println!("rows exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
