//! Extension: the policy zoo — routing × admission × controller fleet,
//! head to head on a two-server tier.
//!
//! The paper evaluates one server and one knob (the PD controller).
//! With the multi-server tier the design space is three-dimensional:
//! *who gets in* (admission), *where they land* (routing), and *how the
//! devices adapt* (the controller fleet). This grid runs every
//! combination over a mildly saturated 6-device / 2-server scenario and
//! prints a markdown comparison table: mean total throughput,
//! deadline-miss rate over offloaded frames, and Jain's fairness index
//! per cell.
//!
//! Flags: `--frames N` (per-device stream length, default 1800),
//! `--servers N` (tier size, default 2), `--devices N` (default 6),
//! `--seed S` (default 42). `FF_SWEEP_WORKERS` controls parallelism.

use ff_bench::{export_json, parse_flag};
use ff_device::{FleetConfig, FleetDeviceConfig};
use ff_models::{DeviceKind, GpuProfile, ModelKind};
use ff_server::{OverflowPolicy, ServerSpec, TierConfig};
use ff_sim::SimDuration;
use ff_sweep::{
    run_fleet_sweep, AdmissionSpec, ControllerSpec, FleetSweepSpec, RoutingSpec, SweepOptions,
};
use serde::Serialize;

/// Per-device token-bucket rate: just under the per-device fair share of
/// the default two-server tier (~170 rps / 6 devices ≈ 28 rps), so a
/// greedy 30 fps tenant is clipped while adaptive tenants are not.
const BUCKET_RATE: f64 = 25.0;

/// A deliberately *heterogeneous* tier: servers alternate between a big
/// GPU (batch 9 ≈ 114 rps) and a small one (batch 3 ≈ 57 rps). Static
/// sharding maps half the devices onto the small server and overloads
/// it; load-aware routing should absorb the asymmetry — that contrast
/// is the point of the routing axis.
fn tier(servers: usize) -> TierConfig {
    TierConfig {
        servers: (0..servers)
            .map(|i| ServerSpec {
                gpu: GpuProfile {
                    batch_limit: if i % 2 == 0 { 9 } else { 3 },
                },
                policy: OverflowPolicy::RejectNewest,
            })
            .collect(),
        ..TierConfig::uniform(servers, ServerSpec::default())
    }
}

fn scenario(devices: usize, servers: usize, frames: u64, seed: u64) -> FleetConfig {
    let mut config = FleetConfig::default();
    config.seed = seed;
    config.stream.total_frames = frames;
    config.devices = (0..devices)
        .map(|_| FleetDeviceConfig {
            device: DeviceKind::Pi4BRev12,
            model: ModelKind::MobileNetV3Small,
        })
        .collect();
    // The default 2-server tier holds ~170 rps against 6 × 30 = 180 rps
    // offered — saturated enough that the policies separate, not so
    // overloaded that everything drowns.
    config.tier = Some(tier(servers));
    config
}

fn fleets(devices: usize) -> Vec<(String, Vec<ControllerSpec>)> {
    let pd = ControllerSpec::framefeedback;
    let all_pd: Vec<ControllerSpec> = (0..devices).map(|_| pd()).collect();
    let mut one_greedy: Vec<ControllerSpec> = (0..devices - 1).map(|_| pd()).collect();
    one_greedy.push(ControllerSpec::AlwaysOffload);
    let all_greedy: Vec<ControllerSpec> = (0..devices)
        .map(|_| ControllerSpec::AlwaysOffload)
        .collect();
    vec![
        ("all-pd".into(), all_pd),
        ("one-greedy".into(), one_greedy),
        ("all-greedy".into(), all_greedy),
    ]
}

#[derive(Serialize)]
struct ZooRow {
    routing: String,
    admission: String,
    fleet: String,
    seed: u64,
    total_throughput: f64,
    deadline_miss_rate: f64,
    jain_fairness: f64,
    admission_rejections: u64,
    server_rejections: u64,
    per_server_completions: Vec<u64>,
    server_completions_total: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let frames: u64 = parse_flag(&args, "--frames")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_800);
    let servers: usize = parse_flag(&args, "--servers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let devices: usize = parse_flag(&args, "--devices")
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let seed: u64 = parse_flag(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);

    println!(
        "== policy zoo: {devices} devices x {servers} servers, {frames} frames, seed {seed} ==\n"
    );

    let spec = FleetSweepSpec {
        name: "policy_zoo".into(),
        scenarios: vec![("saturated".into(), scenario(devices, servers, frames, seed))],
        seeds: vec![seed],
        routings: vec![
            ("static-shard".into(), RoutingSpec::StaticShard),
            (
                "jsq".into(),
                RoutingSpec::JoinShortestQueue {
                    gossip_interval: SimDuration::from_millis(500),
                },
            ),
            ("po2c".into(), RoutingSpec::PowerOfTwoChoices),
        ],
        admissions: vec![
            ("admit-all".into(), AdmissionSpec::AdmitAll),
            (
                "token-bucket".into(),
                AdmissionSpec::TokenBucket {
                    rate_rps: BUCKET_RATE,
                    burst: BUCKET_RATE,
                },
            ),
        ],
        fleets: fleets(devices),
    };

    let report = run_fleet_sweep(&spec, &SweepOptions::from_env());
    println!(
        "{} cells in {:.1}s\n",
        report.cells.len(),
        report.elapsed_secs
    );

    let mut rows = Vec::with_capacity(report.cells.len());
    for cell in &report.cells {
        let r = &cell.result;
        let offloaded: u64 = r.devices.iter().map(|d| d.frames_offloaded).sum();
        let timeouts: u64 = r.devices.iter().map(|d| d.offload_timeouts).sum();
        let miss_rate = if offloaded == 0 {
            0.0
        } else {
            timeouts as f64 / offloaded as f64
        };
        rows.push(ZooRow {
            routing: cell.key.routing.clone(),
            admission: cell.key.admission.clone(),
            fleet: cell.key.fleet.clone(),
            seed: cell.key.seed,
            total_throughput: r.total_mean_throughput,
            deadline_miss_rate: miss_rate,
            jain_fairness: r.offload_fairness,
            admission_rejections: r.admission_rejections,
            server_rejections: r.server_stats.rejections,
            per_server_completions: r.per_server_stats.iter().map(|s| s.completions).collect(),
            server_completions_total: r.server_stats.completions,
        });
    }

    println!("| routing | admission | fleet | throughput | miss rate | Jain | adm. rej |");
    println!("|---|---|---|---:|---:|---:|---:|");
    for row in &rows {
        println!(
            "| {} | {} | {} | {:.1} | {:.3} | {:.3} | {} |",
            row.routing,
            row.admission,
            row.fleet,
            row.total_throughput,
            row.deadline_miss_rate,
            row.jain_fairness,
            row.admission_rejections
        );
    }

    // Structural sanity the CI smoke job re-checks from the JSON export.
    for row in &rows {
        assert!(
            (0.0..=1.0).contains(&row.jain_fairness),
            "Jain index out of range in {row:?}",
        );
        assert_eq!(
            row.per_server_completions.iter().sum::<u64>(),
            row.server_completions_total,
            "per-server completions must sum to the tier total"
        );
    }
    println!("\nchecks: Jain in [0,1] and per-server completions sum to tier totals");

    match export_json("policy_zoo", &rows) {
        Ok(path) => println!("rows exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}

impl std::fmt::Debug for ZooRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{} (seed {})",
            self.routing, self.admission, self.fleet, self.seed
        )
    }
}
