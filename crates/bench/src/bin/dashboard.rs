//! `ff-bench dashboard` — live terminal fleet view over telemetry export.
//!
//! Four modes, sharing one renderer (`ff_bench::Dashboard`):
//!
//! - **default**: run a Table V fleet simulation in-process with the
//!   telemetry pipeline enabled, serve the snapshot stream on an
//!   ephemeral TCP port (`ff_live::TcpExportSink`), connect back to it
//!   like any external client would, and redraw the dashboard per
//!   snapshot line — the full export loop in one command.
//! - `--connect ADDR`: render snapshots from an already-running
//!   exporter (a fleet sim or live server started elsewhere).
//! - `--serve ADDR`: run the fleet sim and serve snapshots on `ADDR`,
//!   waiting up to 30 s for the first subscriber; no local rendering.
//! - `--headless PATH`: run the fleet sim writing snapshots to a JSONL
//!   file and print the final `FleetResult` as JSON on stdout — the CI
//!   schema-check entry point.
//!
//! Shared knobs: `--devices N` (default 3), `--frames N` per device
//! (default 900 = 30 s at 30 fps), `--seed N`, `--window-us N`, and
//! `--servers N` (default 1) to put the fleet behind an N-server tier —
//! the snapshot stream then carries `server/<i>` scopes per server.

use ff_bench::Dashboard;
use ff_core::{Controller, FrameFeedback};
use ff_device::{run_fleet, FleetConfig, FleetDeviceConfig, FleetResult};
use ff_live::TcpExportSink;
use ff_models::{DeviceKind, ModelKind};
use ff_server::{ServerSpec, TierConfig};
use ff_telemetry::{JsonlSink, Snapshot, Telemetry, TelemetryConfig};
use ff_workload::table_v;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

struct Options {
    devices: usize,
    servers: usize,
    frames: u64,
    seed: u64,
    window_us: u64,
    mode: Mode,
}

enum Mode {
    SelfServe,
    Connect(String),
    Serve(String),
    Headless(String),
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let mode = if let Some(addr) = flag("--connect") {
        Mode::Connect(addr)
    } else if let Some(addr) = flag("--serve") {
        Mode::Serve(addr)
    } else if let Some(path) = flag("--headless") {
        Mode::Headless(path)
    } else {
        Mode::SelfServe
    };
    Options {
        devices: flag("--devices").map_or(3, |v| v.parse().expect("--devices N")),
        servers: flag("--servers").map_or(1, |v| v.parse().expect("--servers N")),
        frames: flag("--frames").map_or(900, |v| v.parse().expect("--frames N")),
        seed: flag("--seed").map_or(42, |v| v.parse().expect("--seed N")),
        window_us: flag("--window-us").map_or(1_000_000, |v| v.parse().expect("--window-us N")),
        mode,
    }
}

fn fleet_config(opts: &Options, telemetry: Telemetry) -> FleetConfig {
    let mut c = FleetConfig::default();
    c.seed = opts.seed;
    c.devices = (0..opts.devices)
        .map(|_| FleetDeviceConfig {
            device: DeviceKind::Pi4BRev12,
            model: ModelKind::MobileNetV3Small,
        })
        .collect();
    c.stream.total_frames = opts.frames;
    c.network = table_v();
    // N=1 keeps the legacy single-server path (bit-identical by the
    // tier determinism contract); N>1 shards devices across the tier.
    if opts.servers > 1 {
        c.tier = Some(TierConfig::uniform(opts.servers, ServerSpec::default()));
    }
    c.telemetry = telemetry;
    c
}

fn controllers(n: usize) -> Vec<Box<dyn Controller>> {
    (0..n)
        .map(|_| Box::new(FrameFeedback::new()) as Box<dyn Controller>)
        .collect()
}

/// Run the fleet sim on a background thread; the caller consumes the
/// snapshot stream while it runs. `finish()` closes the last window.
fn spawn_fleet(opts: &Options, telemetry: &Telemetry) -> thread::JoinHandle<FleetResult> {
    let config = fleet_config(opts, telemetry.clone());
    let telemetry = telemetry.clone();
    let n = config.devices.len();
    thread::spawn(move || {
        let result = run_fleet(config, controllers(n));
        telemetry.finish();
        result
    })
}

fn print_summary(result: &FleetResult) {
    println!(
        "fleet done: total mean P = {:.1} frames/s over {} devices, {} events",
        result.total_mean_throughput,
        result.devices.len(),
        result.events_handled,
    );
}

/// Render every snapshot line arriving on `stream` until EOF.
fn render_from(stream: TcpStream) {
    let mut dashboard = Dashboard::new();
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let Ok(snapshot) = serde_json::from_str::<Snapshot>(&line) else {
            continue;
        };
        dashboard.ingest(snapshot);
        // Full redraw: clear screen, home cursor.
        print!("\x1b[2J\x1b[H{}", dashboard.render());
    }
    println!(
        "\nstream closed after {} snapshots",
        dashboard.snapshots_seen()
    );
}

fn main() {
    let opts = parse_args();
    let telemetry = Telemetry::new(TelemetryConfig {
        window_us: opts.window_us,
        ..Default::default()
    });

    match &opts.mode {
        Mode::Connect(addr) => {
            let stream = TcpStream::connect(addr).expect("connect to exporter");
            render_from(stream);
        }
        Mode::SelfServe => {
            let sink = TcpExportSink::bind("127.0.0.1:0").expect("bind export port");
            let addr = sink.addr();
            eprintln!("serving telemetry on {addr}");
            // Subscribe before the sim emits its first snapshot.
            let stream = TcpStream::connect(addr).expect("self-connect");
            while sink.client_count() == 0 {
                thread::sleep(Duration::from_millis(5));
            }
            telemetry.add_sink(Box::new(sink));
            let sim = spawn_fleet(&opts, &telemetry);
            let renderer = thread::spawn(move || render_from(stream));
            let result = sim.join().expect("fleet sim");
            // Dropping the last pipeline handle drops the export sink,
            // closing the stream; the renderer exits on EOF.
            drop(telemetry);
            renderer.join().expect("renderer");
            print_summary(&result);
        }
        Mode::Serve(addr) => {
            let sink = TcpExportSink::bind(addr).expect("bind export port");
            println!("serving telemetry on {}", sink.addr());
            let wait_started = Instant::now();
            while sink.client_count() == 0 {
                if wait_started.elapsed() > Duration::from_secs(30) {
                    eprintln!("no subscriber within 30s; running anyway");
                    break;
                }
                thread::sleep(Duration::from_millis(20));
            }
            telemetry.add_sink(Box::new(sink));
            let sim = spawn_fleet(&opts, &telemetry);
            print_summary(&sim.join().expect("fleet sim"));
        }
        Mode::Headless(path) => {
            let sink = JsonlSink::create(path).expect("create snapshot JSONL file");
            telemetry.add_sink(Box::new(sink));
            let result = spawn_fleet(&opts, &telemetry).join().expect("fleet sim");
            println!(
                "{}",
                serde_json::to_string(&result).expect("serialize fleet result")
            );
        }
    }
}
