//! `ff-bench sweep` — benchmarks the `ff-sweep` engine itself and emits
//! `BENCH_sweep.json`, the repo's sweep-throughput perf artifact.
//!
//! The workload is a 32-cell grid (2 scenarios × 8 seeds × 2
//! controllers) of full-length (fig3-scale) runs. The binary:
//!
//! 1. runs the grid serially (the reference),
//! 2. runs it with N workers and **verifies bit-identical aggregation**,
//! 3. runs it twice more against a fresh cache directory to measure
//!    cold-write and warm-hit behavior,
//! 4. writes the measurements to `BENCH_sweep.json` (or `--out PATH`).
//!
//! Usage: `sweep [--workers N] [--cells N] [--out PATH]`
//! `--cells` scales the seed dimension (cells = 4 × seeds).

use ff_bench::gate::bench_sweep_spec;
use ff_bench::parse_flag;
use ff_sweep::{default_workers, run_sweep, SweepOptions, SweepSpec};
use serde::Serialize;

#[derive(Serialize)]
struct Timing {
    workers: usize,
    elapsed_secs: f64,
    runs_per_sec: f64,
}

#[derive(Serialize)]
struct CachePass {
    executed: usize,
    cached: usize,
    elapsed_secs: f64,
}

#[derive(Serialize)]
struct BenchReport {
    grid: String,
    cells: usize,
    serial: Timing,
    parallel: Timing,
    /// Serial/parallel wall-clock ratio; `null` when the host cannot
    /// produce a meaningful one (see `speedup_note`).
    speedup: Option<f64>,
    /// Why `speedup` is absent, when it is.
    speedup_note: Option<String>,
    parallel_identical_to_serial: bool,
    cache_cold: CachePass,
    cache_warm: CachePass,
    host_cores: usize,
}

fn bench_spec(seeds: u64) -> SweepSpec {
    // Shared with `ff-bench gate`, which re-measures this exact grid
    // against the committed baseline.
    bench_sweep_spec(seeds)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers: usize = parse_flag(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(default_workers);
    let cells: usize = parse_flag(&args, "--cells")
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let out = parse_flag(&args, "--out").unwrap_or_else(|| "BENCH_sweep.json".into());
    let seeds = (cells / 4).max(1) as u64;
    let spec = bench_spec(seeds);
    let n = spec.cell_count();
    println!(
        "== ff-sweep benchmark: {n} cells (2 scenarios x {seeds} seeds x 2 controllers), \
         {workers} workers ==\n"
    );

    // 1. Serial reference.
    let serial = run_sweep(&spec, &SweepOptions::serial());
    let serial_timing = Timing {
        workers: 1,
        elapsed_secs: serial.elapsed_secs,
        runs_per_sec: n as f64 / serial.elapsed_secs,
    };
    println!(
        "serial:   {n} runs in {:6.2}s  ({:5.1} runs/s)",
        serial_timing.elapsed_secs, serial_timing.runs_per_sec
    );

    // 2. Parallel + determinism check.
    let parallel = run_sweep(&spec, &SweepOptions::parallel(workers));
    let parallel_timing = Timing {
        workers,
        elapsed_secs: parallel.elapsed_secs,
        runs_per_sec: n as f64 / parallel.elapsed_secs,
    };
    let identical = serial.results_identical(&parallel);
    // A serial-vs-parallel wall-clock ratio only measures parallelism
    // when more than one core (and more than one worker) is in play;
    // on a single-core host the two runs timeshare the same core and
    // the ratio is noise, not a speedup. Report null instead of a
    // misleading ~1.0x (or worse) figure.
    let host_cores = default_workers();
    let (speedup, speedup_note) = if host_cores <= 1 || workers <= 1 {
        let reason = if host_cores <= 1 {
            "host has a single core; serial-vs-parallel wall-clock is not a speedup"
        } else {
            "a single worker was requested; there is no parallelism to measure"
        };
        (None, Some(format!("not measured: {reason}")))
    } else {
        (Some(serial.elapsed_secs / parallel.elapsed_secs), None)
    };
    let speedup_str = speedup.map_or_else(|| "n/a".to_string(), |s| format!("{s:.2}x"));
    println!(
        "parallel: {n} runs in {:6.2}s  ({:5.1} runs/s)  speedup {speedup_str}  identical: {identical}",
        parallel_timing.elapsed_secs, parallel_timing.runs_per_sec
    );
    assert!(
        identical,
        "parallel aggregation diverged from the serial reference"
    );

    // 3. Cache behavior: cold write-through, then warm full-hit rerun.
    let cache_dir = std::env::temp_dir().join(format!("ff-sweep-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let opts = SweepOptions::parallel(workers).with_cache(&cache_dir);
    let cold = run_sweep(&spec, &opts);
    let warm = run_sweep(&spec, &opts);
    assert!(
        cold.results_identical(&warm),
        "cache round-trip changed results"
    );
    println!(
        "cache:    cold {} executed / {} cached in {:.2}s; warm {} executed / {} cached in {:.2}s",
        cold.executed,
        cold.cached,
        cold.elapsed_secs,
        warm.executed,
        warm.cached,
        warm.elapsed_secs
    );
    let report = BenchReport {
        grid: format!("2 scenarios x {seeds} seeds x 2 controllers"),
        cells: n,
        serial: serial_timing,
        parallel: parallel_timing,
        speedup,
        speedup_note,
        parallel_identical_to_serial: identical,
        cache_cold: CachePass {
            executed: cold.executed,
            cached: cold.cached,
            elapsed_secs: cold.elapsed_secs,
        },
        cache_warm: CachePass {
            executed: warm.executed,
            cached: warm.cached,
            elapsed_secs: warm.elapsed_secs,
        },
        host_cores,
    };
    let _ = std::fs::remove_dir_all(&cache_dir);

    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, body).expect("write benchmark report");
    println!("\nreport written to {out}");
}
