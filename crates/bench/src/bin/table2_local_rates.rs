//! Regenerates **Table II**: local processing rates `P_l` of the three
//! Raspberry Pi variants, by actually running the local-only experiment
//! on each device profile and measuring the achieved throughput (rather
//! than just echoing the calibration constants).

use ff_baselines::LocalOnly;
use ff_bench::export_json;
use ff_device::{run_experiment, ExperimentConfig};
use ff_models::{DeviceKind, ModelKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    cpus: u32,
    speed_mhz: u32,
    memory_mib: u32,
    model: String,
    paper_pl: Option<f64>,
    measured_pl: f64,
}

fn main() {
    let models = [ModelKind::MobileNetV3Small, ModelKind::EfficientNetB0];
    let mut rows = Vec::new();

    println!("== Table II: P_l of the Raspberry Pi profiles (measured by simulation) ==");
    println!(
        "{:<22} {:>5} {:>9} {:>9} {:<18} {:>9} {:>11}",
        "device", "CPUs", "MHz", "MiB", "model", "paper", "measured"
    );
    for device in DeviceKind::ALL {
        let profile = device.profile();
        for model in models {
            let mut config = ExperimentConfig::default();
            config.device = device;
            config.model = model;
            config.stream.total_frames = 1_800; // 60 s
            config.peer_devices = 0;
            let result = run_experiment(config, Box::new(LocalOnly::new()));
            let measured = result.mean_throughput;
            let paper = device
                .local_rate_is_measured(model)
                .then(|| device.local_rate_fps(model));
            println!(
                "{:<22} {:>5} {:>9} {:>9} {:<18} {:>9} {:>11.2}",
                device.name(),
                profile.cpus,
                profile.clock_mhz,
                profile.memory_mib,
                model.name(),
                paper.map_or("extrap.".to_string(), |v| format!("{v}")),
                measured
            );
            rows.push(Row {
                device: device.name().to_string(),
                cpus: profile.cpus,
                speed_mhz: profile.clock_mhz,
                memory_mib: profile.memory_mib,
                model: model.name().to_string(),
                paper_pl: paper,
                measured_pl: measured,
            });
        }
    }

    match export_json("table2_local_rates", &rows) {
        Ok(path) => println!("\nraw rows exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
