//! Extension: multi-tenant fairness at saturation (§II-A.3).
//!
//! "When the workload fully saturates the system, the system should
//! respond by reducing offloading and distributing the available capacity
//! fairly among clients." We saturate a nine-device fleet and compare the
//! server's two overflow policies: the paper's implicit reject-newest and
//! the max-min fair-share policy — with and without a greedy
//! (always-offload) tenant in the mix.

use ff_baselines::AlwaysOffload;
use ff_bench::export_json;
use ff_core::{Controller, FrameFeedback};
use ff_device::{run_fleet, FleetConfig, FleetDeviceConfig, FleetResult};
use ff_models::{DeviceKind, ModelKind};
use ff_server::OverflowPolicy;
use serde::Serialize;

fn fleet_config(n: usize, policy: OverflowPolicy) -> FleetConfig {
    let mut config = FleetConfig::default();
    config.devices = (0..n)
        .map(|_| FleetDeviceConfig {
            device: DeviceKind::Pi4BRev12,
            model: ModelKind::MobileNetV3Small,
        })
        .collect();
    config.policy = policy;
    config
}

fn adaptive(n: usize) -> Vec<Box<dyn Controller>> {
    (0..n)
        .map(|_| Box::new(FrameFeedback::new()) as Box<dyn Controller>)
        .collect()
}

fn with_greedy(n: usize) -> Vec<Box<dyn Controller>> {
    let mut v = adaptive(n - 1);
    v.push(Box::new(AlwaysOffload::new()));
    v
}

fn describe(label: &str, result: &FleetResult) {
    println!("--- {label} ---");
    println!(
        "total P {:.1}  fairness (Jain over successes) {:.3}  server rejections {}",
        result.total_mean_throughput, result.offload_fairness, result.server_stats.rejections
    );
    println!(
        "{:>4} {:<16} {:>9} {:>11} {:>11} {:>11}",
        "dev", "controller", "P", "successes", "timeouts", "rejections"
    );
    for (i, d) in result.devices.iter().enumerate() {
        println!(
            "{:>4} {:<16} {:>9.1} {:>11} {:>11} {:>11}",
            i,
            d.controller,
            d.mean_throughput,
            d.offload_successes,
            d.offload_timeouts,
            result.rejections_by_device[i]
        );
    }
    println!();
}

#[derive(Serialize)]
struct Summary {
    scenario: String,
    policy: String,
    fairness: f64,
    total_throughput: f64,
    rejections_by_device: Vec<u64>,
}

fn main() {
    const N: usize = 9; // 9 × 30 fps = 270 rps offered: well past saturation
    println!("== fairness at saturation: {N} devices vs a ~145 rps server ==\n");

    let mut summaries = Vec::new();
    for policy in [OverflowPolicy::RejectNewest, OverflowPolicy::FairShare] {
        for (scenario, controllers) in [
            ("all-adaptive", adaptive(N)),
            ("one-greedy", with_greedy(N)),
        ] {
            let result = run_fleet(fleet_config(N, policy), controllers);
            describe(&format!("{policy:?} / {scenario}"), &result);
            summaries.push(Summary {
                scenario: scenario.to_string(),
                policy: format!("{policy:?}"),
                fairness: result.offload_fairness,
                total_throughput: result.total_mean_throughput,
                rejections_by_device: result.rejections_by_device.clone(),
            });
        }
    }

    // The headline comparison: with a greedy tenant, fair-share pushes the
    // rejection burden onto the tenant that refuses to adapt.
    let greedy_summaries: Vec<&Summary> = summaries
        .iter()
        .filter(|s| s.scenario == "one-greedy")
        .collect();
    for s in greedy_summaries {
        let greedy = *s.rejections_by_device.last().unwrap() as f64;
        let adaptive_mean = s.rejections_by_device[..N - 1]
            .iter()
            .map(|&r| r as f64)
            .sum::<f64>()
            / (N - 1) as f64;
        println!(
            "{}: greedy tenant absorbed {:.1}x the mean adaptive tenant's rejections",
            s.policy,
            greedy / adaptive_mean.max(1.0)
        );
    }

    match export_json("fairness", &summaries) {
        Ok(path) => println!("\nsummaries exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
