//! Regenerates **Table III** (top-1 model accuracy) and quantifies the
//! §II-D discussion: accuracy versus input resolution and JPEG quality,
//! against the bytes-per-frame cost of each setting.

use ff_bench::export_json;
use ff_models::{predicted_top1, tradeoff_frontier, Compression, ModelKind};

fn main() {
    println!("== Table III: top-1 model accuracy ==");
    println!("{:<18} {:>14}", "model", "top-1 acc.");
    for model in ModelKind::ALL {
        println!(
            "{:<18} {:>13.1}%",
            model.name(),
            model.profile().top1_accuracy * 100.0
        );
    }
    println!();

    println!("== §II-D: accuracy / bytes trade-off (EfficientNetB0) ==");
    println!(
        "{:>8} {:>11} {:>12} {:>12}",
        "quality", "resolution", "accuracy", "frame KB"
    );
    let frontier = tradeoff_frontier(
        ModelKind::EfficientNetB0,
        &[30, 50, 70, 90],
        &[112, 160, 224, 320],
    );
    for p in &frontier {
        println!(
            "{:>8} {:>11} {:>11.1}% {:>12.1}",
            p.compression.quality,
            p.compression.resolution,
            p.accuracy * 100.0,
            p.frame_bytes as f64 / 1024.0
        );
    }
    println!();

    println!("== §II-D: the two accuracy levers, isolated ==");
    for model in [ModelKind::MobileNetV3Small, ModelKind::EfficientNetB4] {
        let native = model.profile().native_resolution;
        let base = predicted_top1(model, Compression::new(90, native));
        let upres = predicted_top1(model, Compression::new(90, native * 2));
        let heavy = predicted_top1(model, Compression::new(25, native));
        println!(
            "{:<18} native {:4.1}%  | 2x resolution {:+.2} pp | q25 compression {:+.2} pp",
            model.name(),
            base * 100.0,
            (upres - base) * 100.0,
            (heavy - base) * 100.0,
        );
    }

    match export_json(
        "table3_accuracy",
        &frontier
            .iter()
            .map(|p| {
                (
                    p.compression.quality,
                    p.compression.resolution,
                    p.accuracy,
                    p.frame_bytes,
                )
            })
            .collect::<Vec<_>>(),
    ) {
        Ok(path) => println!("\nraw rows exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
