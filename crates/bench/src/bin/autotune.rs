//! Extension: automated §III-B tuning against the full simulated testbed.
//!
//! Runs the Ziegler–Nichols-inspired procedure (raise `K_P` until the PV
//! oscillates under constant conditions, then add `K_D` to damp) with the
//! discrete-event experiment as the plant, and compares the machine-tuned
//! gains against the paper's hand-tuned Table IV values.

use ff_bench::export_json;
use ff_core::{tune, FrameFeedback, PidConfig, TunerOptions};
use ff_device::{run_experiment, ExperimentConfig};
use ff_net::NetworkConditions;
use ff_workload::StepSchedule;
use serde::Serialize;

/// Run one closed-loop trial and return the P_o-target trace.
fn trial(config: PidConfig) -> Vec<f64> {
    let mut experiment = ExperimentConfig::default();
    // Constant intermediate conditions: a 4 Mbps link that supports only
    // partial offloading — the operating point where gain choice matters.
    experiment.network = StepSchedule::constant(NetworkConditions::new(4.0, 0.0));
    experiment.stream.total_frames = 2_700; // 90 s
    experiment.peer_devices = 0;
    let result = run_experiment(experiment, Box::new(FrameFeedback::with_config(config)));
    result.qos.records().iter().map(|r| r.po_target).collect()
}

#[derive(Serialize)]
struct Report {
    kp: f64,
    kd: f64,
    kp_at_oscillation: f64,
    oscillation_before: f64,
    oscillation_after: f64,
}

fn main() {
    println!("== autotune: §III-B procedure against the simulated testbed ==");
    println!("plant: constant 4 Mbps link (partial-offload operating point)\n");

    let opts = TunerOptions::default();
    match tune(trial, opts) {
        Some(outcome) => {
            println!(
                "K_P raised until oscillation at {:.3} (index {:.2})",
                outcome.kp_at_oscillation, outcome.oscillation_before_damping
            );
            println!(
                "K_D sweep selected {:.2} (index {:.2})",
                outcome.config.kd, outcome.oscillation_after_damping
            );
            println!(
                "\nmachine-tuned: K_P = {:.3}, K_D = {:.2}",
                outcome.config.kp, outcome.config.kd
            );
            println!("paper (Table IV): K_P = 0.2, K_D = 0.26");

            // Head-to-head: tuned vs Table IV on the same plant.
            let tuned_trace = trial(outcome.config);
            let paper_trace = trial(PidConfig::default());
            let score = |trace: &[f64]| ff_core::oscillation_index(trace, 0.6);
            println!(
                "\noscillation on the plant: tuned {:.3} vs Table IV {:.3}",
                score(&tuned_trace),
                score(&paper_trace)
            );

            let report = Report {
                kp: outcome.config.kp,
                kd: outcome.config.kd,
                kp_at_oscillation: outcome.kp_at_oscillation,
                oscillation_before: outcome.oscillation_before_damping,
                oscillation_after: outcome.oscillation_after_damping,
            };
            match export_json("autotune", &report) {
                Ok(path) => println!("report exported to {}", path.display()),
                Err(e) => eprintln!("json export failed: {e}"),
            }
        }
        None => {
            println!(
                "no K_P within bounds oscillated — plant overdamped; keeping Table IV settings"
            );
        }
    }
}
