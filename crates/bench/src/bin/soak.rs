//! Reactor live-tier fleet soak: N in-process devices against one
//! reactor server over loopback for a sustained wall-clock window, with
//! a DES twin cross-check. Emits `BENCH_live.json`, the live tier's
//! perf artifact (enforced by `gate`).
//!
//! Usage: `soak [--devices N] [--secs S] [--out PATH] [--skip-sim]`
//!
//! The committed artifact is regenerated with the defaults
//! (`1024 devices × 75 s`); CI smoke runs a reduced shape.

use ff_bench::soak::{run_soak, SoakOptions};
use ff_bench::{parse_flag, soak};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let defaults = SoakOptions::default();
    let opts = SoakOptions {
        devices: parse_flag(&args, "--devices")
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.devices),
        secs: parse_flag(&args, "--secs")
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.secs),
        skip_sim: args.iter().any(|a| a == "--skip-sim"),
    };
    let out = parse_flag(&args, "--out").unwrap_or_else(|| "BENCH_live.json".into());

    println!(
        "== reactor fleet soak: {} devices x {} s over loopback ==",
        opts.devices, opts.secs
    );
    let report = run_soak(&opts).expect("soak run");

    let l = &report.live;
    println!(
        "captured {} frames; offloaded {} (ok {} / timeout {} / instant-fail {}), \
         local {} (skipped {})",
        l.frames_captured,
        l.frames_offloaded,
        l.offload_successes,
        l.offload_timeouts,
        l.instant_failures,
        l.local_completed,
        l.local_skipped
    );
    println!(
        "sustained {:.1} frames/s over {:.1} s; p99 offload latency {}; \
         reconnects {}, paced drops {}, late backpressure {}",
        l.sustained_frames_per_sec,
        l.elapsed_secs,
        l.offload_p99_latency_ms
            .map_or("n/a".into(), |v| format!("{v:.1} ms")),
        l.reconnects,
        l.paced_drops,
        l.late_backpressure
    );
    println!(
        "conservation: {}/{} devices, {} in flight at end; server open connections {}",
        l.devices_conserved, report.devices, l.in_flight_at_end, report.server.open_connections
    );
    match &report.sim {
        Some(s) => println!(
            "live-vs-sim fleet mean: {:.2} vs {:.2} frames/s/device \
             (delta {:+.2}, tolerance {:.2}) -> {}",
            l.mean_device_throughput_fps,
            s.mean_device_throughput_fps,
            s.delta_fps,
            s.tolerance_fps,
            if s.within_tolerance { "OK" } else { "FAIL" }
        ),
        None => println!("sim cross-check skipped (--skip-sim)"),
    }

    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, body).expect("write soak report");
    let mirror = soak::export_soak(&report).expect("export report");
    println!("report written to {out} (mirror {})", mirror.display());

    if !report.passed() {
        eprintln!("SOAK FAILED");
        std::process::exit(1);
    }
}
