//! Extension: sensitivity to the end-to-end deadline.
//!
//! The paper fixes 250 ms as "a justifiable deadline for a real-world,
//! real-time video processing system" (§II-B) without exploring the
//! neighbourhood. This sweep varies the deadline from 100 ms to 500 ms on
//! the Table V scenario and shows where FrameFeedback's advantage over
//! the all-or-nothing baseline comes from — and when the deadline is so
//! tight that even a clean offload path cannot meet it.
//!
//! Each deadline is one `ff-sweep` scenario; the `deadline × controller`
//! grid executes in parallel and aggregates in deadline order.

use ff_bench::export_json;
use ff_device::ExperimentConfig;
use ff_sim::SimDuration;
use ff_sweep::{run_sweep, ControllerSpec, SweepOptions, SweepSpec};
use ff_workload::table_v;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    deadline_ms: u64,
    ff_mean_p: f64,
    aon_mean_p: f64,
    ff_timeouts: u64,
    ff_p95_latency_ms: f64,
}

fn main() {
    println!("== deadline sensitivity on the Table V scenario ==\n");

    let deadlines = [100u64, 150, 200, 250, 300, 400, 500];
    let base_seed = ExperimentConfig::default().seed;
    let spec = SweepSpec {
        name: "deadline_sweep".into(),
        scenarios: deadlines
            .iter()
            .map(|&ms| {
                let mut config = ExperimentConfig::default();
                config.network = table_v();
                config.deadline = SimDuration::from_millis(ms);
                (format!("{ms}ms"), config)
            })
            .collect(),
        seeds: vec![base_seed],
        routings: Vec::new(),
        admissions: Vec::new(),
        controllers: vec![
            ("framefeedback".into(), ControllerSpec::framefeedback()),
            ("all-or-nothing".into(), ControllerSpec::AllOrNothing),
        ],
    };
    let report = run_sweep(&spec, &SweepOptions::from_env());

    println!(
        "{:>12} {:>10} {:>14} {:>12} {:>14}",
        "deadline", "FF mean P", "AoN mean P", "FF timeouts", "FF p95 lat"
    );
    let mut rows = Vec::new();
    for &deadline_ms in &deadlines {
        let scenario = format!("{deadline_ms}ms");
        let ff = &report
            .get(&scenario, base_seed, "framefeedback")
            .expect("grid is complete")
            .result;
        let aon = &report
            .get(&scenario, base_seed, "all-or-nothing")
            .expect("grid is complete")
            .result;
        let p95 = ff.offload_latency.map_or(f64::NAN, |l| l.p95_ms);
        println!(
            "{:>10}ms {:>10.1} {:>14.1} {:>12} {:>12.0}ms",
            deadline_ms, ff.mean_throughput, aon.mean_throughput, ff.offload_timeouts, p95
        );
        rows.push(Row {
            deadline_ms,
            ff_mean_p: ff.mean_throughput,
            aon_mean_p: aon.mean_throughput,
            ff_timeouts: ff.offload_timeouts,
            ff_p95_latency_ms: p95,
        });
    }

    // Throughput must be monotone non-decreasing in the deadline (a looser
    // deadline can only help), and the FF advantage should persist across
    // the sweep.
    for w in rows.windows(2) {
        assert!(
            w[1].ff_mean_p >= w[0].ff_mean_p - 0.8,
            "throughput fell when the deadline loosened: {} -> {} at {}ms",
            w[0].ff_mean_p,
            w[1].ff_mean_p,
            w[1].deadline_ms
        );
    }
    let advantage_points = rows.iter().filter(|r| r.ff_mean_p > r.aon_mean_p).count();
    println!(
        "\nFrameFeedback beats all-or-nothing at {advantage_points}/{} deadline settings; \
         the paper's 250 ms sits well inside the stable plateau.",
        rows.len()
    );

    match export_json("deadline_sweep", &rows) {
        Ok(path) => println!("rows exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
