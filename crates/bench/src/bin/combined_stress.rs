//! Extension **X2** (§IV-C, mentioned but not shown in the paper):
//! combined network degradation *and* server load. "Combining both
//! sources of end-to-end latency largely works additively to create more
//! unsuccessful offload requests."

use ff_bench::{export_json, print_phase_table, run_lineup, Phase};
use ff_device::ExperimentConfig;
use ff_workload::{table_v, table_vi};

fn main() {
    let mut config = ExperimentConfig::default();
    config.network = table_v();
    config.background = table_vi();
    config.peer_devices = 0;

    println!("== X2: combined Table V network x Table VI server load ==");
    let results = run_lineup(&config);
    let phases = [
        Phase {
            label: "0-30",
            from_secs: 0.0,
            to_secs: 30.0,
        },
        Phase {
            label: "30-45",
            from_secs: 30.0,
            to_secs: 45.0,
        },
        Phase {
            label: "45-60",
            from_secs: 45.0,
            to_secs: 60.0,
        },
        Phase {
            label: "60-90",
            from_secs: 60.0,
            to_secs: 90.0,
        },
        Phase {
            label: "90-105",
            from_secs: 90.0,
            to_secs: 105.0,
        },
        Phase {
            label: "105+",
            from_secs: 105.0,
            to_secs: 134.0,
        },
    ];
    print_phase_table(&results, &phases);
    println!();

    // Additivity check: timeouts under the combined stress vs the sum of
    // the isolated stresses (always-offload makes the comparison clean
    // because it never adapts).
    let mut net_only = ExperimentConfig::default();
    net_only.network = table_v();
    net_only.peer_devices = 0;
    let mut load_only = ExperimentConfig::default();
    load_only.background = table_vi();
    load_only.peer_devices = 0;

    let ao = |cfg: &ExperimentConfig| {
        ff_device::run_experiment(cfg.clone(), Box::new(ff_baselines::AlwaysOffload::new()))
    };
    let combined = ao(&config);
    let net = ao(&net_only);
    let load = ao(&load_only);
    println!(
        "always-offload timeouts: network-only {} + load-only {} vs combined {} \
         (additive within a factor of ~2 is the paper's 'largely additive')",
        net.offload_timeouts, load.offload_timeouts, combined.offload_timeouts
    );

    match export_json("combined_stress", &results) {
        Ok(path) => println!("raw series exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
