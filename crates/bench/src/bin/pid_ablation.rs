//! Extension: the full-PID ablation supporting §III-A.1.
//!
//! The paper argues the integral term is unnecessary ("the consideration
//! of the past ... is not a factor in our system" — the measurement
//! already averages the last few seconds). This ablation runs the Table V
//! scenario with a sweep of `K_I` values and shows that integral action
//! adds wind-up-driven overshoot after condition changes without
//! improving throughput.
//!
//! The `K_I` grid is one `ff-sweep` controller sweep — six PID variants
//! in parallel, aggregated in declaration order.

use ff_bench::export_json;
use ff_core::PidConfig;
use ff_device::ExperimentConfig;
use ff_sweep::{run_sweep, ControllerSpec, SweepOptions, SweepSpec};
use ff_workload::table_v;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    ki: f64,
    mean_throughput: f64,
    /// Worst single-interval timeout burst (frames/s) — wind-up shows up
    /// here: an integrator that accumulated error during a good phase
    /// keeps pushing offloading after conditions collapse.
    worst_timeout_burst: f64,
    /// Mean throughput in the recovery phase right after the dead 1 Mbps
    /// phase ends (t = 60-75 s).
    recovery_throughput: f64,
}

fn main() {
    println!("== PID ablation: K_I sweep on the Table V scenario ==\n");
    println!(
        "{:>6} {:>10} {:>20} {:>20}",
        "K_I", "mean P", "worst timeout burst", "recovery P (60-75s)"
    );

    let kis = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2];
    let mut config = ExperimentConfig::default();
    config.network = table_v();
    let spec = SweepSpec {
        name: "pid_ablation".into(),
        seeds: vec![config.seed],
        scenarios: vec![("table-v".into(), config)],
        routings: Vec::new(),
        admissions: Vec::new(),
        controllers: kis
            .iter()
            .map(|&ki| {
                (
                    format!("Ki{ki}"),
                    ControllerSpec::FrameFeedback(PidConfig {
                        ki,
                        ..Default::default()
                    }),
                )
            })
            .collect(),
    };
    let report = run_sweep(&spec, &SweepOptions::from_env());

    let mut rows = Vec::new();
    for (&ki, cell) in kis.iter().zip(&report.cells) {
        let result = &cell.result;
        let worst = result
            .qos
            .records()
            .iter()
            .map(|r| r.timeouts)
            .fold(0.0, f64::max);
        let recovery = result
            .qos
            .aggregate(60.0, 75.0)
            .map_or(f64::NAN, |a| a.mean_throughput);
        println!(
            "{:>6} {:>10.1} {:>20.1} {:>20.1}",
            ki, result.mean_throughput, worst, recovery
        );
        rows.push(Row {
            ki,
            mean_throughput: result.mean_throughput,
            worst_timeout_burst: worst,
            recovery_throughput: recovery,
        });
    }

    let baseline = &rows[0];
    let best_nonzero = rows[1..]
        .iter()
        .map(|r| r.mean_throughput)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nK_I = 0 mean P: {:.1}; best non-zero K_I mean P: {:.1} — \
         integral action buys {:+.1} fps, supporting the paper's K_I = 0 choice.",
        baseline.mean_throughput,
        best_nonzero,
        best_nonzero - baseline.mean_throughput
    );

    match export_json("pid_ablation", &rows) {
        Ok(path) => println!("rows exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
