//! Extension: statistical robustness of the headline result.
//!
//! Figures 3 and 4 are single runs; this sweep repeats the Figure 3
//! experiment over many seeds and reports the distribution of the
//! FrameFeedback / all-or-nothing throughput ratio — showing the paper's
//! "50% to 3× better in intermediate conditions" claim is not a
//! seed-lottery artifact.
//!
//! The `seed × controller` grid runs on the `ff-sweep` engine: all
//! cells execute in parallel (`FF_SWEEP_WORKERS` to override) and
//! aggregate deterministically in seed order.

use ff_bench::export_json;
use ff_metrics::bootstrap_mean_ci;
use ff_sim::RngFactory;
use ff_sweep::{run_sweep, ControllerSpec, SweepOptions, SweepSpec};
use ff_workload::table_v;
use serde::Serialize;

#[derive(Serialize)]
struct SeedRow {
    seed: u64,
    ff_mean_p: f64,
    aon_mean_p: f64,
    ratio_4mbps: f64,
    ratio_overall: f64,
}

fn main() {
    const SEEDS: u64 = 15;
    println!("== seed sweep: Figure 3 over {SEEDS} seeds ==\n");

    let mut config = ff_device::ExperimentConfig::default();
    config.network = table_v();
    let spec = SweepSpec {
        name: "seed_sweep".into(),
        scenarios: vec![("table-v".into(), config)],
        seeds: (0..SEEDS).collect(),
        routings: Vec::new(),
        admissions: Vec::new(),
        controllers: vec![
            ("framefeedback".into(), ControllerSpec::framefeedback()),
            ("all-or-nothing".into(), ControllerSpec::AllOrNothing),
        ],
    };
    let report = run_sweep(&spec, &SweepOptions::from_env());
    println!(
        "{} cells in {:.1}s ({} executed, {} cached)\n",
        report.cells.len(),
        report.elapsed_secs,
        report.executed,
        report.cached
    );

    println!(
        "{:>6} {:>10} {:>11} {:>14} {:>14}",
        "seed", "FF mean P", "AoN mean P", "ratio @4Mbps", "ratio overall"
    );
    let mut rows = Vec::new();
    for seed in 0..SEEDS {
        let ff = &report
            .get("table-v", seed, "framefeedback")
            .expect("grid is complete")
            .result;
        let aon = &report
            .get("table-v", seed, "all-or-nothing")
            .expect("grid is complete")
            .result;
        let mid =
            |r: &ff_device::ExperimentResult| r.qos.aggregate(32.0, 45.0).unwrap().mean_throughput;
        let row = SeedRow {
            seed,
            ff_mean_p: ff.mean_throughput,
            aon_mean_p: aon.mean_throughput,
            ratio_4mbps: mid(ff) / mid(aon).max(1e-9),
            ratio_overall: ff.mean_throughput / aon.mean_throughput.max(1e-9),
        };
        println!(
            "{:>6} {:>10.1} {:>11.1} {:>13.2}x {:>13.2}x",
            row.seed, row.ff_mean_p, row.aon_mean_p, row.ratio_4mbps, row.ratio_overall
        );
        rows.push(row);
    }

    let ratios: Vec<f64> = rows.iter().map(|r| r.ratio_4mbps).collect();
    let ci = bootstrap_mean_ci(
        &ratios,
        0.95,
        5_000,
        &mut RngFactory::new(0).stream("bootstrap"),
    );
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let wins = rows.iter().filter(|r| r.ratio_overall > 1.0).count();
    println!(
        "\nintermediate-phase advantage: {:.2}x, 95% bootstrap CI [{:.2}, {:.2}] (min {min:.2}x); \
         FrameFeedback wins overall on {wins}/{SEEDS} seeds",
        ci.mean, ci.lo, ci.hi
    );
    assert!(
        ci.excludes(1.0),
        "the advantage must be significant at 95%: CI [{:.2}, {:.2}]",
        ci.lo,
        ci.hi
    );
    println!("paper claim: between 50% (1.5x) and 3x in intermediate conditions.");
    assert!(
        min > 1.2,
        "the advantage must hold on every seed, min ratio {min:.2}"
    );

    match export_json("seed_sweep", &rows) {
        Ok(path) => println!("rows exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
