//! Regenerates **Table IV** (the controller settings) and validates each
//! setting behaviourally: the defaults must reproduce the documented
//! clamps, the probe floor, and the tuned-stability property relative to
//! neighbouring gain choices.

use ff_bench::export_json;
use ff_core::{Controller, FrameFeedback, Measurement, PidConfig};

fn measure(fs: f64, po: f64, t: f64) -> Measurement {
    Measurement {
        fs,
        po_achieved: po,
        pl_achieved: 13.0,
        timeout_rate: t,
        heartbeat_ok: true,
        dt_secs: 1.0,
    }
}

fn main() {
    let cfg = PidConfig::default();
    println!("== Table IV: PID settings ==");
    println!("{:<20} {:>12}", "variable", "value");
    println!("{:<20} {:>12}", "K_P", cfg.kp);
    println!("{:<20} {:>12}", "K_I", cfg.ki);
    println!("{:<20} {:>12}", "K_D", cfg.kd);
    println!(
        "{:<20} {:>12}",
        "update minimum",
        format!("{} * F_s", cfg.update_min_factor)
    );
    println!(
        "{:<20} {:>12}",
        "update maximum",
        format!("{} * F_s", cfg.update_max_factor)
    );
    println!("{:<20} {:>12}", "measure frequency", "1 Hz");
    println!();

    // Behavioural validation 1: the asymmetric clamps.
    let fs = 30.0;
    let mut c = FrameFeedback::new();
    let d1 = c.update(&measure(fs, 0.0, 0.0));
    println!(
        "clean-interval first step: +{:.2} fps (cap {:.2})",
        d1.po_target,
        cfg.update_max_factor * fs
    );
    assert!(d1.po_target <= cfg.update_max_factor * fs + 1e-9);

    let mut c = FrameFeedback::with_config(PidConfig {
        initial_po: fs,
        ..Default::default()
    });
    let before = c.po_target();
    let d2 = c.update(&measure(fs, fs, fs));
    println!(
        "total-timeout first step: {:.2} fps (floor {:.2})",
        d2.po_target - before,
        cfg.update_min_factor * fs
    );
    assert!(d2.po_target - before >= cfg.update_min_factor * fs - 1e-9);

    // Behavioural validation 2: the probe floor at 0.1*F_s.
    let mut c = FrameFeedback::new();
    let mut po = 15.0;
    for _ in 0..300 {
        po = c.update(&measure(fs, po, po)).po_target;
    }
    println!(
        "probe floor under permanent failure: {:.2} fps (expected {:.1})",
        po,
        cfg.timeout_tolerance * fs
    );
    assert!((po - cfg.timeout_tolerance * fs).abs() < 0.5);

    // Behavioural validation 3: settling time of the ramp (0 -> F_s under
    // clean conditions) is F_s / (update max) = 10 steps.
    let mut c = FrameFeedback::new();
    let mut po = 0.0;
    let mut settle = 0;
    for step in 1..=50 {
        po = c.update(&measure(fs, po, 0.0)).po_target;
        if po >= 0.9 * fs {
            settle = step;
            break;
        }
    }
    println!("ramp time to 90% of F_s: {settle} steps (update cap implies >= 9)");
    assert!(settle >= 9, "ramp faster than the +0.1*F_s cap allows");
    assert!(settle > 0, "never settled");

    let rows = vec![
        ("K_P", cfg.kp),
        ("K_I", cfg.ki),
        ("K_D", cfg.kd),
        ("update_min_factor", cfg.update_min_factor),
        ("update_max_factor", cfg.update_max_factor),
        ("timeout_tolerance", cfg.timeout_tolerance),
    ];
    match export_json("table4_settings", &rows) {
        Ok(path) => println!("\nsettings exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
