//! Extension: closing the §II-D loop — adaptive JPEG quality.
//!
//! The paper notes that lighter compression preserves accuracy but costs
//! bytes per frame, and leaves the trade-off static. Here a quality
//! ladder reacts to *network-attributed* timeouts: frames shrink when the
//! pipe thins, and quality recovers when conditions clear. Run on the
//! Table V schedule against fixed-quality FrameFeedback.

use ff_bench::export_json;
use ff_core::FrameFeedback;
use ff_device::{run_experiment, ExperimentConfig, QualityConfig};
use ff_workload::table_v;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    mean_throughput: f64,
    timeouts: u64,
    mean_offload_quality: f64,
    mean_offload_accuracy_pct: f64,
    p_4mbps_phase: f64,
    p_1mbps_phase: f64,
}

fn run(adaptive: bool) -> Row {
    let mut config = ExperimentConfig::default();
    config.network = table_v();
    if adaptive {
        config.adaptive_quality = Some(QualityConfig::default());
    }
    let r = run_experiment(config, Box::new(FrameFeedback::new()));
    Row {
        variant: if adaptive {
            "adaptive-quality"
        } else {
            "fixed-q90"
        }
        .into(),
        mean_throughput: r.mean_throughput,
        timeouts: r.offload_timeouts,
        mean_offload_quality: r.mean_offload_quality.unwrap_or(f64::NAN),
        mean_offload_accuracy_pct: r.mean_offload_accuracy.unwrap_or(f64::NAN) * 100.0,
        p_4mbps_phase: r.qos.aggregate(32.0, 45.0).unwrap().mean_throughput,
        p_1mbps_phase: r.qos.aggregate(47.0, 60.0).unwrap().mean_throughput,
    }
}

fn main() {
    println!("== §II-D closed-loop: adaptive JPEG quality on Table V ==\n");
    println!(
        "{:<18} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "variant", "mean P", "timeouts", "mean q", "acc %", "P@4Mbps", "P@1Mbps"
    );
    let rows = vec![run(false), run(true)];
    for r in &rows {
        println!(
            "{:<18} {:>8.1} {:>10} {:>10.1} {:>10.2} {:>10.1} {:>10.1}",
            r.variant,
            r.mean_throughput,
            r.timeouts,
            r.mean_offload_quality,
            r.mean_offload_accuracy_pct,
            r.p_4mbps_phase,
            r.p_1mbps_phase
        );
    }

    let fixed = &rows[0];
    let adaptive = &rows[1];
    println!(
        "\nadaptive quality trades {:.2} accuracy points for {:+.1} fps overall \
         ({:+.1} fps in the 4 Mbps phase) — smaller frames fit the thin pipe.",
        fixed.mean_offload_accuracy_pct - adaptive.mean_offload_accuracy_pct,
        adaptive.mean_throughput - fixed.mean_throughput,
        adaptive.p_4mbps_phase - fixed.p_4mbps_phase,
    );

    match export_json("quality_adaptation", &rows) {
        Ok(path) => println!("rows exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
