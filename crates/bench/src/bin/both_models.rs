//! Extension: the second model type.
//!
//! §IV-C.2: "batch size limits are set per model, so we hit both model
//! types when measuring controller response under server load." The
//! figures use MobileNetV3Small ("it produces the smoothest results");
//! this run repeats the two main scenarios with **EfficientNetB0** —
//! slower locally (2.5 fps on the Pi 4B) and heavier on the GPU
//! (saturation ~80 rps instead of ~145), so both the local floor and the
//! saturation crossover move.

use ff_bench::{export_json, print_phase_table, run_lineup, Phase};
use ff_device::ExperimentConfig;
use ff_models::{GpuProfile, ModelKind};
use ff_workload::{table_v, table_vi, StepSchedule};

fn main() {
    let gpu = GpuProfile::default();
    println!(
        "EfficientNetB0: local P_l = 2.5 fps (Pi 4B r1.2), server saturation ~{:.0} rps\n",
        gpu.saturation_throughput_fps(ModelKind::EfficientNetB0)
    );

    // Network scenario.
    let mut network = ExperimentConfig::default();
    network.model = ModelKind::EfficientNetB0;
    network.network = table_v();
    println!("== Table V scenario, EfficientNetB0 ==");
    let net_results = run_lineup(&network);
    let phases = [
        Phase {
            label: "0-30",
            from_secs: 0.0,
            to_secs: 30.0,
        },
        Phase {
            label: "30-45",
            from_secs: 30.0,
            to_secs: 45.0,
        },
        Phase {
            label: "45-60",
            from_secs: 45.0,
            to_secs: 60.0,
        },
        Phase {
            label: "60-90",
            from_secs: 60.0,
            to_secs: 90.0,
        },
        Phase {
            label: "90-105",
            from_secs: 90.0,
            to_secs: 105.0,
        },
        Phase {
            label: "105+",
            from_secs: 105.0,
            to_secs: 134.0,
        },
    ];
    print_phase_table(&net_results, &phases);
    println!();

    // Server-load scenario: scale Table VI to this model's lower
    // saturation point (the paper uses absolute rates tuned to MobileNet;
    // the same *relative* sweep for EfficientNetB0 halves them).
    let mut load = ExperimentConfig::default();
    load.model = ModelKind::EfficientNetB0;
    load.peer_devices = 0;
    let scaled: Vec<(f64, f64)> = table_vi()
        .steps()
        .iter()
        .map(|&(t, r)| (t, r * 0.55))
        .collect();
    load.background = StepSchedule::new(scaled);
    println!("== Table VI scenario (rates x0.55), EfficientNetB0 ==");
    let load_results = run_lineup(&load);
    print_phase_table(&load_results, &phases[..1]);
    let peak = |i: usize| {
        load_results[i]
            .qos
            .aggregate(50.0, 60.0)
            .unwrap()
            .mean_throughput
    };
    println!(
        "\npeak-load P: framefeedback {:.1} vs always-offload {:.1} vs all-or-nothing {:.1}",
        peak(0),
        peak(2),
        peak(3)
    );

    // The qualitative claims must survive the model change.
    let ff_mid = net_results[0]
        .qos
        .aggregate(32.0, 45.0)
        .unwrap()
        .mean_throughput;
    let aon_mid = net_results[3]
        .qos
        .aggregate(32.0, 45.0)
        .unwrap()
        .mean_throughput;
    println!(
        "\n4 Mbps phase advantage with EfficientNetB0: {:.2}x (MobileNet gave ~2x) — \
         a *larger* factor because the local floor is only 2.5 fps.",
        ff_mid / aon_mid.max(1e-9)
    );
    assert!(
        ff_mid > aon_mid,
        "the Fig. 3 shape must hold for the heavy model too"
    );

    match export_json("both_models", &(net_results, load_results)) {
        Ok(path) => println!("raw series exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
