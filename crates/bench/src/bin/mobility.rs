//! Extension: mobile devices (random-walk link conditions).
//!
//! The paper's motivating workloads include UAVs and vehicles (§I) whose
//! links wander continuously rather than stepping on a timetable. Three
//! devices follow independent mobility traces against the shared server;
//! the per-device controllers must each track their own link.

use ff_bench::export_json;
use ff_core::{Controller, FrameFeedback};
use ff_device::{run_fleet, FleetConfig};
use ff_sim::RngFactory;
use ff_workload::{mobility_trace, MobilityConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    mean_throughput: f64,
    offloaded: u64,
    timeouts: u64,
}

fn main() {
    println!("== mobility: three devices on independent random-walk links ==\n");

    let mut config = FleetConfig::default();
    let rng = RngFactory::new(2024);
    let mobility = MobilityConfig::default();
    config.per_device_network = Some(
        (0..config.devices.len() as u64)
            .map(|i| mobility_trace(&mobility, &mut rng.indexed_stream("mobility", i)))
            .collect(),
    );

    let controllers: Vec<Box<dyn Controller>> = (0..config.devices.len())
        .map(|_| Box::new(FrameFeedback::new()) as Box<dyn Controller>)
        .collect();
    let schedules = config.per_device_network.clone().unwrap();
    let result = run_fleet(config, controllers);

    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>18}",
        "device", "P", "offloaded", "timeouts", "bw range seen"
    );
    let mut rows = Vec::new();
    for (i, d) in result.devices.iter().enumerate() {
        let bws: Vec<f64> = schedules[i]
            .steps()
            .iter()
            .map(|(_, c)| c.bandwidth_mbps)
            .collect();
        let lo = bws.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = bws.iter().cloned().fold(0.0, f64::max);
        println!(
            "{:<14} {:>8.1} {:>10} {:>10} {:>9.1}-{:.1} Mbps",
            d.device, d.mean_throughput, d.frames_offloaded, d.offload_timeouts, lo, hi
        );
        rows.push(Row {
            device: d.device.clone(),
            mean_throughput: d.mean_throughput,
            offloaded: d.frames_offloaded,
            timeouts: d.offload_timeouts,
        });
    }
    println!(
        "\nfleet total P = {:.1} fps, fairness {:.3}, server rejections {}",
        result.total_mean_throughput, result.offload_fairness, result.server_stats.rejections
    );
    println!(
        "Every device must beat its own local floor despite the wandering link —\n\
         the controller needs no mobility model, only the timeout signal."
    );
    for d in &result.devices {
        assert!(
            d.mean_throughput > 4.5,
            "{} fell below a plausible floor: {:.1}",
            d.device,
            d.mean_throughput
        );
    }

    match export_json("mobility", &rows) {
        Ok(path) => println!("rows exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
