//! Regenerates **Figure 2**: the offloading rate `P_o` over time for
//! controllers with different `(K_P, K_D)` coefficients, under an ideal
//! network for the first 27 seconds and 7% packet loss afterwards.
//!
//! Paper expectations (shape): every variant ramps to full offloading
//! under ideal conditions; after the loss injection, low-damping variants
//! oscillate harder, and the paper's (0.2, 0.26) setting balances
//! sensitivity and overcorrection.
//!
//! The gain grid runs as one `ff-sweep` controller sweep — six PD
//! variants in parallel, aggregated in declaration order.

use ff_bench::{export_json, print_po_target_chart};
use ff_core::PidConfig;
use ff_device::{ExperimentConfig, ExperimentResult};
use ff_sweep::{run_sweep, ControllerSpec, SweepOptions, SweepSpec};
use ff_workload::fig2_loss_injection;
use serde::Serialize;

#[derive(Serialize)]
struct SweepResult {
    kp: f64,
    kd: f64,
    result: ExperimentResult,
}

fn main() {
    // The paper's setting plus bracketing variants (higher/lower
    // sensitivity, with and without damping).
    let gains = [
        (0.1, 0.0),
        (0.2, 0.0),
        (0.2, 0.26), // Table IV
        (0.2, 0.6),
        (0.5, 0.26),
        (0.5, 0.0),
    ];

    let mut config = ExperimentConfig::default();
    config.network = fig2_loss_injection();
    config.stream.total_frames = 1_800; // 60 s, as in the figure
    let seed = config.seed;

    let label = |kp: f64, kd: f64| format!("Kp{kp}/Kd{kd}");
    let spec = SweepSpec {
        name: "fig2_gain_sweep".into(),
        scenarios: vec![("fig2".into(), config)],
        seeds: vec![seed],
        routings: Vec::new(),
        admissions: Vec::new(),
        controllers: gains
            .iter()
            .map(|&(kp, kd)| {
                (
                    label(kp, kd),
                    ControllerSpec::FrameFeedback(PidConfig::with_gains(kp, kd)),
                )
            })
            .collect(),
    };
    let report = run_sweep(&spec, &SweepOptions::from_env());
    let sweep: Vec<SweepResult> = gains
        .iter()
        .zip(&report.cells)
        .map(|(&(kp, kd), cell)| SweepResult {
            kp,
            kd,
            result: cell.result.clone(),
        })
        .collect();

    println!("== Figure 2: P_o target under gain variants (7% loss from t=27s) ==");
    print!("{:>6}", "t(s)");
    for s in &sweep {
        print!(" {:>12}", label(s.kp, s.kd));
    }
    println!();
    let n = sweep[0].result.qos.records().len();
    for i in 0..n {
        print!("{:>6.0}", sweep[0].result.qos.records()[i].t_secs);
        for s in &sweep {
            print!(" {:>12.1}", s.result.qos.records()[i].po_target);
        }
        println!();
    }
    println!();

    let labelled: Vec<(String, &ExperimentResult)> = sweep
        .iter()
        .map(|s| (label(s.kp, s.kd), &s.result))
        .collect();
    print_po_target_chart("== Figure 2 (terminal rendering) ==", &labelled);
    println!();

    // Stability metrics per variant: P_o standard deviation before and
    // after the loss injection, plus mean throughput.
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10}",
        "gains", "std before", "std after", "P before", "P after"
    );
    for s in &sweep {
        let series = &s.result.qos;
        let sd = |from: f64, to: f64| {
            let recs: Vec<f64> = series
                .records()
                .iter()
                .filter(|r| r.t_secs >= from && r.t_secs < to)
                .map(|r| r.po_target)
                .collect();
            let mean = recs.iter().sum::<f64>() / recs.len() as f64;
            (recs.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / recs.len() as f64).sqrt()
        };
        let before = series.aggregate(15.0, 27.0).unwrap().mean_throughput;
        let after = series.aggregate(30.0, 60.0).unwrap().mean_throughput;
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>10.1} {:>10.1}",
            label(s.kp, s.kd),
            sd(15.0, 27.0),
            sd(30.0, 60.0),
            before,
            after
        );
    }

    match export_json("fig2_gain_sweep", &sweep) {
        Ok(path) => println!("\nraw series exported to {}", path.display()),
        Err(e) => eprintln!("json export failed: {e}"),
    }
}
