//! Enforced performance gate over the committed bench artifacts.
//!
//! The repo commits three perf baselines at its root — `BENCH_engine.json`
//! (DES events/second from `engine_bench`, a v2 **tier array** covering
//! fleet sizes from 256 to 100k devices with optional sharded entries),
//! `BENCH_sweep.json` (sweep cells/second from `sweep`), and
//! `BENCH_live.json` (sustained completed-inferences/second of the
//! reactor live tier from `soak`). The `gate` binary re-measures every
//! applicable tier and **fails** (non-zero exit) when a measured rate
//! falls more than a tolerance below its committed baseline, turning
//! the JSON artifacts from passive records into an enforced contract.
//!
//! The baselines are parsed *partially*: the gate only reads the rate
//! fields it compares against, so regenerating an artifact with extra
//! fields (host notes, new informational passes) never breaks the gate.
//! All rates are throughput figures (work/second), so a shortened run
//! (`--frames-cap`) measures the same quantity as the committed tier
//! and remains comparable within the tolerance. Tiers larger than
//! `--max-devices`, and sharded entries with more shards than the host
//! has cores, are *skipped* rather than failed — a small CI host gates
//! what it can measure honestly.

use ff_core::{Controller, FrameFeedback};
use ff_device::{run_fleet, EngineOptions, ExperimentConfig, FleetConfig, FleetDeviceConfig};
use ff_models::{DeviceKind, ModelKind};
use ff_sim::QueueBackend;
use ff_sweep::{run_sweep, ControllerSpec, SweepOptions, SweepSpec};
use ff_workload::table_v;
use serde::Deserialize;
use std::time::Instant;

/// Partial view of `BENCH_engine.json` (schema v2): the tier array,
/// each tier reduced to the rates the gate compares against.
#[derive(Deserialize)]
pub struct EngineBaseline {
    /// Every tier the committed artifact measured.
    pub tiers: Vec<EngineTierBaseline>,
}

/// One committed tier: its fleet shape, the single-shard optimized rate,
/// and any sharded rates recorded alongside it.
#[derive(Deserialize)]
pub struct EngineTierBaseline {
    /// Tier label (`"256"`, `"1k"`, ...), used in gate output.
    pub name: String,
    /// Fleet size the tier was measured at; the gate re-measures at the
    /// same size (rates are only comparable within a tier).
    pub devices: usize,
    /// Committed frames per device — the gate may shorten this via
    /// `--frames-cap`, which preserves the rate being measured.
    pub frames_per_device: u64,
    /// The optimized (timing-wheel, reused-buffers) single-shard run.
    pub optimized: RateEntry,
    /// Sharded runs, if the artifact recorded any. Entries whose shard
    /// count exceeds the gating host's cores are skipped.
    #[serde(default)]
    pub sharded: Vec<ShardedRateEntry>,
}

/// A run entry that carries an events-per-second figure.
#[derive(Deserialize)]
pub struct RateEntry {
    /// Events handled per wall-clock second.
    pub events_per_sec: f64,
}

/// A sharded run entry: the shard count plus its rate.
#[derive(Deserialize)]
pub struct ShardedRateEntry {
    /// Shard (worker-thread) count of the committed run.
    pub shards: usize,
    /// Events handled per wall-clock second.
    pub events_per_sec: f64,
}

/// Partial view of `BENCH_live.json`: the fleet shape plus the
/// sustained live-tier rate the gate compares against.
#[derive(Deserialize)]
pub struct LiveBaseline {
    /// Device count the committed soak ran at; the gate re-measures at
    /// the same count (the rate scales with fleet size).
    pub devices: usize,
    /// The live-side aggregates, reduced to the gated rate.
    pub live: LiveRateEntry,
}

/// The live-side rate entry of `BENCH_live.json`.
#[derive(Deserialize)]
pub struct LiveRateEntry {
    /// Completed inferences (local + offload) per wall-clock second.
    pub sustained_frames_per_sec: f64,
}

/// Partial view of `BENCH_sweep.json`: just the serial reference rate.
#[derive(Deserialize)]
pub struct SweepBaseline {
    /// The single-worker reference timing.
    pub serial: SerialEntry,
}

/// A timing entry that carries a runs-per-second figure.
#[derive(Deserialize)]
pub struct SerialEntry {
    /// Sweep cells executed per wall-clock second.
    pub runs_per_sec: f64,
}

/// One gate comparison: a measured rate against its committed baseline.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// Which tier this check covers (`"engine/256"`, `"engine/1k x2"`,
    /// `"sweep"`, ...).
    pub name: String,
    /// The committed baseline rate.
    pub baseline: f64,
    /// The freshly measured rate.
    pub measured: f64,
    /// Allowed fractional shortfall (0.20 = fail below 80% of baseline).
    pub tolerance: f64,
}

impl GateCheck {
    /// A check passes iff `measured >= baseline * (1 - tolerance)`.
    pub fn passed(&self) -> bool {
        self.measured >= self.threshold()
    }

    /// The minimum acceptable rate.
    pub fn threshold(&self) -> f64 {
        self.baseline * (1.0 - self.tolerance)
    }

    /// Measured / baseline, for reporting (1.0 = exactly on baseline).
    pub fn ratio(&self) -> f64 {
        self.measured / self.baseline
    }
}

impl std::fmt::Display for GateCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<14} {:>12.0}/s measured vs {:>12.0}/s baseline ({:>5.1}% , floor {:>12.0}/s): {}",
            self.name,
            self.measured,
            self.baseline,
            self.ratio() * 100.0,
            self.threshold(),
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// The fleet configuration `engine_bench` (and the gate) measures: N
/// identical Pi devices on the Table V schedule, contending for the
/// shared server.
pub fn engine_fleet_config(
    devices: usize,
    frames: u64,
    engine: EngineOptions,
    fast_loss: bool,
) -> FleetConfig {
    let mut c = FleetConfig::default();
    c.devices = (0..devices)
        .map(|_| FleetDeviceConfig {
            device: DeviceKind::Pi4BRev12,
            model: ModelKind::MobileNetV3Small,
        })
        .collect();
    c.stream.total_frames = frames;
    c.network = table_v();
    c.link.fast_loss = fast_loss;
    c.engine = engine;
    c
}

/// The optimized engine configuration whose rate `BENCH_engine.json`
/// commits: timing-wheel queue with reused batch buffers, single shard.
pub fn optimized_engine() -> EngineOptions {
    EngineOptions {
        backend: QueueBackend::Wheel,
        reuse_batch_buffers: true,
        shards: 1,
    }
}

/// The grid `sweep` (and the gate) measures: 2 scenarios × `seeds`
/// seeds × 2 controllers of full-length (fig3-scale) runs.
pub fn bench_sweep_spec(seeds: u64) -> SweepSpec {
    // Full-length scenarios (the fig3-scale 4,000-frame run with peer
    // devices): cells must be expensive enough that per-cell work, not
    // worker startup, dominates the parallel measurement.
    let base = ExperimentConfig::default;
    let mut table_v_cfg = base();
    table_v_cfg.network = table_v();
    SweepSpec {
        name: "bench_sweep".into(),
        scenarios: vec![("ideal".into(), base()), ("table-v".into(), table_v_cfg)],
        seeds: (0..seeds).collect(),
        routings: Vec::new(),
        admissions: Vec::new(),
        controllers: vec![
            ("framefeedback".into(), ControllerSpec::framefeedback()),
            ("all-or-nothing".into(), ControllerSpec::AllOrNothing),
        ],
    }
}

fn fleet_controllers(n: usize) -> Vec<Box<dyn Controller>> {
    (0..n)
        .map(|_| Box::new(FrameFeedback::new()) as Box<dyn Controller>)
        .collect()
}

/// Measure the optimized engine's event throughput at `shards` shards:
/// best (fastest) of `reps` repetitions of the `engine_fleet_config`
/// fleet, in events per wall-clock second. Min-time measurement matches
/// `engine_bench` and keeps the figure stable on busy hosts.
pub fn measure_engine_events_per_sec(
    devices: usize,
    frames: u64,
    reps: usize,
    shards: usize,
) -> f64 {
    let engine = EngineOptions {
        shards,
        ..optimized_engine()
    };
    let config = engine_fleet_config(devices, frames, engine, false);
    let mut best = 0.0f64;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let result = run_fleet(config.clone(), fleet_controllers(devices));
        let elapsed = start.elapsed().as_secs_f64();
        best = best.max(result.events_handled as f64 / elapsed);
    }
    best
}

/// Measure the live reactor tier's sustained completed-inference rate
/// at the committed device count over a (shortened) wall-clock window.
/// The figure is a throughput, so a shorter `secs` measures the same
/// quantity as the committed soak; the device count is *not* reduced
/// because per-device rates depend on fleet-wide server contention.
/// Unlike the DES measurements this one runs in real time — `secs` of
/// wall-clock per call — so the gate measures it once, not best-of-N.
pub fn measure_live_frames_per_sec(devices: usize, secs: u64) -> f64 {
    let (live, _server) = crate::soak::run_soak_live(devices, secs).expect("gate: live soak run");
    assert!(
        live.frames_conserved,
        "gate: live measurement lost frames ({} devices conserved, {} in flight)",
        live.devices_conserved, live.in_flight_at_end
    );
    live.sustained_frames_per_sec
}

/// Measure the sweep engine's serial cell throughput: best of `reps`
/// serial runs of the `bench_sweep_spec` grid, in cells per wall-clock
/// second. `cells` scales the seed dimension (cells = 4 × seeds).
pub fn measure_sweep_runs_per_sec(cells: usize, reps: usize) -> f64 {
    let seeds = (cells / 4).max(1) as u64;
    let spec = bench_sweep_spec(seeds);
    let n = spec.cell_count();
    let mut best = 0.0f64;
    for _ in 0..reps.max(1) {
        let outcome = run_sweep(&spec, &SweepOptions::serial());
        best = best.max(n as f64 / outcome.elapsed_secs);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_check_boundary() {
        let mut c = GateCheck {
            name: "engine/256".into(),
            baseline: 1_000.0,
            measured: 800.0,
            tolerance: 0.20,
        };
        assert!(c.passed(), "exactly at the floor passes");
        c.measured = 799.9;
        assert!(!c.passed(), "below the floor fails");
        c.measured = 1_500.0;
        assert!(c.passed());
        assert!((c.ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn baselines_parse_partially() {
        // Unknown fields (everything else the bench bins write) must be
        // ignored so artifact regeneration can add fields freely.
        let engine: EngineBaseline = serde_json::from_str(
            r#"{"schema":2,"scenario":"table-v","tiers":[
                {"name":"256","devices":256,"frames_per_device":4000,
                 "optimized":{"backend":"wheel","events_per_sec":123.5},
                 "speedup":1.6,"sharded":[]},
                {"name":"1k","devices":1024,"frames_per_device":1000,
                 "optimized":{"events_per_sec":200.0},
                 "sharded":[{"shards":2,"events_per_sec":321.0,"extra":true}]}
            ]}"#,
        )
        .unwrap();
        assert_eq!(engine.tiers.len(), 2);
        assert!((engine.tiers[0].optimized.events_per_sec - 123.5).abs() < 1e-12);
        assert!(engine.tiers[0].sharded.is_empty());
        assert_eq!(engine.tiers[1].sharded[0].shards, 2);
        assert!((engine.tiers[1].sharded[0].events_per_sec - 321.0).abs() < 1e-12);
        let sweep: SweepBaseline = serde_json::from_str(
            r#"{"cells":32,"serial":{"workers":1,"runs_per_sec":400.0},"speedup":null}"#,
        )
        .unwrap();
        assert!((sweep.serial.runs_per_sec - 400.0).abs() < 1e-12);
        let live: LiveBaseline = serde_json::from_str(
            r#"{"schema":1,"devices":1024,"duration_secs":75,
                "live":{"sustained_frames_per_sec":13000.5,"reconnects":0},
                "server":{"requests":1},"sim":null}"#,
        )
        .unwrap();
        assert_eq!(live.devices, 1024);
        assert!((live.live.sustained_frames_per_sec - 13000.5).abs() < 1e-12);
    }

    #[test]
    fn sharded_field_defaults_to_empty() {
        // v2 artifacts written before sharding (or hand-reduced ones)
        // may omit `sharded` entirely.
        let engine: EngineBaseline = serde_json::from_str(
            r#"{"tiers":[{"name":"t","devices":4,"frames_per_device":40,
                 "optimized":{"events_per_sec":1.0}}]}"#,
        )
        .unwrap();
        assert!(engine.tiers[0].sharded.is_empty());
    }

    #[test]
    fn reduced_tier_measures_a_positive_rate() {
        let rate = measure_engine_events_per_sec(2, 40, 1, 1);
        assert!(rate > 0.0);
        let sharded = measure_engine_events_per_sec(4, 40, 1, 2);
        assert!(sharded > 0.0);
        let sweep = measure_sweep_runs_per_sec(4, 1);
        assert!(sweep > 0.0);
    }
}
