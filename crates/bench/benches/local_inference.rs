//! Criterion bench for the Table II pipeline: the local engine's offer /
//! complete hot path and a full local-only run per device profile.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ff_baselines::LocalOnly;
use ff_device::{run_experiment, ExperimentConfig, LocalEngine, LocalOutcome};
use ff_models::{DeviceKind, ModelKind};
use ff_sim::{RngFactory, SimDuration, SimTime};

fn bench_engine_hot_path(c: &mut Criterion) {
    c.bench_function("local_engine_offer_complete", |b| {
        let mut engine = LocalEngine::new(
            DeviceKind::Pi4BRev12,
            ModelKind::MobileNetV3Small,
            RngFactory::new(1).stream("bench-local"),
        );
        let mut now = SimTime::ZERO;
        let mut done: Option<SimTime> = None;
        b.iter(|| {
            if let Some(d) = done {
                if d <= now {
                    done = engine.complete(d);
                }
            }
            if let LocalOutcome::Started { done_at } = engine.offer(now) {
                done = Some(done_at);
            }
            now += SimDuration::from_millis(33);
            black_box(now)
        });
    });
}

fn bench_table2_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_local_only_60s");
    group.sample_size(10);
    for device in DeviceKind::ALL {
        group.bench_function(device.name().replace([' ', '.'], "_"), |b| {
            b.iter(|| {
                let mut config = ExperimentConfig::default();
                config.device = device;
                config.stream.total_frames = 1_800;
                config.peer_devices = 0;
                run_experiment(config, Box::new(LocalOnly::new())).mean_throughput
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_hot_path, bench_table2_runs);
criterion_main!(benches);
