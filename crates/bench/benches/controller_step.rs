//! Criterion bench for the controller itself (Fig. 2 / Table IV): the
//! per-measurement update cost of FrameFeedback and the baselines, plus
//! a full Fig. 2 closed-loop run per gain setting.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ff_baselines::{AllOrNothing, AlwaysOffload, LocalOnly};
use ff_core::{Controller, FrameFeedback, Measurement, PidConfig};
use ff_device::{run_experiment, ExperimentConfig};
use ff_workload::fig2_loss_injection;

fn measurement(po: f64, t: f64) -> Measurement {
    Measurement {
        fs: 30.0,
        po_achieved: po,
        pl_achieved: 13.0,
        timeout_rate: t,
        heartbeat_ok: true,
        dt_secs: 1.0,
    }
}

fn bench_controller_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_update");
    group.bench_function("framefeedback", |b| {
        let mut ctl = FrameFeedback::new();
        let mut po = 0.0;
        b.iter(|| {
            po = ctl.update(black_box(&measurement(po, 1.0))).po_target;
            po
        });
    });
    group.bench_function("local_only", |b| {
        let mut ctl = LocalOnly::new();
        b.iter(|| ctl.update(black_box(&measurement(10.0, 0.0))));
    });
    group.bench_function("always_offload", |b| {
        let mut ctl = AlwaysOffload::new();
        b.iter(|| ctl.update(black_box(&measurement(10.0, 0.0))));
    });
    group.bench_function("all_or_nothing", |b| {
        let mut ctl = AllOrNothing::new();
        b.iter(|| ctl.update(black_box(&measurement(10.0, 0.0))));
    });
    group.finish();
}

fn bench_fig2_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_closed_loop_60s");
    group.sample_size(10);
    for (kp, kd) in [(0.2, 0.26), (0.5, 0.0)] {
        group.bench_function(format!("kp{kp}_kd{kd}"), |b| {
            b.iter(|| {
                let mut config = ExperimentConfig::default();
                config.network = fig2_loss_injection();
                config.stream.total_frames = 1_800;
                let ctl = FrameFeedback::with_config(PidConfig::with_gains(kp, kd));
                run_experiment(config, Box::new(ctl)).mean_throughput
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_controller_update, bench_fig2_run);
criterion_main!(benches);
