//! Criterion bench for the Fig. 3 / Table V pipeline: the link emulator's
//! send path and the full network-degradation experiment per controller.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ff_baselines::AllOrNothing;
use ff_core::FrameFeedback;
use ff_device::{run_experiment, ExperimentConfig};
use ff_net::{Link, LinkConfig, NetworkConditions};
use ff_sim::{RngFactory, SimDuration, SimTime};
use ff_workload::table_v;

fn bench_link_send(c: &mut Criterion) {
    let mut group = c.benchmark_group("link_send");
    for (label, loss) in [("lossless", 0.0), ("7pct_loss", 7.0)] {
        group.bench_function(label, |b| {
            let mut link = Link::new(
                LinkConfig::default(),
                NetworkConditions::new(10.0, loss),
                RngFactory::new(1).stream("bench-link"),
            );
            let mut now = SimTime::ZERO;
            b.iter(|| {
                now += SimDuration::from_millis(33);
                black_box(link.send(now, 25_000))
            });
        });
    }
    group.finish();
}

fn bench_fig3_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_table_v_133s");
    group.sample_size(10);
    group.bench_function("framefeedback", |b| {
        b.iter(|| {
            let mut config = ExperimentConfig::default();
            config.network = table_v();
            run_experiment(config, Box::new(FrameFeedback::new())).mean_throughput
        });
    });
    group.bench_function("all_or_nothing", |b| {
        b.iter(|| {
            let mut config = ExperimentConfig::default();
            config.network = table_v();
            run_experiment(config, Box::new(AllOrNothing::new())).mean_throughput
        });
    });
    group.finish();
}

criterion_group!(benches, bench_link_send, bench_fig3_run);
criterion_main!(benches);
