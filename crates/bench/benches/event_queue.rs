//! Criterion micro-bench for the event-queue backends: binary heap vs
//! hierarchical timing wheel, at calendar depths of 10^2, 10^3, and 10^4
//! pending events.
//!
//! Two access patterns bracket what the simulation does:
//!
//! * `sorted_insert` — steady-state churn where each pop schedules a new
//!   event a fixed horizon ahead (captures, ticks): pops come out in
//!   near-insertion order.
//! * `random_time` — each pop schedules a new event at a uniformly
//!   random offset (deadlines racing responses): inserts land anywhere
//!   in the pending window.
//!
//! Each iteration performs one pop + one push against a queue holding
//! `depth` events, so the printed time is the marginal per-event queue
//! cost at that depth.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ff_sim::{EventQueue, QueueBackend, RngFactory, SimDuration, SimTime};
use rand::Rng;

const DEPTHS: [usize; 3] = [100, 1_000, 10_000];

fn backend_name(backend: QueueBackend) -> &'static str {
    match backend {
        QueueBackend::Heap => "heap",
        QueueBackend::Wheel => "wheel",
    }
}

/// A queue pre-filled with `depth` events spread over a 250 ms window
/// (the deadline horizon the simulation actually uses).
fn filled(backend: QueueBackend, depth: usize) -> EventQueue<u64> {
    let mut q = EventQueue::with_backend(backend);
    for i in 0..depth {
        let at = SimTime::from_micros((i as u64 * 250_000) / depth as u64);
        q.push(at, i as u64);
    }
    q
}

fn bench_sorted_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue/sorted_insert");
    for backend in [QueueBackend::Heap, QueueBackend::Wheel] {
        for depth in DEPTHS {
            group.bench_function(format!("{}/{depth}", backend_name(backend)), |b| {
                let mut q = filled(backend, depth);
                b.iter(|| {
                    // 1000 pop+push cycles per iteration: each popped
                    // event reschedules 250 ms ahead, like a capture
                    // cadence — inserts are always the latest event.
                    for _ in 0..1_000 {
                        let (at, ev) = q.pop().expect("queue stays full");
                        q.push(at + SimDuration::from_micros(250_000), black_box(ev));
                    }
                    q.len()
                });
            });
        }
    }
    group.finish();
}

fn bench_random_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue/random_time");
    for backend in [QueueBackend::Heap, QueueBackend::Wheel] {
        for depth in DEPTHS {
            group.bench_function(format!("{}/{depth}", backend_name(backend)), |b| {
                let mut q = filled(backend, depth);
                let mut rng = RngFactory::new(9).stream("event-queue-bench");
                b.iter(|| {
                    // Each popped event reschedules at a random offset
                    // within the pending window, like deadlines racing
                    // responses.
                    for _ in 0..1_000 {
                        let (at, ev) = q.pop().expect("queue stays full");
                        let offset = rng.gen_range(1..=250_000u64);
                        q.push(at + SimDuration::from_micros(offset), black_box(ev));
                    }
                    q.len()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sorted_insert, bench_random_time);
criterion_main!(benches);
