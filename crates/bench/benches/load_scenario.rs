//! Criterion bench for the Fig. 4 / Table VI pipeline: the server's
//! batching hot path and the full server-load experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ff_core::FrameFeedback;
use ff_device::{run_experiment, ExperimentConfig};
use ff_models::{GpuProfile, ModelKind};
use ff_server::{EdgeServer, Request, Submit, TenantId};
use ff_sim::{SimDuration, SimTime};
use ff_workload::table_vi;

/// Drive the server at a fixed offered load for `n` arrivals and return
/// completions (exercises submit + batch formation + completion).
fn saturate_server(rate: f64, n: u64) -> u64 {
    let mut server = EdgeServer::new(GpuProfile::default());
    let gap = SimDuration::from_secs_f64(1.0 / rate);
    let mut now = SimTime::ZERO;
    let mut next_done: Option<SimTime> = None;
    let mut completed = 0u64;
    for tag in 0..n {
        // Fire any completions due before this arrival.
        while let Some(d) = next_done {
            if d <= now {
                let (c, _r, nd) = server.on_batch_done(d);
                completed += c.len() as u64;
                next_done = nd;
            } else {
                break;
            }
        }
        let req = Request {
            tenant: TenantId(0),
            model: ModelKind::MobileNetV3Small,
            submitted_at: now,
            tag,
        };
        match server.submit(now, req) {
            Submit::BatchStarted { done_at } => next_done = Some(done_at),
            Submit::Queued => {}
        }
        now += gap;
    }
    completed
}

fn bench_server_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_batching");
    for rate in [60.0, 150.0, 300.0] {
        group.bench_function(format!("{rate:.0}rps_x1000"), |b| {
            b.iter(|| black_box(saturate_server(rate, 1_000)));
        });
    }
    group.finish();
}

fn bench_fig4_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_table_vi_133s");
    group.sample_size(10);
    group.bench_function("framefeedback", |b| {
        b.iter(|| {
            let mut config = ExperimentConfig::default();
            config.background = table_vi();
            config.peer_devices = 0;
            run_experiment(config, Box::new(FrameFeedback::new())).mean_throughput
        });
    });
    group.finish();
}

criterion_group!(benches, bench_server_batching, bench_fig4_run);
criterion_main!(benches);
