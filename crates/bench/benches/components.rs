//! Criterion bench for the remaining component hot paths: the frame
//! splitter, the offload tracker, the windowed rate estimator, the
//! accuracy model (Table III), and the simulation engine's event loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ff_device::{FrameSplitter, OffloadTracker};
use ff_metrics::WindowedRate;
use ff_models::{predicted_top1, Compression, ModelKind};
use ff_sim::{Ctx, SimDuration, SimModel, SimTime, Simulation};

fn bench_splitter(c: &mut Criterion) {
    c.bench_function("frame_splitter_route", |b| {
        let mut s = FrameSplitter::new();
        b.iter(|| black_box(s.route(17.3, 30.0)));
    });
}

fn bench_tracker(c: &mut Criterion) {
    c.bench_function("offload_tracker_cycle", |b| {
        let mut t = OffloadTracker::new(SimDuration::from_millis(250));
        let mut tag = 0u64;
        b.iter(|| {
            let sent = SimTime::from_micros(tag * 33_000);
            t.sent(tag, sent);
            t.arrived_at_server(tag, sent + SimDuration::from_millis(30));
            black_box(t.response_arrived(tag, sent + SimDuration::from_millis(100)));
            tag += 1;
        });
    });
}

fn bench_windowed_rate(c: &mut Criterion) {
    c.bench_function("windowed_rate_record_and_query", |b| {
        let mut r = WindowedRate::new(SimDuration::from_secs(3));
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now += SimDuration::from_millis(33);
            r.record(now);
            black_box(r.rate_at(now))
        });
    });
}

fn bench_accuracy_model(c: &mut Criterion) {
    c.bench_function("table3_accuracy_prediction", |b| {
        let compression = Compression::new(75, 224);
        b.iter(|| black_box(predicted_top1(ModelKind::EfficientNetB0, compression)));
    });
}

/// A self-scheduling ping event to measure raw engine overhead.
struct Ping {
    remaining: u64,
}

impl SimModel for Ping {
    type Event = ();
    fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _ev: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule_in(SimDuration::from_micros(1), ());
        }
    }
}

fn bench_sim_engine(c: &mut Criterion) {
    c.bench_function("sim_engine_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Ping { remaining: 100_000 });
            sim.schedule_at(SimTime::ZERO, ());
            sim.run();
            black_box(sim.events_handled())
        });
    });
}

criterion_group!(
    benches,
    bench_splitter,
    bench_tracker,
    bench_windowed_rate,
    bench_accuracy_model,
    bench_sim_engine
);
criterion_main!(benches);
