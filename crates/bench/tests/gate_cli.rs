//! End-to-end check of the `ff-bench gate` binary: fabricated baselines
//! drive both verdicts — an unreachable (inflated) baseline must fail the
//! process with a non-zero exit, and a trivially low baseline must pass.

use std::path::PathBuf;
use std::process::Command;

fn baseline_file(name: &str, body: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("ff-gate-{}-{name}", std::process::id()));
    std::fs::write(&path, body).expect("write fabricated baseline");
    path
}

/// A v2 (tier-array) engine baseline with one deliberately tiny tier.
/// The tier shape comes from the baseline itself, so the fabricated
/// tier keeps the test fast under the debug profile; the verdict only
/// depends on the fabricated rate, not the host's absolute speed.
fn tiny_engine_baseline(events_per_sec: f64) -> String {
    format!(
        r#"{{"schema":2,"tiers":[{{"name":"tiny","devices":4,"frames_per_device":120,
            "optimized":{{"events_per_sec":{events_per_sec}}}}}]}}"#
    )
}

/// Run the gate on the fabricated tiny tier, `--skip-sweep`.
fn run_gate(engine_events_per_sec: f64) -> std::process::Output {
    let engine = baseline_file(
        &format!("engine-{engine_events_per_sec:e}.json"),
        &tiny_engine_baseline(engine_events_per_sec),
    );
    Command::new(env!("CARGO_BIN_EXE_gate"))
        .args([
            "--tolerance",
            "0.20",
            "--skip-sweep",
            "--skip-live",
            "--reps",
            "1",
            "--engine-baseline",
        ])
        .arg(&engine)
        .output()
        .expect("gate binary runs")
}

#[test]
fn gate_fails_on_inflated_baseline() {
    // No host measures 1e12 events/s; a >=20% shortfall is guaranteed.
    let out = run_gate(1e12);
    assert!(
        !out.status.success(),
        "gate must exit non-zero against an unreachable baseline; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "verdict missing from:\n{stdout}");
}

#[test]
fn gate_passes_on_trivial_baseline() {
    // Any host beats 1 event/s, so the same measurement must pass.
    let out = run_gate(1.0);
    assert!(
        out.status.success(),
        "gate must exit zero against a trivial baseline; stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PASS"), "verdict missing from:\n{stdout}");
}

#[test]
fn gate_covers_the_sweep_tier_too() {
    let engine = baseline_file("engine-tiny.json", &tiny_engine_baseline(1.0));
    let sweep = baseline_file("sweep-huge.json", r#"{"serial":{"runs_per_sec":1e12}}"#);
    let out = Command::new(env!("CARGO_BIN_EXE_gate"))
        .args(["--cells", "4", "--reps", "1", "--skip-live"])
        .arg("--engine-baseline")
        .arg(&engine)
        .arg("--sweep-baseline")
        .arg(&sweep)
        .output()
        .expect("gate binary runs");
    assert!(
        !out.status.success(),
        "an inflated sweep baseline alone must fail the gate"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("engine") && stdout.contains("sweep"),
        "both tiers must be reported:\n{stdout}"
    );
}

#[test]
fn gate_skips_tiers_and_shard_counts_beyond_the_host() {
    // A huge tier (beyond --max-devices), a sharded entry requiring
    // more cores than any plausible host, and a live baseline recorded
    // on a fleet larger than --max-devices must all be *skipped*, with
    // the gate still passing on what remains.
    let engine = baseline_file(
        "engine-skips.json",
        r#"{"schema":2,"tiers":[
            {"name":"tiny","devices":4,"frames_per_device":120,
             "optimized":{"events_per_sec":1.0},
             "sharded":[{"shards":4096,"events_per_sec":1.0}]},
            {"name":"huge","devices":1048576,"frames_per_device":30,
             "optimized":{"events_per_sec":1e12}}
        ]}"#,
    );
    let live = baseline_file(
        "live-skips.json",
        r#"{"schema":1,"devices":1048576,
            "live":{"sustained_frames_per_sec":1e12}}"#,
    );
    let out = Command::new(env!("CARGO_BIN_EXE_gate"))
        .args([
            "--skip-sweep",
            "--reps",
            "1",
            "--max-devices",
            "1024",
            "--engine-baseline",
        ])
        .arg(&engine)
        .arg("--live-baseline")
        .arg(&live)
        .output()
        .expect("gate binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "skipped tiers must not fail the gate; stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("engine/huge: skipped")
            && stdout.contains("engine/tiny x4096: skipped")
            && stdout.contains("live: skipped"),
        "skips must be reported:\n{stdout}"
    );
}
