//! Overflow (rejection) policies.
//!
//! §II-A.3: "When the workload fully saturates the system, the system
//! should respond by reducing offloading and distributing the available
//! capacity fairly among clients." The paper's implementation rejects the
//! overflow of the request queue without specifying *which* requests; we
//! provide two policies and an ablation comparing them:
//!
//! * [`OverflowPolicy::RejectNewest`] — drop from the back of the queue
//!   (the paper's implicit behaviour: latecomers lose). Simple, but a
//!   bursty tenant can crowd out a steady one.
//! * [`OverflowPolicy::FairShare`] — repeatedly drop the newest request
//!   of the tenant holding the most queued requests, equalizing queue
//!   occupancy across tenants at saturation (max-min fairness over the
//!   batch slots).

use crate::server::{Request, TenantId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How the server selects which queued requests to reject when the queue
/// exceeds the batch limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Reject from the back of the queue (arrival order; the default and
    /// the paper's behaviour).
    #[default]
    RejectNewest,
    /// Reject the newest request of the most-queued tenant first.
    FairShare,
}

impl OverflowPolicy {
    /// Remove requests from `queue` until it holds at most `limit`,
    /// returning the victims.
    pub fn drain_overflow(self, queue: &mut VecDeque<Request>, limit: usize) -> Vec<Request> {
        let mut victims = Vec::new();
        self.drain_overflow_into(queue, limit, &mut victims);
        victims
    }

    /// Like [`drain_overflow`](Self::drain_overflow), but appends the
    /// victims to a caller-provided buffer so the per-batch hot path can
    /// reuse one allocation across the whole run.
    pub fn drain_overflow_into(
        self,
        queue: &mut VecDeque<Request>,
        limit: usize,
        victims: &mut Vec<Request>,
    ) {
        match self {
            OverflowPolicy::RejectNewest => {
                while queue.len() > limit {
                    victims.push(queue.pop_back().expect("len > limit >= 0"));
                }
            }
            OverflowPolicy::FairShare => {
                while queue.len() > limit {
                    let heaviest = Self::heaviest_tenant(queue);
                    let idx = queue
                        .iter()
                        .rposition(|r| r.tenant == heaviest)
                        .expect("heaviest tenant has at least one request");
                    victims.push(queue.remove(idx).expect("index in range"));
                }
            }
        }
    }

    fn heaviest_tenant(queue: &VecDeque<Request>) -> TenantId {
        use std::collections::HashMap;
        let mut counts: HashMap<TenantId, usize> = HashMap::new();
        for r in queue {
            *counts.entry(r.tenant).or_default() += 1;
        }
        counts
            .into_iter()
            // Deterministic tie-break on tenant id.
            .max_by_key(|&(tenant, count)| (count, std::cmp::Reverse(tenant)))
            .expect("queue is non-empty")
            .0
    }
}

/// Jain's fairness index over per-client allocations: 1 = perfectly fair,
/// 1/n = maximally unfair. Empty or all-zero input yields 1 (vacuously
/// fair).
pub fn jain_fairness_index(allocations: &[f64]) -> f64 {
    assert!(
        allocations.iter().all(|a| *a >= 0.0 && a.is_finite()),
        "allocations must be non-negative and finite"
    );
    let sum: f64 = allocations.iter().sum();
    if allocations.is_empty() || sum == 0.0 {
        return 1.0;
    }
    let sum_sq: f64 = allocations.iter().map(|a| a * a).sum();
    (sum * sum) / (allocations.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_models::ModelKind;
    use ff_sim::SimTime;

    fn req(tenant: u32, tag: u64) -> Request {
        Request {
            tenant: TenantId(tenant),
            model: ModelKind::MobileNetV3Small,
            submitted_at: SimTime::ZERO,
            tag,
        }
    }

    fn queue_of(specs: &[(u32, u64)]) -> VecDeque<Request> {
        specs.iter().map(|&(t, tag)| req(t, tag)).collect()
    }

    #[test]
    fn reject_newest_drops_from_the_back() {
        let mut q = queue_of(&[(0, 1), (1, 2), (0, 3), (1, 4)]);
        let victims = OverflowPolicy::RejectNewest.drain_overflow(&mut q, 2);
        assert_eq!(
            victims.iter().map(|r| r.tag).collect::<Vec<_>>(),
            vec![4, 3]
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q[0].tag, 1);
    }

    #[test]
    fn fair_share_penalizes_the_heaviest_tenant() {
        // Tenant 0 floods (5 requests); tenant 1 has 1.
        let mut q = queue_of(&[(0, 1), (0, 2), (1, 3), (0, 4), (0, 5), (0, 6)]);
        let victims = OverflowPolicy::FairShare.drain_overflow(&mut q, 3);
        assert_eq!(victims.len(), 3);
        assert!(
            victims.iter().all(|r| r.tenant == TenantId(0)),
            "only the flooding tenant should lose requests: {victims:?}"
        );
        // Tenant 1's single request survives.
        assert!(q.iter().any(|r| r.tenant == TenantId(1)));
        // Victims are the flooding tenant's newest requests.
        assert_eq!(
            victims.iter().map(|r| r.tag).collect::<Vec<_>>(),
            vec![6, 5, 4]
        );
    }

    #[test]
    fn fair_share_equalizes_across_equal_tenants() {
        // Two tenants with 4 requests each; dropping to 4 total should
        // leave 2 each.
        let mut q = queue_of(&[
            (0, 1),
            (1, 2),
            (0, 3),
            (1, 4),
            (0, 5),
            (1, 6),
            (0, 7),
            (1, 8),
        ]);
        let _ = OverflowPolicy::FairShare.drain_overflow(&mut q, 4);
        let t0 = q.iter().filter(|r| r.tenant == TenantId(0)).count();
        let t1 = q.iter().filter(|r| r.tenant == TenantId(1)).count();
        assert_eq!((t0, t1), (2, 2));
    }

    #[test]
    fn no_overflow_means_no_victims() {
        for policy in [OverflowPolicy::RejectNewest, OverflowPolicy::FairShare] {
            let mut q = queue_of(&[(0, 1), (1, 2)]);
            assert!(policy.drain_overflow(&mut q, 5).is_empty());
            assert_eq!(q.len(), 2);
        }
    }

    #[test]
    fn policies_preserve_survivor_order() {
        for policy in [OverflowPolicy::RejectNewest, OverflowPolicy::FairShare] {
            let mut q = queue_of(&[(0, 1), (1, 2), (0, 3), (1, 4), (0, 5)]);
            let _ = policy.drain_overflow(&mut q, 2);
            let tags: Vec<u64> = q.iter().map(|r| r.tag).collect();
            let mut sorted = tags.clone();
            sorted.sort_unstable();
            assert_eq!(tags, sorted, "{policy:?} must keep FIFO order");
        }
    }

    #[test]
    fn jain_index_extremes() {
        assert_eq!(jain_fairness_index(&[5.0, 5.0, 5.0]), 1.0);
        let unfair = jain_fairness_index(&[10.0, 0.0, 0.0]);
        assert!((unfair - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_fairness_index(&[]), 1.0);
        assert_eq!(jain_fairness_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_index_orders_by_fairness() {
        let fairer = jain_fairness_index(&[4.0, 5.0, 6.0]);
        let less_fair = jain_fairness_index(&[1.0, 5.0, 9.0]);
        assert!(fairer > less_fair);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn jain_rejects_negative_allocations() {
        jain_fairness_index(&[-1.0]);
    }
}
