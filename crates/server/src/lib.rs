//! # ff-server — the multi-tenant edge inference server
//!
//! The GPU-equipped server the devices offload to (paper Fig. 1, top
//! right). Implements the paper's adaptive batching scheme — next batch =
//! everything that arrived during the previous batch, capped at 15 with
//! the overflow rejected — on top of the affine GPU latency model from
//! `ff-models`, plus a Poisson sampler for Table VI's injected
//! multi-tenant background load.

#![warn(missing_docs)]

mod background;
mod policy;
mod server;

pub use background::PoissonArrivals;
pub use policy::{jain_fairness_index, OverflowPolicy};
pub use server::{
    BatchOutput, Completion, EdgeServer, Rejection, Request, ServerStats, Submit, TenantId,
};
