//! # ff-server — the multi-tenant edge inference server
//!
//! The GPU-equipped server the devices offload to (paper Fig. 1, top
//! right). Implements the paper's adaptive batching scheme — next batch =
//! everything that arrived during the previous batch, capped at 15 with
//! the overflow rejected — on top of the affine GPU latency model from
//! `ff-models`, plus a Poisson sampler for Table VI's injected
//! multi-tenant background load.
//!
//! Since the multi-server refactor the canonical entry point is the
//! [`ServerTier`]: N heterogeneous [`EdgeServer`]s behind a routing
//! policy (static shard / join-shortest-queue on stale gossip /
//! power-of-two choices) and an admission policy (admit-all or a
//! per-tenant token bucket). A single-server tier is bit-identical to
//! driving the bare server, so the paper's topology is the N=1 case.

#![warn(missing_docs)]

mod background;
mod policy;
mod server;
mod tier;

pub use background::PoissonArrivals;
pub use policy::{jain_fairness_index, OverflowPolicy};
pub use server::{
    BatchOutput, Completion, EdgeServer, Rejection, Request, ServerStats, Submit, TenantId,
};
pub use tier::{AdmissionPolicy, RoutingPolicy, ServerSpec, ServerTier, TierConfig, TierSubmit};
