//! Background (multi-tenant) traffic generation.
//!
//! In the Table VI experiment, "other devices ... inject request volume"
//! (§IV-C.2). We model that injected volume as a Poisson process whose
//! rate follows the Table VI schedule: memoryless arrivals are the
//! standard model for the superposition of many independent clients.
//!
//! The sampler is schedule-agnostic — the experiment driver passes the
//! rate in force and handles rate-change points — so it stays free of
//! upward dependencies.

use ff_sim::{SimDuration, SimTime};
use rand::Rng;

/// Samples Poisson arrival gaps for the aggregate background load.
#[derive(Debug, Clone)]
pub struct PoissonArrivals<R: Rng> {
    rng: R,
}

impl<R: Rng> PoissonArrivals<R> {
    /// A sampler drawing gaps from `rng`.
    pub fn new(rng: R) -> Self {
        PoissonArrivals { rng }
    }

    /// The next arrival after `now` at `rate_per_sec`, or `None` when the
    /// rate is zero (the caller should re-poll at the next schedule step).
    pub fn next_after(&mut self, now: SimTime, rate_per_sec: f64) -> Option<SimTime> {
        assert!(
            rate_per_sec >= 0.0 && rate_per_sec.is_finite(),
            "rate must be finite and non-negative, got {rate_per_sec}"
        );
        if rate_per_sec == 0.0 {
            return None;
        }
        // Inverse-CDF exponential sampling; clamp u away from 0 so ln is finite.
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap_secs = -u.ln() / rate_per_sec;
        Some(now + SimDuration::from_secs_f64(gap_secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_sim::RngFactory;

    #[test]
    fn zero_rate_yields_no_arrival() {
        let mut p = PoissonArrivals::new(RngFactory::new(1).stream("bg"));
        assert_eq!(p.next_after(SimTime::ZERO, 0.0), None);
    }

    #[test]
    fn mean_gap_matches_rate() {
        let mut p = PoissonArrivals::new(RngFactory::new(2).stream("bg"));
        let rate = 120.0;
        let mut now = SimTime::ZERO;
        let n = 20_000;
        for _ in 0..n {
            now = p.next_after(now, rate).unwrap();
        }
        let mean_gap = now.as_secs_f64() / n as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean_gap - expected).abs() / expected < 0.03,
            "mean gap {mean_gap:.6}s vs expected {expected:.6}s"
        );
    }

    #[test]
    fn arrivals_are_strictly_after_now() {
        let mut p = PoissonArrivals::new(RngFactory::new(3).stream("bg"));
        let now = SimTime::from_secs(5);
        for _ in 0..1000 {
            let t = p.next_after(now, 1000.0).unwrap();
            assert!(t > now);
        }
    }

    #[test]
    fn same_seed_reproduces_arrivals() {
        let mut a = PoissonArrivals::new(RngFactory::new(4).stream("bg"));
        let mut b = PoissonArrivals::new(RngFactory::new(4).stream("bg"));
        let mut ta = SimTime::ZERO;
        let mut tb = SimTime::ZERO;
        for _ in 0..100 {
            ta = a.next_after(ta, 90.0).unwrap();
            tb = b.next_after(tb, 90.0).unwrap();
            assert_eq!(ta, tb);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        PoissonArrivals::new(RngFactory::new(5).stream("bg")).next_after(SimTime::ZERO, -1.0);
    }

    #[test]
    fn gap_variance_is_exponential_like() {
        // For Exp(λ), std = mean. Check coefficient of variation ≈ 1.
        let mut p = PoissonArrivals::new(RngFactory::new(6).stream("bg"));
        let rate = 50.0;
        let mut gaps = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..20_000 {
            let next = p.next_after(now, rate).unwrap();
            gaps.push((next - now).as_secs_f64());
            now = next;
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "coefficient of variation {cv:.3}");
    }
}
