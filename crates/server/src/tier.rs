//! The multi-server edge tier: routing and admission control.
//!
//! The paper's testbed has exactly one GPU server; ROADMAP item 2 grows
//! that into an N-server **tier** with two policy seams in front of the
//! per-server batching logic:
//!
//! * **Routing** ([`RoutingPolicy`]) decides *which* server a request
//!   reaches: static sharding by tenant id, join-shortest-queue over
//!   **stale gossiped** queue depths (refreshed at a configurable
//!   interval of the simulated clock, like a real gossip protocol), or
//!   power-of-two-choices sampling two servers from the experiment's
//!   RNG stream and picking the less loaded.
//! * **Admission** ([`AdmissionPolicy`]) decides whether a request gets
//!   in at all: admit-all, or a per-tenant **token bucket** (rate +
//!   burst, refilled lazily on the simulated clock) — the framing of
//!   Chakrabarti et al. (token-bucket constrained offloading) as the
//!   server-side alternative to the paper's device-side PD loop.
//!
//! A single-server tier ([`ServerTier::single`]) is the degenerate case:
//! no routing draw, no gossip, no buckets touched — its observable
//! behaviour is bit-identical to driving the wrapped [`EdgeServer`]
//! directly, which is what keeps every pre-tier experiment reproducible.
//!
//! Liveness is per server: [`ServerTier::crash`] folds the PR-1 crash
//! machinery in at tier scale (queue and running batch lost, epoch
//! bumped so stale batch-done events are discarded), enabling
//! rolling-restart scenarios where shards go down one at a time.

use crate::policy::OverflowPolicy;
use crate::server::{BatchOutput, EdgeServer, Request, ServerStats, Submit, TenantId};
use ff_models::GpuProfile;
use ff_sim::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Serializable description of one server in the tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// GPU profile (batch limit; drives the affine latency model).
    pub gpu: GpuProfile,
    /// Overflow policy at batch formation.
    #[serde(default)]
    pub policy: OverflowPolicy,
}

/// How the tier picks a server for an admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// `tenant id mod N` — deterministic sharding, no feedback. A down
    /// shard loses its tenants' requests (no failover), which is exactly
    /// the single-server outage semantics when N = 1.
    #[default]
    StaticShard,
    /// Route to the server with the shortest queue **as of the last
    /// gossip snapshot** — depths refresh only every `gossip_interval`,
    /// so decisions run on stale information like a real gossip mesh.
    /// Ties break to the lowest server index.
    JoinShortestQueue {
        /// How often queue-depth gossip refreshes (simulated clock).
        gossip_interval: SimDuration,
    },
    /// Sample two distinct live servers from the experiment RNG stream
    /// and pick the one with the smaller instantaneous load (queued +
    /// in-batch requests). Ties break to the lower index.
    PowerOfTwoChoices,
}

/// Whether a request is allowed into the tier at all.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Every request is admitted (the paper's implicit behaviour).
    #[default]
    AdmitAll,
    /// Per-tenant token bucket: a request spends one token; tokens
    /// refill at `rate_rps` up to `burst`, on the simulated clock.
    /// Requests arriving to an empty bucket are rejected at the door
    /// (the sender sees a server-load rejection).
    TokenBucket {
        /// Sustained admitted rate per tenant, in requests per second.
        rate_rps: f64,
        /// Bucket capacity: the largest admissible burst. Buckets start
        /// full.
        burst: f64,
    },
}

/// Serializable configuration of a whole tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierConfig {
    /// One spec per server; heterogeneous capacities are fine.
    pub servers: Vec<ServerSpec>,
    /// Device→server routing policy.
    #[serde(default)]
    pub routing: RoutingPolicy,
    /// Tier-front admission policy.
    #[serde(default)]
    pub admission: AdmissionPolicy,
}

impl TierConfig {
    /// A single-server tier — the legacy shape of every pre-tier config.
    pub fn single(gpu: GpuProfile, policy: OverflowPolicy) -> Self {
        TierConfig {
            servers: vec![ServerSpec { gpu, policy }],
            routing: RoutingPolicy::StaticShard,
            admission: AdmissionPolicy::AdmitAll,
        }
    }

    /// `n` identical servers with the given spec.
    pub fn uniform(n: usize, spec: ServerSpec) -> Self {
        TierConfig {
            servers: vec![spec; n],
            routing: RoutingPolicy::StaticShard,
            admission: AdmissionPolicy::AdmitAll,
        }
    }

    /// Panic on nonsensical parameters (empty tier, non-positive token
    /// rate, zero-capacity bucket, zero gossip interval).
    pub fn validate(&self) {
        assert!(!self.servers.is_empty(), "tier needs at least one server");
        if let AdmissionPolicy::TokenBucket { rate_rps, burst } = self.admission {
            assert!(
                rate_rps.is_finite() && rate_rps > 0.0,
                "token bucket rate must be finite and positive"
            );
            assert!(
                burst.is_finite() && burst >= 1.0,
                "token bucket burst must hold at least one token"
            );
        }
        if let RoutingPolicy::JoinShortestQueue { gossip_interval } = self.routing {
            assert!(
                gossip_interval > SimDuration::ZERO,
                "gossip interval must be positive"
            );
        }
    }
}

/// What happened when a request was offered to the tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierSubmit {
    /// The admission policy turned the request away at the door; no
    /// server ever saw it.
    AdmissionRejected,
    /// The routed server is down (or the whole tier is): the request
    /// vanishes, exactly like a submission to a crashed process. No
    /// counters move.
    Lost,
    /// Queued behind server `server`'s executing batch.
    Queued {
        /// Index of the server that queued the request.
        server: usize,
    },
    /// Server `server` was idle and started a batch — the caller must
    /// schedule its batch-done event, keyed by that server's current
    /// epoch.
    BatchStarted {
        /// Index of the server that started the batch.
        server: usize,
        /// Completion instant of the started batch.
        done_at: SimTime,
    },
}

#[derive(Debug, Clone, Copy)]
struct TokenBucketState {
    tokens: f64,
    last: SimTime,
}

/// N heterogeneous [`EdgeServer`]s behind one routing + admission front.
///
/// Passive like the servers it owns: `submit` may start a batch (the
/// caller schedules its completion, tagged with the server index and
/// epoch), and `batch_done_into` drives one server's batch pipeline.
pub struct ServerTier {
    servers: Vec<EdgeServer>,
    up: Vec<bool>,
    epochs: Vec<u64>,
    routing: RoutingPolicy,
    admission: AdmissionPolicy,
    /// Stale queue-depth snapshot for JSQ (refreshed at the gossip
    /// interval, never on demand).
    gossip: Vec<usize>,
    gossip_next: SimTime,
    buckets: BTreeMap<TenantId, TokenBucketState>,
    admission_rejections_by_tenant: BTreeMap<TenantId, u64>,
    admission_rejections_total: u64,
    /// Scratch list of live server indices (reused across submits).
    candidates: Vec<usize>,
}

impl ServerTier {
    /// Build a tier from its serializable configuration.
    pub fn new(config: &TierConfig) -> Self {
        config.validate();
        let n = config.servers.len();
        ServerTier {
            servers: config
                .servers
                .iter()
                .map(|s| EdgeServer::with_policy(s.gpu, s.policy))
                .collect(),
            up: vec![true; n],
            epochs: vec![0; n],
            routing: config.routing,
            admission: config.admission,
            gossip: vec![0; n],
            gossip_next: SimTime::ZERO,
            buckets: BTreeMap::new(),
            admission_rejections_by_tenant: BTreeMap::new(),
            admission_rejections_total: 0,
            candidates: Vec::with_capacity(n),
        }
    }

    /// The legacy single-server tier (reject-newest default policy).
    pub fn single(gpu: GpuProfile) -> Self {
        Self::new(&TierConfig::single(gpu, OverflowPolicy::default()))
    }

    /// The legacy single-server tier with an explicit overflow policy.
    pub fn single_with_policy(gpu: GpuProfile, policy: OverflowPolicy) -> Self {
        Self::new(&TierConfig::single(gpu, policy))
    }

    /// Number of servers in the tier.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when the tier holds no servers (never, post-validate).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The routing policy in force.
    pub fn routing(&self) -> RoutingPolicy {
        self.routing
    }

    /// The admission policy in force.
    pub fn admission(&self) -> AdmissionPolicy {
        self.admission
    }

    /// Borrow one server (telemetry, assertions).
    pub fn server(&self, i: usize) -> &EdgeServer {
        &self.servers[i]
    }

    /// Whether server `i` is currently up.
    pub fn is_up(&self, i: usize) -> bool {
        self.up[i]
    }

    /// Server `i`'s crash epoch: batch-done events scheduled under an
    /// older epoch belong to a process that no longer exists and must
    /// be discarded by the caller.
    pub fn epoch(&self, i: usize) -> u64 {
        self.epochs[i]
    }

    /// Crash server `i`: its queue and running batch are lost, its
    /// epoch advances, and routing stops sending it traffic until
    /// [`recover`](Self::recover).
    pub fn crash(&mut self, i: usize) {
        self.servers[i].crash();
        self.up[i] = false;
        self.epochs[i] += 1;
    }

    /// Bring server `i` back (a fresh process: empty queue, idle GPU).
    pub fn recover(&mut self, i: usize) {
        self.up[i] = true;
    }

    /// Offer a request to the tier. `regulated` says whether the
    /// admission policy applies (device frames) or not (probes and
    /// modeled background load, which the tier does not police). The
    /// RNG is the experiment's routing stream; it is consumed **only**
    /// by [`RoutingPolicy::PowerOfTwoChoices`] with two or more live
    /// servers, so single-server tiers never advance it.
    pub fn submit<R: Rng>(
        &mut self,
        now: SimTime,
        request: Request,
        regulated: bool,
        rng: &mut R,
    ) -> TierSubmit {
        if regulated && !self.admit(now, request.tenant) {
            self.admission_rejections_total += 1;
            *self
                .admission_rejections_by_tenant
                .entry(request.tenant)
                .or_default() += 1;
            return TierSubmit::AdmissionRejected;
        }
        let Some(target) = self.route(now, request.tenant, rng) else {
            return TierSubmit::Lost;
        };
        match self.servers[target].submit(now, request) {
            Submit::Queued => TierSubmit::Queued { server: target },
            Submit::BatchStarted { done_at } => TierSubmit::BatchStarted {
                server: target,
                done_at,
            },
        }
    }

    /// Drive server `server`'s batch-done transition (see
    /// [`EdgeServer::batch_done_into`]). The caller re-schedules
    /// `out.next_done` under the same server index and current epoch.
    pub fn batch_done_into(&mut self, server: usize, now: SimTime, out: &mut BatchOutput) {
        self.servers[server].batch_done_into(now, out);
    }

    fn admit(&mut self, now: SimTime, tenant: TenantId) -> bool {
        match self.admission {
            AdmissionPolicy::AdmitAll => true,
            AdmissionPolicy::TokenBucket { rate_rps, burst } => {
                let bucket = self.buckets.entry(tenant).or_insert(TokenBucketState {
                    tokens: burst,
                    last: SimTime::ZERO,
                });
                let dt = now.saturating_since(bucket.last).as_secs_f64();
                bucket.tokens = (bucket.tokens + rate_rps * dt).min(burst);
                bucket.last = now;
                if bucket.tokens >= 1.0 {
                    bucket.tokens -= 1.0;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn route<R: Rng>(&mut self, now: SimTime, tenant: TenantId, rng: &mut R) -> Option<usize> {
        let n = self.servers.len();
        if n == 1 {
            // The legacy path: no draw, no gossip, no scan.
            return self.up[0].then_some(0);
        }
        match self.routing {
            RoutingPolicy::StaticShard => {
                let target = tenant.0 as usize % n;
                self.up[target].then_some(target)
            }
            RoutingPolicy::JoinShortestQueue { gossip_interval } => {
                if now >= self.gossip_next {
                    for (depth, server) in self.gossip.iter_mut().zip(&self.servers) {
                        *depth = server.queue_len();
                    }
                    self.gossip_next = now + gossip_interval;
                }
                let mut best: Option<(usize, usize)> = None; // (depth, index)
                for i in 0..n {
                    if !self.up[i] {
                        continue;
                    }
                    let depth = self.gossip[i];
                    match best {
                        Some((bd, _)) if bd <= depth => {}
                        _ => best = Some((depth, i)),
                    }
                }
                best.map(|(_, i)| i)
            }
            RoutingPolicy::PowerOfTwoChoices => {
                self.candidates.clear();
                for i in 0..n {
                    if self.up[i] {
                        self.candidates.push(i);
                    }
                }
                match self.candidates.len() {
                    0 => None,
                    1 => Some(self.candidates[0]),
                    m => {
                        // Two distinct draws from the routing stream.
                        let first = rng.gen_range(0..m);
                        let mut second = rng.gen_range(0..m - 1);
                        if second >= first {
                            second += 1;
                        }
                        let (a, b) = (self.candidates[first], self.candidates[second]);
                        let load = |i: usize| {
                            self.servers[i].queue_len()
                                + self.servers[i].running_batch_size().unwrap_or(0)
                        };
                        let (la, lb) = (load(a), load(b));
                        // Less loaded wins; ties break to the lower
                        // index so the draw order cannot leak into the
                        // decision.
                        Some(if (lb, b) < (la, a) { b } else { a })
                    }
                }
            }
        }
    }

    /// Aggregate counters over every server (admission rejections are
    /// tracked separately — see
    /// [`admission_rejections`](Self::admission_rejections)).
    pub fn total_stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for s in &self.servers {
            let st = s.stats();
            total.requests_received += st.requests_received;
            total.completions += st.completions;
            total.rejections += st.rejections;
            total.batches_executed += st.batches_executed;
            total.batched_frames += st.batched_frames;
            total.full_batches += st.full_batches;
        }
        total
    }

    /// Per-server counters, in server-index order.
    pub fn per_server_stats(&self) -> Vec<ServerStats> {
        self.servers.iter().map(EdgeServer::stats).collect()
    }

    /// Requests turned away by the admission policy, total.
    pub fn admission_rejections(&self) -> u64 {
        self.admission_rejections_total
    }

    /// Requests turned away by the admission policy, for one tenant.
    pub fn admission_rejections_for(&self, tenant: TenantId) -> u64 {
        self.admission_rejections_by_tenant
            .get(&tenant)
            .copied()
            .unwrap_or(0)
    }

    /// One tenant's rejections across the whole tier: batch-formation
    /// overflow on every server plus admission rejections at the door.
    pub fn rejections_for(&self, tenant: TenantId) -> u64 {
        self.servers
            .iter()
            .map(|s| s.rejections_by_tenant().get(&tenant).copied().unwrap_or(0))
            .sum::<u64>()
            + self.admission_rejections_for(tenant)
    }

    /// One tenant's completed inferences across the whole tier.
    pub fn completions_for(&self, tenant: TenantId) -> u64 {
        self.servers
            .iter()
            .map(|s| s.completions_by_tenant().get(&tenant).copied().unwrap_or(0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_models::ModelKind;
    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn req(tenant: u32, at: SimTime, tag: u64) -> Request {
        Request {
            tenant: TenantId(tenant),
            model: ModelKind::MobileNetV3Small,
            submitted_at: at,
            tag,
        }
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    fn uniform(n: usize) -> TierConfig {
        TierConfig::uniform(n, ServerSpec::default())
    }

    #[test]
    fn single_tier_is_bit_identical_to_a_bare_server() {
        let mut tier = ServerTier::single(GpuProfile::default());
        let mut bare = EdgeServer::new(GpuProfile::default());
        let mut r = rng();
        let before = r.clone();
        let mut out = BatchOutput::default();
        let mut tier_done: Option<SimTime> = None;
        let mut bare_done: Option<SimTime> = None;
        for round in 0..30u64 {
            let t = SimTime::from_millis(round * 9);
            for tag in 0..8u64 {
                let request = req((tag % 3) as u32, t, round * 100 + tag);
                let ts = tier.submit(t, request, true, &mut r);
                let bs = bare.submit(t, request);
                match (ts, bs) {
                    (TierSubmit::Queued { server: 0 }, Submit::Queued) => {}
                    (
                        TierSubmit::BatchStarted { server: 0, done_at },
                        Submit::BatchStarted { done_at: d },
                    ) => {
                        assert_eq!(done_at, d);
                        tier_done = Some(done_at);
                        bare_done = Some(d);
                    }
                    other => panic!("diverged: {other:?}"),
                }
            }
            if let (Some(td), Some(bd)) = (tier_done.take(), bare_done.take()) {
                assert_eq!(td, bd);
                tier.batch_done_into(0, td, &mut out);
                let (c, rj, next) = bare.on_batch_done(bd);
                assert_eq!(c, out.completions);
                assert_eq!(rj, out.rejections);
                assert_eq!(next, out.next_done);
                tier_done = out.next_done;
                bare_done = next;
            }
        }
        assert_eq!(tier.total_stats(), bare.stats());
        let mut untouched = before;
        assert_eq!(
            r.next_u64(),
            untouched.next_u64(),
            "single-server tier must never advance the routing stream"
        );
    }

    #[test]
    fn static_shard_routes_by_tenant_id() {
        let mut tier = ServerTier::new(&uniform(3));
        let mut r = rng();
        let t = SimTime::ZERO;
        for tenant in 0..6u32 {
            match tier.submit(t, req(tenant, t, tenant as u64), true, &mut r) {
                TierSubmit::Queued { server } | TierSubmit::BatchStarted { server, .. } => {
                    assert_eq!(server, tenant as usize % 3)
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn static_shard_loses_requests_to_a_down_shard() {
        let mut config = uniform(2);
        config.routing = RoutingPolicy::StaticShard;
        let mut tier = ServerTier::new(&config);
        tier.crash(1);
        let mut r = rng();
        let t = SimTime::ZERO;
        assert!(matches!(
            tier.submit(t, req(0, t, 1), true, &mut r),
            TierSubmit::BatchStarted { server: 0, .. }
        ));
        assert_eq!(tier.submit(t, req(1, t, 2), true, &mut r), TierSubmit::Lost);
        // Lost requests never touch any server's counters.
        assert_eq!(tier.total_stats().requests_received, 1);
        tier.recover(1);
        assert!(matches!(
            tier.submit(t, req(1, t, 3), true, &mut r),
            TierSubmit::BatchStarted { server: 1, .. }
        ));
    }

    #[test]
    fn crash_bumps_the_epoch_and_clears_the_queue() {
        let mut tier = ServerTier::new(&uniform(2));
        let mut r = rng();
        let t = SimTime::ZERO;
        tier.submit(t, req(0, t, 1), true, &mut r);
        tier.submit(t, req(0, t, 2), true, &mut r);
        assert_eq!(tier.epoch(0), 0);
        tier.crash(0);
        assert_eq!(tier.epoch(0), 1);
        assert!(!tier.is_up(0));
        assert_eq!(tier.server(0).queue_len(), 0);
        assert!(!tier.server(0).busy());
        assert_eq!(tier.epoch(1), 0, "other servers keep their epochs");
    }

    #[test]
    fn jsq_routes_on_stale_gossip_until_the_interval_elapses() {
        let mut config = uniform(2);
        config.routing = RoutingPolicy::JoinShortestQueue {
            gossip_interval: SimDuration::from_secs(1),
        };
        let mut tier = ServerTier::new(&config);
        let mut r = rng();
        let t = SimTime::ZERO;
        // First submit snapshots (0, 0) depths, tie → server 0, which
        // starts a batch (queue stays 0). Pile more on: the snapshot is
        // stale, so everything keeps landing on server 0 and queues up.
        for tag in 0..4u64 {
            match tier.submit(t, req(0, t, tag), true, &mut r) {
                TierSubmit::Queued { server } | TierSubmit::BatchStarted { server, .. } => {
                    assert_eq!(server, 0, "stale gossip pins routing to server 0")
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(tier.server(0).queue_len(), 3);
        // After the gossip interval the refreshed depths (3 vs 0) shift
        // traffic to server 1.
        let later = SimTime::from_millis(1_500);
        match tier.submit(later, req(0, later, 99), true, &mut r) {
            TierSubmit::Queued { server } | TierSubmit::BatchStarted { server, .. } => {
                assert_eq!(server, 1, "fresh gossip reroutes to the empty server")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn power_of_two_choices_picks_the_less_loaded_sample() {
        let mut config = uniform(2);
        config.routing = RoutingPolicy::PowerOfTwoChoices;
        let mut tier = ServerTier::new(&config);
        let mut r = rng();
        let t = SimTime::ZERO;
        // With both empty the tie breaks to the lower index of the two
        // sampled servers — with N = 2 the sample is always {0, 1}.
        assert!(matches!(
            tier.submit(t, req(0, t, 1), true, &mut r),
            TierSubmit::BatchStarted { server: 0, .. }
        ));
        // Server 0 now has a running batch (load 1): the next request
        // must land on the empty server 1 regardless of draw order.
        assert!(matches!(
            tier.submit(t, req(0, t, 2), true, &mut r),
            TierSubmit::BatchStarted { server: 1, .. }
        ));
    }

    #[test]
    fn power_of_two_skips_down_servers() {
        let mut config = uniform(3);
        config.routing = RoutingPolicy::PowerOfTwoChoices;
        let mut tier = ServerTier::new(&config);
        tier.crash(0);
        tier.crash(2);
        let mut r = rng();
        let before = r.clone();
        let t = SimTime::ZERO;
        // Exactly one live server: routed without consuming the stream.
        assert!(matches!(
            tier.submit(t, req(0, t, 1), true, &mut r),
            TierSubmit::BatchStarted { server: 1, .. }
        ));
        let mut untouched = before;
        assert_eq!(r.next_u64(), untouched.next_u64());
        tier.crash(1);
        assert_eq!(
            tier.submit(t, req(0, t, 2), true, &mut r),
            TierSubmit::Lost,
            "a fully-down tier loses everything"
        );
    }

    #[test]
    fn token_bucket_rejects_past_the_burst_and_refills_on_the_clock() {
        let mut config = uniform(1);
        config.admission = AdmissionPolicy::TokenBucket {
            rate_rps: 10.0,
            burst: 3.0,
        };
        let mut tier = ServerTier::new(&config);
        let mut r = rng();
        let t = SimTime::ZERO;
        for tag in 0..3u64 {
            assert_ne!(
                tier.submit(t, req(0, t, tag), true, &mut r),
                TierSubmit::AdmissionRejected,
                "burst capacity admits the first three"
            );
        }
        assert_eq!(
            tier.submit(t, req(0, t, 3), true, &mut r),
            TierSubmit::AdmissionRejected,
            "the bucket is empty"
        );
        assert_eq!(tier.admission_rejections(), 1);
        assert_eq!(tier.admission_rejections_for(TenantId(0)), 1);
        // 100 ms at 10 tokens/s refills exactly one token.
        let later = SimTime::from_millis(100);
        assert_ne!(
            tier.submit(later, req(0, later, 4), true, &mut r),
            TierSubmit::AdmissionRejected
        );
        assert_eq!(
            tier.submit(later, req(0, later, 5), true, &mut r),
            TierSubmit::AdmissionRejected
        );
        // Rejected requests never reach a server.
        assert_eq!(tier.total_stats().requests_received, 4);
    }

    #[test]
    fn buckets_are_per_tenant_and_unregulated_traffic_bypasses_them() {
        let mut config = uniform(1);
        config.admission = AdmissionPolicy::TokenBucket {
            rate_rps: 1.0,
            burst: 1.0,
        };
        let mut tier = ServerTier::new(&config);
        let mut r = rng();
        let t = SimTime::ZERO;
        assert_ne!(
            tier.submit(t, req(0, t, 1), true, &mut r),
            TierSubmit::AdmissionRejected
        );
        assert_eq!(
            tier.submit(t, req(0, t, 2), true, &mut r),
            TierSubmit::AdmissionRejected,
            "tenant 0 spent its only token"
        );
        assert_ne!(
            tier.submit(t, req(1, t, 3), true, &mut r),
            TierSubmit::AdmissionRejected,
            "tenant 1 has its own bucket"
        );
        // Probes and background load pass `regulated = false`.
        assert_ne!(
            tier.submit(t, req(0, t, 4), false, &mut r),
            TierSubmit::AdmissionRejected,
            "unregulated traffic is never policed"
        );
        assert_eq!(tier.rejections_for(TenantId(0)), 1);
    }

    #[test]
    fn tier_config_round_trips_through_json() {
        let config = TierConfig {
            servers: vec![
                ServerSpec {
                    gpu: GpuProfile { batch_limit: 15 },
                    policy: OverflowPolicy::FairShare,
                },
                ServerSpec {
                    gpu: GpuProfile { batch_limit: 4 },
                    policy: OverflowPolicy::RejectNewest,
                },
            ],
            routing: RoutingPolicy::JoinShortestQueue {
                gossip_interval: SimDuration::from_millis(500),
            },
            admission: AdmissionPolicy::TokenBucket {
                rate_rps: 14.0,
                burst: 14.0,
            },
        };
        let body = serde_json::to_string(&config).unwrap();
        let back: TierConfig = serde_json::from_str(&body).unwrap();
        assert_eq!(config, back);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_tier_is_rejected() {
        ServerTier::new(&TierConfig {
            servers: vec![],
            routing: RoutingPolicy::StaticShard,
            admission: AdmissionPolicy::AdmitAll,
        });
    }

    #[test]
    #[should_panic(expected = "burst must hold at least one token")]
    fn zero_burst_bucket_is_rejected() {
        let mut config = uniform(1);
        config.admission = AdmissionPolicy::TokenBucket {
            rate_rps: 5.0,
            burst: 0.5,
        };
        ServerTier::new(&config);
    }
}
