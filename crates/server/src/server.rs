//! The multi-tenant edge inference server (§II-A, §IV-A).
//!
//! Implements the paper's adaptive batching scheme verbatim:
//!
//! > "construct a batch using all frames (to a limit) that arrived while
//! >  executing the previous batch. We maintain a request queue that is
//! >  filled during the execution of a batch, and we fill the next batch
//! >  with the contents of this queue. [...] we impose a limit of 15
//! >  frames for each batch, while rejecting the rest in the queue."
//!
//! The GPU executes one batch at a time; batch latency follows the
//! affine [`GpuProfile`] model. Multi-tenant contention therefore emerges
//! exactly as in the paper: more offered load → larger batches → longer
//! batch latency → longer queue waits → deadline violations, and past
//! saturation → rejections at batch-formation time (`T_l`).
//!
//! The server is a passive state machine driven by the simulation's event
//! loop: `submit` may start a batch (returning its completion instant to
//! schedule), and `on_batch_done` returns finished requests plus the next
//! batch's completion instant.

use crate::policy::OverflowPolicy;
use ff_models::{GpuProfile, ModelKind};
use ff_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Identifies one client device (tenant) of the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TenantId(pub u32);

/// One inference request as the server sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The submitting client device.
    pub tenant: TenantId,
    /// Which classification model to run.
    pub model: ModelKind,
    /// Arrival instant at the server.
    pub submitted_at: SimTime,
    /// Caller-defined correlation tag (the device uses its frame id).
    pub tag: u64,
}

/// A finished inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request that finished.
    pub request: Request,
    /// Batch-completion instant at the server.
    pub completed_at: SimTime,
    /// Size of the batch this request ran in (for reporting).
    pub batch_size: usize,
}

/// A request rejected at batch-formation time (queue overflow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// The request that was turned away.
    pub request: Request,
    /// Batch-formation instant at which the overflow was rejected.
    pub rejected_at: SimTime,
}

/// What happened when a request was submitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submit {
    /// Queued behind the executing batch.
    Queued,
    /// The GPU was idle: a batch started immediately — the caller must
    /// schedule a batch-done event.
    BatchStarted {
        /// Completion instant of the batch that just started.
        done_at: SimTime,
    },
}

/// Aggregate server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests submitted to the server.
    pub requests_received: u64,
    /// Requests that ran to completion.
    pub completions: u64,
    /// Requests rejected at batch formation (queue overflow).
    pub rejections: u64,
    /// Batches the GPU executed.
    pub batches_executed: u64,
    /// Sum of batch sizes, for mean-batch-size reporting.
    pub batched_frames: u64,
    /// Batches that hit the size cap.
    pub full_batches: u64,
}

impl ServerStats {
    /// Mean batch size over the run.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_executed == 0 {
            return 0.0;
        }
        self.batched_frames as f64 / self.batches_executed as f64
    }
}

struct RunningBatch {
    model: ModelKind,
    requests: Vec<Request>,
    done_at: SimTime,
}

/// Reusable output buffers for [`EdgeServer::batch_done_into`]: the
/// batch-done hot path fills these instead of allocating fresh vectors
/// per batch. Hold one per server and pass it to every call; the
/// buffers are cleared (keeping capacity) on entry.
#[derive(Debug, Default)]
pub struct BatchOutput {
    /// Requests that finished in the completed batch.
    pub completions: Vec<Completion>,
    /// Queue overflow rejected at batch-formation time.
    pub rejections: Vec<Rejection>,
    /// Completion instant of the next batch, if one started.
    pub next_done: Option<SimTime>,
}

/// The GPU-equipped edge server.
pub struct EdgeServer {
    gpu: GpuProfile,
    policy: OverflowPolicy,
    queue: VecDeque<Request>,
    running: Option<RunningBatch>,
    stats: ServerStats,
    completions_by_tenant: BTreeMap<TenantId, u64>,
    rejections_by_tenant: BTreeMap<TenantId, u64>,
    /// Recycled batch-request buffer (the previous batch's vector).
    spare_requests: Vec<Request>,
    /// Recycled overflow-victim buffer for `drain_overflow_into`.
    victim_scratch: Vec<Request>,
}

impl EdgeServer {
    /// A server with the paper's default reject-newest overflow policy.
    pub fn new(gpu: GpuProfile) -> Self {
        Self::with_policy(gpu, OverflowPolicy::default())
    }

    /// A server with an explicit overflow policy (see `OverflowPolicy`).
    pub fn with_policy(gpu: GpuProfile, policy: OverflowPolicy) -> Self {
        EdgeServer {
            gpu,
            policy,
            queue: VecDeque::new(),
            running: None,
            stats: ServerStats::default(),
            completions_by_tenant: BTreeMap::new(),
            rejections_by_tenant: BTreeMap::new(),
            spare_requests: Vec::new(),
            victim_scratch: Vec::new(),
        }
    }

    /// The active overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Completed inferences per tenant, for fairness accounting.
    /// Ordered by tenant id so report serialization is reproducible.
    pub fn completions_by_tenant(&self) -> &BTreeMap<TenantId, u64> {
        &self.completions_by_tenant
    }

    /// Rejections per tenant, for fairness accounting.
    /// Ordered by tenant id so report serialization is reproducible.
    pub fn rejections_by_tenant(&self) -> &BTreeMap<TenantId, u64> {
        &self.rejections_by_tenant
    }

    /// The GPU profile the server runs on.
    pub fn gpu(&self) -> GpuProfile {
        self.gpu
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Requests currently waiting (not in the running batch).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether a batch is executing right now.
    pub fn busy(&self) -> bool {
        self.running.is_some()
    }

    /// Simulate an abrupt process crash: the queue and any running batch
    /// are lost — from the clients' view those requests simply vanish
    /// (no completion, no rejection). Cumulative statistics survive, as
    /// they describe the run, not the process. The caller is responsible
    /// for discarding any batch-done event it scheduled for the lost
    /// batch.
    pub fn crash(&mut self) {
        self.queue.clear();
        self.running = None;
    }

    /// Offer a request. If the GPU is idle the request forms a batch and
    /// starts immediately; otherwise it waits for the current batch.
    pub fn submit(&mut self, now: SimTime, request: Request) -> Submit {
        assert!(
            request.submitted_at <= now,
            "request submitted in the future"
        );
        self.stats.requests_received += 1;
        self.queue.push_back(request);
        if self.running.is_none() {
            let done_at = self
                .form_and_start_batch(now)
                .expect("queue is non-empty, a batch must form");
            Submit::BatchStarted { done_at }
        } else {
            Submit::Queued
        }
    }

    /// The caller's batch-done event fired: collect completions, form the
    /// next batch from the queue (rejecting the overflow), and return the
    /// next batch's completion instant if one started.
    ///
    /// Allocates fresh output vectors per call; event-loop hot paths
    /// should prefer [`batch_done_into`](Self::batch_done_into) with a
    /// reused [`BatchOutput`].
    pub fn on_batch_done(
        &mut self,
        now: SimTime,
    ) -> (Vec<Completion>, Vec<Rejection>, Option<SimTime>) {
        let mut out = BatchOutput::default();
        self.batch_done_into(now, &mut out);
        (out.completions, out.rejections, out.next_done)
    }

    /// Allocation-free variant of [`on_batch_done`](Self::on_batch_done):
    /// fills the caller's reused buffers (cleared on entry) instead of
    /// returning fresh vectors. Behaviour is otherwise identical.
    pub fn batch_done_into(&mut self, now: SimTime, out: &mut BatchOutput) {
        out.completions.clear();
        out.rejections.clear();
        out.next_done = None;
        let mut batch = self
            .running
            .take()
            .expect("on_batch_done called with no running batch");
        assert_eq!(
            batch.done_at, now,
            "batch-done event fired at the wrong instant"
        );
        let size = batch.requests.len();
        out.completions
            .extend(batch.requests.drain(..).map(|request| Completion {
                request,
                completed_at: now,
                batch_size: size,
            }));
        // Recycle the drained batch buffer for the next formation.
        self.spare_requests = batch.requests;
        self.stats.completions += out.completions.len() as u64;
        for c in &out.completions {
            *self
                .completions_by_tenant
                .entry(c.request.tenant)
                .or_default() += 1;
        }

        // Paper scheme: next batch = queue contents up to the limit; the
        // remainder is rejected.
        self.drain_overflow_into(now, &mut out.rejections);
        out.next_done = self.form_and_start_batch(now);
    }

    fn drain_overflow_into(&mut self, now: SimTime, out: &mut Vec<Rejection>) {
        let limit = self.gpu.batch_limit;
        let mut victims = std::mem::take(&mut self.victim_scratch);
        victims.clear();
        self.policy
            .drain_overflow_into(&mut self.queue, limit, &mut victims);
        self.stats.rejections += victims.len() as u64;
        for v in &victims {
            *self.rejections_by_tenant.entry(v.tenant).or_default() += 1;
        }
        out.extend(victims.drain(..).map(|request| Rejection {
            request,
            rejected_at: now,
        }));
        self.victim_scratch = victims;
    }

    fn form_and_start_batch(&mut self, now: SimTime) -> Option<SimTime> {
        if self.queue.is_empty() {
            return None;
        }
        debug_assert!(self.running.is_none(), "GPU already busy");
        // Single-model batches: take queued requests of the front request's
        // model (preserving FIFO order across models). One rotation of the
        // queue keeps survivors in FIFO order without allocating a
        // replacement deque.
        let model = self.queue.front().expect("non-empty").model;
        let limit = self.gpu.batch_limit;
        let mut requests = std::mem::take(&mut self.spare_requests);
        requests.clear();
        for _ in 0..self.queue.len() {
            let r = self.queue.pop_front().expect("length checked");
            if r.model == model && requests.len() < limit {
                requests.push(r);
            } else {
                self.queue.push_back(r);
            }
        }

        let latency_ms = self.gpu.batch_latency_ms(model, requests.len());
        let done_at = now + SimDuration::from_secs_f64(latency_ms / 1_000.0);
        self.stats.batches_executed += 1;
        self.stats.batched_frames += requests.len() as u64;
        if requests.len() == limit {
            self.stats.full_batches += 1;
        }
        self.running = Some(RunningBatch {
            model,
            requests,
            done_at,
        });
        Some(done_at)
    }

    /// Model of the batch currently executing, if any.
    pub fn running_model(&self) -> Option<ModelKind> {
        self.running.as_ref().map(|b| b.model)
    }

    /// Size of the batch currently executing, if any.
    pub fn running_batch_size(&self) -> Option<usize> {
        self.running.as_ref().map(|b| b.requests.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tenant: u32, at: SimTime, tag: u64) -> Request {
        Request {
            tenant: TenantId(tenant),
            model: ModelKind::MobileNetV3Small,
            submitted_at: at,
            tag,
        }
    }

    fn server() -> EdgeServer {
        EdgeServer::new(GpuProfile::default())
    }

    #[test]
    fn crash_loses_work_in_progress_but_keeps_stats() {
        let mut s = server();
        s.submit(SimTime::ZERO, req(0, SimTime::ZERO, 1));
        s.submit(SimTime::ZERO, req(0, SimTime::ZERO, 2));
        assert!(s.busy());
        assert_eq!(s.queue_len(), 1);

        s.crash();
        assert!(!s.busy());
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.stats().requests_received, 2, "counters survive the crash");
        assert_eq!(s.stats().completions, 0, "lost requests never complete");

        // A restarted server accepts work immediately.
        let at = SimTime::from_millis(100);
        let out = s.submit(at, req(0, at, 3));
        assert!(matches!(out, Submit::BatchStarted { .. }));
    }

    #[test]
    fn idle_server_starts_batch_immediately() {
        let mut s = server();
        let out = s.submit(SimTime::ZERO, req(0, SimTime::ZERO, 1));
        let Submit::BatchStarted { done_at } = out else {
            panic!("expected immediate batch start");
        };
        // Batch of 1: 40 + 4.3 ms.
        assert_eq!(done_at.as_millis(), 44);
        assert!(s.busy());
        assert_eq!(s.running_batch_size(), Some(1));
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn requests_during_execution_form_the_next_batch() {
        let mut s = server();
        let Submit::BatchStarted { done_at } = s.submit(SimTime::ZERO, req(0, SimTime::ZERO, 0))
        else {
            panic!()
        };
        // Three more arrive while the batch runs.
        for tag in 1..=3 {
            let t = SimTime::from_millis(10 * tag);
            assert_eq!(s.submit(t, req(0, t, tag)), Submit::Queued);
        }
        let (completions, rejections, next) = s.on_batch_done(done_at);
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].request.tag, 0);
        assert!(rejections.is_empty());
        let next = next.expect("queued requests start the next batch");
        // Batch of 3: 40 + 3*4.3 = 52.9 ms after done_at.
        assert_eq!((next - done_at).as_millis(), 52);
        assert_eq!(s.running_batch_size(), Some(3));
    }

    #[test]
    fn overflow_beyond_batch_limit_is_rejected() {
        let mut s = server();
        let Submit::BatchStarted { done_at } = s.submit(SimTime::ZERO, req(0, SimTime::ZERO, 0))
        else {
            panic!()
        };
        // 20 requests arrive during execution; limit is 15.
        for tag in 1..=20 {
            let t = SimTime::from_millis(tag);
            s.submit(t, req(0, t, tag));
        }
        let (_, rejections, next) = s.on_batch_done(done_at);
        assert_eq!(rejections.len(), 5, "20 queued − 15 kept = 5 rejected");
        // Newest requests are the rejected ones.
        let mut rejected_tags: Vec<u64> = rejections.iter().map(|r| r.request.tag).collect();
        rejected_tags.sort_unstable();
        assert_eq!(rejected_tags, vec![16, 17, 18, 19, 20]);
        assert!(next.is_some());
        assert_eq!(s.running_batch_size(), Some(15));
        assert_eq!(s.stats().rejections, 5);
    }

    #[test]
    fn batch_latency_scales_with_size() {
        let mut s = server();
        let Submit::BatchStarted { done_at } = s.submit(SimTime::ZERO, req(0, SimTime::ZERO, 0))
        else {
            panic!()
        };
        for tag in 1..=14 {
            s.submit(
                SimTime::from_millis(1),
                req(0, SimTime::from_millis(1), tag),
            );
        }
        let (_, _, next) = s.on_batch_done(done_at);
        // Batch of 14: 40 + 14*4.3 = 100.2 ms.
        assert_eq!((next.unwrap() - done_at).as_millis(), 100);
    }

    #[test]
    fn multi_tenant_fifo_order_is_preserved() {
        let mut s = server();
        let Submit::BatchStarted { done_at } = s.submit(SimTime::ZERO, req(0, SimTime::ZERO, 0))
        else {
            panic!()
        };
        for (tenant, tag) in [(1, 100), (2, 200), (1, 101)] {
            s.submit(
                SimTime::from_millis(5),
                req(tenant, SimTime::from_millis(5), tag),
            );
        }
        let (_, _, _next) = s.on_batch_done(done_at);
        assert_eq!(
            s.running_batch_size(),
            Some(3),
            "all tenants share the batch"
        );
    }

    #[test]
    fn single_model_batches_keep_other_models_queued() {
        let mut s = server();
        let Submit::BatchStarted { done_at } = s.submit(SimTime::ZERO, req(0, SimTime::ZERO, 0))
        else {
            panic!()
        };
        let heavy = Request {
            tenant: TenantId(9),
            model: ModelKind::EfficientNetB0,
            submitted_at: SimTime::from_millis(1),
            tag: 500,
        };
        s.submit(SimTime::from_millis(1), heavy);
        s.submit(SimTime::from_millis(2), req(0, SimTime::from_millis(2), 1));
        let (_, _, next) = s.on_batch_done(done_at);
        // EfficientNetB0 was first in the queue → it forms the next batch;
        // the MobileNet request waits.
        assert_eq!(s.running_model(), Some(ModelKind::EfficientNetB0));
        assert_eq!(s.running_batch_size(), Some(1));
        assert_eq!(s.queue_len(), 1);
        assert!(next.is_some());
    }

    #[test]
    fn drains_to_idle() {
        let mut s = server();
        let Submit::BatchStarted { done_at } = s.submit(SimTime::ZERO, req(0, SimTime::ZERO, 0))
        else {
            panic!()
        };
        let (completions, rejections, next) = s.on_batch_done(done_at);
        assert_eq!(completions.len(), 1);
        assert!(rejections.is_empty());
        assert!(next.is_none());
        assert!(!s.busy());
        let stats = s.stats();
        assert_eq!(stats.completions, 1);
        assert_eq!(stats.batches_executed, 1);
    }

    #[test]
    fn saturation_throughput_matches_gpu_model() {
        // Steady state at overload: back-to-back full batches.
        let mut s = server();
        let mut now = SimTime::ZERO;
        let mut next_done = match s.submit(now, req(0, now, 0)) {
            Submit::BatchStarted { done_at } => done_at,
            Submit::Queued => unreachable!(),
        };
        let mut completed = 0u64;
        let mut tag = 1u64;
        // Offer 300 rps for 20 simulated seconds.
        let mut next_arrival = SimTime::ZERO;
        let horizon = SimTime::from_secs(20);
        loop {
            if next_arrival <= next_done && next_arrival < horizon {
                now = next_arrival;
                if !s.busy() {
                    if let Submit::BatchStarted { done_at } = s.submit(now, req(0, now, tag)) {
                        next_done = done_at;
                    }
                } else {
                    s.submit(now, req(0, now, tag));
                }
                tag += 1;
                next_arrival += SimDuration::from_secs_f64(1.0 / 300.0);
            } else if s.busy() {
                now = next_done;
                let (c, _r, nd) = s.on_batch_done(now);
                completed += c.len() as u64;
                match nd {
                    Some(d) => next_done = d,
                    None => {
                        if next_arrival >= horizon {
                            break;
                        }
                        next_done = SimTime::MAX;
                    }
                }
            } else {
                break;
            }
            if now >= horizon && !s.busy() {
                break;
            }
        }
        let fps = completed as f64 / 20.0;
        let expected = GpuProfile::default().saturation_throughput_fps(ModelKind::MobileNetV3Small);
        assert!(
            (fps - expected).abs() / expected < 0.1,
            "measured {fps:.1} fps vs model {expected:.1} fps"
        );
        assert!(s.stats().rejections > 0, "overload must reject");
        assert!(s.stats().mean_batch_size() > 10.0);
    }

    #[test]
    fn batch_done_into_reuses_buffers_and_matches_the_allocating_api() {
        // Two servers driven identically: one through `on_batch_done`,
        // one through `batch_done_into` with a single reused buffer.
        let mut alloc = server();
        let mut reuse = server();
        let mut out = BatchOutput::default();
        let mut done_alloc = None;
        let mut done_reuse = None;
        for round in 0..20u64 {
            let t = SimTime::from_millis(round * 7);
            for tag in 0..20u64 {
                let r = req((tag % 3) as u32, t, round * 100 + tag);
                if let Submit::BatchStarted { done_at } = alloc.submit(t, r) {
                    done_alloc = Some(done_at);
                }
                if let Submit::BatchStarted { done_at } = reuse.submit(t, r) {
                    done_reuse = Some(done_at);
                }
            }
            assert_eq!(done_alloc, done_reuse);
            if let Some(d) = done_alloc.take() {
                let (c, rj, next) = alloc.on_batch_done(d);
                reuse.batch_done_into(d, &mut out);
                assert_eq!(c, out.completions);
                assert_eq!(rj, out.rejections);
                assert_eq!(next, out.next_done);
                done_alloc = next;
                done_reuse = out.next_done;
            }
        }
        assert_eq!(alloc.stats(), reuse.stats());
        assert_eq!(alloc.completions_by_tenant(), reuse.completions_by_tenant());
        assert_eq!(alloc.rejections_by_tenant(), reuse.rejections_by_tenant());
    }

    #[test]
    #[should_panic(expected = "no running batch")]
    fn batch_done_without_batch_panics() {
        server().on_batch_done(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "wrong instant")]
    fn batch_done_at_wrong_time_panics() {
        let mut s = server();
        let Submit::BatchStarted { done_at } = s.submit(SimTime::ZERO, req(0, SimTime::ZERO, 0))
        else {
            panic!()
        };
        s.on_batch_done(done_at + SimDuration::from_millis(1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::policy::OverflowPolicy;
    use proptest::prelude::*;

    /// Drive a server through an arbitrary arrival sequence, firing batch
    /// completions whenever they come due, and return the totals.
    fn drive(
        policy: OverflowPolicy,
        gaps_ms: &[u64],
        models: &[bool],
    ) -> (ServerStats, u64, usize) {
        let mut server = EdgeServer::with_policy(GpuProfile::default(), policy);
        let mut now = SimTime::ZERO;
        let mut next_done: Option<SimTime> = None;
        let mut completed = 0u64;
        let mut max_batch = 0usize;
        for (tag, (&gap, &heavy)) in gaps_ms.iter().zip(models).enumerate() {
            now += SimDuration::from_millis(gap);
            while let Some(d) = next_done {
                if d <= now {
                    let (c, _r, nd) = server.on_batch_done(d);
                    completed += c.len() as u64;
                    max_batch = max_batch.max(c.first().map_or(0, |x| x.batch_size));
                    next_done = nd;
                } else {
                    break;
                }
            }
            let request = Request {
                tenant: TenantId((tag % 5) as u32),
                model: if heavy {
                    ModelKind::EfficientNetB0
                } else {
                    ModelKind::MobileNetV3Small
                },
                submitted_at: now,
                tag: tag as u64,
            };
            if let Submit::BatchStarted { done_at } = server.submit(now, request) {
                next_done = Some(done_at);
            }
        }
        // Drain.
        while let Some(d) = next_done {
            let (c, _r, nd) = server.on_batch_done(d);
            completed += c.len() as u64;
            max_batch = max_batch.max(c.first().map_or(0, |x| x.batch_size));
            next_done = nd;
        }
        (server.stats(), completed, max_batch)
    }

    proptest! {
        /// Conservation: every submitted request either completes or is
        /// rejected, under both overflow policies and mixed models.
        #[test]
        fn prop_requests_are_conserved(
            gaps in proptest::collection::vec(0u64..60, 1..300),
            heavy_bits in proptest::collection::vec(any::<bool>(), 300),
            fair in any::<bool>(),
        ) {
            let policy = if fair { OverflowPolicy::FairShare } else { OverflowPolicy::RejectNewest };
            let models = &heavy_bits[..gaps.len()];
            let (stats, completed, _) = drive(policy, &gaps, models);
            prop_assert_eq!(stats.requests_received, gaps.len() as u64);
            prop_assert_eq!(stats.completions, completed);
            prop_assert_eq!(
                stats.completions + stats.rejections,
                stats.requests_received,
                "every request must resolve exactly once"
            );
        }

        /// Batch sizes never exceed the limit, and the per-tenant
        /// completion map sums to the total.
        #[test]
        fn prop_batch_limit_and_tenant_accounting(
            gaps in proptest::collection::vec(0u64..20, 1..300),
        ) {
            let models = vec![false; gaps.len()];
            let mut server = EdgeServer::new(GpuProfile::default());
            let mut now = SimTime::ZERO;
            let mut next_done: Option<SimTime> = None;
            let mut by_tenant_total = 0u64;
            for (tag, &gap) in gaps.iter().enumerate() {
                now += SimDuration::from_millis(gap);
                while let Some(d) = next_done {
                    if d <= now {
                        let (c, _r, nd) = server.on_batch_done(d);
                        prop_assert!(c.len() <= server.gpu().batch_limit);
                        by_tenant_total += c.len() as u64;
                        next_done = nd;
                    } else {
                        break;
                    }
                }
                let request = Request {
                    tenant: TenantId((tag % 3) as u32),
                    model: ModelKind::MobileNetV3Small,
                    submitted_at: now,
                    tag: tag as u64,
                };
                if let Submit::BatchStarted { done_at } = server.submit(now, request) {
                    next_done = Some(done_at);
                }
            }
            while let Some(d) = next_done {
                let (c, _r, nd) = server.on_batch_done(d);
                by_tenant_total += c.len() as u64;
                next_done = nd;
            }
            let map_sum: u64 = server.completions_by_tenant().values().sum();
            prop_assert_eq!(map_sum, by_tenant_total);
            prop_assert_eq!(map_sum, server.stats().completions);
            let _ = models;
        }

        /// Higher offered load never *increases* the completion ratio
        /// past 1, and always keeps throughput at or under the saturation
        /// ceiling.
        #[test]
        fn prop_throughput_bounded_by_saturation(rate_rps in 10.0f64..500.0) {
            let n = 2_000usize;
            let gap_ms = (1_000.0 / rate_rps).max(1.0) as u64;
            let gaps = vec![gap_ms; n];
            let models = vec![false; n];
            let (stats, completed, max_batch) = drive(OverflowPolicy::RejectNewest, &gaps, &models);
            prop_assert!(completed <= stats.requests_received);
            prop_assert!(max_batch <= GpuProfile::default().batch_limit);
            let duration_secs = (n as u64 * gap_ms) as f64 / 1_000.0;
            let fps = completed as f64 / duration_secs;
            let ceiling = GpuProfile::default()
                .saturation_throughput_fps(ModelKind::MobileNetV3Small);
            prop_assert!(fps <= ceiling * 1.15, "throughput {fps:.0} above ceiling {ceiling:.0}");
        }
    }
}
