//! # ff-baselines — the comparison controllers of §IV-B
//!
//! Three policies evaluated against FrameFeedback under identical
//! conditions:
//!
//! * [`LocalOnly`] — never offload; classify everything on-device,
//! * [`AlwaysOffload`] — offload every frame regardless of feedback,
//! * [`AllOrNothing`] — the DeepDecision-style interval policy: each
//!   measurement step, offload *all* frames iff this interval's heartbeat
//!   probe returned before the deadline, else go fully local.
//!
//! All three implement `ff_core::Controller`, so the device loop treats
//! them exactly like FrameFeedback.

#![warn(missing_docs)]

use ff_core::{Controller, Decision, Measurement};

/// §IV-B.1: local execution only. "Undesirable due to the low throughput
/// and high power usage of computing Image Classification on Raspberry
/// Pis", but the floor every other policy must beat.
#[derive(Debug, Clone, Default)]
pub struct LocalOnly;

impl LocalOnly {
    /// The local-only policy (stateless).
    pub fn new() -> Self {
        LocalOnly
    }
}

impl Controller for LocalOnly {
    fn name(&self) -> &'static str {
        "local-only"
    }

    fn update(&mut self, m: &Measurement) -> Decision {
        m.validate();
        Decision { po_target: 0.0 }
    }

    fn po_target(&self) -> f64 {
        0.0
    }

    fn reset(&mut self) {}
}

/// §IV-B.2: offload every frame at all times. "Since we disregard any
/// feedback, it is unlikely that this solution will be optimal unless the
/// system conditions are perfect."
#[derive(Debug, Clone, Default)]
pub struct AlwaysOffload {
    fs: f64,
}

impl AlwaysOffload {
    /// The always-offload policy.
    pub fn new() -> Self {
        AlwaysOffload { fs: 0.0 }
    }
}

impl Controller for AlwaysOffload {
    fn name(&self) -> &'static str {
        "always-offload"
    }

    fn update(&mut self, m: &Measurement) -> Decision {
        m.validate();
        self.fs = m.fs;
        Decision { po_target: m.fs }
    }

    fn po_target(&self) -> f64 {
        self.fs
    }

    fn reset(&mut self) {
        self.fs = 0.0;
    }
}

/// §IV-B.3: the all-or-nothing interval policy mimicking DeepDecision.
///
/// "At each measurement step (1 second) \[decide\] whether to offload all
/// frames in that interval or to classify frames locally. To make this
/// decision, we ... send a heartbeat request to profile the latency. If
/// the request is successful (returns before the deadline), we deem the
/// conditions sufficient for offloading."
#[derive(Debug, Clone)]
pub struct AllOrNothing {
    po_target: f64,
}

impl Default for AllOrNothing {
    fn default() -> Self {
        Self::new()
    }
}

impl AllOrNothing {
    /// The interval policy; starts local until a heartbeat succeeds.
    pub fn new() -> Self {
        // Until the first heartbeat answer arrives, stay local: the policy
        // has no evidence that offloading works.
        AllOrNothing { po_target: 0.0 }
    }
}

impl Controller for AllOrNothing {
    fn name(&self) -> &'static str {
        "all-or-nothing"
    }

    fn update(&mut self, m: &Measurement) -> Decision {
        m.validate();
        self.po_target = if m.heartbeat_ok { m.fs } else { 0.0 };
        Decision {
            po_target: self.po_target,
        }
    }

    fn po_target(&self) -> f64 {
        self.po_target
    }

    fn reset(&mut self) {
        self.po_target = 0.0;
    }
}

/// A fixed-rate policy: offload at a constant target forever. Not a
/// deployable controller (it knows nothing), but the building block of
/// the clairvoyant-oracle regret analysis: grid-searching `Fixed(po)`
/// under constant conditions finds the best static rate those conditions
/// admit.
#[derive(Debug, Clone, Copy)]
pub struct Fixed {
    po: f64,
}

impl Fixed {
    /// A policy pinned at `po_target` frames/s (clamped to `F_s` at
    /// update time).
    pub fn new(po_target: f64) -> Self {
        assert!(
            po_target.is_finite() && po_target >= 0.0,
            "fixed target must be finite and non-negative"
        );
        Fixed { po: po_target }
    }
}

impl Controller for Fixed {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn update(&mut self, m: &Measurement) -> Decision {
        m.validate();
        Decision {
            po_target: self.po.min(m.fs),
        }
    }

    fn po_target(&self) -> f64 {
        self.po
    }

    fn reset(&mut self) {}
}

/// An AIMD (additive-increase, multiplicative-decrease) controller — the
/// TCP-congestion-control answer to the same problem, included as an
/// *extra* comparison point beyond the paper's three baselines. Each
/// clean interval adds `increase` fps; any interval with timeouts above
/// the tolerance halves the rate. AIMD reacts as forcefully as
/// FrameFeedback but, lacking the proportional term, climbs back at a
/// fixed crawl regardless of how far conditions are from the target.
#[derive(Debug, Clone)]
pub struct Aimd {
    /// Additive step per clean interval (frames/s).
    pub increase: f64,
    /// Multiplicative factor on timeout (0 < decrease < 1).
    pub decrease: f64,
    /// Tolerated timeout rate as a fraction of `F_s` (matches
    /// FrameFeedback's 0.1 for a fair comparison).
    pub tolerance: f64,
    po_target: f64,
}

impl Default for Aimd {
    fn default() -> Self {
        Self::new()
    }
}

impl Aimd {
    /// AIMD with TCP-Reno-style defaults (+1 fps / ×0.5) and the same 10%
    /// timeout tolerance as FrameFeedback.
    pub fn new() -> Self {
        Aimd {
            increase: 1.0,
            decrease: 0.5,
            tolerance: 0.1,
            po_target: 0.0,
        }
    }
}

impl Controller for Aimd {
    fn name(&self) -> &'static str {
        "aimd"
    }

    fn update(&mut self, m: &Measurement) -> Decision {
        m.validate();
        if m.timeout_rate > self.tolerance * m.fs {
            self.po_target *= self.decrease;
        } else {
            self.po_target += self.increase;
        }
        self.po_target = self.po_target.clamp(0.0, m.fs);
        Decision {
            po_target: self.po_target,
        }
    }

    fn po_target(&self) -> f64 {
        self.po_target
    }

    fn reset(&mut self) {
        self.po_target = 0.0;
    }
}

/// Convenience constructor set for experiment harnesses: every evaluated
/// controller, boxed behind the common trait.
pub fn all_controllers() -> Vec<Box<dyn Controller>> {
    vec![
        Box::new(ff_core::FrameFeedback::new()),
        Box::new(LocalOnly::new()),
        Box::new(AlwaysOffload::new()),
        Box::new(AllOrNothing::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure(heartbeat_ok: bool, timeout_rate: f64) -> Measurement {
        Measurement {
            fs: 30.0,
            po_achieved: 10.0,
            pl_achieved: 13.0,
            timeout_rate,
            heartbeat_ok,
            dt_secs: 1.0,
        }
    }

    #[test]
    fn local_only_never_offloads() {
        let mut c = LocalOnly::new();
        for t in [0.0, 30.0] {
            let d = c.update(&measure(true, t));
            assert_eq!(d.po_target, 0.0);
        }
        assert_eq!(c.po_target(), 0.0);
        assert_eq!(c.name(), "local-only");
    }

    #[test]
    fn always_offload_targets_fs_regardless_of_timeouts() {
        let mut c = AlwaysOffload::new();
        let d = c.update(&measure(false, 30.0));
        assert_eq!(d.po_target, 30.0);
        assert_eq!(c.po_target(), 30.0);
        c.reset();
        assert_eq!(c.po_target(), 0.0);
    }

    #[test]
    fn all_or_nothing_follows_the_heartbeat() {
        let mut c = AllOrNothing::new();
        assert_eq!(c.po_target(), 0.0, "starts local");
        assert_eq!(c.update(&measure(true, 0.0)).po_target, 30.0);
        assert_eq!(c.update(&measure(false, 0.0)).po_target, 0.0);
        assert_eq!(c.update(&measure(true, 25.0)).po_target, 30.0, "ignores T");
    }

    #[test]
    fn all_or_nothing_is_binary() {
        let mut c = AllOrNothing::new();
        for ok in [true, false, true, true, false] {
            let d = c.update(&measure(ok, 1.0));
            assert!(d.po_target == 0.0 || d.po_target == 30.0);
        }
    }

    #[test]
    fn reset_returns_all_or_nothing_to_local() {
        let mut c = AllOrNothing::new();
        c.update(&measure(true, 0.0));
        assert_eq!(c.po_target(), 30.0);
        c.reset();
        assert_eq!(c.po_target(), 0.0);
    }

    #[test]
    fn controller_set_covers_all_four_policies() {
        let names: Vec<&str> = all_controllers().iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "framefeedback",
                "local-only",
                "always-offload",
                "all-or-nothing"
            ]
        );
    }

    #[test]
    fn aimd_increases_additively_and_decreases_multiplicatively() {
        let mut c = Aimd::new();
        assert_eq!(c.update(&measure(true, 0.0)).po_target, 1.0);
        assert_eq!(c.update(&measure(true, 0.0)).po_target, 2.0);
        // Tolerated timeouts (<= 10% of F_s) still count as clean.
        assert_eq!(c.update(&measure(true, 3.0)).po_target, 3.0);
        // Above tolerance: halve.
        assert_eq!(c.update(&measure(true, 10.0)).po_target, 1.5);
    }

    #[test]
    fn aimd_stays_within_bounds() {
        let mut c = Aimd::new();
        for _ in 0..100 {
            let po = c.update(&measure(true, 0.0)).po_target;
            assert!(po <= 30.0);
        }
        assert_eq!(c.po_target(), 30.0);
        for _ in 0..100 {
            let po = c.update(&measure(true, 30.0)).po_target;
            assert!(po >= 0.0);
        }
        c.reset();
        assert_eq!(c.po_target(), 0.0);
    }

    #[test]
    fn fixed_controller_holds_its_rate_clamped_to_fs() {
        let mut c = Fixed::new(17.0);
        assert_eq!(c.update(&measure(true, 0.0)).po_target, 17.0);
        assert_eq!(c.update(&measure(false, 30.0)).po_target, 17.0);
        let mut over = Fixed::new(99.0);
        assert_eq!(over.update(&measure(true, 0.0)).po_target, 30.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn fixed_rejects_nan() {
        Fixed::new(f64::NAN);
    }

    #[test]
    fn baselines_validate_measurements_too() {
        let mut m = measure(true, 0.0);
        m.fs = -1.0;
        for mut c in all_controllers() {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c.update(&m);
            }));
            assert!(
                result.is_err(),
                "controller accepted an invalid measurement"
            );
        }
    }
}
