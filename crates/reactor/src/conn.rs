//! A nonblocking TCP connection speaking FFLP frames.
//!
//! One `FramedConn` owns one socket plus two buffers:
//!
//! * **read side** — bytes accumulate in `read_buf`; callers drain
//!   complete frames with [`FramedConn::next_frame`]. Payload bytes are
//!   opaque to every consumer in this crate, so decoded requests carry
//!   the payload *length*, not a copy.
//! * **write side** — frames coalesce into a **bounded** buffer
//!   (default 256 KiB). When a frame does not fit, the enqueue is
//!   rejected and the caller surfaces the verdict — the transport maps
//!   it to `FailedInstantly`, the server counts a dropped reply. Nothing
//!   ever blocks and nothing queues without bound: this is the reactor's
//!   answer to the blocking tier's unbounded per-connection reply
//!   channel.
//!
//! Both directions follow the edge-triggered discipline: `fill`/`flush`
//! run until `WouldBlock`, so a single readiness edge is never lost.

use crate::frame::{decode_frame, encode_request_into, encode_response_into, Frame, FrameError};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Default cap on buffered unwritten bytes per connection.
pub const DEFAULT_WRITE_BUF_CAP: usize = 256 * 1024;

/// Read chunk size per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// Compact the read buffer once this many consumed bytes accumulate.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Whether the peer is still there after a `fill`/`flush`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnStatus {
    /// The connection is usable.
    Open,
    /// The peer closed (EOF on read, or a write hit a dead socket).
    Closed,
}

/// Result of offering a frame to the write buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// The frame was buffered (flush to push it out).
    Queued,
    /// The bounded buffer was full: the frame is dropped and the caller
    /// must account for it (backpressure verdict).
    Rejected,
}

/// A decoded inbound frame with the request payload reduced to its size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InboundFrame {
    /// A client request (payload bytes were validated and skipped).
    Request {
        /// Echo token.
        tag: u64,
        /// Size of the (opaque) payload.
        payload_len: usize,
    },
    /// A server response.
    Response {
        /// Echo token.
        tag: u64,
        /// Inference verdict.
        ok: bool,
    },
}

/// One nonblocking framed connection (see the module docs).
pub struct FramedConn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    read_pos: usize,
    write_buf: Vec<u8>,
    write_pos: usize,
    write_cap: usize,
    closed: bool,
    coalesced_writes: u64,
    backpressure_rejects: u64,
}

impl FramedConn {
    /// Wrap `stream` (switched to nonblocking) with a `write_cap`-bounded
    /// write buffer.
    pub fn new(stream: TcpStream, write_cap: usize) -> io::Result<FramedConn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(FramedConn {
            stream,
            read_buf: Vec::new(),
            read_pos: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            write_cap,
            closed: false,
            coalesced_writes: 0,
            backpressure_rejects: 0,
        })
    }

    /// The underlying socket (for poller registration).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Read until `WouldBlock`, accumulating into the frame buffer.
    pub fn fill(&mut self) -> io::Result<ConnStatus> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.closed = true;
                    return Ok(ConnStatus::Closed);
                }
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ConnStatus::Open),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.closed = true;
                    return Err(e);
                }
            }
        }
    }

    /// Decode the next complete frame out of the accumulated bytes.
    ///
    /// `Ok(None)` = no complete frame yet; `Err` = the stream is corrupt
    /// and the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<InboundFrame>, FrameError> {
        let out = match decode_frame(&self.read_buf[self.read_pos..])? {
            None => None,
            Some((frame, consumed)) => {
                self.read_pos += consumed;
                Some(match frame {
                    Frame::Request { tag, payload } => InboundFrame::Request {
                        tag,
                        payload_len: payload.len(),
                    },
                    Frame::Response { tag, ok } => InboundFrame::Response { tag, ok },
                })
            }
        };
        if self.read_pos >= COMPACT_THRESHOLD {
            self.read_buf.drain(..self.read_pos);
            self.read_pos = 0;
        }
        Ok(out)
    }

    /// Unwritten bytes currently buffered.
    pub fn pending_write_bytes(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Whether a further `size`-byte frame fits under the write cap.
    pub fn can_enqueue(&self, size: usize) -> bool {
        !self.closed && self.pending_write_bytes() + size <= self.write_cap
    }

    fn note_enqueue(&mut self, fits: bool, had_pending: bool) -> EnqueueOutcome {
        if !fits {
            self.backpressure_rejects += 1;
            return EnqueueOutcome::Rejected;
        }
        if had_pending {
            self.coalesced_writes += 1;
        }
        EnqueueOutcome::Queued
    }

    /// Buffer a request frame, coalescing with any pending bytes.
    pub fn enqueue_request(&mut self, tag: u64, payload: &[u8]) -> EnqueueOutcome {
        // 16 bytes generously covers magic + varints + opcode.
        let size = 16 + payload.len();
        let fits = self.can_enqueue(size);
        let had_pending = self.pending_write_bytes() > 0;
        if fits {
            encode_request_into(tag, payload, &mut self.write_buf);
        }
        self.note_enqueue(fits, had_pending)
    }

    /// Buffer a response frame, coalescing with any pending bytes.
    pub fn enqueue_response(&mut self, tag: u64, ok: bool) -> EnqueueOutcome {
        let fits = self.can_enqueue(16);
        let had_pending = self.pending_write_bytes() > 0;
        if fits {
            encode_response_into(tag, ok, &mut self.write_buf);
        }
        self.note_enqueue(fits, had_pending)
    }

    /// Write buffered bytes until drained or `WouldBlock`.
    pub fn flush(&mut self) -> io::Result<ConnStatus> {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    self.closed = true;
                    return Ok(ConnStatus::Closed);
                }
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ConnStatus::Open),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.closed = true;
                    return Err(e);
                }
            }
        }
        self.write_buf.clear();
        self.write_pos = 0;
        Ok(ConnStatus::Open)
    }

    /// Whether buffered bytes are waiting for a writable edge.
    pub fn wants_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// Times an enqueue found bytes already pending (write coalescing).
    pub fn coalesced_writes(&self) -> u64 {
        self.coalesced_writes
    }

    /// Times the bounded write buffer rejected a frame.
    pub fn backpressure_rejects(&self) -> u64 {
        self.backpressure_rejects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (FramedConn, FramedConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (
            FramedConn::new(client, DEFAULT_WRITE_BUF_CAP).unwrap(),
            FramedConn::new(server, DEFAULT_WRITE_BUF_CAP).unwrap(),
        )
    }

    fn drain_to(from: &mut FramedConn, to: &mut FramedConn) -> Vec<InboundFrame> {
        let mut out = Vec::new();
        for _ in 0..100 {
            from.flush().unwrap();
            let _ = to.fill().unwrap();
            while let Some(f) = to.next_frame().unwrap() {
                out.push(f);
            }
            if !from.wants_write() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        out
    }

    #[test]
    fn frames_cross_the_socket_and_coalesce() {
        let (mut client, mut server) = pair();
        assert_eq!(client.enqueue_request(1, &[7; 100]), EnqueueOutcome::Queued);
        assert_eq!(client.enqueue_request(2, &[8; 50]), EnqueueOutcome::Queued);
        assert_eq!(client.coalesced_writes(), 1);
        let got = drain_to(&mut client, &mut server);
        assert_eq!(
            got,
            vec![
                InboundFrame::Request {
                    tag: 1,
                    payload_len: 100
                },
                InboundFrame::Request {
                    tag: 2,
                    payload_len: 50
                },
            ]
        );
        assert_eq!(server.enqueue_response(1, true), EnqueueOutcome::Queued);
        assert_eq!(server.enqueue_response(2, false), EnqueueOutcome::Queued);
        let got = drain_to(&mut server, &mut client);
        assert_eq!(
            got,
            vec![
                InboundFrame::Response { tag: 1, ok: true },
                InboundFrame::Response { tag: 2, ok: false },
            ]
        );
    }

    #[test]
    fn bounded_write_buffer_rejects_overflow() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (_server, _) = listener.accept().unwrap();
        let mut conn = FramedConn::new(client, 1024).unwrap();
        // Nobody reads and we never flush: the 1 KiB cap fills fast.
        let mut rejected = 0;
        for tag in 0..10u64 {
            if conn.enqueue_request(tag, &[0; 400]) == EnqueueOutcome::Rejected {
                rejected += 1;
            }
        }
        assert!(rejected >= 7, "only {rejected} rejects under a 1 KiB cap");
        assert_eq!(conn.backpressure_rejects(), rejected);
        assert!(conn.pending_write_bytes() <= 1024);
    }

    #[test]
    fn peer_close_surfaces_on_fill() {
        let (client, mut server) = pair();
        drop(client);
        for _ in 0..100 {
            if server.fill().unwrap() == ConnStatus::Closed {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("peer close never surfaced");
    }

    #[test]
    fn corrupt_stream_is_an_error_not_a_panic() {
        let (mut client, mut server) = pair();
        use std::io::Write as _;
        client.stream.write_all(b"XXXXGARBAGE").unwrap();
        let _ = server.fill().unwrap();
        assert!(server.next_frame().is_err());
    }
}
