//! `ff-reactor` — the readiness-driven live tier.
//!
//! The blocking live path (`ff-live`) spends two OS threads per device
//! plus four per server connection; a few hundred devices exhaust a small
//! host. This crate replaces threads with *readiness*: one epoll instance
//! (via the vendored `mio` shim), one timer wheel (the same hierarchical
//! layout `ff-sim` schedules millions of events on), and one thread
//! multiplexing every socket and every [`DeviceRuntime`] in the process.
//!
//! Three design rules carry over from the rest of the repo:
//!
//! * **The control loop is the sim's control loop.** Devices run the
//!   shared [`DeviceRuntime`]; the reactor only supplies wall-clock
//!   capture pacing, socket transport, and timer-driven local inference —
//!   exactly the seams the blocking client supplies with threads.
//! * **Backpressure is a verdict, not a stall.** Writes coalesce into a
//!   bounded per-connection buffer; when the buffer is full the transport
//!   reports [`SubmitOutcome::FailedInstantly`](ff_device::SubmitOutcome)
//!   and the controller parks at the §III-A.1 probe floor — the same
//!   contract a lost connection has had since PR 1. No unbounded queues,
//!   no blocking `write_all`.
//! * **Frames are length-prefixed binary.** The [`frame`] module defines
//!   the `FFLP` codec (magic + varint length + opcode) shared by client
//!   and server; decoding arbitrary bytes never panics.

pub mod conn;
pub mod fleet;
pub mod frame;
pub mod pacer;
pub mod server;
pub mod timer;

pub use conn::{ConnStatus, EnqueueOutcome, FramedConn, InboundFrame, DEFAULT_WRITE_BUF_CAP};
pub use fleet::{
    run_reactor_device, run_reactor_fleet, FleetClientConfig, FleetSummary, ReactorDeviceConfig,
    ReactorDeviceSummary, ReconnectPolicy,
};
pub use frame::{
    decode_frame, decode_frame_exact, encode_request_into, encode_response_into, Frame, FrameError,
    MAX_FRAME_BYTES,
};
pub use pacer::{Pacer, PacerConditions, PacerVerdict};
pub use server::{ReactorChaos, ReactorServer, ReactorServerConfig, ReactorServerStats};
pub use timer::DeadlineWheel;
