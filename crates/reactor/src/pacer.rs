//! Single-threaded network impairment pacer.
//!
//! The reactor's port of `ff_live::ImpairmentShim`: the same two Table V
//! knobs (token-bucket rate limiting over payload bytes, MTU-derived
//! frame drop probability with ARQ giving up after four attempts), but
//! with no `Mutex` — the reactor owns one pacer per device on a single
//! thread — and on the [`SimTime`] axis its [`WallClock`]
//! (`ff_device::WallClock`) already maps real time onto.

use ff_sim::{SimDuration, SimTime};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Impairment settings, mirroring `ff_net::NetworkConditions`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacerConditions {
    /// Emulated link bandwidth in Mbps.
    pub bandwidth_mbps: f64,
    /// Per-packet loss percentage (converted to per-frame drop
    /// probability with the simulator's MTU math).
    pub loss_pct: f64,
}

impl PacerConditions {
    /// Effectively unimpaired loopback (1 Gbps, no loss).
    pub fn ideal() -> Self {
        PacerConditions {
            bandwidth_mbps: 1_000.0,
            loss_pct: 0.0,
        }
    }
}

/// What the pacer decided for one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacerVerdict {
    /// Write the frame at the returned absolute time.
    SendAt(SimTime),
    /// Drop the frame (loss beyond ARQ recovery, or backlog overflow).
    Drop,
}

const MTU_BYTES: f64 = 1_500.0;
/// ARQ rounds before the transport gives up (matches `ff_net`'s default).
const MAX_ATTEMPTS: i32 = 4;

/// Per-device serialization pacer with bounded backlog.
pub struct Pacer {
    conditions: PacerConditions,
    /// Time until which the emulated link is busy serializing.
    busy_until: SimTime,
    max_backlog: SimDuration,
    rng: ChaCha8Rng,
}

impl Pacer {
    /// A pacer applying `conditions` from the first offer.
    pub fn new(conditions: PacerConditions, rng: ChaCha8Rng) -> Self {
        Pacer {
            conditions,
            busy_until: SimTime::ZERO,
            max_backlog: SimDuration::from_millis(600),
            rng,
        }
    }

    /// Apply new conditions (a schedule step).
    pub fn set_conditions(&mut self, conditions: PacerConditions) {
        self.conditions = conditions;
    }

    /// The conditions currently applied.
    pub fn conditions(&self) -> PacerConditions {
        self.conditions
    }

    /// Decide the fate of a `bytes`-sized frame offered at `now`.
    ///
    /// Same math as the blocking shim: frame-level drop probability
    /// `1 − (1 − p^A)^n_packets`, serialization `bytes·8 / bandwidth`
    /// inflated by the expected `1/(1−p)` retransmissions, tail drop
    /// past a 600 ms backlog.
    pub fn offer(&mut self, bytes: u64, now: SimTime) -> PacerVerdict {
        let p = self.conditions.loss_pct / 100.0;
        if p > 0.0 {
            let n_packets = (bytes as f64 / MTU_BYTES).ceil();
            let p_pkt_gone = p.powi(MAX_ATTEMPTS);
            let p_drop = 1.0 - (1.0 - p_pkt_gone).powf(n_packets);
            if self.rng.gen_bool(p_drop.clamp(0.0, 1.0)) {
                return PacerVerdict::Drop;
            }
        }

        let secs = bytes as f64 * 8.0 / (self.conditions.bandwidth_mbps * 1e6);
        let inflation = if p > 0.0 { 1.0 / (1.0 - p) } else { 1.0 };
        let serialization = SimDuration::from_secs_f64(secs * inflation);

        let start = self.busy_until.max(now);
        if start.saturating_since(now) > self.max_backlog {
            return PacerVerdict::Drop;
        }
        self.busy_until = start + serialization;
        PacerVerdict::SendAt(self.busy_until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_sim::RngFactory;

    fn pacer(bw: f64, loss: f64) -> Pacer {
        Pacer::new(
            PacerConditions {
                bandwidth_mbps: bw,
                loss_pct: loss,
            },
            RngFactory::new(3).stream("pacer"),
        )
    }

    #[test]
    fn ideal_link_sends_immediately() {
        let mut p = pacer(1_000.0, 0.0);
        let now = SimTime::from_millis(10);
        match p.offer(25_000, now) {
            PacerVerdict::SendAt(at) => {
                assert!(at.saturating_since(now) < SimDuration::from_millis(2))
            }
            PacerVerdict::Drop => panic!("ideal link dropped"),
        }
    }

    #[test]
    fn rate_limit_queues_consecutive_sends() {
        let mut p = pacer(10.0, 0.0); // 25 KB = 20 ms of link time
        let now = SimTime::ZERO;
        let PacerVerdict::SendAt(t1) = p.offer(25_000, now) else {
            panic!()
        };
        let PacerVerdict::SendAt(t2) = p.offer(25_000, now) else {
            panic!()
        };
        assert!(t2 > t1, "second send must queue behind the first");
        assert!(t2.saturating_since(now) >= SimDuration::from_millis(35));
    }

    #[test]
    fn backlog_cap_drops_excess() {
        let mut p = pacer(1.0, 0.0); // 25 KB = 200 ms each; cap at 600 ms
        let now = SimTime::ZERO;
        let drops = (0..10)
            .filter(|_| p.offer(25_000, now) == PacerVerdict::Drop)
            .count();
        assert!(drops >= 5, "only {drops} drops");
    }

    #[test]
    fn heavy_loss_drops_frames() {
        let mut p = pacer(1_000.0, 60.0);
        let drops = (0..200)
            .filter(|i| p.offer(25_000, SimTime::from_millis(*i)) == PacerVerdict::Drop)
            .count();
        assert!(drops > 120, "only {drops}/200 drops at 60% loss");
    }
}
