//! N live devices, one thread: the reactor fleet client.
//!
//! Every device is the same `DeviceRuntime` + `Controller` pair the
//! simulator and the blocking live client drive — §III's control loop is
//! not reimplemented here. What changes is the host: instead of four
//! threads per device, all devices share one epoll loop, one deadline
//! wheel (capture pacing, controller ticks, offload deadlines, local
//! completions, paced sends, reconnect backoff — the same event kinds
//! the DES schedules), and one nonblocking socket each.
//!
//! The offload transport preserves the PR-1 backpressure contract: a
//! dead connection or a full bounded write buffer yields
//! `FailedInstantly` (the runtime records the timeout on the spot and
//! the controller parks at the §III-A.1 probe floor), and the per-device
//! [`Pacer`] maps impaired-link verdicts onto `DroppedInNetwork` exactly
//! like the blocking tier's `ImpairmentShim`.

use crate::conn::{ConnStatus, EnqueueOutcome, FramedConn, InboundFrame, DEFAULT_WRITE_BUF_CAP};
use crate::pacer::{Pacer, PacerConditions, PacerVerdict};
use crate::timer::DeadlineWheel;
use ff_core::Controller;
use ff_device::{
    DeviceRuntime, FrameOutcome, ModelSelection, Route, RuntimeConfig, SubmitOutcome, Transport,
    WallClock,
};
use ff_metrics::{LogHistogram, QosLog};
use ff_sim::{SimDuration, SimTime};
use ff_telemetry::{Level, LogCode, Metric, Recorder, Scope, Telemetry};
use mio::{Events, Interest, Poll, Token};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Poll timeout cap (also the idle heartbeat of the loop).
const IDLE_POLL: Duration = Duration::from_millis(10);

/// Dial timeout: loopback connects or refuses instantly, so this only
/// guards against a pathological stack.
const DIAL_TIMEOUT: Duration = Duration::from_millis(250);

/// Settle margin after the last capture before the loop exits: one
/// deadline so stragglers resolve, plus slack for the final responses.
const DRAIN_MARGIN: Duration = Duration::from_millis(500);

/// Reconnect backoff: exponential with multiplicative jitter (the
/// reactor's copy of the blocking client's policy — `ff-live` depends on
/// this crate, so the type cannot be borrowed from there).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconnectPolicy {
    /// Wait after the first failure.
    pub initial_backoff: Duration,
    /// Upper bound on the (pre-jitter) wait.
    pub max_backoff: Duration,
    /// Growth factor per consecutive failure.
    pub multiplier: f64,
    /// Uniform jitter fraction in `[0, 1]`.
    pub jitter: f64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            multiplier: 2.0,
            jitter: 0.5,
        }
    }
}

impl ReconnectPolicy {
    /// The jittered wait for the given consecutive-failure count.
    fn backoff(&self, failures: u32, rng: &mut SmallRng) -> Duration {
        let base = self
            .initial_backoff
            .mul_f64(self.multiplier.powi(failures.min(16) as i32))
            .min(self.max_backoff);
        let scale = 1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        base.mul_f64(scale.max(0.0))
    }
}

/// Per-device parameters (defaults mirror `ff_live::LiveDeviceConfig`).
#[derive(Debug, Clone, Copy)]
pub struct ReactorDeviceConfig {
    /// Camera capture rate in frames/s.
    pub fs: f64,
    /// How long the device captures frames.
    pub duration: Duration,
    /// End-to-end offload deadline `T_d`.
    pub deadline: Duration,
    /// Compressed frame payload size in bytes.
    pub frame_bytes: u64,
    /// Local inference rate `P_l` in frames/s.
    pub local_rate_fps: f64,
    /// Controller measurement period.
    pub tick: Duration,
    /// Sliding window for the timeout-rate estimate.
    pub timeout_window: Duration,
    /// Reconnect backoff policy.
    pub reconnect: ReconnectPolicy,
    /// Emulated uplink conditions applied by the per-device pacer.
    pub pacer: PacerConditions,
}

impl Default for ReactorDeviceConfig {
    fn default() -> Self {
        ReactorDeviceConfig {
            fs: 30.0,
            duration: Duration::from_secs(30),
            deadline: Duration::from_millis(250),
            frame_bytes: 25_000,
            local_rate_fps: 13.0,
            tick: Duration::from_secs(1),
            timeout_window: Duration::from_secs(3),
            reconnect: ReconnectPolicy::default(),
            pacer: PacerConditions::ideal(),
        }
    }
}

/// Fleet-level knobs around a shared device config.
#[derive(Clone)]
pub struct FleetClientConfig {
    /// Parameters applied to every device.
    pub device: ReactorDeviceConfig,
    /// Seed for pacer/backoff RNG streams (per-device derived).
    pub seed: u64,
    /// Bound on buffered unwritten bytes per connection.
    pub write_buf_cap: usize,
    /// Gap between consecutive initial dials, so a large fleet does not
    /// storm the accept queue in one instant.
    pub connect_stagger: Duration,
    /// Telemetry pipeline (disabled by default).
    pub telemetry: Telemetry,
}

impl Default for FleetClientConfig {
    fn default() -> Self {
        FleetClientConfig {
            device: ReactorDeviceConfig::default(),
            seed: 1,
            write_buf_cap: DEFAULT_WRITE_BUF_CAP,
            connect_stagger: Duration::from_micros(200),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Everything one device did during the run.
#[derive(Debug)]
pub struct ReactorDeviceSummary {
    /// Per-tick QoS records from the control loop.
    pub qos: QosLog,
    /// Frames captured.
    pub frames: u64,
    /// Offload attempts (including instant failures).
    pub offloaded: u64,
    /// Offloads that returned within the deadline.
    pub successes: u64,
    /// Offloads that timed out (network + load + instant failures).
    pub timeouts: u64,
    /// Offloads rejected by the transport before leaving the device.
    pub instant_failures: u64,
    /// Local inferences completed.
    pub local_completed: u64,
    /// Local-routed frames skipped because the engine was saturated.
    pub local_skipped: u64,
    /// Frames the pacer dropped (emulated loss / backlog overflow).
    pub paced_drops: u64,
    /// Sends rejected by the bounded write buffer after acceptance.
    pub late_backpressure: u64,
    /// Successful re-dials after a lost connection.
    pub reconnects: u64,
    /// Failed dial attempts.
    pub dial_failures: u64,
    /// Offload round-trip latencies (milliseconds).
    pub latency_ms: LogHistogram,
    /// Offloads still unresolved when the loop exited (0 when frames
    /// are conserved).
    pub in_flight_at_end: usize,
}

impl ReactorDeviceSummary {
    /// `sent == completed + timed-out`, with nothing still in flight —
    /// the soak harness's per-device conservation law.
    pub fn frames_conserved(&self) -> bool {
        self.in_flight_at_end == 0 && self.offloaded == self.successes + self.timeouts
    }
}

/// The whole fleet's run.
#[derive(Debug)]
pub struct FleetSummary {
    /// One summary per device, in device order.
    pub devices: Vec<ReactorDeviceSummary>,
    /// Readiness events the client poller delivered.
    pub ready_events: u64,
    /// Wall-clock run length.
    pub elapsed: Duration,
}

impl FleetSummary {
    /// Whether every device satisfies its conservation law.
    pub fn frames_conserved(&self) -> bool {
        self.devices
            .iter()
            .all(ReactorDeviceSummary::frames_conserved)
    }
}

fn sim_dur(d: Duration) -> SimDuration {
    SimDuration::from_micros(d.as_micros() as u64)
}

/// Run one device against a reactor (or blocking) server. Equivalent to
/// a single-device [`run_reactor_fleet`].
pub fn run_reactor_device(
    addr: SocketAddr,
    config: &FleetClientConfig,
    controller: Box<dyn Controller>,
) -> io::Result<ReactorDeviceSummary> {
    let mut fleet = run_reactor_fleet(addr, config, vec![controller])?;
    Ok(fleet.devices.remove(0))
}

/// Drive `controllers.len()` devices against the server at `addr` on a
/// single event-loop thread (the caller's), returning when every device
/// has captured for its configured duration and all in-flight offloads
/// have resolved.
pub fn run_reactor_fleet(
    addr: SocketAddr,
    config: &FleetClientConfig,
    controllers: Vec<Box<dyn Controller>>,
) -> io::Result<FleetSummary> {
    assert!(!controllers.is_empty(), "fleet needs at least one device");
    let d = config.device;
    assert!(d.fs > 0.0 && d.local_rate_fps > 0.0);
    assert!(
        d.reconnect.multiplier >= 1.0 && (0.0..=1.0).contains(&d.reconnect.jitter),
        "invalid reconnect policy"
    );
    let mut lp = FleetLoop::new(addr, config, controllers)?;
    lp.run();
    Ok(lp.finish())
}

/// Timer-wheel payloads of the client loop.
enum ClientTimer {
    /// The device's camera produced a frame.
    Capture { dev: usize },
    /// A controller interval ended.
    Tick { dev: usize },
    /// An offload (or probe) deadline fired.
    Deadline { dev: usize, tag: u64 },
    /// The local inference engine finished a frame.
    LocalDone { dev: usize },
    /// The pacer released a frame for writing.
    Send { dev: usize, tag: u64, bytes: u64 },
    /// Try dialing the server (again).
    Reconnect { dev: usize },
}

struct Dev {
    runtime: DeviceRuntime,
    controller: Box<dyn Controller>,
    conn: Option<FramedConn>,
    pacer: Pacer,
    rng: SmallRng,
    /// Capture/tick grids are anchored here (staggered per device).
    origin: SimTime,
    end_at: SimTime,
    frame_idx: u64,
    tick_idx: u64,
    ever_connected: bool,
    dial_failures: u32,
    dial_failures_total: u64,
    reconnects: u64,
    local_busy: bool,
    local_pending: bool,
    local_completed: u64,
    local_skipped: u64,
    local_done_since_tick: u64,
    paced_drops: u64,
    late_backpressure: u64,
    latency_ms: LogHistogram,
}

/// The per-call transport view the runtime writes through: disjoint
/// borrows of one device's connection/pacer plus the shared wheel.
struct FleetTransport<'a> {
    dev: usize,
    conn: &'a mut Option<FramedConn>,
    pacer: &'a mut Pacer,
    wheel: &'a mut DeadlineWheel<ClientTimer>,
    paced_drops: &'a mut u64,
}

impl Transport for FleetTransport<'_> {
    fn send(&mut self, tag: u64, bytes: u64, now: SimTime) -> SubmitOutcome {
        let Some(conn) = self.conn.as_mut() else {
            return SubmitOutcome::FailedInstantly;
        };
        // Backpressure is a verdict, not a stall: a frame the bounded
        // write buffer cannot absorb fails instantly and the controller
        // parks at the probe floor.
        if !conn.can_enqueue(16 + bytes as usize) {
            return SubmitOutcome::FailedInstantly;
        }
        match self.pacer.offer(bytes, now) {
            PacerVerdict::Drop => {
                *self.paced_drops += 1;
                SubmitOutcome::DroppedInNetwork
            }
            PacerVerdict::SendAt(at) => {
                self.wheel.schedule(
                    at,
                    ClientTimer::Send {
                        dev: self.dev,
                        tag,
                        bytes,
                    },
                );
                SubmitOutcome::Accepted
            }
        }
    }
}

struct FleetLoop {
    addr: SocketAddr,
    write_buf_cap: usize,
    service: SimDuration,
    capture_step: SimDuration,
    tick_step: SimDuration,
    deadline: SimDuration,
    reconnect: ReconnectPolicy,
    frame_bytes: u64,
    scratch: Vec<u8>,
    poll: Poll,
    clock: WallClock,
    wheel: DeadlineWheel<ClientTimer>,
    devs: Vec<Dev>,
    fleet_end: SimTime,
    ready_events: u64,
    recorder: Recorder,
    scope: Scope,
}

impl FleetLoop {
    fn new(
        addr: SocketAddr,
        config: &FleetClientConfig,
        controllers: Vec<Box<dyn Controller>>,
    ) -> io::Result<FleetLoop> {
        let d = config.device;
        let poll = Poll::new()?;
        let clock = WallClock::start();
        let mut wheel = DeadlineWheel::new();
        let mut devs = Vec::with_capacity(controllers.len());
        let stagger = sim_dur(config.connect_stagger);
        let capture_step = SimDuration::from_secs_f64(1.0 / d.fs);
        let mut fleet_end = SimTime::ZERO;
        for (i, mut controller) in controllers.into_iter().enumerate() {
            let rc = RuntimeConfig {
                fs: d.fs,
                deadline: sim_dur(d.deadline),
                controller_period: sim_dur(d.tick),
                timeout_window: sim_dur(d.timeout_window),
                probe_bytes: d.frame_bytes,
                selection: ModelSelection::AlwaysPaper,
                local_accuracy: 1.0,
                remote_accuracy: 1.0,
            };
            let runtime = DeviceRuntime::new(rc, controller.as_mut());
            let seed = config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let origin = SimTime::ZERO + stagger.mul_f64(i as f64);
            let end_at = origin + sim_dur(d.duration);
            fleet_end = fleet_end.max(end_at);
            // Dial first, then the first capture one frame later, so a
            // reachable server is connected before frame 0 routes.
            wheel.schedule(origin, ClientTimer::Reconnect { dev: i });
            wheel.schedule(origin + capture_step, ClientTimer::Capture { dev: i });
            wheel.schedule(origin + sim_dur(d.tick), ClientTimer::Tick { dev: i });
            devs.push(Dev {
                runtime,
                controller,
                conn: None,
                pacer: Pacer::new(d.pacer, ChaCha8Rng::seed_from_u64(seed)),
                rng: SmallRng::seed_from_u64(seed.rotate_left(17)),
                origin,
                end_at,
                frame_idx: 0,
                tick_idx: 1,
                ever_connected: false,
                dial_failures: 0,
                dial_failures_total: 0,
                reconnects: 0,
                local_busy: false,
                local_pending: false,
                local_completed: 0,
                local_skipped: 0,
                local_done_since_tick: 0,
                paced_drops: 0,
                late_backpressure: 0,
                latency_ms: LogHistogram::for_latency_ms(),
            });
        }
        let fleet_end = fleet_end + sim_dur(d.deadline) + sim_dur(DRAIN_MARGIN);
        Ok(FleetLoop {
            addr,
            write_buf_cap: config.write_buf_cap,
            service: SimDuration::from_secs_f64(1.0 / d.local_rate_fps),
            capture_step,
            tick_step: sim_dur(d.tick),
            deadline: sim_dur(d.deadline),
            reconnect: d.reconnect,
            frame_bytes: d.frame_bytes,
            scratch: vec![0u8; d.frame_bytes as usize],
            poll,
            clock,
            wheel,
            devs,
            fleet_end,
            ready_events: 0,
            recorder: config.telemetry.recorder(),
            scope: config.telemetry.scope("reactor/fleet"),
        })
    }

    fn run(&mut self) {
        let mut events = Events::with_capacity(1024);
        loop {
            let now = self.clock.now();
            if now >= self.fleet_end {
                break;
            }
            while let Some((_, timer)) = self.wheel.pop_due(now) {
                self.handle_timer(timer);
            }
            let timeout = match self.wheel.next_deadline() {
                Some(at) => {
                    Duration::from_micros(at.saturating_since(self.clock.now()).as_micros())
                        .min(IDLE_POLL)
                }
                None => IDLE_POLL,
            };
            if self.poll.poll(&mut events, Some(timeout)).is_err() {
                break;
            }
            if !events.is_empty() {
                let n = events.len() as u64;
                self.ready_events += n;
                self.recorder.counter(
                    self.scope,
                    Metric::ReadyEvents,
                    n,
                    self.clock.now().as_micros(),
                );
            }
            for ev in events.iter() {
                let Token(dev) = ev.token();
                if ev.is_readable() || ev.is_read_closed() || ev.is_error() {
                    self.dev_read(dev);
                }
                if ev.is_writable() {
                    self.dev_flush(dev);
                }
            }
        }
        // Final sweep: resolve every straggler so `in_flight` hits zero
        // and the conservation law is checkable.
        let end = self.clock.now() + self.deadline;
        for dev in &mut self.devs {
            let _ = dev.runtime.expire_due(end);
        }
    }

    fn finish(self) -> FleetSummary {
        let elapsed = Duration::from_micros(self.clock.now().as_micros());
        let devices = self
            .devs
            .into_iter()
            .map(|dev| ReactorDeviceSummary {
                frames: dev.frame_idx,
                offloaded: dev.runtime.frames_offloaded(),
                successes: dev.runtime.successes(),
                timeouts: dev.runtime.timeouts(),
                instant_failures: dev.runtime.instant_failures(),
                local_completed: dev.local_completed,
                local_skipped: dev.local_skipped,
                paced_drops: dev.paced_drops,
                late_backpressure: dev.late_backpressure,
                reconnects: dev.reconnects,
                dial_failures: dev.dial_failures_total,
                latency_ms: dev.latency_ms,
                in_flight_at_end: dev.runtime.in_flight(),
                qos: dev.runtime.into_qos(),
            })
            .collect();
        FleetSummary {
            devices,
            ready_events: self.ready_events,
            elapsed,
        }
    }

    fn handle_timer(&mut self, timer: ClientTimer) {
        match timer {
            ClientTimer::Capture { dev } => self.on_capture(dev),
            ClientTimer::Tick { dev } => self.on_tick(dev),
            ClientTimer::Deadline { dev, tag } => {
                let now = self.clock.now();
                let _ = self.devs[dev].runtime.on_deadline(tag, now);
            }
            ClientTimer::LocalDone { dev } => self.on_local_done(dev),
            ClientTimer::Send { dev, tag, bytes } => self.on_send(dev, tag, bytes),
            ClientTimer::Reconnect { dev } => self.on_reconnect(dev),
        }
    }

    fn on_capture(&mut self, i: usize) {
        let now = self.clock.now();
        let dev = &mut self.devs[i];
        if now >= dev.end_at {
            return; // capture window over; no reschedule
        }
        let frame_id = dev.frame_idx;
        dev.frame_idx += 1;
        let next = dev.origin + self.capture_step.mul_f64((dev.frame_idx + 1) as f64);
        self.wheel.schedule(next, ClientTimer::Capture { dev: i });
        match dev.runtime.route_frame(frame_id, self.frame_bytes, now) {
            Route::Offload => {
                let mut tp = FleetTransport {
                    dev: i,
                    conn: &mut dev.conn,
                    pacer: &mut dev.pacer,
                    wheel: &mut self.wheel,
                    paced_drops: &mut dev.paced_drops,
                };
                let sub = dev
                    .runtime
                    .offload(&mut tp, frame_id, self.frame_bytes, now);
                if sub.outcome != SubmitOutcome::FailedInstantly {
                    self.wheel.schedule(
                        sub.deadline_at,
                        ClientTimer::Deadline {
                            dev: i,
                            tag: frame_id,
                        },
                    );
                }
            }
            Route::Local => {
                if dev.local_busy {
                    if dev.local_pending {
                        dev.local_skipped += 1; // full pending slot = frame skip
                    } else {
                        dev.local_pending = true;
                    }
                } else {
                    dev.local_busy = true;
                    self.wheel
                        .schedule(now + self.service, ClientTimer::LocalDone { dev: i });
                }
            }
        }
    }

    fn on_local_done(&mut self, i: usize) {
        let dev = &mut self.devs[i];
        dev.local_completed += 1;
        dev.local_done_since_tick += 1;
        dev.local_busy = false;
        if dev.local_pending {
            dev.local_pending = false;
            dev.local_busy = true;
            let at = self.clock.now() + self.service;
            self.wheel.schedule(at, ClientTimer::LocalDone { dev: i });
        }
    }

    fn on_tick(&mut self, i: usize) {
        let now = self.clock.now();
        let dev = &mut self.devs[i];
        let delta = dev.local_done_since_tick;
        dev.local_done_since_tick = 0;
        dev.runtime.note_local_done(delta, now);
        let mut tp = FleetTransport {
            dev: i,
            conn: &mut dev.conn,
            pacer: &mut dev.pacer,
            wheel: &mut self.wheel,
            paced_drops: &mut dev.paced_drops,
        };
        let out = dev.runtime.tick(now, dev.controller.as_mut(), &mut tp);
        self.wheel.schedule(
            out.probe_deadline_at,
            ClientTimer::Deadline {
                dev: i,
                tag: out.probe_tag,
            },
        );
        dev.tick_idx += 1;
        let next = dev.origin + self.tick_step.mul_f64(dev.tick_idx as f64);
        if next <= dev.end_at {
            self.wheel.schedule(next, ClientTimer::Tick { dev: i });
        }
        self.dev_flush(i);
    }

    fn on_send(&mut self, i: usize, tag: u64, bytes: u64) {
        let dev = &mut self.devs[i];
        let Some(conn) = dev.conn.as_mut() else {
            return; // connection died after acceptance: deadlines out as Network
        };
        let payload = &self.scratch[..bytes as usize];
        if conn.enqueue_request(tag, payload) == EnqueueOutcome::Rejected {
            // The buffer filled between acceptance and the paced write.
            dev.late_backpressure += 1;
            return;
        }
        self.dev_flush(i);
    }

    fn on_reconnect(&mut self, i: usize) {
        let dial = TcpStream::connect_timeout(&self.addr, DIAL_TIMEOUT)
            .and_then(|s| FramedConn::new(s, self.write_buf_cap));
        let now = self.clock.now();
        let dev = &mut self.devs[i];
        match dial {
            Ok(conn) => {
                if self
                    .poll
                    .registry()
                    .register(
                        conn.stream(),
                        Token(i),
                        Interest::READABLE | Interest::WRITABLE,
                    )
                    .is_err()
                {
                    self.wheel.schedule(
                        now + sim_dur(self.reconnect.backoff(dev.dial_failures, &mut dev.rng)),
                        ClientTimer::Reconnect { dev: i },
                    );
                    return;
                }
                dev.conn = Some(conn);
                dev.dial_failures = 0;
                if dev.ever_connected {
                    dev.reconnects += 1;
                    self.recorder
                        .counter(self.scope, Metric::Reconnects, 1, now.as_micros());
                    self.recorder.log(
                        self.scope,
                        Level::Info,
                        LogCode::Reconnected,
                        now.as_micros(),
                    );
                } else {
                    dev.ever_connected = true;
                    self.recorder.log(
                        self.scope,
                        Level::Info,
                        LogCode::ClientConnected,
                        now.as_micros(),
                    );
                }
            }
            Err(_) => {
                dev.dial_failures += 1;
                dev.dial_failures_total += 1;
                self.recorder.log(
                    self.scope,
                    Level::Warn,
                    LogCode::DialFailed,
                    now.as_micros(),
                );
                if now < self.fleet_end {
                    let wait = self.reconnect.backoff(dev.dial_failures, &mut dev.rng);
                    self.wheel
                        .schedule(now + sim_dur(wait), ClientTimer::Reconnect { dev: i });
                }
            }
        }
    }

    fn dev_read(&mut self, i: usize) {
        let Some(conn) = self.devs[i].conn.as_mut() else {
            return;
        };
        let fill = conn.fill();
        let now = self.clock.now();
        let mut lost = !matches!(fill, Ok(ConnStatus::Open));
        loop {
            let Some(conn) = self.devs[i].conn.as_mut() else {
                return;
            };
            match conn.next_frame() {
                Ok(Some(InboundFrame::Response { tag, ok })) => {
                    let dev = &mut self.devs[i];
                    if let FrameOutcome::Success { latency, .. } =
                        dev.runtime.on_response(tag, now, ok)
                    {
                        let ms = latency.as_secs_f64() * 1e3;
                        dev.latency_ms.record(ms);
                        self.recorder.latency(
                            self.scope,
                            Metric::OffloadLatencyMs,
                            ms,
                            now.as_micros(),
                        );
                    }
                }
                Ok(Some(InboundFrame::Request { .. })) => {
                    lost = true; // a server speaking the client direction is corrupt
                    break;
                }
                Ok(None) => break,
                Err(_) => {
                    lost = true;
                    break;
                }
            }
        }
        if lost {
            self.drop_conn(i);
        }
    }

    fn dev_flush(&mut self, i: usize) {
        let Some(conn) = self.devs[i].conn.as_mut() else {
            return;
        };
        if !matches!(conn.flush(), Ok(ConnStatus::Open)) {
            self.drop_conn(i);
        }
    }

    fn drop_conn(&mut self, i: usize) {
        let now = self.clock.now();
        let dev = &mut self.devs[i];
        if let Some(conn) = dev.conn.take() {
            let _ = self.poll.registry().deregister(conn.stream());
            self.recorder.log(
                self.scope,
                Level::Warn,
                LogCode::ConnectionLost,
                now.as_micros(),
            );
            if now < self.fleet_end {
                let wait = self.reconnect.backoff(dev.dial_failures, &mut dev.rng);
                self.wheel
                    .schedule(now + sim_dur(wait), ClientTimer::Reconnect { dev: i });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ReactorServer, ReactorServerConfig};
    use ff_core::FrameFeedback;

    /// Two devices against a reactor server for a few seconds: offloads
    /// succeed, frames are conserved, nothing reconnects.
    #[test]
    fn smoke_two_devices_offload_and_conserve() {
        let server = ReactorServer::start("127.0.0.1:0", ReactorServerConfig::default())
            .expect("server starts");
        let config = FleetClientConfig {
            device: ReactorDeviceConfig {
                fs: 30.0,
                duration: Duration::from_secs(3),
                deadline: Duration::from_millis(250),
                frame_bytes: 8_000,
                local_rate_fps: 13.0,
                tick: Duration::from_millis(500),
                ..ReactorDeviceConfig::default()
            },
            ..FleetClientConfig::default()
        };
        let controllers: Vec<Box<dyn Controller>> = (0..2)
            .map(|_| Box::new(FrameFeedback::new()) as Box<dyn Controller>)
            .collect();
        let summary = run_reactor_fleet(server.addr(), &config, controllers).expect("fleet runs");
        assert_eq!(summary.devices.len(), 2);
        for (i, dev) in summary.devices.iter().enumerate() {
            assert!(
                dev.frames > 60,
                "device {i} captured only {} frames",
                dev.frames
            );
            assert!(dev.offloaded > 0, "device {i} never offloaded");
            assert!(dev.successes > 0, "device {i} had no successes");
            assert!(
                dev.frames_conserved(),
                "device {i} leaked frames: offloaded {} != {} successes + {} timeouts \
                 (in flight {})",
                dev.offloaded,
                dev.successes,
                dev.timeouts,
                dev.in_flight_at_end
            );
            assert_eq!(
                dev.reconnects, 0,
                "device {i} reconnected on a healthy link"
            );
        }
        let stats = server.stats();
        assert!(stats.requests.load(std::sync::atomic::Ordering::Relaxed) > 0);
        assert!(stats.completions.load(std::sync::atomic::Ordering::Relaxed) > 0);
        server.shutdown();
    }
}
