//! Deadline timers for the reactor: the sim's hierarchical timing wheel
//! driven by wall-clock time.
//!
//! The reactor schedules the same event kinds the simulator does —
//! capture pacing, offload deadlines, controller ticks, local inference
//! completions — so it reuses [`ff_sim::TimerWheel`] verbatim (amortized
//! O(1) push/pop, `(time, seq)` FIFO determinism) and merely maps
//! `Instant`s onto the wheel's microsecond axis through the device tier's
//! `WallClock`. Backward clock jumps are legal: the wheel files
//! behind-cursor pushes in a side heap and still pops in exact
//! `(time, seq)` order, which the tests below pin down.

use ff_sim::{PopBefore, SimTime, TimerWheel};

/// A wall-clock deadline wheel over payloads of type `E`.
pub struct DeadlineWheel<E> {
    wheel: TimerWheel<E>,
    seq: u64,
}

impl<E> Default for DeadlineWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> DeadlineWheel<E> {
    /// An empty wheel.
    pub fn new() -> Self {
        DeadlineWheel {
            wheel: TimerWheel::new(),
            seq: 0,
        }
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    /// Schedule `event` to fire at `at`. Scheduling in the past is legal
    /// and fires on the next [`pop_due`](Self::pop_due).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.wheel.push(at.as_micros(), seq, event);
    }

    /// The earliest pending fire time, if any.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        self.wheel.peek().map(|(t, _)| SimTime::from_micros(t))
    }

    /// Pop the earliest timer due at or before `now`; `None` when the
    /// earliest timer is still in the future (or nothing is pending).
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.wheel.pop_before(now.as_micros()) {
            PopBefore::Event(t, _seq, e) => Some((SimTime::from_micros(t), e)),
            PopBefore::Beyond | PopBefore::Empty => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut DeadlineWheel<u32>, now: SimTime) -> Vec<u32> {
        let mut out = Vec::new();
        while let Some((_, e)) = w.pop_due(now) {
            out.push(e);
        }
        out
    }

    #[test]
    fn fires_in_time_order_with_fifo_ties() {
        let mut w = DeadlineWheel::new();
        w.schedule(SimTime::from_millis(30), 3);
        w.schedule(SimTime::from_millis(10), 1);
        w.schedule(SimTime::from_millis(10), 2);
        assert_eq!(w.next_deadline(), Some(SimTime::from_millis(10)));
        assert_eq!(drain(&mut w, SimTime::from_millis(10)), vec![1, 2]);
        assert!(w.pop_due(SimTime::from_millis(29)).is_none());
        assert_eq!(drain(&mut w, SimTime::from_millis(30)), vec![3]);
        assert!(w.is_empty());
    }

    #[test]
    fn expiry_ordering_survives_backward_clock_jumps() {
        let mut w = DeadlineWheel::new();
        // Fire one timer far along the timeline, then "jump back": new
        // timers scheduled before the wheel cursor must still fire, in
        // exact time order relative to everything else.
        w.schedule(SimTime::from_secs(100), 0);
        assert_eq!(drain(&mut w, SimTime::from_secs(100)), vec![0]);
        w.schedule(SimTime::from_secs(50), 1); // behind the cursor
        w.schedule(SimTime::from_secs(150), 3);
        w.schedule(SimTime::from_secs(50), 2); // tie with #1, FIFO
        assert_eq!(w.next_deadline(), Some(SimTime::from_secs(50)));
        assert_eq!(drain(&mut w, SimTime::from_secs(49)), Vec::<u32>::new());
        assert_eq!(drain(&mut w, SimTime::from_secs(50)), vec![1, 2]);
        assert_eq!(drain(&mut w, SimTime::from_secs(200)), vec![3]);
    }

    #[test]
    fn forward_clock_jumps_fire_everything_due_in_order() {
        let mut w = DeadlineWheel::new();
        for i in 0..100u32 {
            w.schedule(SimTime::from_millis(u64::from(i) * 7), i);
        }
        // A large forward jump (the host slept) delivers the whole
        // backlog at once, still sorted by deadline.
        let fired = drain(&mut w, SimTime::from_secs(10));
        assert_eq!(fired, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_the_horizon_exactly() {
        let mut w = DeadlineWheel::new();
        w.schedule(SimTime::from_micros(1_000), 1);
        assert!(w.pop_due(SimTime::from_micros(999)).is_none());
        let (at, e) = w.pop_due(SimTime::from_micros(1_000)).expect("due");
        assert_eq!((at, e), (SimTime::from_micros(1_000), 1));
    }
}
