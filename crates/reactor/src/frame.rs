//! The `FFLP` wire codec: length-prefixed binary frames.
//!
//! The legacy live protocol (`ff_live::proto`) frames requests with a
//! fixed `u32` length and responses with a bare 9-byte record — workable,
//! but asymmetric (a stream observer must know the direction to parse)
//! and fixed-width. The reactor replaces both directions with one
//! self-describing frame:
//!
//! ```text
//! +------+-------------+--------+----------------------+
//! | FFLP | varint len  | opcode | body (len − 1 bytes) |
//! +------+-------------+--------+----------------------+
//!   4 B    1–5 B (LEB128)  1 B
//! ```
//!
//! * `len` counts the opcode byte plus the body, LEB128-encoded (base-128,
//!   little-endian groups, high bit = continuation).
//! * opcode `0x01` (request): body = `varint tag` + payload bytes.
//! * opcode `0x02` (response): body = `varint tag` + status byte
//!   (0 = ok, 1 = rejected).
//!
//! Hardening contract (the `ff-trace` codec pattern): decoding arbitrary
//! bytes **never panics** — a truncated frame is `Ok(None)` for the
//! streaming decoder and `Err` for [`decode_frame_exact`]; any corrupt
//! magic, opcode, status, or over-limit length is `Err`. Encoders append
//! into caller-owned buffers so steady-state encoding allocates nothing.

use std::fmt;

/// Frame magic, first on the wire.
pub const MAGIC: [u8; 4] = *b"FFLP";

/// Opcode for a client→server inference request.
const OP_REQUEST: u8 = 0x01;
/// Opcode for a server→client inference response.
const OP_RESPONSE: u8 = 0x02;

/// Upper bound on the declared frame length (opcode + body), mirroring
/// the legacy codec's 16 MiB cap; anything larger is corruption.
pub const MAX_FRAME_BYTES: u64 = 16 * 1024 * 1024;

/// A decoded frame, borrowing the request payload from the input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame<'a> {
    /// Client→server: run inference on `payload` (a `tag`-identified
    /// frame's bytes).
    Request {
        /// Echo token correlating the response.
        tag: u64,
        /// The frame bytes (contents are opaque to the server).
        payload: &'a [u8],
    },
    /// Server→client: the verdict for request `tag`.
    Response {
        /// The request's echo token.
        tag: u64,
        /// `true` when the frame was inferred, `false` when the batcher
        /// rejected it under load.
        ok: bool,
    },
}

/// Why a buffer failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes are not `FFLP`.
    BadMagic,
    /// The length varint is malformed (overlong or > 10 bytes).
    BadLength,
    /// The declared length exceeds [`MAX_FRAME_BYTES`] or is too short
    /// to hold the opcode.
    LengthOutOfRange,
    /// Unknown opcode byte.
    BadOpcode,
    /// A body field (tag varint, status byte) is malformed or the body
    /// length does not match the opcode's layout.
    BadBody,
    /// [`decode_frame_exact`] was given a buffer that is not exactly one
    /// well-formed frame (truncated or trailing bytes).
    Incomplete,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            FrameError::BadMagic => "bad FFLP magic",
            FrameError::BadLength => "malformed length varint",
            FrameError::LengthOutOfRange => "frame length out of range",
            FrameError::BadOpcode => "unknown opcode",
            FrameError::BadBody => "malformed frame body",
            FrameError::Incomplete => "buffer is not exactly one frame",
        };
        f.write_str(what)
    }
}

impl std::error::Error for FrameError {}

/// Append a LEB128 varint.
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Encoded size of a LEB128 varint.
fn varint_len(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Read a LEB128 varint. `Ok(None)` = more bytes needed; `Err` =
/// malformed (more than 10 bytes, or a 10th byte with bits beyond u64).
fn get_varint(buf: &[u8]) -> Result<Option<(u64, usize)>, FrameError> {
    let mut v: u64 = 0;
    for (i, &b) in buf.iter().enumerate().take(10) {
        if i == 9 && b > 0x01 {
            return Err(FrameError::BadLength);
        }
        v |= u64::from(b & 0x7f) << (7 * i);
        if b & 0x80 == 0 {
            return Ok(Some((v, i + 1)));
        }
    }
    if buf.len() >= 10 {
        return Err(FrameError::BadLength);
    }
    Ok(None)
}

/// Append an encoded request frame to `buf` (which is **not** cleared:
/// consecutive encodes coalesce, and a long-lived buffer amortizes all
/// allocation — the fix for the legacy codec's per-message `BytesMut`).
pub fn encode_request_into(tag: u64, payload: &[u8], buf: &mut Vec<u8>) {
    let body_len = 1 + varint_len(tag) + payload.len();
    debug_assert!((body_len as u64) <= MAX_FRAME_BYTES);
    buf.reserve(4 + varint_len(body_len as u64) + body_len);
    buf.extend_from_slice(&MAGIC);
    put_varint(buf, body_len as u64);
    buf.push(OP_REQUEST);
    put_varint(buf, tag);
    buf.extend_from_slice(payload);
}

/// Append an encoded response frame to `buf` (append semantics as
/// [`encode_request_into`]).
pub fn encode_response_into(tag: u64, ok: bool, buf: &mut Vec<u8>) {
    let body_len = 1 + varint_len(tag) + 1;
    buf.reserve(4 + varint_len(body_len as u64) + body_len);
    buf.extend_from_slice(&MAGIC);
    put_varint(buf, body_len as u64);
    buf.push(OP_RESPONSE);
    put_varint(buf, tag);
    buf.push(u8::from(!ok));
}

/// Streaming decode: parse one frame from the front of `buf`.
///
/// Returns `Ok(Some((frame, consumed)))` when a full frame is present,
/// `Ok(None)` when more bytes are needed, and `Err` on corruption.
/// Never panics, whatever the input.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame<'_>, usize)>, FrameError> {
    // Magic: reject as soon as any prefix byte mismatches, so a corrupt
    // stream fails fast instead of waiting for 4 bytes.
    let probe = buf.len().min(4);
    if buf[..probe] != MAGIC[..probe] {
        return Err(FrameError::BadMagic);
    }
    if buf.len() < 4 {
        return Ok(None);
    }
    let Some((len, len_bytes)) = get_varint(&buf[4..])? else {
        return Ok(None);
    };
    if !(1..=MAX_FRAME_BYTES).contains(&len) {
        return Err(FrameError::LengthOutOfRange);
    }
    let header = 4 + len_bytes;
    let total = header + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let body = &buf[header..total];
    let (op, rest) = body.split_first().expect("len >= 1 was checked");
    let frame = match *op {
        OP_REQUEST => {
            let Some((tag, n)) = get_varint(rest)? else {
                return Err(FrameError::BadBody);
            };
            Frame::Request {
                tag,
                payload: &rest[n..],
            }
        }
        OP_RESPONSE => {
            let Some((tag, n)) = get_varint(rest)? else {
                return Err(FrameError::BadBody);
            };
            match rest[n..] {
                [status] if status <= 1 => Frame::Response {
                    tag,
                    ok: status == 0,
                },
                _ => return Err(FrameError::BadBody),
            }
        }
        _ => return Err(FrameError::BadOpcode),
    };
    Ok(Some((frame, total)))
}

/// Strict decode: `buf` must contain exactly one well-formed frame.
/// Truncation and trailing garbage are both errors — the invariant the
/// codec proptests pin down.
pub fn decode_frame_exact(buf: &[u8]) -> Result<Frame<'_>, FrameError> {
    match decode_frame(buf)? {
        Some((frame, consumed)) if consumed == buf.len() => Ok(frame),
        _ => Err(FrameError::Incomplete),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn encode(frame: &Frame<'_>) -> Vec<u8> {
        let mut buf = Vec::new();
        match *frame {
            Frame::Request { tag, payload } => encode_request_into(tag, payload, &mut buf),
            Frame::Response { tag, ok } => encode_response_into(tag, ok, &mut buf),
        }
        buf
    }

    #[test]
    fn request_round_trips() {
        let payload = vec![0xAB; 300];
        let mut buf = Vec::new();
        encode_request_into(u64::MAX, &payload, &mut buf);
        let (frame, consumed) = decode_frame(&buf).expect("decodes").expect("complete");
        assert_eq!(consumed, buf.len());
        assert_eq!(
            frame,
            Frame::Request {
                tag: u64::MAX,
                payload: &payload,
            }
        );
    }

    #[test]
    fn response_round_trips_both_statuses() {
        for ok in [true, false] {
            let mut buf = Vec::new();
            encode_response_into(42, ok, &mut buf);
            assert_eq!(
                decode_frame_exact(&buf).expect("decodes"),
                Frame::Response { tag: 42, ok }
            );
        }
    }

    #[test]
    fn encoding_appends_for_coalescing() {
        let mut buf = Vec::new();
        encode_request_into(1, b"aa", &mut buf);
        let first = buf.len();
        encode_response_into(2, true, &mut buf);
        let (f1, n1) = decode_frame(&buf).unwrap().unwrap();
        assert_eq!(n1, first);
        assert!(matches!(f1, Frame::Request { tag: 1, .. }));
        let (f2, n2) = decode_frame(&buf[n1..]).unwrap().unwrap();
        assert_eq!(n1 + n2, buf.len());
        assert_eq!(f2, Frame::Response { tag: 2, ok: true });
    }

    #[test]
    fn truncation_is_incomplete_never_a_frame() {
        let mut buf = Vec::new();
        encode_request_into(7, &[9; 64], &mut buf);
        for cut in 0..buf.len() {
            match decode_frame(&buf[..cut]) {
                Ok(None) | Err(_) => {}
                Ok(Some(_)) => panic!("prefix of {cut} bytes decoded as a full frame"),
            }
            assert!(decode_frame_exact(&buf[..cut]).is_err());
        }
    }

    #[test]
    fn corrupt_magic_opcode_and_status_are_errors() {
        let mut buf = Vec::new();
        encode_response_into(3, true, &mut buf);
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert_eq!(decode_frame(&bad), Err(FrameError::BadMagic));
        let mut bad = buf.clone();
        let op_at = buf.len() - 3; // opcode, tag varint (1 B), status
        bad[op_at] = 0x7F;
        assert_eq!(decode_frame(&bad), Err(FrameError::BadOpcode));
        let mut bad = buf.clone();
        *bad.last_mut().unwrap() = 2;
        assert_eq!(decode_frame(&bad), Err(FrameError::BadBody));
    }

    #[test]
    fn oversized_declared_length_is_rejected() {
        let mut buf = MAGIC.to_vec();
        put_varint(&mut buf, MAX_FRAME_BYTES + 1);
        buf.push(OP_REQUEST);
        assert_eq!(decode_frame(&buf), Err(FrameError::LengthOutOfRange));
        let mut buf = MAGIC.to_vec();
        put_varint(&mut buf, 0);
        assert_eq!(decode_frame(&buf), Err(FrameError::LengthOutOfRange));
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&[0x80; 10]);
        assert_eq!(decode_frame(&buf), Err(FrameError::BadLength));
    }

    proptest! {
        #[test]
        fn prop_round_trip_is_byte_identical(
            tag in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..512),
            ok in any::<bool>(),
            is_request in any::<bool>(),
        ) {
            let frame = if is_request {
                Frame::Request { tag, payload: &payload }
            } else {
                Frame::Response { tag, ok }
            };
            let bytes = encode(&frame);
            // Decode → re-encode is byte-identical.
            let decoded = decode_frame_exact(&bytes).expect("round trip decodes");
            prop_assert_eq!(encode(&decoded), bytes);
        }

        #[test]
        fn prop_truncation_never_yields_a_frame(
            tag in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
            cut in any::<u64>(),
        ) {
            let mut bytes = Vec::new();
            encode_request_into(tag, &payload, &mut bytes);
            let cut = (cut % bytes.len() as u64) as usize; // strictly shorter
            prop_assert!(!matches!(decode_frame(&bytes[..cut]), Ok(Some(_))));
            prop_assert!(decode_frame_exact(&bytes[..cut]).is_err());
        }

        #[test]
        fn prop_byte_flips_never_panic_and_header_flips_err(
            tag in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
            pos in any::<u64>(),
            bit in 0u8..8,
        ) {
            let mut bytes = Vec::new();
            encode_request_into(tag, &payload, &mut bytes);
            let pos = (pos % bytes.len() as u64) as usize;
            bytes[pos] ^= 1 << bit;
            // Whatever the flip, decoding must not panic; a flip inside
            // the 4-byte magic must be detected outright.
            let out = decode_frame_exact(&bytes);
            if pos < 4 {
                prop_assert!(out.is_err());
            }
        }

        #[test]
        fn prop_arbitrary_bytes_never_panic(
            junk in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            let _ = decode_frame(&junk);
            let _ = decode_frame_exact(&junk);
        }
    }
}
