//! The readiness-driven live inference server.
//!
//! Functionally the same server as `ff_live::LiveServer` — §IV-A adaptive
//! batching (collect while a batch "executes", cap at the limit, reject
//! the overflow) with the same chaos knobs — but the execution model is
//! inverted: instead of four threads per connection, **one** thread runs
//! an epoll loop over every connection, and the GPU sleep becomes a
//! timer-wheel event (`BatchDone`), so a thousand connections cost a
//! thousand sockets and nothing else.
//!
//! Writes never block and never queue without bound: replies coalesce
//! into each connection's bounded write buffer, and a reply that does not
//! fit is **dropped and counted** (`writer_drops`) — the PR-6
//! `TcpExportSink` discipline applied to the inference path. A client
//! that stops reading loses replies, not the server's memory.

use crate::conn::{ConnStatus, EnqueueOutcome, FramedConn, InboundFrame, DEFAULT_WRITE_BUF_CAP};
use crate::timer::DeadlineWheel;
use ff_device::WallClock;
use ff_telemetry::{Level, LogCode, Metric, Recorder, Scope, Telemetry};
use mio::{Events, Interest, Poll, Token};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Token of the accept socket; connections use `Token(slot + 1)`.
const LISTENER: Token = Token(0);

/// Poll timeout cap: bounds both shutdown latency and timer slack when
/// the wheel is empty.
const IDLE_POLL: Duration = Duration::from_millis(10);

/// Server batching parameters (wall-clock analogue of `GpuProfile`),
/// mirroring `ff_live::LiveServerConfig` defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReactorServerConfig {
    /// Maximum frames per batch (paper: 15).
    pub batch_limit: usize,
    /// Fixed per-batch execution time.
    pub batch_base: Duration,
    /// Marginal execution time per frame in the batch.
    pub per_frame: Duration,
    /// Bound on buffered unwritten reply bytes per connection.
    pub write_buf_cap: usize,
    /// Seed for the per-connection chaos RNG streams.
    pub chaos_seed: u64,
}

impl Default for ReactorServerConfig {
    fn default() -> Self {
        ReactorServerConfig {
            batch_limit: 15,
            batch_base: Duration::from_millis(40),
            per_frame: Duration::from_micros(4_300),
            write_buf_cap: DEFAULT_WRITE_BUF_CAP,
            chaos_seed: 0,
        }
    }
}

/// Counters exported by a running reactor server.
#[derive(Debug, Default)]
pub struct ReactorServerStats {
    /// Requests read off connections.
    pub requests: AtomicU64,
    /// Requests that ran in a batch.
    pub completions: AtomicU64,
    /// Requests rejected as batch overflow.
    pub rejections: AtomicU64,
    /// Batches executed.
    pub batches: AtomicU64,
    /// Requests swallowed by chaos (no reply ever sent).
    pub chaos_drops: AtomicU64,
    /// Connections killed by chaos.
    pub chaos_disconnects: AtomicU64,
    /// Replies delayed by chaos.
    pub chaos_stalls: AtomicU64,
    /// Replies dropped because a connection's bounded write buffer was
    /// full (the peer stopped reading).
    pub writer_drops: AtomicU64,
    /// Total connections accepted.
    pub connections: AtomicU64,
    /// Connections currently open.
    pub open_connections: AtomicU64,
    /// Readiness events delivered by the poller.
    pub ready_events: AtomicU64,
    /// Writes that coalesced behind already-buffered bytes.
    pub coalesced_writes: AtomicU64,
}

/// Chaos probabilities in millionths, retunable while the loop runs
/// (same semantics and evaluation order as the blocking server:
/// disconnect → drop → stall, with `fail_all` overriding everything).
#[derive(Debug, Default)]
struct ChaosKnobs {
    disconnect_ppm: AtomicU32,
    drop_ppm: AtomicU32,
    stall_ppm: AtomicU32,
    stall_micros: AtomicU64,
    fail_all: AtomicBool,
}

fn to_ppm(p: f64) -> u32 {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    (p * 1_000_000.0).round() as u32
}

fn ppm_hit(ppm: u32, rng: &mut SmallRng) -> bool {
    ppm > 0 && rng.gen_range(0u32..1_000_000) < ppm
}

enum ChaosVerdict {
    Pass,
    Drop,
    Disconnect,
    Stall(Duration),
}

impl ChaosKnobs {
    fn verdict(&self, rng: &mut SmallRng) -> ChaosVerdict {
        if self.fail_all.load(Ordering::Relaxed) {
            return ChaosVerdict::Drop;
        }
        if ppm_hit(self.disconnect_ppm.load(Ordering::Relaxed), rng) {
            return ChaosVerdict::Disconnect;
        }
        if ppm_hit(self.drop_ppm.load(Ordering::Relaxed), rng) {
            return ChaosVerdict::Drop;
        }
        if ppm_hit(self.stall_ppm.load(Ordering::Relaxed), rng) {
            let d = Duration::from_micros(self.stall_micros.load(Ordering::Relaxed));
            return ChaosVerdict::Stall(d);
        }
        ChaosVerdict::Pass
    }
}

/// Runtime handle to a reactor server's chaos knobs (cloneable,
/// thread-safe); the reactor twin of `ff_live::ChaosHandle`.
#[derive(Debug, Clone)]
pub struct ReactorChaos {
    knobs: Arc<ChaosKnobs>,
}

impl ReactorChaos {
    /// Swallow every request with no reply (`true`), or restore the
    /// configured probabilities (`false`).
    pub fn fail_all(&self, on: bool) {
        self.knobs.fail_all.store(on, Ordering::Relaxed);
    }

    /// Retune the per-request disconnect probability.
    pub fn set_disconnect_probability(&self, p: f64) {
        self.knobs
            .disconnect_ppm
            .store(to_ppm(p), Ordering::Relaxed);
    }

    /// Retune the per-request drop probability.
    pub fn set_drop_probability(&self, p: f64) {
        self.knobs.drop_ppm.store(to_ppm(p), Ordering::Relaxed);
    }

    /// Retune the reply-stall probability and duration.
    pub fn set_stall(&self, p: f64, stall: Duration) {
        self.knobs.stall_ppm.store(to_ppm(p), Ordering::Relaxed);
        self.knobs
            .stall_micros
            .store(stall.as_micros() as u64, Ordering::Relaxed);
    }
}

/// A running reactor server. Dropping it (or calling
/// [`ReactorServer::shutdown`]) stops the event loop.
pub struct ReactorServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ReactorServerStats>,
    chaos: Arc<ChaosKnobs>,
    handle: Option<JoinHandle<()>>,
}

impl ReactorServer {
    /// Bind `bind` (use `127.0.0.1:0` to avoid port clashes) and serve.
    pub fn start(bind: &str, config: ReactorServerConfig) -> io::Result<ReactorServer> {
        Self::start_with(TcpListener::bind(bind)?, config)
    }

    /// Serve on an already-bound listener (restart tests keep a
    /// `try_clone` of it so the port stays held across stop/start).
    pub fn start_with(
        listener: TcpListener,
        config: ReactorServerConfig,
    ) -> io::Result<ReactorServer> {
        Self::start_instrumented(listener, config, &Telemetry::disabled())
    }

    /// Serve with a telemetry pipeline: the loop records request/batch
    /// counters, chaos verdicts, reactor gauges (ready events, write-
    /// buffer occupancy, coalesced writes) under scope `reactor/server`,
    /// timestamped in wall-clock microseconds since this call.
    pub fn start_instrumented(
        listener: TcpListener,
        config: ReactorServerConfig,
        telemetry: &Telemetry,
    ) -> io::Result<ReactorServer> {
        assert!(config.batch_limit > 0, "batch limit must be positive");
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ReactorServerStats::default());
        let chaos = Arc::new(ChaosKnobs::default());
        let recorder = telemetry.recorder();
        let scope = telemetry.scope("reactor/server");

        let handle = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let chaos = Arc::clone(&chaos);
            thread::Builder::new()
                .name("ff-reactor-server".into())
                .spawn(move || {
                    let mut lp = match ServerLoop::new(
                        listener, config, stop, stats, chaos, recorder, scope,
                    ) {
                        Ok(lp) => lp,
                        Err(_) => return,
                    };
                    lp.run();
                })?
        };

        Ok(ReactorServer {
            addr,
            stop,
            stats,
            chaos,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters (atomics; read with `Ordering::Relaxed`).
    pub fn stats(&self) -> &ReactorServerStats {
        &self.stats
    }

    /// Runtime handle to the fault-injection knobs.
    pub fn chaos(&self) -> ReactorChaos {
        ReactorChaos {
            knobs: Arc::clone(&self.chaos),
        }
    }

    /// Stop the server and join the event loop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Timer-wheel payloads of the server loop.
enum ServerTimer {
    /// The executing batch's GPU time elapsed.
    BatchDone,
    /// A chaos-stalled reply becomes writable.
    Reply {
        conn: usize,
        gen: u64,
        tag: u64,
        ok: bool,
    },
}

/// One queued (or batched) request.
struct QItem {
    conn: usize,
    gen: u64,
    tag: u64,
    stall: Option<Duration>,
}

struct SConn {
    conn: FramedConn,
    rng: SmallRng,
    /// Uniquely identifies this acceptance of the slot, so stale timers
    /// and batch items from a previous tenant cannot reach a new peer.
    gen: u64,
}

struct ServerLoop {
    listener: TcpListener,
    config: ReactorServerConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<ReactorServerStats>,
    chaos: Arc<ChaosKnobs>,
    poll: Poll,
    clock: WallClock,
    wheel: DeadlineWheel<ServerTimer>,
    conns: Vec<Option<SConn>>,
    free: Vec<usize>,
    next_gen: u64,
    queue: VecDeque<QItem>,
    batch: Vec<QItem>,
    batch_busy: bool,
    recorder: Recorder,
    scope: Scope,
}

impl ServerLoop {
    #[allow(clippy::too_many_arguments)] // one construction site, in start_instrumented
    fn new(
        listener: TcpListener,
        config: ReactorServerConfig,
        stop: Arc<AtomicBool>,
        stats: Arc<ReactorServerStats>,
        chaos: Arc<ChaosKnobs>,
        recorder: Recorder,
        scope: Scope,
    ) -> io::Result<ServerLoop> {
        let poll = Poll::new()?;
        poll.registry()
            .register(&listener, LISTENER, Interest::READABLE)?;
        Ok(ServerLoop {
            listener,
            config,
            stop,
            stats,
            chaos,
            poll,
            clock: WallClock::start(),
            wheel: DeadlineWheel::new(),
            conns: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            queue: VecDeque::new(),
            batch: Vec::new(),
            batch_busy: false,
            recorder,
            scope,
        })
    }

    fn run(&mut self) {
        self.recorder
            .log(self.scope, Level::Info, LogCode::ServerStarted, 0);
        let mut events = Events::with_capacity(1024);
        while !self.stop.load(Ordering::SeqCst) {
            let now = self.clock.now();
            while let Some((_, timer)) = self.wheel.pop_due(now) {
                self.handle_timer(timer);
            }
            self.maybe_form_batch();

            let timeout = match self.wheel.next_deadline() {
                Some(at) => {
                    Duration::from_micros(at.saturating_since(self.clock.now()).as_micros())
                        .min(IDLE_POLL)
                }
                None => IDLE_POLL,
            };
            if self.poll.poll(&mut events, Some(timeout)).is_err() {
                break;
            }
            if !events.is_empty() {
                let n = events.len() as u64;
                self.stats.ready_events.fetch_add(n, Ordering::Relaxed);
                self.recorder.counter(
                    self.scope,
                    Metric::ReadyEvents,
                    n,
                    self.clock.now().as_micros(),
                );
            }
            for ev in events.iter() {
                match ev.token() {
                    LISTENER => self.accept_all(),
                    Token(t) => {
                        let i = t - 1;
                        if ev.is_readable() || ev.is_read_closed() || ev.is_error() {
                            self.read_conn(i);
                        }
                        if ev.is_writable() {
                            self.flush_conn(i);
                        }
                    }
                }
            }
        }
        self.recorder.log(
            self.scope,
            Level::Info,
            LogCode::ServerStopped,
            self.clock.now().as_micros(),
        );
    }

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let conn = match FramedConn::new(stream, self.config.write_buf_cap) {
                        Ok(c) => c,
                        Err(_) => continue,
                    };
                    let gen = self.next_gen;
                    self.next_gen += 1;
                    let rng = SmallRng::seed_from_u64(
                        self.config.chaos_seed ^ gen.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let slot = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    if self
                        .poll
                        .registry()
                        .register(
                            conn.stream(),
                            Token(slot + 1),
                            Interest::READABLE | Interest::WRITABLE,
                        )
                        .is_err()
                    {
                        self.free.push(slot);
                        continue;
                    }
                    self.conns[slot] = Some(SConn { conn, rng, gen });
                    self.stats.connections.fetch_add(1, Ordering::Relaxed);
                    self.stats.open_connections.fetch_add(1, Ordering::Relaxed);
                    self.recorder.log(
                        self.scope,
                        Level::Info,
                        LogCode::ClientConnected,
                        self.clock.now().as_micros(),
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn read_conn(&mut self, i: usize) {
        let Some(sconn) = self.conns.get_mut(i).and_then(Option::as_mut) else {
            return;
        };
        let gen = sconn.gen;
        let fill = sconn.conn.fill();
        let now = self.clock.now();
        let t = now.as_micros();
        let mut close = !matches!(fill, Ok(ConnStatus::Open));
        loop {
            let Some(sconn) = self.conns.get_mut(i).and_then(Option::as_mut) else {
                return;
            };
            match sconn.conn.next_frame() {
                Ok(Some(InboundFrame::Request { tag, .. })) => {
                    self.stats.requests.fetch_add(1, Ordering::Relaxed);
                    self.recorder
                        .counter(self.scope, Metric::ServerRequests, 1, t);
                    match self.chaos.verdict(&mut sconn.rng) {
                        ChaosVerdict::Pass => self.queue.push_back(QItem {
                            conn: i,
                            gen,
                            tag,
                            stall: None,
                        }),
                        ChaosVerdict::Stall(d) => {
                            self.stats.chaos_stalls.fetch_add(1, Ordering::Relaxed);
                            self.recorder.counter(self.scope, Metric::ChaosStalls, 1, t);
                            self.recorder
                                .log(self.scope, Level::Warn, LogCode::ChaosStall, t);
                            self.queue.push_back(QItem {
                                conn: i,
                                gen,
                                tag,
                                stall: Some(d),
                            });
                        }
                        ChaosVerdict::Drop => {
                            self.stats.chaos_drops.fetch_add(1, Ordering::Relaxed);
                            self.recorder.counter(self.scope, Metric::ChaosDrops, 1, t);
                            self.recorder
                                .log(self.scope, Level::Warn, LogCode::ChaosDrop, t);
                        }
                        ChaosVerdict::Disconnect => {
                            self.stats.chaos_disconnects.fetch_add(1, Ordering::Relaxed);
                            self.recorder
                                .counter(self.scope, Metric::ChaosDisconnects, 1, t);
                            self.recorder
                                .log(self.scope, Level::Warn, LogCode::ChaosDisconnect, t);
                            self.close_conn(i);
                            return;
                        }
                    }
                }
                Ok(Some(InboundFrame::Response { .. })) => {
                    // A client speaking the server direction is corrupt.
                    close = true;
                    break;
                }
                Ok(None) => break,
                Err(_) => {
                    close = true;
                    break;
                }
            }
        }
        if close {
            self.close_conn(i);
        }
    }

    fn flush_conn(&mut self, i: usize) {
        let Some(sconn) = self.conns.get_mut(i).and_then(Option::as_mut) else {
            return;
        };
        if !matches!(sconn.conn.flush(), Ok(ConnStatus::Open)) {
            self.close_conn(i);
        }
    }

    fn close_conn(&mut self, i: usize) {
        if let Some(sconn) = self.conns.get_mut(i).and_then(Option::take) {
            let _ = self.poll.registry().deregister(sconn.conn.stream());
            self.stats
                .coalesced_writes
                .fetch_add(sconn.conn.coalesced_writes(), Ordering::Relaxed);
            self.stats.open_connections.fetch_sub(1, Ordering::Relaxed);
            self.free.push(i);
            self.recorder.log(
                self.scope,
                Level::Info,
                LogCode::ClientDisconnected,
                self.clock.now().as_micros(),
            );
        }
    }

    /// Paper scheme: batch = up to `limit` of the queue; reject the rest
    /// immediately (they would miss the deadline anyway — §IV-A).
    fn maybe_form_batch(&mut self) {
        if self.batch_busy || self.queue.is_empty() {
            return;
        }
        let t = self.clock.now().as_micros();
        self.recorder.gauge(
            self.scope,
            Metric::ServerQueueDepth,
            self.queue.len() as f64,
            t,
        );
        let take = self.queue.len().min(self.config.batch_limit);
        self.batch = self.queue.drain(..take).collect();
        let rejected_now = self.queue.len() as u64;
        if rejected_now > 0 {
            self.recorder
                .counter(self.scope, Metric::ServerRejections, rejected_now, t);
            self.recorder
                .log(self.scope, Level::Warn, LogCode::BatchOverflow, t);
        }
        while let Some(item) = self.queue.pop_front() {
            self.stats.rejections.fetch_add(1, Ordering::Relaxed);
            self.send_reply(item, false);
        }
        self.batch_busy = true;
        let exec = self.config.batch_base + self.config.per_frame * self.batch.len() as u32;
        let exec = ff_sim::SimDuration::from_micros(exec.as_micros() as u64);
        self.wheel
            .schedule(self.clock.now() + exec, ServerTimer::BatchDone);
    }

    fn handle_timer(&mut self, timer: ServerTimer) {
        match timer {
            ServerTimer::BatchDone => {
                let batch = std::mem::take(&mut self.batch);
                self.batch_busy = false;
                self.stats.batches.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .completions
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                let t = self.clock.now().as_micros();
                self.recorder
                    .gauge(self.scope, Metric::BatchOccupancy, batch.len() as f64, t);
                self.recorder
                    .counter(self.scope, Metric::ServerBatches, 1, t);
                self.recorder
                    .counter(self.scope, Metric::ServerCompletions, batch.len() as u64, t);
                let pending: usize = self
                    .conns
                    .iter()
                    .flatten()
                    .map(|c| c.conn.pending_write_bytes())
                    .sum();
                self.recorder
                    .gauge(self.scope, Metric::WriteBufferBytes, pending as f64, t);
                for item in batch {
                    self.send_reply(item, true);
                }
            }
            ServerTimer::Reply { conn, gen, tag, ok } => self.write_reply(conn, gen, tag, ok),
        }
    }

    fn send_reply(&mut self, item: QItem, ok: bool) {
        match item.stall {
            Some(d) => {
                let at = self.clock.now() + ff_sim::SimDuration::from_micros(d.as_micros() as u64);
                self.wheel.schedule(
                    at,
                    ServerTimer::Reply {
                        conn: item.conn,
                        gen: item.gen,
                        tag: item.tag,
                        ok,
                    },
                );
            }
            None => self.write_reply(item.conn, item.gen, item.tag, ok),
        }
    }

    fn write_reply(&mut self, conn: usize, gen: u64, tag: u64, ok: bool) {
        let Some(sconn) = self.conns.get_mut(conn).and_then(Option::as_mut) else {
            return; // connection closed since the request was queued
        };
        if sconn.gen != gen {
            return; // the slot was reused by a newer connection
        }
        match sconn.conn.enqueue_response(tag, ok) {
            EnqueueOutcome::Rejected => {
                self.stats.writer_drops.fetch_add(1, Ordering::Relaxed);
                self.recorder.counter(
                    self.scope,
                    Metric::WriterDrops,
                    1,
                    self.clock.now().as_micros(),
                );
            }
            EnqueueOutcome::Queued => {
                if !matches!(sconn.conn.flush(), Ok(ConnStatus::Open)) {
                    self.close_conn(conn);
                }
            }
        }
    }
}
