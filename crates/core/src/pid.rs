//! The FrameFeedback controller — the paper's contribution (§III).
//!
//! A discrete PD controller (the integral term is deliberately zero,
//! §III-A.1) driving the offload rate `P_o` toward the source frame rate
//! `F_s` while reacting to the end-to-end timeout rate `T` through the
//! piecewise process variable of Eq. 4:
//!
//! ```text
//! PV = P_o            if T = 0         SP = F_s
//! PV = T + 0.9·F_s    if T > 0
//! ```
//!
//! giving the piecewise error of Eq. 5:
//!
//! ```text
//! e(t) = F_s − P_o      if T = 0
//! e(t) = 0.1·F_s − T    if T > 0
//! ```
//!
//! The control output `u(t) = K_P·e + K_I·∫e + K_D·de/dt` (Eq. 2, with
//! `K_I = 0` this is Eq. 3) is clamped to the asymmetric update range of
//! Table IV — at most `+0.1·F_s` per step when increasing offloading, up
//! to `−0.5·F_s` when backing off — and accumulated into the `P_o`
//! target, itself clamped to `[0, F_s]`.

use crate::controller::{Controller, Decision, Measurement};
use serde::{Deserialize, Serialize};

/// Controller gains and limits (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidConfig {
    /// Proportional gain `K_P`.
    pub kp: f64,
    /// Integral gain `K_I` (0 in the paper; non-zero enables the full-PID
    /// ablation of DESIGN.md §7).
    pub ki: f64,
    /// Derivative gain `K_D`.
    pub kd: f64,
    /// Most negative per-step update, as a multiple of `F_s` (−0.5).
    pub update_min_factor: f64,
    /// Most positive per-step update, as a multiple of `F_s` (+0.1).
    pub update_max_factor: f64,
    /// The timeout tolerance as a fraction of `F_s` (0.1): `e = 0` when
    /// `T` equals this fraction of the frame rate.
    pub timeout_tolerance: f64,
    /// Initial offload-rate target in frames/s.
    pub initial_po: f64,
}

impl Default for PidConfig {
    /// The exact settings of Table IV.
    fn default() -> Self {
        PidConfig {
            kp: 0.2,
            ki: 0.0,
            kd: 0.26,
            update_min_factor: -0.5,
            update_max_factor: 0.1,
            timeout_tolerance: 0.1,
            initial_po: 0.0,
        }
    }
}

impl PidConfig {
    /// Table IV defaults with different proportional/derivative gains —
    /// the Figure 2 sweep.
    pub fn with_gains(kp: f64, kd: f64) -> Self {
        PidConfig {
            kp,
            kd,
            ..Default::default()
        }
    }

    fn validate(&self) {
        assert!(self.kp.is_finite() && self.kp >= 0.0, "K_P must be >= 0");
        assert!(self.ki.is_finite() && self.ki >= 0.0, "K_I must be >= 0");
        assert!(self.kd.is_finite() && self.kd >= 0.0, "K_D must be >= 0");
        assert!(
            self.update_min_factor <= 0.0,
            "update minimum must not be positive"
        );
        assert!(
            self.update_max_factor > 0.0,
            "update maximum must be positive"
        );
        assert!(
            (0.0..1.0).contains(&self.timeout_tolerance),
            "timeout tolerance must be a fraction of F_s in [0, 1)"
        );
        assert!(
            self.initial_po >= 0.0 && self.initial_po.is_finite(),
            "initial P_o must be >= 0"
        );
    }
}

/// The piecewise error function of Eq. 5. Exposed for property tests and
/// the tuning harness.
pub fn piecewise_error(cfg: &PidConfig, fs: f64, po: f64, timeout_rate: f64) -> f64 {
    if timeout_rate <= 0.0 {
        fs - po
    } else {
        cfg.timeout_tolerance * fs - timeout_rate
    }
}

/// The FrameFeedback closed-loop controller.
#[derive(Debug, Clone)]
pub struct FrameFeedback {
    config: PidConfig,
    po_target: f64,
    prev_error: Option<f64>,
    integral: f64,
}

impl FrameFeedback {
    /// A controller with the paper's Table IV settings.
    pub fn new() -> Self {
        Self::with_config(PidConfig::default())
    }

    /// A controller with explicit (validated) settings.
    pub fn with_config(config: PidConfig) -> Self {
        config.validate();
        FrameFeedback {
            config,
            po_target: config.initial_po,
            prev_error: None,
            integral: 0.0,
        }
    }

    /// The controller's settings.
    pub fn config(&self) -> &PidConfig {
        &self.config
    }

    /// The raw (unclamped) control output for a given error — visible for
    /// tests and the tuning harness.
    fn control_output(&mut self, error: f64, dt: f64, fs: f64) -> f64 {
        let derivative = match self.prev_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        if self.config.ki > 0.0 {
            // Anti-windup: accumulate only when the integral term can act
            // at all (K_I = 0 is the paper's configuration, where unbounded
            // accumulation would silently grow forever), and keep the
            // accumulated contribution within the Table IV per-step update
            // range so a long saturated phase cannot pin the output after
            // conditions change.
            self.integral += error * dt;
            let lo = self.config.update_min_factor * fs / self.config.ki;
            let hi = self.config.update_max_factor * fs / self.config.ki;
            self.integral = self.integral.clamp(lo, hi);
        }
        self.config.kp * error + self.config.ki * self.integral + self.config.kd * derivative
    }
}

impl Default for FrameFeedback {
    fn default() -> Self {
        Self::new()
    }
}

impl Controller for FrameFeedback {
    fn name(&self) -> &'static str {
        "framefeedback"
    }

    fn update(&mut self, m: &Measurement) -> Decision {
        m.validate();
        let error = piecewise_error(&self.config, m.fs, m.po_achieved, m.timeout_rate);
        let u = self.control_output(error, m.dt_secs, m.fs);
        self.prev_error = Some(error);

        // Table IV: clamp the per-step update to [−0.5·F_s, +0.1·F_s].
        let u = u.clamp(
            self.config.update_min_factor * m.fs,
            self.config.update_max_factor * m.fs,
        );

        // The actuated target is itself bounded by what exists: we cannot
        // offload more than the source produces, nor a negative rate.
        self.po_target = (self.po_target + u).clamp(0.0, m.fs);
        Decision {
            po_target: self.po_target,
        }
    }

    fn po_target(&self) -> f64 {
        self.po_target
    }

    fn reset(&mut self) {
        self.po_target = self.config.initial_po;
        self.prev_error = None;
        self.integral = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const FS: f64 = 30.0;

    fn measure(po: f64, t: f64) -> Measurement {
        Measurement {
            fs: FS,
            po_achieved: po,
            pl_achieved: 13.0,
            timeout_rate: t,
            heartbeat_ok: true,
            dt_secs: 1.0,
        }
    }

    #[test]
    fn table_iv_defaults() {
        let c = PidConfig::default();
        assert_eq!(c.kp, 0.2);
        assert_eq!(c.ki, 0.0);
        assert_eq!(c.kd, 0.26);
        assert_eq!(c.update_min_factor, -0.5);
        assert_eq!(c.update_max_factor, 0.1);
        assert_eq!(c.timeout_tolerance, 0.1);
    }

    #[test]
    fn error_function_matches_eq5() {
        let cfg = PidConfig::default();
        // T = 0: e = F_s − P_o.
        assert_eq!(piecewise_error(&cfg, FS, 10.0, 0.0), 20.0);
        assert_eq!(piecewise_error(&cfg, FS, 30.0, 0.0), 0.0);
        // T > 0: e = 0.1·F_s − T.
        assert_eq!(piecewise_error(&cfg, FS, 10.0, 3.0), 0.0);
        assert_eq!(piecewise_error(&cfg, FS, 10.0, 1.0), 2.0);
        assert_eq!(piecewise_error(&cfg, FS, 10.0, 13.0), -10.0);
    }

    #[test]
    fn integral_stays_zero_when_ki_is_zero() {
        // Regression: with the paper's K_I = 0, the integral used to
        // accumulate unboundedly anyway — dead state that grew forever
        // and would leak into the output the moment ki was reconfigured.
        let mut c = FrameFeedback::new();
        let mut po = 0.0;
        for _ in 0..10_000 {
            po = c.update(&measure(po, 0.0)).po_target;
        }
        assert_eq!(c.integral, 0.0, "integral must not accumulate at K_I = 0");
    }

    #[test]
    fn integral_contribution_is_clamped_when_ki_is_positive() {
        // Full-PID ablation: a long saturated phase (P_o pinned far from
        // F_s) must not wind the integral up past the Table IV per-step
        // update range, or recovery would lag for hundreds of intervals.
        let cfg = PidConfig {
            ki: 0.05,
            ..Default::default()
        };
        let mut c = FrameFeedback::with_config(cfg);
        for _ in 0..1_000 {
            // Persistent large positive error: P_o stuck at 0, no timeouts.
            c.update(&measure(0.0, 0.0));
        }
        let contribution = cfg.ki * c.integral;
        assert!(
            contribution <= cfg.update_max_factor * FS + 1e-9,
            "wound-up integral contribution {contribution} exceeds +0.1·F_s"
        );
        assert!(
            contribution >= cfg.update_min_factor * FS - 1e-9,
            "wound-up integral contribution {contribution} exceeds -0.5·F_s"
        );
        // And the loop still converges to F_s rather than oscillating on
        // stored error once conditions are clean.
        let mut po = c.po_target();
        for _ in 0..200 {
            po = c.update(&measure(po, 0.0)).po_target;
        }
        assert!((po - FS).abs() < 1.0, "did not settle near F_s: {po}");
    }

    #[test]
    fn ramps_up_under_clean_conditions_at_the_capped_rate() {
        let mut c = FrameFeedback::new();
        // No timeouts, large error: every step is clamped to +0.1·F_s.
        let mut po = 0.0;
        for step in 1..=10 {
            let d = c.update(&measure(po, 0.0));
            assert!(
                d.po_target <= step as f64 * 0.1 * FS + 1e-9,
                "step {step}: ramp faster than +0.1·F_s/step"
            );
            po = d.po_target;
        }
        assert!(po > 0.0);
    }

    #[test]
    fn reaches_fs_and_stays_there_when_clean() {
        let mut c = FrameFeedback::new();
        let mut po = 0.0;
        for _ in 0..100 {
            po = c.update(&measure(po, 0.0)).po_target;
        }
        assert!((po - FS).abs() < 1e-3, "P_o settled at {po}, expected F_s");
        // Still no timeouts: stays (asymptotically) at F_s.
        let po2 = c.update(&measure(po, 0.0)).po_target;
        assert!(po2 >= po && (po2 - FS).abs() < 1e-3);
    }

    #[test]
    fn heavy_timeouts_cut_po_fast() {
        let mut c = FrameFeedback::new();
        // Start at full offload.
        let mut po = 0.0;
        for _ in 0..100 {
            po = c.update(&measure(po, 0.0)).po_target;
        }
        assert!((po - FS).abs() < 1e-3);
        // Now every offloaded frame times out: T = P_o. The asymmetric
        // clamps let the controller back off much faster than it ramps up
        // (§III-B: "reacting more forcefully to timeouts").
        let before = po;
        po = c.update(&measure(po, po)).po_target;
        let drop = before - po;
        let max_up_step = 0.1 * FS;
        assert!(
            drop > 3.0 * max_up_step,
            "first reaction cut {drop:.1} fps; expected far more than the +{max_up_step} up-step"
        );
    }

    #[test]
    fn fixed_point_when_offloading_always_fails_is_tolerance_fs() {
        // §III-A.1: "P_o will stabilize to 0.1·F_s when offloading always
        // fails" — the probe floor.
        let mut c = FrameFeedback::new();
        let mut po = 15.0;
        for _ in 0..300 {
            // Everything offloaded times out.
            po = c.update(&measure(po, po)).po_target;
        }
        assert!(
            (po - 0.1 * FS).abs() < 0.5,
            "P_o fixed point {po:.2}, expected ~{}",
            0.1 * FS
        );
    }

    #[test]
    fn tolerated_timeouts_do_not_reduce_po() {
        // T exactly at 10% of F_s gives e = 0: no movement.
        let mut c = FrameFeedback::with_config(PidConfig {
            initial_po: 20.0,
            ..Default::default()
        });
        let d = c.update(&measure(20.0, 0.1 * FS));
        assert!((d.po_target - 20.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_is_immediate_when_conditions_return() {
        // After the floor, a clean interval raises P_o again at once.
        let mut c = FrameFeedback::new();
        let mut po = 15.0;
        for _ in 0..100 {
            po = c.update(&measure(po, po)).po_target;
        }
        let floored = po;
        let recovered = c.update(&measure(po, 0.0)).po_target;
        assert!(
            recovered > floored,
            "clean interval must raise P_o ({floored} -> {recovered})"
        );
    }

    #[test]
    fn po_target_never_leaves_bounds() {
        let mut c = FrameFeedback::new();
        let mut po = 0.0;
        // Alternate savage timeouts and clean intervals.
        for i in 0..200 {
            let t = if i % 3 == 0 { po } else { 0.0 };
            po = c.update(&measure(po, t)).po_target;
            assert!((0.0..=FS).contains(&po), "P_o {po} escaped [0, F_s]");
        }
    }

    #[test]
    fn derivative_term_anticipates_error_trend() {
        // Eq. 3: with a falling error the derivative contribution is
        // negative (damping an approach), with a rising error positive
        // (reacting faster) — compare PD against P-only on the same
        // two-step error sequences.
        let second_update = |cfg: PidConfig, po_seq: [f64; 2], t_seq: [f64; 2]| {
            let mut c = FrameFeedback::with_config(PidConfig {
                initial_po: 15.0,
                ..cfg
            });
            c.update(&measure(po_seq[0], t_seq[0]));
            let before = c.po_target();
            let after = c.update(&measure(po_seq[1], t_seq[1])).po_target;
            after - before
        };
        // Falling error: P_o climbing toward F_s (e: 20 → 10).
        let p_only = second_update(PidConfig::with_gains(0.2, 0.0), [10.0, 20.0], [0.0, 0.0]);
        let pd = second_update(PidConfig::with_gains(0.2, 0.26), [10.0, 20.0], [0.0, 0.0]);
        assert!(
            pd < p_only,
            "falling error: PD step {pd:.3} must be smaller than P-only {p_only:.3}"
        );
        // Rising error magnitude under timeouts (e: −2 → −7).
        let p_only = second_update(PidConfig::with_gains(0.2, 0.0), [20.0, 20.0], [5.0, 10.0]);
        let pd = second_update(PidConfig::with_gains(0.2, 0.26), [20.0, 20.0], [5.0, 10.0]);
        assert!(
            pd < p_only,
            "rising timeout error: PD must back off harder ({pd:.3} vs {p_only:.3})"
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut c = FrameFeedback::new();
        for _ in 0..10 {
            let po = c.po_target();
            c.update(&measure(po, 0.0));
        }
        assert!(c.po_target() > 0.0);
        c.reset();
        assert_eq!(c.po_target(), 0.0);
        assert_eq!(c.prev_error, None);
        assert_eq!(c.integral, 0.0);
    }

    #[test]
    fn integral_term_is_available_for_the_ablation() {
        let mut c = FrameFeedback::with_config(PidConfig {
            ki: 0.05,
            ..Default::default()
        });
        let mut po = 0.0;
        for _ in 0..50 {
            po = c.update(&measure(po, 0.0)).po_target;
        }
        assert!(po > 0.0);
    }

    #[test]
    #[should_panic(expected = "update maximum")]
    fn non_positive_update_max_rejected() {
        FrameFeedback::with_config(PidConfig {
            update_max_factor: 0.0,
            ..Default::default()
        });
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(FrameFeedback::new().name(), "framefeedback");
    }

    proptest! {
        /// Invariant: the per-step change in P_o target never exceeds the
        /// Table IV clamps, and the target stays in [0, F_s].
        #[test]
        fn prop_update_clamps_hold(
            po0 in 0.0f64..30.0,
            timeouts in proptest::collection::vec(0.0f64..40.0, 1..50),
        ) {
            let mut c = FrameFeedback::with_config(PidConfig {
                initial_po: po0,
                ..Default::default()
            });
            let mut po = po0;
            for &t in &timeouts {
                let before = c.po_target();
                po = c.update(&measure(po, t)).po_target;
                let delta = po - before;
                prop_assert!(delta <= 0.1 * FS + 1e-9, "delta {delta}");
                prop_assert!(delta >= -0.5 * FS - 1e-9, "delta {delta}");
                prop_assert!((0.0..=FS).contains(&po));
            }
        }

        /// With zero timeouts and P_o below F_s, the controller never
        /// decreases the offload target (monotone ramp).
        #[test]
        fn prop_clean_conditions_never_decrease_po(po0 in 0.0f64..29.0, steps in 1usize..50) {
            let mut c = FrameFeedback::with_config(PidConfig {
                initial_po: po0,
                ..Default::default()
            });
            let mut po = po0;
            for _ in 0..steps {
                let next = c.update(&measure(po, 0.0)).po_target;
                prop_assert!(next >= po - 1e-9, "{po} -> {next}");
                po = next;
            }
        }

        /// Table IV holds at any frame rate, not just the paper's 30 fps:
        /// for arbitrary `F_s` and arbitrary measurement sequences (achieved
        /// rates and timeout rates unrelated to the actual target), every
        /// step stays inside `[−0.5·F_s, +0.1·F_s]` and the target inside
        /// `[0, F_s]`.
        #[test]
        fn prop_update_clamps_hold_for_arbitrary_fs(
            fs in 1.0f64..240.0,
            po0_frac in 0.0f64..=1.0,
            observations in proptest::collection::vec((0.0f64..=2.0, 0.0f64..=2.0), 1..50),
        ) {
            let mut c = FrameFeedback::with_config(PidConfig {
                initial_po: po0_frac * fs,
                ..Default::default()
            });
            for &(po_frac, t_frac) in &observations {
                let before = c.po_target();
                let po = c.update(&Measurement {
                    fs,
                    po_achieved: po_frac * fs,
                    pl_achieved: 13.0,
                    timeout_rate: t_frac * fs,
                    heartbeat_ok: true,
                    dt_secs: 1.0,
                }).po_target;
                let delta = po - before;
                prop_assert!(delta <= 0.1 * fs + 1e-9, "delta {delta} > +0.1·F_s at F_s={fs}");
                prop_assert!(delta >= -0.5 * fs - 1e-9, "delta {delta} < -0.5·F_s at F_s={fs}");
                prop_assert!((0.0..=fs).contains(&po), "target {po} escaped [0, {fs}]");
            }
        }

        /// §III-A.1 probe floor at any frame rate: when every offloaded
        /// frame times out (`T = P_o`, an always-failing transport), the
        /// target converges to `0.1·F_s` from any initial `P_o`. The loop
        /// dynamics are scale-invariant in `F_s` — errors, updates, and
        /// clamps all scale linearly — so the settling band is relative.
        #[test]
        fn prop_always_failing_transport_converges_to_probe_floor(
            fs in 1.0f64..240.0,
            po0_frac in 0.0f64..=1.0,
        ) {
            let mut c = FrameFeedback::with_config(PidConfig {
                initial_po: po0_frac * fs,
                ..Default::default()
            });
            let mut po = po0_frac * fs;
            for _ in 0..400 {
                po = c.update(&Measurement {
                    fs,
                    po_achieved: po,
                    pl_achieved: 0.0,
                    timeout_rate: po,
                    heartbeat_ok: false,
                    dt_secs: 1.0,
                }).po_target;
            }
            prop_assert!(
                (po - 0.1 * fs).abs() <= 0.02 * fs,
                "P_o settled at {po:.3}, probe floor is {:.3} (F_s={fs})",
                0.1 * fs
            );
        }

        /// Sustained heavy timeouts always drive P_o down toward the
        /// probe floor, never below zero.
        #[test]
        fn prop_heavy_timeouts_drive_po_down(po0 in 10.0f64..30.0) {
            let mut c = FrameFeedback::with_config(PidConfig {
                initial_po: po0,
                ..Default::default()
            });
            let mut po = po0;
            for _ in 0..200 {
                po = c.update(&measure(po, po.max(0.1))).po_target;
            }
            prop_assert!(po <= 0.1 * FS + 1.0, "did not approach floor: {po}");
            prop_assert!(po >= 0.0);
        }
    }
}
