//! # ff-core — the FrameFeedback controller
//!
//! The paper's primary contribution: a closed-loop PD controller that
//! finds the optimal offload rate for a real-time edge-inference device
//! using only the measured end-to-end timeout rate — no model of network
//! conditions, server load, or application cost (§III).
//!
//! * [`Controller`] — the policy abstraction shared with the baselines in
//!   `ff-baselines`,
//! * [`FrameFeedback`] — the PD controller with the piecewise process
//!   variable of Eq. 4/5 and the Table IV settings ([`PidConfig`]),
//! * [`piecewise_error`] — the raw error function, exposed for tests and
//!   the tuning harness.
//!
//! ```
//! use ff_core::{Controller, FrameFeedback, Measurement};
//!
//! let mut ctl = FrameFeedback::new(); // Table IV settings
//! let decision = ctl.update(&Measurement {
//!     fs: 30.0,
//!     po_achieved: 0.0,
//!     pl_achieved: 13.0,
//!     timeout_rate: 0.0,
//!     heartbeat_ok: true,
//!     dt_secs: 1.0,
//! });
//! // Clean interval: the controller raises the offload target, but never
//! // faster than +0.1·F_s per step.
//! assert!(decision.po_target > 0.0 && decision.po_target <= 3.0);
//! ```

#![warn(missing_docs)]

mod controller;
mod pid;
mod tuning;

pub use controller::{Controller, Decision, Measurement};
pub use pid::{piecewise_error, FrameFeedback, PidConfig};
pub use tuning::{oscillation_index, tune, TunerOptions, TuningOutcome};
