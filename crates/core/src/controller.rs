//! The controller abstraction every offloading policy implements.
//!
//! Once per measurement interval (1 s in the paper) the device feeds its
//! controller a [`Measurement`] of the last interval and receives a
//! [`Decision`]: the offload-rate target for the next interval. The
//! device loop is controller-agnostic, which is how FrameFeedback and the
//! three baselines of §IV-B run under identical conditions.
//!
//! Units are plain `f64` frames-per-second and seconds so the same
//! controller code runs in the discrete-event simulator and in the live
//! TCP mode.

/// What the device measured over the last interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Source frame rate `F_s` (frames/s).
    pub fs: f64,
    /// Achieved offloading rate `P_o`: frames actually sent to the server
    /// during the interval (frames/s).
    pub po_achieved: f64,
    /// Achieved local inference rate `P_l` (frames/s).
    pub pl_achieved: f64,
    /// End-to-end timeout rate `T`: offloaded frames whose result missed
    /// the deadline, averaged over the controller's trailing window
    /// (frames/s).
    pub timeout_rate: f64,
    /// Result of this interval's heartbeat probe (a one-frame offload used
    /// by the all-or-nothing baseline, §IV-B.3): `true` iff the probe
    /// returned before the deadline. FrameFeedback ignores it.
    pub heartbeat_ok: bool,
    /// Interval length in seconds (1.0 in the paper).
    pub dt_secs: f64,
}

impl Measurement {
    /// Validation shared by all controllers: rates must be finite and
    /// non-negative and the interval positive.
    pub fn validate(&self) {
        assert!(
            self.fs.is_finite() && self.fs > 0.0,
            "F_s must be positive, got {}",
            self.fs
        );
        for (name, v) in [
            ("po_achieved", self.po_achieved),
            ("pl_achieved", self.pl_achieved),
            ("timeout_rate", self.timeout_rate),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{name} must be >= 0, got {v}");
        }
        assert!(
            self.dt_secs.is_finite() && self.dt_secs > 0.0,
            "dt must be positive, got {}",
            self.dt_secs
        );
    }
}

/// The controller's output: targets for the next interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Offload-rate target `P_o` in frames/s, guaranteed in `[0, F_s]`.
    pub po_target: f64,
}

/// An offloading policy (FrameFeedback or a baseline).
///
/// `Send` is a supertrait so boxed controllers can move into worker
/// threads: the sharded fleet driver owns one controller per device
/// inside per-shard simulation state that lives on its own thread.
pub trait Controller: Send {
    /// Short name used in experiment output ("framefeedback", "local", ...).
    fn name(&self) -> &'static str;

    /// Consume one interval's measurement; produce the next targets.
    fn update(&mut self, m: &Measurement) -> Decision;

    /// The current offload-rate target without updating.
    fn po_target(&self) -> f64;

    /// Forget all history (for reuse across experiment repetitions).
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> Measurement {
        Measurement {
            fs: 30.0,
            po_achieved: 10.0,
            pl_achieved: 13.0,
            timeout_rate: 0.0,
            heartbeat_ok: true,
            dt_secs: 1.0,
        }
    }

    #[test]
    fn valid_measurement_passes() {
        valid().validate();
    }

    #[test]
    #[should_panic(expected = "F_s")]
    fn zero_fs_rejected() {
        let mut m = valid();
        m.fs = 0.0;
        m.validate();
    }

    #[test]
    #[should_panic(expected = "timeout_rate")]
    fn negative_timeout_rejected() {
        let mut m = valid();
        m.timeout_rate = -1.0;
        m.validate();
    }

    #[test]
    #[should_panic(expected = "dt")]
    fn zero_dt_rejected() {
        let mut m = valid();
        m.dt_secs = 0.0;
        m.validate();
    }

    #[test]
    #[should_panic(expected = "po_achieved")]
    fn nan_po_rejected() {
        let mut m = valid();
        m.po_achieved = f64::NAN;
        m.validate();
    }
}
