//! Automated gain tuning — the §III-B procedure as code.
//!
//! The paper tunes FrameFeedback by hand: "gradually increase `K_P` until
//! the controller sensitivity was high and the PV oscillated under
//! constant conditions. Next, we increased `K_D` to reduce the
//! oscillations and stabilize the system." (A Ziegler–Nichols-inspired
//! relay procedure; their exact method does not apply because the
//! controller is PD, not PID.)
//!
//! [`tune`] automates exactly that loop against any closed-loop *trial
//! function*: the caller runs a candidate [`PidConfig`] in their plant
//! (the DES experiment, the live mode, or a synthetic model) and returns
//! the resulting `P_o`-target trace; the tuner measures oscillation and
//! walks the gains.

use crate::pid::PidConfig;

/// Options for the tuning sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerOptions {
    /// Starting proportional gain.
    pub kp_start: f64,
    /// Multiplicative step for the `K_P` sweep.
    pub kp_growth: f64,
    /// Upper bound for `K_P` (sweep failure if exceeded).
    pub kp_max: f64,
    /// Additive step for the `K_D` sweep.
    pub kd_step: f64,
    /// Upper bound for `K_D`.
    pub kd_max: f64,
    /// Oscillation index above which a trace counts as oscillating.
    pub oscillation_threshold: f64,
    /// Fraction of the trace (from the end) scored, skipping the ramp.
    pub tail_fraction: f64,
}

impl Default for TunerOptions {
    fn default() -> Self {
        TunerOptions {
            kp_start: 0.05,
            kp_growth: 1.5,
            kp_max: 5.0,
            kd_step: 0.05,
            kd_max: 2.0,
            oscillation_threshold: 1.0,
            tail_fraction: 0.6,
        }
    }
}

/// Result of a tuning run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningOutcome {
    /// The tuned configuration (Table IV analogue).
    pub config: PidConfig,
    /// The `K_P` at which sustained oscillation first appeared.
    pub kp_at_oscillation: f64,
    /// Oscillation index of the proportional-only configuration.
    pub oscillation_before_damping: f64,
    /// Oscillation index of the final tuned configuration.
    pub oscillation_after_damping: f64,
}

/// Mean absolute successive difference over the trace tail — the
/// oscillation measure used by the tuner. A converged trace scores near
/// zero; a hunting controller scores on the order of its swing amplitude.
pub fn oscillation_index(trace: &[f64], tail_fraction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&tail_fraction),
        "tail fraction must be in [0, 1]"
    );
    if trace.len() < 3 {
        return 0.0;
    }
    let start = ((trace.len() as f64) * (1.0 - tail_fraction)) as usize;
    let tail = &trace[start.min(trace.len() - 2)..];
    tail.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (tail.len() - 1) as f64
}

/// Run the §III-B tuning procedure.
///
/// `trial` runs one closed-loop experiment with the candidate gains and
/// returns the `P_o`-target trace (one sample per controller period).
///
/// Returns `None` if no `K_P` within bounds produces oscillation (the
/// plant is overdamped — any gain works) — callers can then keep their
/// current configuration.
pub fn tune<F>(mut trial: F, opts: TunerOptions) -> Option<TuningOutcome>
where
    F: FnMut(PidConfig) -> Vec<f64>,
{
    // Phase 1: raise K_P until the PV oscillates under constant conditions.
    let mut kp = opts.kp_start;
    let mut kp_osc = None;
    while kp <= opts.kp_max {
        let trace = trial(PidConfig::with_gains(kp, 0.0));
        let osc = oscillation_index(&trace, opts.tail_fraction);
        if osc > opts.oscillation_threshold {
            kp_osc = Some((kp, osc));
            break;
        }
        kp *= opts.kp_growth;
    }
    let (kp, osc_before) = kp_osc?;

    // Phase 2: sweep K_D and keep the value that damps the oscillation
    // best (ties go to the smaller K_D — less derivative noise
    // amplification). K_D = 0 is in the grid, so the outcome can never be
    // worse than the proportional-only controller.
    let mut best_kd = 0.0;
    let mut best_osc = osc_before;
    let mut kd = opts.kd_step;
    while kd <= opts.kd_max {
        let trace = trial(PidConfig::with_gains(kp, kd));
        let osc = oscillation_index(&trace, opts.tail_fraction);
        if osc < best_osc {
            best_osc = osc;
            best_kd = kd;
        }
        kd += opts.kd_step;
    }

    Some(TuningOutcome {
        config: PidConfig::with_gains(kp, best_kd),
        kp_at_oscillation: kp,
        oscillation_before_damping: osc_before,
        oscillation_after_damping: best_osc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{Controller, Measurement};
    use crate::pid::FrameFeedback;

    /// A synthetic closed-loop plant: offloading above capacity `c`
    /// produces timeouts one interval later (transport lag), observed
    /// through the same 3-interval trailing average the real device
    /// measurement path uses. The lag is exactly what makes high-gain
    /// controllers oscillate.
    fn capacity_plant(c: f64, steps: usize) -> impl FnMut(PidConfig) -> Vec<f64> {
        move |config: PidConfig| {
            let mut ctl = FrameFeedback::with_config(config);
            let fs = 30.0;
            let mut po = 0.0_f64;
            let mut raw_pending = 0.0_f64; // timeouts observed next interval
            let mut window = [0.0_f64; 3];
            let mut trace = Vec::with_capacity(steps);
            for i in 0..steps {
                window[i % 3] = raw_pending;
                let t_now = window.iter().sum::<f64>() / 3.0;
                raw_pending = (po - c).max(0.0);
                po = ctl
                    .update(&Measurement {
                        fs,
                        po_achieved: po,
                        pl_achieved: 10.0,
                        timeout_rate: t_now,
                        heartbeat_ok: true,
                        dt_secs: 1.0,
                    })
                    .po_target;
                trace.push(po);
            }
            trace
        }
    }

    #[test]
    fn oscillation_index_distinguishes_stable_from_hunting() {
        let stable: Vec<f64> = (0..100).map(|i| 30.0 - 30.0 * 0.8_f64.powi(i)).collect();
        let hunting: Vec<f64> = (0..100).map(|i| 20.0 + 8.0 * (-1.0_f64).powi(i)).collect();
        assert!(oscillation_index(&stable, 0.6) < 0.1);
        assert!(oscillation_index(&hunting, 0.6) > 10.0);
    }

    #[test]
    fn oscillation_index_of_tiny_traces_is_zero() {
        assert_eq!(oscillation_index(&[], 0.6), 0.0);
        assert_eq!(oscillation_index(&[1.0, 2.0], 0.6), 0.0);
    }

    #[test]
    fn tuner_reproduces_the_paper_procedure_on_a_lagged_plant() {
        let outcome = tune(capacity_plant(15.0, 120), TunerOptions::default())
            .expect("the lagged plant oscillates at high K_P");
        // Oscillation found, then damped.
        assert!(outcome.kp_at_oscillation > 0.0);
        assert!(outcome.config.kd > 0.0, "damping must be added");
        assert!(
            outcome.oscillation_after_damping < outcome.oscillation_before_damping,
            "tuning must reduce oscillation: {} -> {}",
            outcome.oscillation_before_damping,
            outcome.oscillation_after_damping
        );
    }

    #[test]
    fn tuned_gains_are_in_the_paper_ballpark() {
        // The paper landed on K_P = 0.2, K_D = 0.26 for its testbed; a
        // plant with capacity near the Fig. 2 operating point should tune
        // to the same order of magnitude.
        let outcome = tune(capacity_plant(15.0, 120), TunerOptions::default()).unwrap();
        assert!(
            (0.02..=2.0).contains(&outcome.config.kp),
            "K_P {} out of plausible range",
            outcome.config.kp
        );
        assert!(
            (0.01..=2.0).contains(&outcome.config.kd),
            "K_D {} out of plausible range",
            outcome.config.kd
        );
    }

    #[test]
    fn overdamped_plant_yields_none() {
        // A plant with no feedback at all (never any timeouts): P_o ramps
        // to F_s and sits there — no K_P oscillates it.
        let trial = |config: PidConfig| {
            let mut ctl = FrameFeedback::with_config(config);
            let mut po = 0.0;
            (0..100)
                .map(|_| {
                    po = ctl
                        .update(&Measurement {
                            fs: 30.0,
                            po_achieved: po,
                            pl_achieved: 10.0,
                            timeout_rate: 0.0,
                            heartbeat_ok: true,
                            dt_secs: 1.0,
                        })
                        .po_target;
                    po
                })
                .collect()
        };
        assert!(tune(trial, TunerOptions::default()).is_none());
    }

    #[test]
    fn tuner_is_deterministic() {
        let a = tune(capacity_plant(15.0, 120), TunerOptions::default()).unwrap();
        let b = tune(capacity_plant(15.0, 120), TunerOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "tail fraction")]
    fn bad_tail_fraction_panics() {
        oscillation_index(&[1.0, 2.0, 3.0], 1.5);
    }
}
