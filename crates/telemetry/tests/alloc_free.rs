//! Proves the recording hot path never allocates.
//!
//! A counting global allocator wraps the system allocator; the test
//! snapshots the allocation count around a burst of `Recorder` calls
//! (enabled and disabled) and asserts it did not move. All telemetry
//! allocation must happen at setup (`Telemetry::new`, `recorder()`,
//! `scope()`) or at collection (`poll`/`finish`) — never on record.

use ff_telemetry::{Level, LogCode, Metric, Telemetry, TelemetryConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn enabled_recorder_hot_path_is_allocation_free() {
    let telemetry = Telemetry::new(TelemetryConfig {
        window_us: 1_000_000,
        ring_capacity: 64, // small: force wrap-around overwrites too
    });
    let scope = telemetry.scope("device/0");
    let mut rec = telemetry.recorder();
    // Warm up one pass so any lazy one-time init (FF_LOG parse) is done.
    rec.counter(scope, Metric::FramesOffloaded, 1, 0);
    rec.log(scope, Level::Debug, LogCode::ChaosDrop, 0);

    let before = allocations();
    for i in 0..10_000u64 {
        rec.counter(scope, Metric::FramesOffloaded, 1, i);
        rec.gauge(scope, Metric::Po, 0.5, i);
        rec.latency(scope, Metric::OffloadLatencyMs, 7.5, i);
        rec.log(scope, Level::Debug, LogCode::ChaosDrop, i);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "recording 40k events (with ring wrap-around) must not allocate"
    );

    // Collection may allocate; the accounting must still balance.
    telemetry.finish();
    assert_eq!(
        telemetry.events_consumed() + telemetry.dropped_events(),
        telemetry.events_produced()
    );
}

#[test]
fn disabled_recorder_hot_path_is_allocation_free() {
    let telemetry = Telemetry::disabled();
    let scope = telemetry.scope("device/0");
    let mut rec = telemetry.recorder();
    rec.counter(scope, Metric::FramesOffloaded, 1, 0);

    let before = allocations();
    for i in 0..10_000u64 {
        rec.counter(scope, Metric::FramesOffloaded, 1, i);
        rec.gauge(scope, Metric::Po, 0.5, i);
        rec.latency(scope, Metric::OffloadLatencyMs, 7.5, i);
    }
    assert_eq!(allocations() - before, 0, "disabled recording must be free");
    assert_eq!(telemetry.events_produced(), 0);
}
