//! The `Telemetry` hub and the per-producer `Recorder` handles.

use crate::collect::{Fold, Snapshot};
use crate::event::{Event, EventKind, Metric};
use crate::log::{self, Level, LogCode};
use crate::ring::Ring;
use crate::sink::{ChannelSink, Sink};
use crossbeam::channel::Receiver;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Telemetry pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Snapshot window length in microseconds on the event time axis
    /// (default: one second, matching the controller tick).
    pub window_us: u64,
    /// Per-producer ring capacity in events (rounded up to a power of
    /// two). When a producer outruns collection by more than this, the
    /// oldest events are dropped and counted.
    pub ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            window_us: 1_000_000,
            ring_capacity: 1 << 14,
        }
    }
}

/// An interned scope name (e.g. `device/3`). Cheap to copy into events;
/// resolved back to its string in snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scope(pub(crate) u16);

/// Everything behind the hub's mutex. Locked by registration, polling,
/// and sink management — never by the recording hot path.
struct Shared {
    scope_names: Vec<String>,
    rings: Vec<Arc<Ring>>,
    sinks: Vec<Box<dyn Sink>>,
    fold: Fold,
    scratch: Vec<Event>,
    snapshots: Vec<Snapshot>,
}

struct Hub {
    config: TelemetryConfig,
    shared: Mutex<Shared>,
}

/// Handle to the telemetry pipeline. Cloning is cheap (an `Arc`); a
/// disabled handle ([`Telemetry::disabled`]) makes every downstream
/// operation a no-op, so hosts thread one `Telemetry` through
/// unconditionally and pay nothing when observability is off.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Hub>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Telemetry {
    /// The default is **disabled**: simulations opt in explicitly.
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// A disabled pipeline: recorders are no-ops, polling does nothing.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// An enabled pipeline with the default configuration.
    pub fn enabled() -> Telemetry {
        Telemetry::new(TelemetryConfig::default())
    }

    /// An enabled pipeline with an explicit configuration.
    pub fn new(config: TelemetryConfig) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Hub {
                config,
                shared: Mutex::new(Shared {
                    scope_names: Vec::new(),
                    rings: Vec::new(),
                    sinks: Vec::new(),
                    fold: Fold::new(config.window_us),
                    scratch: Vec::new(),
                    snapshots: Vec::new(),
                }),
            })),
        }
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Intern a scope name. Idempotent; on a disabled pipeline returns a
    /// placeholder scope.
    pub fn scope(&self, name: &str) -> Scope {
        let Some(hub) = &self.inner else {
            return Scope(0);
        };
        let mut shared = hub.shared.lock();
        if let Some(id) = shared.scope_names.iter().position(|n| n == name) {
            return Scope(id as u16);
        }
        let id = shared.scope_names.len();
        assert!(id < u16::MAX as usize, "too many telemetry scopes");
        shared.scope_names.push(name.to_string());
        Scope(id as u16)
    }

    /// Create a recorder backed by a fresh ring. **One recorder per
    /// producer thread**: the recorder is deliberately not `Clone`, which
    /// is what makes the ring single-producer without hot-path locking.
    /// All allocation happens here, never on record.
    pub fn recorder(&self) -> Recorder {
        let Some(hub) = &self.inner else {
            return Recorder { ring: None };
        };
        let ring = Arc::new(Ring::new(hub.config.ring_capacity));
        hub.shared.lock().rings.push(Arc::clone(&ring));
        Recorder { ring: Some(ring) }
    }

    /// Attach a snapshot sink. Sinks added after snapshots were already
    /// emitted only see subsequent ones.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        if let Some(hub) = &self.inner {
            hub.shared.lock().sinks.push(sink);
        }
    }

    /// Attach an in-process subscriber channel and return its receiver
    /// (`None` on a disabled pipeline).
    pub fn subscribe(&self) -> Option<Receiver<Snapshot>> {
        let Some(_) = &self.inner else { return None };
        let (sink, rx) = ChannelSink::new();
        self.add_sink(Box::new(sink));
        Some(rx)
    }

    /// Drain every ring and emit snapshots for all windows that closed.
    /// Cheap when nothing happened; safe to call from any thread and at
    /// any cadence — snapshot *content* depends only on the recorded
    /// event stream (windows are keyed by event time, not by when this
    /// runs).
    pub fn poll(&self) {
        self.collect(false);
    }

    /// Drain, close the final (partial) window, and flush all sinks.
    pub fn finish(&self) {
        self.collect(true);
    }

    fn collect(&self, finish: bool) {
        let Some(hub) = &self.inner else { return };
        let mut shared = hub.shared.lock();
        let shared = &mut *shared;
        shared.scratch.clear();
        for ring in &shared.rings {
            ring.drain(&mut shared.scratch);
        }
        let dropped: u64 = shared.rings.iter().map(|r| r.dropped()).sum();
        shared.snapshots.clear();
        shared.fold.apply(
            &shared.scratch,
            &shared.scope_names,
            dropped,
            &mut shared.snapshots,
        );
        if finish {
            shared
                .fold
                .finish(&shared.scope_names, dropped, &mut shared.snapshots);
        }
        // Deliver outside the fold, still under the hub lock (sinks may
        // be slow but correctness never depends on timing).
        for i in 0..shared.snapshots.len() {
            for sink in &mut shared.sinks {
                sink.emit(&shared.snapshots[i]);
            }
        }
        if finish {
            for sink in &mut shared.sinks {
                sink.flush();
            }
        }
    }

    /// Cumulative ring-buffer drops across all recorders.
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            Some(hub) => hub.shared.lock().rings.iter().map(|r| r.dropped()).sum(),
            None => 0,
        }
    }

    /// Total events folded into snapshots so far.
    pub fn events_consumed(&self) -> u64 {
        match &self.inner {
            Some(hub) => hub.shared.lock().fold.consumed(),
            None => 0,
        }
    }

    /// Total events ever recorded across all recorders.
    pub fn events_produced(&self) -> u64 {
        match &self.inner {
            Some(hub) => hub.shared.lock().rings.iter().map(|r| r.produced()).sum(),
            None => 0,
        }
    }
}

/// A single-producer recording handle.
///
/// Every record method is `#[inline]` and, on a disabled pipeline,
/// reduces to a `None` check — the "noop recorder" costs one predictable
/// branch. On an enabled pipeline a record is a few atomic stores into a
/// preallocated ring slot: no allocation, no lock, no syscall.
///
/// Methods take `&mut self` and the type is not `Clone`: exclusive
/// access *is* the single-producer guarantee the ring relies on.
pub struct Recorder {
    ring: Option<Arc<Ring>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.ring.is_some())
            .finish()
    }
}

impl Recorder {
    /// A permanently disabled recorder (for hosts built without a hub).
    pub fn disabled() -> Recorder {
        Recorder { ring: None }
    }

    /// Whether records go anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Increment a counter by `delta`.
    #[inline]
    pub fn counter(&mut self, scope: Scope, metric: Metric, delta: u64, t_us: u64) {
        if let Some(ring) = &self.ring {
            ring.push(Event {
                t_us,
                scope: scope.0,
                kind: EventKind::Counter { metric, delta },
            });
        }
    }

    /// Sample a gauge.
    #[inline]
    pub fn gauge(&mut self, scope: Scope, metric: Metric, value: f64, t_us: u64) {
        if let Some(ring) = &self.ring {
            ring.push(Event {
                t_us,
                scope: scope.0,
                kind: EventKind::Gauge { metric, value },
            });
        }
    }

    /// Record one latency observation in milliseconds.
    #[inline]
    pub fn latency(&mut self, scope: Scope, metric: Metric, ms: f64, t_us: u64) {
        if let Some(ring) = &self.ring {
            ring.push(Event {
                t_us,
                scope: scope.0,
                kind: EventKind::Latency { metric, ms },
            });
        }
    }

    /// Emit a leveled log event. Also echoed to stderr when the `FF_LOG`
    /// env var asks for this level — even on a disabled recorder, so the
    /// override works with telemetry off.
    #[inline]
    pub fn log(&mut self, scope: Scope, level: Level, code: LogCode, t_us: u64) {
        log::echo(level, code, t_us);
        if let Some(ring) = &self.ring {
            ring.push(Event {
                t_us,
                scope: scope.0,
                kind: EventKind::Log { level, code },
            });
        }
    }
}
