//! The lock-free per-producer event ring.
//!
//! One ring per producer thread (SPSC), broadcast-style: the producer is
//! **wait-free** — it always overwrites the oldest slot and never blocks,
//! allocates, or makes a syscall — and the consumer detects how far it
//! fell behind and accounts every overwritten event in a `dropped`
//! counter. Slots carry a seqlock-style sequence word so a reader that
//! races a wrap-around discards the torn slot (and counts it dropped)
//! instead of observing a half-written event.
//!
//! Accounting invariant (asserted by the concurrency tests): once the
//! producer has quiesced and the consumer drained, `consumed + dropped ==
//! produced` — events are never silently lost, only explicitly dropped.

use crate::event::Event;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// One slot: a sequence word plus the (possibly torn) event payload.
///
/// The sequence encodes the slot's logical write index `t`: `2t+1` while
/// the write of index `t` is in progress, `2t+2` once it completed. A
/// consumer reading logical index `h` accepts the payload only if it saw
/// `2h+2` both before and after the data read.
struct Slot {
    seq: AtomicU64,
    data: UnsafeCell<MaybeUninit<Event>>,
}

/// Fixed-capacity drop-oldest SPSC event ring.
pub(crate) struct Ring {
    slots: Box<[Slot]>,
    mask: u64,
    /// Next logical write index. Written only by the producer.
    tail: AtomicU64,
    /// Next logical read index. Written only by the consumer.
    head: AtomicU64,
    /// Events overwritten (or torn) before the consumer reached them.
    dropped: AtomicU64,
}

// The SPSC protocol makes concurrent access sound: `data` is only
// written by the single producer and only read through the seqlock
// validation path.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    /// A ring holding up to `capacity` events (rounded up to a power of
    /// two, minimum 2). All memory is allocated here, never on `push`.
    pub(crate) fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot]> = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                data: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Ring {
            slots,
            mask: capacity as u64 - 1,
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Capacity in events.
    pub(crate) fn capacity(&self) -> u64 {
        self.mask + 1
    }

    /// Producer side: record one event. Wait-free, allocation-free,
    /// syscall-free; overwrites the oldest slot when the consumer lags.
    ///
    /// Must only be called by the ring's single producer (enforced by
    /// `Recorder` being neither `Clone` nor shareable).
    #[inline]
    pub(crate) fn push(&self, event: Event) {
        let t = self.tail.load(Ordering::Relaxed);
        let slot = &self.slots[(t & self.mask) as usize];
        // Seqlock write protocol: odd = in progress, even = complete.
        slot.seq.store(2 * t + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        unsafe { self.write_slot(slot, event) };
        slot.seq.store(2 * t + 2, Ordering::Release);
        self.tail.store(t + 1, Ordering::Release);
    }

    /// The data write, isolated so the unsafe surface is one line.
    ///
    /// # Safety
    /// Only the single producer may call this, and only between the
    /// odd and even sequence stores for the slot.
    #[inline]
    unsafe fn write_slot(&self, slot: &Slot, event: Event) {
        std::ptr::write_volatile(slot.data.get(), MaybeUninit::new(event));
    }

    /// Consumer side: drain every available event into `out`, in
    /// production order. Events the producer overwrote before we got to
    /// them are counted into `dropped` (never silently skipped). Returns
    /// the number of events appended.
    pub(crate) fn drain(&self, out: &mut Vec<Event>) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let mut head = self.head.load(Ordering::Relaxed);
        let before = out.len();
        // If the producer lapped us, everything older than one full ring
        // behind the tail is already overwritten: account it in bulk.
        if tail.wrapping_sub(head) > self.capacity() {
            let skipped = tail - self.capacity() - head;
            self.dropped.fetch_add(skipped, Ordering::Relaxed);
            head = tail - self.capacity();
        }
        while head < tail {
            let slot = &self.slots[(head & self.mask) as usize];
            let seq_before = slot.seq.load(Ordering::Acquire);
            let raw = unsafe { std::ptr::read_volatile(slot.data.get()) };
            fence(Ordering::Acquire);
            let seq_after = slot.seq.load(Ordering::Relaxed);
            let expected = 2 * head + 2;
            if seq_before == expected && seq_after == expected {
                // Validated: the slot held index `head`'s completed write
                // for the whole read, so `raw` is not torn.
                out.push(unsafe { raw.assume_init() });
            } else {
                // The producer wrapped onto this slot mid-read; the
                // overwriting event will be consumed at its own index.
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            head += 1;
        }
        self.head.store(head, Ordering::Relaxed);
        out.len() - before
    }

    /// Events overwritten or torn before consumption, so far.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total events ever pushed.
    pub(crate) fn produced(&self) -> u64 {
        self.tail.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Metric};
    use std::sync::Arc;

    fn ev(i: u64) -> Event {
        Event {
            t_us: i,
            scope: 0,
            kind: EventKind::Counter {
                metric: Metric::CellsDone,
                delta: i,
            },
        }
    }

    #[test]
    fn drains_in_fifo_order() {
        let ring = Ring::new(8);
        for i in 0..5 {
            ring.push(ev(i));
        }
        let mut out = Vec::new();
        assert_eq!(ring.drain(&mut out), 5);
        let ts: Vec<u64> = out.iter().map(|e| e.t_us).collect();
        assert_eq!(ts, vec![0, 1, 2, 3, 4]);
        assert_eq!(ring.dropped(), 0);
        // A second drain finds nothing new.
        out.clear();
        assert_eq!(ring.drain(&mut out), 0);
    }

    #[test]
    fn overwrites_oldest_and_counts_drops() {
        let ring = Ring::new(4);
        for i in 0..10 {
            ring.push(ev(i));
        }
        let mut out = Vec::new();
        let consumed = ring.drain(&mut out);
        assert_eq!(consumed, 4, "only one ring's worth survives");
        let ts: Vec<u64> = out.iter().map(|e| e.t_us).collect();
        assert_eq!(ts, vec![6, 7, 8, 9], "the newest events survive");
        assert_eq!(ring.dropped(), 6, "the oldest events are accounted");
        assert_eq!(consumed as u64 + ring.dropped(), ring.produced());
    }

    #[test]
    fn interleaved_produce_drain_loses_nothing() {
        let ring = Ring::new(8);
        let mut out = Vec::new();
        for round in 0..100u64 {
            for i in 0..3 {
                ring.push(ev(round * 3 + i));
            }
            ring.drain(&mut out);
        }
        assert_eq!(out.len() as u64 + ring.dropped(), ring.produced());
        assert_eq!(out.len(), 300, "a keeping-up consumer drops nothing");
        // FIFO across drains.
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.t_us, i as u64);
        }
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Ring::new(0).capacity(), 2);
        assert_eq!(Ring::new(3).capacity(), 4);
        assert_eq!(Ring::new(1024).capacity(), 1024);
    }

    #[test]
    fn concurrent_producer_consumer_accounts_every_event() {
        // One producer hammering a tiny ring, one consumer polling: after
        // both finish, consumed + dropped == produced exactly.
        let ring = Arc::new(Ring::new(16));
        let total: u64 = 100_000;
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..total {
                    ring.push(ev(i));
                }
            })
        };
        let mut out = Vec::new();
        while !producer.is_finished() {
            ring.drain(&mut out);
        }
        producer.join().unwrap();
        ring.drain(&mut out);
        assert_eq!(ring.produced(), total);
        assert_eq!(
            out.len() as u64 + ring.dropped(),
            total,
            "every event is consumed or explicitly dropped"
        );
        // Consumed events are a strictly increasing subsequence — no
        // duplicates, no reordering, no torn payloads.
        let mut last = None;
        for e in &out {
            assert!(Some(e.t_us) > last, "out of order at {}", e.t_us);
            match e.kind {
                EventKind::Counter { delta, .. } => assert_eq!(delta, e.t_us, "torn payload"),
                _ => panic!("torn event kind"),
            }
            last = Some(e.t_us);
        }
    }
}
