//! The POD event vocabulary carried through the recorder rings.
//!
//! Everything in an [`Event`] is `Copy` with no heap payload: metric
//! identities, log levels, and log codes are fieldless enums that resolve
//! to `&'static str` names only at collection time, so the hot recording
//! path never touches an allocator or formats a string.

use crate::log::{Level, LogCode};

/// Identity of one instrument. Fieldless so events stay `Copy`; the
/// string name only materializes in snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // names are self-describing; see `name()`
pub enum Metric {
    // DES engine.
    EventsHandled,
    PendingEvents,
    QueueBackendWheel,
    // Device runtime.
    Po,
    Pl,
    TimeoutRate,
    TimeoutsNetwork,
    TimeoutsLoad,
    PoTarget,
    ControllerError,
    HeartbeatOk,
    InFlight,
    FramesOffloaded,
    FramesLocal,
    ProbesInFlight,
    InstantFailures,
    OffloadLatencyMs,
    // Edge server / live server.
    ServerQueueDepth,
    BatchOccupancy,
    ServerRequests,
    ServerCompletions,
    ServerRejections,
    ServerBatches,
    ChaosDrops,
    ChaosDisconnects,
    ChaosStalls,
    // Sweep workers.
    CellsDone,
    CacheHits,
    Steals,
    // Live client connection lifecycle.
    Reconnects,
    // Server tier (appended so earlier metric ids stay stable).
    AdmissionRejections,
    ServerUp,
    // Reactor live tier (appended so earlier metric ids stay stable).
    ReadyEvents,
    WriteBufferBytes,
    CoalescedWrites,
    WriterDrops,
}

impl Metric {
    /// Stable snake_case name used in snapshot JSON.
    pub const fn name(self) -> &'static str {
        match self {
            Metric::EventsHandled => "events_handled",
            Metric::PendingEvents => "pending_events",
            Metric::QueueBackendWheel => "queue_backend_wheel",
            Metric::Po => "po",
            Metric::Pl => "pl",
            Metric::TimeoutRate => "timeout_rate",
            Metric::TimeoutsNetwork => "timeouts_network",
            Metric::TimeoutsLoad => "timeouts_load",
            Metric::PoTarget => "po_target",
            Metric::ControllerError => "controller_error",
            Metric::HeartbeatOk => "heartbeat_ok",
            Metric::InFlight => "in_flight",
            Metric::FramesOffloaded => "frames_offloaded",
            Metric::FramesLocal => "frames_local",
            Metric::ProbesInFlight => "probes_in_flight",
            Metric::InstantFailures => "instant_failures",
            Metric::OffloadLatencyMs => "offload_latency_ms",
            Metric::ServerQueueDepth => "server_queue_depth",
            Metric::BatchOccupancy => "batch_occupancy",
            Metric::ServerRequests => "server_requests",
            Metric::ServerCompletions => "server_completions",
            Metric::ServerRejections => "server_rejections",
            Metric::ServerBatches => "server_batches",
            Metric::ChaosDrops => "chaos_drops",
            Metric::ChaosDisconnects => "chaos_disconnects",
            Metric::ChaosStalls => "chaos_stalls",
            Metric::CellsDone => "cells_done",
            Metric::CacheHits => "cache_hits",
            Metric::Steals => "steals",
            Metric::Reconnects => "reconnects",
            Metric::AdmissionRejections => "admission_rejections",
            Metric::ServerUp => "server_up",
            Metric::ReadyEvents => "ready_events",
            Metric::WriteBufferBytes => "write_buffer_bytes",
            Metric::CoalescedWrites => "coalesced_writes",
            Metric::WriterDrops => "writer_drops",
        }
    }

    /// Stable ordering key (snapshot metric order).
    pub(crate) const fn id(self) -> u16 {
        self as u16
    }
}

/// What one event records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// Monotone counter increment.
    Counter {
        /// The counter being incremented.
        metric: Metric,
        /// Increment (snapshots report the cumulative total).
        delta: u64,
    },
    /// Point-in-time gauge sample (last write in a window wins).
    Gauge {
        /// The gauge being set.
        metric: Metric,
        /// The sampled value.
        value: f64,
    },
    /// One latency observation folded into a `LogHistogram`.
    Latency {
        /// The latency instrument.
        metric: Metric,
        /// The observation in milliseconds.
        ms: f64,
    },
    /// A leveled, coded log event (see [`crate::log`]).
    Log {
        /// Severity.
        level: Level,
        /// What happened.
        code: LogCode,
    },
}

/// One recorded event: a timestamp (simulated or wall-mapped
/// microseconds), the emitting scope, and the payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Event time in microseconds (`SimTime::as_micros` in simulation,
    /// `WallClock`-mapped in live mode) — never the collector's clock.
    pub t_us: u64,
    /// Interned scope id (see [`crate::Telemetry::scope`]).
    pub scope: u16,
    /// The payload.
    pub kind: EventKind,
}
