//! Folding drained events into periodic, schema-versioned snapshots.
//!
//! Windows are keyed by the **event timestamps themselves** (`t_us`),
//! never by the collector's wall clock: a window closes when an event
//! beyond its end is folded. With a single producer (every simulation
//! host), the snapshot sequence is therefore a pure function of the
//! event stream — polling cadence affects only *when* snapshots are
//! delivered, not what they contain.

use crate::event::{Event, EventKind, Metric};
use ff_metrics::LogHistogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Version stamp carried by every [`Snapshot`] (bump on schema change,
/// like the sweep cache's `CACHE_SCHEMA_VERSION`).
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// One cumulative counter reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterValue {
    /// Metric name (see `Metric::name`).
    pub metric: String,
    /// Cumulative total since the run started (non-decreasing).
    pub value: u64,
}

/// One gauge reading (the scope's last write up to the window close).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeValue {
    /// Metric name.
    pub metric: String,
    /// Most recent sampled value.
    pub value: f64,
}

/// One latency distribution (cumulative since the run started).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyValue {
    /// Metric name.
    pub metric: String,
    /// Bucket-exact cumulative histogram.
    pub histogram: LogHistogram,
}

/// One log event, resolved to strings for readability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Event time in microseconds.
    pub t_us: u64,
    /// Severity name (`error`/`warn`/`info`/`debug`).
    pub level: String,
    /// Event code (e.g. `chaos_disconnect`).
    pub code: String,
}

/// Everything one scope reported, as of a window close.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeSnapshot {
    /// Scope name as registered (e.g. `device/3`, `server`, `engine`).
    pub scope: String,
    /// Cumulative counters, ordered by metric.
    pub counters: Vec<CounterValue>,
    /// Latest gauge values, ordered by metric.
    pub gauges: Vec<GaugeValue>,
    /// Cumulative latency distributions, ordered by metric.
    pub latencies: Vec<LatencyValue>,
    /// Log events that fell inside this window, in arrival order.
    pub logs: Vec<LogEntry>,
}

/// One periodic observation of the whole system.
///
/// Counters and latency histograms are cumulative (each snapshot
/// supersedes the previous one); gauges are the last sampled value;
/// `logs` are per-window. `t_us` is the closing window's end on the
/// event time axis, so a snapshot stream is monotone in `t_us`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Schema version ([`SNAPSHOT_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Zero-based snapshot index within the run.
    pub seq: u64,
    /// Window end in microseconds on the event time axis.
    pub t_us: u64,
    /// Window length in microseconds.
    pub window_us: u64,
    /// Ring-buffer events overwritten before collection, cumulative.
    pub dropped_events: u64,
    /// Per-scope state, in scope registration order.
    pub scopes: Vec<ScopeSnapshot>,
}

/// Per-scope fold state.
#[derive(Default)]
struct ScopeFold {
    counters: BTreeMap<u16, (Metric, u64)>,
    gauges: BTreeMap<u16, (Metric, f64)>,
    latencies: BTreeMap<u16, (Metric, LogHistogram)>,
    /// Log events in the currently open window.
    logs: Vec<LogEntry>,
    /// Whether this scope ever reported anything.
    touched: bool,
}

/// The collector's fold: events in, snapshots out.
pub(crate) struct Fold {
    window_us: u64,
    /// The currently open window index (`t_us / window_us`), if any
    /// event arrived yet.
    current: Option<u64>,
    next_seq: u64,
    consumed: u64,
    /// Events folded since the last emitted snapshot.
    dirty: bool,
    scopes: Vec<ScopeFold>,
}

impl Fold {
    pub(crate) fn new(window_us: u64) -> Fold {
        assert!(window_us > 0, "snapshot window must be non-empty");
        Fold {
            window_us,
            current: None,
            next_seq: 0,
            consumed: 0,
            dirty: false,
            scopes: Vec::new(),
        }
    }

    /// Total events folded so far (the "consumed" side of the
    /// `consumed + dropped == produced` accounting).
    pub(crate) fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Fold a batch of drained events, emitting a snapshot for every
    /// window that closes. `dropped_total` is the cumulative ring-drop
    /// count at drain time; `scope_names` maps scope ids to names.
    pub(crate) fn apply(
        &mut self,
        events: &[Event],
        scope_names: &[String],
        dropped_total: u64,
        out: &mut Vec<Snapshot>,
    ) {
        for event in events {
            let window = event.t_us / self.window_us;
            match self.current {
                None => self.current = Some(window),
                Some(current) if window > current => {
                    out.push(self.emit(scope_names, dropped_total));
                    self.current = Some(window);
                }
                // Late events (only possible with multiple producer
                // threads) fold into the still-open window so the
                // snapshot stream stays monotone.
                Some(_) => {}
            }
            self.consumed += 1;
            self.dirty = true;
            let scope = event.scope as usize;
            if scope >= self.scopes.len() {
                self.scopes.resize_with(scope + 1, ScopeFold::default);
            }
            let fold = &mut self.scopes[scope];
            fold.touched = true;
            match event.kind {
                EventKind::Counter { metric, delta } => {
                    fold.counters.entry(metric.id()).or_insert((metric, 0)).1 += delta;
                }
                EventKind::Gauge { metric, value } => {
                    fold.gauges.entry(metric.id()).or_insert((metric, 0.0)).1 = value;
                }
                EventKind::Latency { metric, ms } => {
                    fold.latencies
                        .entry(metric.id())
                        .or_insert_with(|| (metric, LogHistogram::for_latency_ms()))
                        .1
                        .record(ms);
                }
                EventKind::Log { level, code } => {
                    fold.logs.push(LogEntry {
                        t_us: event.t_us,
                        level: level.name().to_string(),
                        code: code.name().to_string(),
                    });
                }
            }
        }
    }

    /// Close the final (partial) window, if any events are pending.
    pub(crate) fn finish(
        &mut self,
        scope_names: &[String],
        dropped_total: u64,
        out: &mut Vec<Snapshot>,
    ) {
        if self.dirty {
            out.push(self.emit(scope_names, dropped_total));
        }
    }

    fn emit(&mut self, scope_names: &[String], dropped_total: u64) -> Snapshot {
        let window = self.current.expect("emit with no open window");
        let mut scopes = Vec::new();
        for (id, fold) in self.scopes.iter_mut().enumerate() {
            if !fold.touched {
                continue;
            }
            scopes.push(ScopeSnapshot {
                scope: scope_names
                    .get(id)
                    .cloned()
                    .unwrap_or_else(|| format!("scope/{id}")),
                counters: fold
                    .counters
                    .values()
                    .map(|(m, v)| CounterValue {
                        metric: m.name().to_string(),
                        value: *v,
                    })
                    .collect(),
                gauges: fold
                    .gauges
                    .values()
                    .map(|(m, v)| GaugeValue {
                        metric: m.name().to_string(),
                        value: *v,
                    })
                    .collect(),
                latencies: fold
                    .latencies
                    .values()
                    .map(|(m, h)| LatencyValue {
                        metric: m.name().to_string(),
                        histogram: h.clone(),
                    })
                    .collect(),
                logs: std::mem::take(&mut fold.logs),
            });
        }
        let snapshot = Snapshot {
            schema: SNAPSHOT_SCHEMA_VERSION,
            seq: self.next_seq,
            t_us: (window + 1) * self.window_us,
            window_us: self.window_us,
            dropped_events: dropped_total,
            scopes,
        };
        self.next_seq += 1;
        self.dirty = false;
        snapshot
    }
}
