//! Pluggable snapshot sinks.
//!
//! A [`Sink`] receives every emitted [`Snapshot`]. Sinks run on whatever
//! thread calls `Telemetry::poll`/`finish` — never on a recording hot
//! path — so they may allocate, lock, and do I/O freely. The TCP export
//! sink lives in `ff-live` (it owns the sockets); the in-process channel
//! and JSONL file sinks live here.

use crate::collect::Snapshot;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A consumer of emitted snapshots.
pub trait Sink: Send {
    /// Deliver one snapshot. Failures must be absorbed (telemetry never
    /// takes down the host).
    fn emit(&mut self, snapshot: &Snapshot);

    /// Flush buffered output (called by `Telemetry::finish`).
    fn flush(&mut self) {}
}

/// Appends each snapshot as one compact JSON line to a file.
pub struct JsonlSink {
    writer: BufWriter<File>,
}

impl JsonlSink {
    /// Create (truncating) the JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl Sink for JsonlSink {
    fn emit(&mut self, snapshot: &Snapshot) {
        if let Ok(json) = serde_json::to_string(snapshot) {
            let _ = writeln!(self.writer, "{json}");
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Forwards snapshots to an in-process subscriber channel.
pub struct ChannelSink {
    tx: Sender<Snapshot>,
}

impl ChannelSink {
    /// A sink plus the receiver that observes everything it emits.
    pub fn new() -> (ChannelSink, Receiver<Snapshot>) {
        let (tx, rx) = unbounded();
        (ChannelSink { tx }, rx)
    }
}

impl Sink for ChannelSink {
    fn emit(&mut self, snapshot: &Snapshot) {
        // A dropped receiver just means the subscriber went away.
        let _ = self.tx.send(snapshot.clone());
    }
}
