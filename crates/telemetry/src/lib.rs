//! `ff-telemetry`: deterministic, low-overhead observability for
//! FrameFeedback hosts.
//!
//! # Architecture
//!
//! ```text
//!  producer threads                 collector (any thread)      sinks
//!  ────────────────                 ──────────────────────      ─────
//!  Recorder::counter ──┐
//!  Recorder::gauge   ──┼─► SPSC ring ─┐
//!  Recorder::latency ──┘  (per        ├─► Telemetry::poll ──► Snapshot ─► JsonlSink
//!                          recorder)  │    fold into             │      ─► ChannelSink
//!  Recorder::log ────────► SPSC ring ─┘    time windows          └─────► TCP export
//!                                                                        (ff-live)
//! ```
//!
//! * A [`Recorder`] is a per-producer-thread handle: recording is
//!   wait-free, allocation-free, lock-free, and syscall-free (a few
//!   atomic stores into a preallocated ring slot). When the pipeline is
//!   disabled, every record is a single branch.
//! * [`Telemetry::poll`] drains the rings and folds events into
//!   periodic [`Snapshot`]s — windows keyed by the **event timestamps**
//!   (`t_us`), never by wall clock, so in simulation the snapshot
//!   stream is a pure function of the event stream.
//! * Snapshots fan out to pluggable [`Sink`]s: JSONL files, in-process
//!   subscriber channels ([`Telemetry::subscribe`]), and the
//!   line-delimited TCP export endpoint in `ff-live`.
//!
//! # Determinism contract
//!
//! Telemetry never feeds back into the system it observes: recorders do
//! not schedule simulator events, take locks shared with the hot path,
//! or perturb RNG streams. Enabling or disabling telemetry leaves
//! simulation results **bit-identical** — proven by a differential test
//! over a Table V fleet run (`tests/telemetry_inert.rs` at the
//! workspace root).
//!
//! # Backpressure
//!
//! Rings are fixed-capacity and drop-oldest: a producer that outruns
//! collection overwrites its oldest events, and every overwrite is
//! accounted in [`Snapshot::dropped_events`] (never silently lost).
//! Simulation hosts poll synchronously from the producing thread, so
//! they never drop; live hosts size rings via
//! [`TelemetryConfig::ring_capacity`].

mod collect;
mod event;
pub mod log;
mod recorder;
mod ring;
mod sink;

pub use collect::{
    CounterValue, GaugeValue, LatencyValue, LogEntry, ScopeSnapshot, Snapshot,
    SNAPSHOT_SCHEMA_VERSION,
};
pub use event::{Event, EventKind, Metric};
pub use log::{Level, LogCode};
pub use recorder::{Recorder, Scope, Telemetry, TelemetryConfig};
pub use sink::{ChannelSink, JsonlSink, Sink};

#[cfg(test)]
mod tests {
    use super::*;

    fn config(window_us: u64) -> TelemetryConfig {
        TelemetryConfig {
            window_us,
            ring_capacity: 1 << 10,
        }
    }

    /// Drive a fixed event script through a fresh pipeline and return
    /// every snapshot it emits.
    fn run_script(window_us: u64, poll_every: usize) -> Vec<Snapshot> {
        let telemetry = Telemetry::new(config(window_us));
        let device = telemetry.scope("device/0");
        let server = telemetry.scope("server");
        let rx = telemetry.subscribe().expect("enabled pipeline");
        let mut rec = telemetry.recorder();
        for i in 0..50u64 {
            let t = i * 100_000; // 10 events per 1s window
            rec.counter(device, Metric::FramesOffloaded, 1, t);
            rec.gauge(device, Metric::Po, i as f64 / 50.0, t);
            rec.latency(device, Metric::OffloadLatencyMs, 5.0 + i as f64, t);
            if i % 10 == 0 {
                rec.gauge(server, Metric::ServerQueueDepth, (i / 10) as f64, t);
            }
            if i % 7 == 0 {
                rec.log(device, Level::Warn, LogCode::ChaosDrop, t);
            }
            if ((i + 1) as usize).is_multiple_of(poll_every) {
                telemetry.poll();
            }
        }
        telemetry.finish();
        let mut out = Vec::new();
        while let Ok(s) = rx.try_recv() {
            out.push(s);
        }
        out
    }

    #[test]
    fn snapshots_are_keyed_by_event_time_and_monotone() {
        let snaps = run_script(1_000_000, 3);
        assert_eq!(snaps.len(), 5, "50 events over 5 windows");
        for (i, s) in snaps.iter().enumerate() {
            assert_eq!(s.schema, SNAPSHOT_SCHEMA_VERSION);
            assert_eq!(s.seq, i as u64);
            assert_eq!(s.t_us, (i as u64 + 1) * 1_000_000);
            assert_eq!(s.window_us, 1_000_000);
            assert_eq!(s.dropped_events, 0);
        }
    }

    #[test]
    fn snapshot_stream_is_independent_of_poll_cadence() {
        // Same event script, three very different polling rhythms: the
        // snapshot streams must be identical (determinism contract).
        let a = run_script(1_000_000, 1);
        let b = run_script(1_000_000, 13);
        let c = run_script(1_000_000, 1000); // only the final finish()
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn counters_accumulate_and_gauges_take_last_write() {
        let snaps = run_script(1_000_000, 4);
        let dev = |s: &Snapshot| {
            s.scopes
                .iter()
                .find(|sc| sc.scope == "device/0")
                .cloned()
                .expect("device scope present")
        };
        // Counter is cumulative: 10 frames per window.
        for (i, s) in snaps.iter().enumerate() {
            let d = dev(s);
            assert_eq!(d.counters[0].metric, "frames_offloaded");
            assert_eq!(d.counters[0].value, 10 * (i as u64 + 1));
        }
        // Gauge is the last write in the window: i = 9, 19, ...
        let last = dev(&snaps[4]);
        assert_eq!(last.gauges[0].metric, "po");
        assert!((last.gauges[0].value - 49.0 / 50.0).abs() < 1e-12);
        // Latency histograms are cumulative.
        let h0 = &dev(&snaps[0]).latencies[0].histogram;
        let h4 = &dev(&snaps[4]).latencies[0].histogram;
        assert_eq!(h0.count(), 10);
        assert_eq!(h4.count(), 50);
    }

    #[test]
    fn logs_are_per_window_and_in_order() {
        let snaps = run_script(1_000_000, 6);
        let all_logs: Vec<LogEntry> = snaps
            .iter()
            .flat_map(|s| s.scopes.iter().flat_map(|sc| sc.logs.clone()))
            .collect();
        // i in {0, 7, 14, 21, 28, 35, 42, 49}.
        assert_eq!(all_logs.len(), 8);
        let ts: Vec<u64> = all_logs.iter().map(|l| l.t_us).collect();
        assert_eq!(
            ts,
            vec![0, 700_000, 1_400_000, 2_100_000, 2_800_000, 3_500_000, 4_200_000, 4_900_000]
        );
        for l in &all_logs {
            assert_eq!(l.level, "warn");
            assert_eq!(l.code, "chaos_drop");
        }
        // Per-window, not cumulative: window 0 holds exactly i=0, i=7.
        let w0: usize = snaps[0].scopes.iter().map(|sc| sc.logs.len()).sum();
        assert_eq!(w0, 2);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let snaps = run_script(1_000_000, 5);
        for s in &snaps {
            let json = serde_json::to_string(s).unwrap();
            let back: Snapshot = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, s);
        }
    }

    #[test]
    fn disabled_pipeline_is_a_total_noop() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        assert!(telemetry.subscribe().is_none());
        let scope = telemetry.scope("anything");
        let mut rec = telemetry.recorder();
        assert!(!rec.is_enabled());
        rec.counter(scope, Metric::CellsDone, 1, 0);
        rec.gauge(scope, Metric::Po, 0.5, 0);
        rec.latency(scope, Metric::OffloadLatencyMs, 1.0, 0);
        telemetry.poll();
        telemetry.finish();
        assert_eq!(telemetry.events_produced(), 0);
        assert_eq!(telemetry.events_consumed(), 0);
        assert_eq!(telemetry.dropped_events(), 0);
    }

    #[test]
    fn scope_interning_is_idempotent() {
        let telemetry = Telemetry::enabled();
        let a = telemetry.scope("device/1");
        let b = telemetry.scope("device/2");
        let a2 = telemetry.scope("device/1");
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn multi_recorder_events_merge_into_one_snapshot_stream() {
        let telemetry = Telemetry::new(config(1_000_000));
        let s0 = telemetry.scope("worker/0");
        let s1 = telemetry.scope("worker/1");
        let rx = telemetry.subscribe().unwrap();
        let mut r0 = telemetry.recorder();
        let mut r1 = telemetry.recorder();
        r0.counter(s0, Metric::CellsDone, 3, 10);
        r1.counter(s1, Metric::CellsDone, 4, 20);
        telemetry.finish();
        let snap = rx.try_recv().unwrap();
        assert_eq!(snap.scopes.len(), 2);
        assert_eq!(snap.scopes[0].scope, "worker/0");
        assert_eq!(snap.scopes[0].counters[0].value, 3);
        assert_eq!(snap.scopes[1].scope, "worker/1");
        assert_eq!(snap.scopes[1].counters[0].value, 4);
        assert_eq!(telemetry.events_consumed(), 2);
        assert_eq!(telemetry.events_produced(), 2);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_snapshot() {
        let dir = std::env::temp_dir().join("ff-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("snap-{}.jsonl", std::process::id()));
        {
            let telemetry = Telemetry::new(config(1_000_000));
            let scope = telemetry.scope("device/0");
            telemetry.add_sink(Box::new(JsonlSink::create(&path).unwrap()));
            let mut rec = telemetry.recorder();
            for i in 0..30u64 {
                rec.counter(scope, Metric::FramesLocal, 1, i * 100_000);
            }
            telemetry.finish();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "3s of events in 1s windows");
        for line in &lines {
            let snap: Snapshot = serde_json::from_str(line).unwrap();
            assert_eq!(snap.schema, SNAPSHOT_SCHEMA_VERSION);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_accounting_surfaces_in_snapshots() {
        // A tiny ring with no polling in between: the producer laps the
        // consumer, and the final snapshot owns up to it.
        let telemetry = Telemetry::new(TelemetryConfig {
            window_us: 1_000_000,
            ring_capacity: 8,
        });
        let scope = telemetry.scope("device/0");
        let rx = telemetry.subscribe().unwrap();
        let mut rec = telemetry.recorder();
        for i in 0..100u64 {
            rec.counter(scope, Metric::FramesLocal, 1, i);
        }
        telemetry.finish();
        let snap = rx.try_recv().unwrap();
        assert_eq!(snap.dropped_events, 92, "ring of 8 keeps the newest 8");
        assert_eq!(snap.scopes[0].counters[0].value, 8);
        assert_eq!(
            telemetry.events_consumed() + telemetry.dropped_events(),
            telemetry.events_produced()
        );
    }
}
