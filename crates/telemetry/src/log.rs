//! Leveled, coded log events.
//!
//! Instead of ad-hoc `eprintln!` calls scattered through the live client
//! and server, hosts emit a [`LogCode`] at a [`Level`] through their
//! [`Recorder`](crate::Recorder). The event lands in the telemetry
//! stream (so chaos/reconnect actions show up in snapshots), and is
//! **quiet on stderr by default**: set `FF_LOG=error|warn|info|debug` to
//! additionally echo matching events to stderr while debugging. The
//! override is parsed once per process.

use std::sync::OnceLock;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// The operation failed and was not retried transparently.
    Error,
    /// Degraded but self-healing (chaos actions, lost connections).
    Warn,
    /// Lifecycle milestones (connects, restarts).
    Info,
    /// High-volume diagnostics.
    Debug,
}

impl Level {
    /// Stable lowercase name used in snapshot JSON and stderr echoes.
    pub const fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// What happened, as a closed vocabulary (no hot-path strings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // messages are self-describing; see `message()`
pub enum LogCode {
    ChaosDrop,
    ChaosDisconnect,
    ChaosStall,
    ChaosFailAll,
    ClientConnected,
    ClientDisconnected,
    Reconnected,
    DialFailed,
    ConnectionLost,
    ServerStarted,
    ServerStopped,
    BatchOverflow,
    ServerCrashed,
    ServerRecovered,
}

impl LogCode {
    /// Stable snake_case code used in snapshot JSON.
    pub const fn name(self) -> &'static str {
        match self {
            LogCode::ChaosDrop => "chaos_drop",
            LogCode::ChaosDisconnect => "chaos_disconnect",
            LogCode::ChaosStall => "chaos_stall",
            LogCode::ChaosFailAll => "chaos_fail_all",
            LogCode::ClientConnected => "client_connected",
            LogCode::ClientDisconnected => "client_disconnected",
            LogCode::Reconnected => "reconnected",
            LogCode::DialFailed => "dial_failed",
            LogCode::ConnectionLost => "connection_lost",
            LogCode::ServerStarted => "server_started",
            LogCode::ServerStopped => "server_stopped",
            LogCode::BatchOverflow => "batch_overflow",
            LogCode::ServerCrashed => "server_crashed",
            LogCode::ServerRecovered => "server_recovered",
        }
    }

    /// Human-readable message for stderr echoes.
    pub const fn message(self) -> &'static str {
        match self {
            LogCode::ChaosDrop => "chaos: response dropped without reply",
            LogCode::ChaosDisconnect => "chaos: connection torn down",
            LogCode::ChaosStall => "chaos: response stalled",
            LogCode::ChaosFailAll => "chaos: failing all requests",
            LogCode::ClientConnected => "client connected",
            LogCode::ClientDisconnected => "client disconnected",
            LogCode::Reconnected => "connection re-established",
            LogCode::DialFailed => "dial failed, backing off",
            LogCode::ConnectionLost => "connection lost",
            LogCode::ServerStarted => "server listening",
            LogCode::ServerStopped => "server stopped",
            LogCode::BatchOverflow => "batch queue overflow, rejecting",
            LogCode::ServerCrashed => "server crashed",
            LogCode::ServerRecovered => "server recovered",
        }
    }
}

/// The `FF_LOG` threshold, parsed once per process. `None` = quiet.
fn stderr_threshold() -> Option<Level> {
    static THRESHOLD: OnceLock<Option<Level>> = OnceLock::new();
    *THRESHOLD.get_or_init(
        || match std::env::var("FF_LOG").ok()?.to_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        },
    )
}

/// Echo a log event to stderr when `FF_LOG` asks for its level. Called
/// on every `Recorder::log`, including on disabled recorders, so the
/// env override works even with telemetry off.
pub(crate) fn echo(level: Level, code: LogCode, t_us: u64) {
    if let Some(threshold) = stderr_threshold() {
        if level <= threshold {
            eprintln!(
                "[ff {} {:.3}s] {}",
                level.name(),
                t_us as f64 / 1e6,
                code.message()
            );
        }
    }
}
