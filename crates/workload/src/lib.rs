//! # ff-workload — frame streams and scenario schedules
//!
//! Generates the evaluation workloads of the paper:
//!
//! * [`FrameSource`] — a 30 fps, 4,000-frame compressed video stream with
//!   calibrated JPEG frame sizes (§IV-A, §IV-D),
//! * [`StepSchedule`] with [`table_v()`] / [`table_vi()`] — the exact
//!   network-degradation and server-load schedules of Tables V and VI,
//! * [`fig2_loss_injection()`] — the 7%-loss-at-27 s condition of Fig. 2,
//! * [`SceneScript`] / [`SemanticFilter`] — the content-aware layer:
//!   deterministic scene-change scripts scoring each frame's information
//!   content, and the `DiffProcessor`-style skip/shrink/pass filter stage
//!   (with [`scene_static()`], [`scene_bursty()`], [`scene_cut_storm()`]
//!   as first-class scenarios).

#![warn(missing_docs)]

mod filter;
mod frames;
mod mobility;
mod replay;
mod scenario;
mod scene;

pub use filter::{FilterConfig, FilterStats, FilterVerdict, SemanticFilter};
pub use frames::{
    Frame, FrameId, FrameSource, FrameStream, StreamConfig, PAPER_DEADLINE_MS, PAPER_FPS,
    PAPER_TOTAL_FRAMES,
};
pub use mobility::{mobility_trace, MobilityConfig};
pub use replay::{ReplayCursor, ReplayFrame, ReplayFrames};
pub use scenario::{
    fig2_loss_injection, ideal_network, table_v, table_vi, BackgroundLoad, NetworkConditions,
    StepSchedule,
};
pub use scene::{scene_bursty, scene_cut_storm, scene_static, ScenePhase, SceneScript, SceneState};
