//! Video frame stream generation.
//!
//! The paper's evaluation feeds each controller "a stream of 4,000 frames
//! at 30 frames per second" sourced from ImageNet (§IV-D). Here a
//! [`FrameSource`] produces the same thing: a fixed-cadence arrival
//! process with per-frame compressed sizes sampled around the JPEG model's
//! mean. The paper found webcam vs. ImageNet indistinguishable for
//! throughput, so only cadence and size distribution matter.

use crate::scene::{SceneScript, SceneState};
use ff_models::Compression;
use ff_sim::{round_nonneg_f64, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a captured frame, unique within one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FrameId(
    /// Zero-based capture sequence number.
    pub u64,
);

/// One captured (and JPEG-compressed) video frame, as seen by the
/// offloading system: payload bytes, never pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Stream-unique frame identifier.
    pub id: FrameId,
    /// Capture instant; the end-to-end deadline is measured from here.
    pub captured_at: SimTime,
    /// Compressed payload size in bytes.
    pub bytes: u64,
}

/// Configuration of a frame stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Source frame rate `F_s` (paper: 30 fps).
    pub fps: f64,
    /// Total frames to generate (paper: 4,000 ≈ 133 s).
    pub total_frames: u64,
    /// JPEG settings determining the size distribution.
    pub compression: Compression,
    /// Multiplicative size jitter half-width; sizes are uniform in
    /// `mean · [1−jitter, 1+jitter]`. ImageNet JPEG sizes vary with scene
    /// complexity; ±20% is typical for fixed quality.
    pub size_jitter: f64,
}

/// The paper's source frame rate.
pub const PAPER_FPS: f64 = 30.0;
/// The paper's stream length in frames.
pub const PAPER_TOTAL_FRAMES: u64 = 4_000;
/// The paper's end-to-end deadline (§II-B: 250 ms).
pub const PAPER_DEADLINE_MS: u64 = 250;

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            fps: PAPER_FPS,
            total_frames: PAPER_TOTAL_FRAMES,
            compression: Compression::new(Compression::DEFAULT_QUALITY, 224),
            size_jitter: 0.2,
        }
    }
}

impl StreamConfig {
    /// Interval between consecutive frames.
    pub fn frame_interval(&self) -> SimDuration {
        assert!(self.fps > 0.0, "fps must be positive");
        SimDuration::from_secs_f64(1.0 / self.fps)
    }

    /// Duration of the whole stream.
    pub fn stream_duration(&self) -> SimDuration {
        self.frame_interval() * self.total_frames
    }
}

/// Deterministic generator of a frame stream.
#[derive(Debug, Clone)]
pub struct FrameSource<R: Rng> {
    config: StreamConfig,
    rng: R,
    next_id: u64,
    /// `config.frame_interval()`, converted once: the float→µs
    /// conversion is too slow to repeat for every captured frame.
    interval: SimDuration,
    /// `config.compression.mean_frame_bytes()`, computed once.
    mean_bytes: f64,
    /// Capture instant of frame `next_id`, advanced by `interval` per
    /// frame. Integer-µs addition, so it always equals
    /// `capture_time(next_id)` exactly.
    next_capture: SimTime,
    /// Optional scene script evolving per-frame information scores on
    /// its own RNG stream. `None` (the default) leaves the stream
    /// bit-identical to a pre-scene source.
    scene: Option<SceneState<R>>,
    /// Information score of the most recent frame (`None` until the
    /// first frame, or forever without a scene script).
    last_info: Option<f64>,
}

impl<R: Rng> FrameSource<R> {
    /// A source emitting the configured stream with sizes drawn from `rng`.
    pub fn new(config: StreamConfig, rng: R) -> Self {
        assert!(config.fps > 0.0, "fps must be positive");
        assert!(
            (0.0..1.0).contains(&config.size_jitter),
            "size jitter must be in [0, 1)"
        );
        FrameSource {
            interval: config.frame_interval(),
            mean_bytes: config.compression.mean_frame_bytes() as f64,
            config,
            rng,
            next_id: 0,
            next_capture: SimTime::ZERO,
            scene: None,
            last_info: None,
        }
    }

    /// A source whose sizes are additionally modulated by a scene
    /// script. `scene_rng` must be a dedicated stream (e.g.
    /// `rng.stream("scene")`): the size-jitter stream advances exactly
    /// as without a script, so scene-off runs stay bit-identical.
    pub fn with_scene(config: StreamConfig, rng: R, script: SceneScript, scene_rng: R) -> Self {
        let mut source = FrameSource::new(config, rng);
        source.scene = Some(SceneState::new(script, scene_rng));
        source
    }

    /// The stream configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Frames generated so far.
    pub fn generated(&self) -> u64 {
        self.next_id
    }

    /// Whether the configured stream has been exhausted.
    pub fn exhausted(&self) -> bool {
        self.next_id >= self.config.total_frames
    }

    /// Capture instant of frame `n` (0-based).
    pub fn capture_time(&self, n: u64) -> SimTime {
        SimTime::ZERO + self.interval * n
    }

    /// Capture instant of the next frame [`Self::next_frame`] will
    /// produce — `capture_time(generated())` without the multiply, for
    /// hosts that schedule the next capture event once per frame.
    pub fn next_capture_time(&self) -> SimTime {
        self.next_capture
    }

    /// Produce the next frame, or `None` when the stream is exhausted.
    pub fn next_frame(&mut self) -> Option<Frame> {
        if self.exhausted() {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        let captured_at = self.next_capture;
        self.next_capture = captured_at + self.interval;
        let j = self.config.size_jitter;
        let factor = if j == 0.0 {
            1.0
        } else {
            self.rng.gen_range(1.0 - j..=1.0 + j)
        };
        let mut bytes = self.mean_bytes * factor;
        if let Some(scene) = &mut self.scene {
            let info = scene.next_info(captured_at.as_secs_f64(), self.config.fps);
            bytes *= scene.size_factor(info);
            self.last_info = Some(info);
        }
        Some(Frame {
            id: FrameId(id),
            captured_at,
            bytes: round_nonneg_f64(bytes).max(1),
        })
    }

    /// Information score of the most recent frame, when a scene script
    /// is attached (`None` otherwise — the filter then sees every frame
    /// as full-information and passes it).
    pub fn last_info(&self) -> Option<f64> {
        self.last_info
    }
}

/// A frame stream that is either generated ([`FrameSource`]) or replayed
/// from a recorded schedule ([`ReplayCursor`](crate::ReplayCursor)) —
/// the experiment runner drives both through this one interface.
#[derive(Debug, Clone)]
pub enum FrameStream<R: Rng> {
    /// Generative stream (fixed cadence, RNG-jittered sizes).
    Generated(FrameSource<R>),
    /// Replay of a recorded capture schedule (no RNG).
    Replay(crate::replay::ReplayCursor),
}

impl<R: Rng> FrameStream<R> {
    /// Frames produced so far.
    pub fn generated(&self) -> u64 {
        match self {
            FrameStream::Generated(s) => s.generated(),
            FrameStream::Replay(c) => c.generated(),
        }
    }

    /// Whether the stream has been exhausted.
    pub fn exhausted(&self) -> bool {
        match self {
            FrameStream::Generated(s) => s.exhausted(),
            FrameStream::Replay(c) => c.exhausted(),
        }
    }

    /// Capture instant of the next frame.
    pub fn next_capture_time(&self) -> SimTime {
        match self {
            FrameStream::Generated(s) => s.next_capture_time(),
            FrameStream::Replay(c) => c.next_capture_time(),
        }
    }

    /// Produce the next frame, or `None` when exhausted.
    pub fn next_frame(&mut self) -> Option<Frame> {
        match self {
            FrameStream::Generated(s) => s.next_frame(),
            FrameStream::Replay(c) => c.next_frame(),
        }
    }

    /// Information score of the most recent frame. `None` for replayed
    /// streams (the recorded captures are post-filter) and for
    /// generated streams without a scene script.
    pub fn last_info(&self) -> Option<f64> {
        match self {
            FrameStream::Generated(s) => s.last_info(),
            FrameStream::Replay(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_sim::RngFactory;
    use proptest::prelude::*;

    fn source(cfg: StreamConfig) -> FrameSource<rand_chacha::ChaCha8Rng> {
        FrameSource::new(cfg, RngFactory::new(1).stream("frames"))
    }

    #[test]
    fn paper_stream_is_4000_frames_at_30fps() {
        let cfg = StreamConfig::default();
        assert_eq!(cfg.fps, 30.0);
        assert_eq!(cfg.total_frames, 4_000);
        // 4000 frames / 30 fps ≈ 133.3 s.
        let d = cfg.stream_duration().as_secs_f64();
        assert!((d - 133.33).abs() < 0.1, "stream lasts {d:.2}s");
    }

    #[test]
    fn frames_arrive_at_fixed_cadence() {
        let mut s = source(StreamConfig::default());
        let f0 = s.next_frame().unwrap();
        let f1 = s.next_frame().unwrap();
        let f2 = s.next_frame().unwrap();
        assert_eq!(f0.captured_at, SimTime::ZERO);
        let gap1 = f1.captured_at - f0.captured_at;
        let gap2 = f2.captured_at - f1.captured_at;
        assert_eq!(gap1, gap2);
        assert!((gap1.as_secs_f64() - 1.0 / 30.0).abs() < 1e-5);
    }

    #[test]
    fn ids_are_sequential_and_stream_exhausts() {
        let mut cfg = StreamConfig::default();
        cfg.total_frames = 5;
        let mut s = source(cfg);
        let ids: Vec<u64> = std::iter::from_fn(|| s.next_frame())
            .map(|f| f.id.0)
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(s.exhausted());
        assert!(s.next_frame().is_none());
        assert_eq!(s.generated(), 5);
    }

    #[test]
    fn sizes_jitter_around_the_compression_mean() {
        let cfg = StreamConfig::default();
        let mean = cfg.compression.mean_frame_bytes() as f64;
        let mut s = source(cfg);
        let sizes: Vec<u64> = std::iter::from_fn(|| s.next_frame())
            .map(|f| f.bytes)
            .collect();
        let lo = mean * (1.0 - cfg.size_jitter) - 1.0;
        let hi = mean * (1.0 + cfg.size_jitter) + 1.0;
        for &b in &sizes {
            assert!(
                (lo..=hi).contains(&(b as f64)),
                "size {b} outside [{lo}, {hi}]"
            );
        }
        let avg = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        assert!((avg - mean).abs() / mean < 0.02, "avg {avg} vs mean {mean}");
    }

    #[test]
    fn zero_jitter_gives_constant_sizes() {
        let mut cfg = StreamConfig::default();
        cfg.size_jitter = 0.0;
        let mut s = source(cfg);
        let a = s.next_frame().unwrap().bytes;
        let b = s.next_frame().unwrap().bytes;
        assert_eq!(a, b);
        assert_eq!(a, cfg.compression.mean_frame_bytes());
    }

    #[test]
    fn same_seed_same_stream() {
        let cfg = StreamConfig::default();
        let mut a = FrameSource::new(cfg, RngFactory::new(9).stream("frames"));
        let mut b = FrameSource::new(cfg, RngFactory::new(9).stream("frames"));
        for _ in 0..100 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn unit_jitter_rejected() {
        let mut cfg = StreamConfig::default();
        cfg.size_jitter = 1.0;
        let _ = source(cfg);
    }

    #[test]
    fn scene_modulation_draws_from_its_own_stream() {
        // A scene-scripted source must consume the frame-size stream in
        // exactly the pre-scene order: stripping the scene modulation
        // off its sizes recovers the plain source's sizes bit for bit.
        let cfg = StreamConfig::default();
        let rng = RngFactory::new(5);
        let mut plain = FrameSource::new(cfg, rng.stream("frames"));
        let mut scened = FrameSource::with_scene(
            cfg,
            rng.stream("frames"),
            crate::scene::scene_bursty(),
            rng.stream("scene"),
        );
        assert!(plain.last_info().is_none());
        for _ in 0..300 {
            let p = plain.next_frame().unwrap();
            let s = scened.next_frame().unwrap();
            assert_eq!(p.id, s.id);
            assert_eq!(p.captured_at, s.captured_at);
            let info = scened.last_info().expect("scene source scores frames");
            assert!((0.0..=1.0).contains(&info));
            // Same jitter draw underneath: the scened size divided by
            // the scene factor rounds back to the plain size (±1 for
            // the double rounding).
            let factor = 1.0 + 0.5 * (2.0 * info - 1.0);
            let recovered = (s.bytes as f64 / factor).round() as i64;
            assert!(
                (recovered - p.bytes as i64).abs() <= 1,
                "frame {}: recovered {recovered} vs plain {}",
                p.id.0,
                p.bytes
            );
        }
    }

    #[test]
    fn scene_source_is_deterministic_at_a_seed() {
        let cfg = StreamConfig::default();
        let make = || {
            let rng = RngFactory::new(77);
            FrameSource::with_scene(
                cfg,
                rng.stream("frames"),
                crate::scene::scene_cut_storm(),
                rng.stream("scene"),
            )
        };
        let mut a = make();
        let mut b = make();
        for _ in 0..500 {
            assert_eq!(a.next_frame(), b.next_frame());
            assert_eq!(
                a.last_info().map(f64::to_bits),
                b.last_info().map(f64::to_bits)
            );
        }
    }

    proptest! {
        /// Capture times are exactly periodic for any valid fps.
        #[test]
        fn prop_capture_times_periodic(fps in 1.0f64..120.0, n in 1u64..100) {
            let mut cfg = StreamConfig::default();
            cfg.fps = fps;
            let s = source(cfg);
            let t_n = s.capture_time(n).as_micros();
            let t_1 = s.capture_time(1).as_micros();
            // Within rounding, t_n == n * t_1.
            prop_assert!((t_n as i128 - (n as i128) * (t_1 as i128)).abs() <= n as i128);
        }
    }
}
