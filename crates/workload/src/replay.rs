//! Recorded frame schedules: feed a trace's capture times and sizes
//! back into the simulator as the workload.
//!
//! A binary trace (`ff-trace`) records, among everything else, every
//! frame the device captured — its instant and its raw (pre-quality-
//! adaptation) payload size. [`ReplayFrames`] extracts exactly that
//! schedule so an experiment can re-run against the *recorded* stream
//! instead of the generative [`FrameSource`](crate::FrameSource): same
//! cadence irregularities, same size sequence, no RNG.

use ff_sim::{SimDuration, SimTime};
use ff_trace::{Trace, TraceEvent};
use serde::{Deserialize, Serialize};

use crate::frames::{Frame, FrameId};

/// One recorded capture: when it happened and how many payload bytes it
/// carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayFrame {
    /// Capture instant, microseconds since the start of the run.
    pub at_us: u64,
    /// Raw compressed payload size in bytes (pre quality adaptation).
    pub bytes: u64,
}

/// A recorded frame schedule: the capture sequence of a previous run,
/// ready to be replayed as workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayFrames {
    frames: Vec<ReplayFrame>,
}

impl ReplayFrames {
    /// Build from explicit captures. Capture times must be non-
    /// decreasing and payload sizes positive.
    pub fn new(frames: Vec<ReplayFrame>) -> Self {
        for w in frames.windows(2) {
            assert!(
                w[1].at_us >= w[0].at_us,
                "replay capture times must be non-decreasing ({} then {})",
                w[0].at_us,
                w[1].at_us
            );
        }
        assert!(
            frames.iter().all(|f| f.bytes > 0),
            "replay frames must carry payload"
        );
        ReplayFrames { frames }
    }

    /// Extract the capture schedule from a decoded trace: every
    /// `Capture` event's instant and raw byte size, in recording order.
    pub fn from_trace(trace: &Trace) -> Self {
        let frames = trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Capture { at, bytes, .. } => Some(ReplayFrame {
                    at_us: at.as_micros(),
                    bytes: (*bytes).max(1),
                }),
                _ => None,
            })
            .collect();
        ReplayFrames::new(frames)
    }

    /// The recorded captures, in capture order.
    pub fn frames(&self) -> &[ReplayFrame] {
        &self.frames
    }

    /// Number of recorded captures.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Time of the last capture relative to the start of the run (zero
    /// for an empty schedule).
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_micros(self.frames.last().map_or(0, |f| f.at_us))
    }
}

/// Cursor yielding a [`ReplayFrames`] schedule through the same
/// interface as [`FrameSource`](crate::FrameSource).
#[derive(Debug, Clone)]
pub struct ReplayCursor {
    frames: ReplayFrames,
    next: usize,
}

impl ReplayCursor {
    /// Start replaying `frames` from the first capture.
    pub fn new(frames: ReplayFrames) -> Self {
        ReplayCursor { frames, next: 0 }
    }

    /// Frames yielded so far.
    pub fn generated(&self) -> u64 {
        self.next as u64
    }

    /// Whether every recorded capture has been yielded.
    pub fn exhausted(&self) -> bool {
        self.next >= self.frames.len()
    }

    /// Capture instant of the next frame (the schedule's end when
    /// exhausted).
    pub fn next_capture_time(&self) -> SimTime {
        let at_us = self
            .frames
            .frames()
            .get(self.next)
            .map_or_else(|| self.frames.duration().as_micros(), |f| f.at_us);
        SimTime::from_micros(at_us)
    }

    /// Yield the next recorded frame, or `None` when exhausted. Ids are
    /// the replay sequence numbers, so each run's tags stay unique even
    /// if the recorded run numbered frames differently.
    pub fn next_frame(&mut self) -> Option<Frame> {
        let f = *self.frames.frames().get(self.next)?;
        let id = self.next as u64;
        self.next += 1;
        Some(Frame {
            id: FrameId(id),
            captured_at: SimTime::from_micros(f.at_us),
            bytes: f.bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_trace::{TraceHeader, TraceRoute};

    fn schedule() -> ReplayFrames {
        ReplayFrames::new(vec![
            ReplayFrame {
                at_us: 0,
                bytes: 20_000,
            },
            ReplayFrame {
                at_us: 33_333,
                bytes: 24_000,
            },
            ReplayFrame {
                at_us: 66_666,
                bytes: 18_500,
            },
        ])
    }

    #[test]
    fn cursor_replays_recorded_times_and_sizes() {
        let mut c = ReplayCursor::new(schedule());
        assert!(!c.exhausted());
        assert_eq!(c.next_capture_time(), SimTime::ZERO);
        let f0 = c.next_frame().unwrap();
        assert_eq!(f0.id, FrameId(0));
        assert_eq!(f0.bytes, 20_000);
        assert_eq!(c.next_capture_time(), SimTime::from_micros(33_333));
        let f1 = c.next_frame().unwrap();
        assert_eq!(f1.captured_at, SimTime::from_micros(33_333));
        let f2 = c.next_frame().unwrap();
        assert_eq!(f2.bytes, 18_500);
        assert!(c.exhausted());
        assert!(c.next_frame().is_none());
        assert_eq!(c.generated(), 3);
    }

    #[test]
    fn duration_is_the_last_capture_time() {
        assert_eq!(schedule().duration(), SimDuration::from_micros(66_666));
        assert_eq!(
            ReplayFrames::new(Vec::new()).duration(),
            SimDuration::from_micros(0)
        );
    }

    #[test]
    fn from_trace_keeps_only_captures_in_order() {
        let trace = Trace {
            header: TraceHeader {
                fs: 30.0,
                deadline_us: 250_000,
                controller_period_us: 1_000_000,
                timeout_window_us: 3_000_000,
                probe_bytes: 25_000,
                seed: 7,
                controller: "framefeedback".into(),
                selection: 0,
                selection_margin: 0.0,
                local_accuracy: 0.68,
                remote_accuracy: 0.77,
            },
            events: vec![
                TraceEvent::Capture {
                    at: SimTime::ZERO,
                    frame_id: 0,
                    bytes: 21_000,
                    route: TraceRoute::Offload,
                },
                TraceEvent::LocalDone {
                    at: SimTime::from_micros(10_000),
                    n: 1,
                },
                TraceEvent::Capture {
                    at: SimTime::from_micros(33_333),
                    frame_id: 1,
                    bytes: 19_000,
                    route: TraceRoute::Local,
                },
            ],
        };
        let r = ReplayFrames::from_trace(&trace);
        assert_eq!(r.len(), 2);
        assert_eq!(r.frames()[0].bytes, 21_000);
        assert_eq!(r.frames()[1].at_us, 33_333);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_captures_rejected() {
        let _ = ReplayFrames::new(vec![
            ReplayFrame { at_us: 5, bytes: 1 },
            ReplayFrame { at_us: 4, bytes: 1 },
        ]);
    }

    #[test]
    #[should_panic(expected = "payload")]
    fn zero_byte_frames_rejected() {
        let _ = ReplayFrames::new(vec![ReplayFrame { at_us: 0, bytes: 0 }]);
    }
}
