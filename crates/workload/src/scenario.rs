//! Experiment scenario schedules — the paper's Tables V and VI.
//!
//! Both evaluation figures drive the system with piecewise-constant
//! condition schedules: Table V steps the network (bandwidth, loss) and
//! Table VI steps the background server load. [`StepSchedule`] is the
//! shared representation; `table_v()` / `table_vi()` are the exact
//! schedules from the paper, and `fig2_loss_injection()` reproduces the
//! tuning experiment of Figure 2.

pub use ff_net::NetworkConditions;
use serde::{Deserialize, Serialize};

/// A piecewise-constant schedule: value `v` applies from its start time
/// (seconds) until the next step's start; the last step applies forever.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepSchedule<T> {
    steps: Vec<(f64, T)>,
}

impl<T: Clone> StepSchedule<T> {
    /// Build from `(start_secs, value)` steps. The first step must start
    /// at 0 and starts must be strictly increasing.
    pub fn new(steps: Vec<(f64, T)>) -> Self {
        assert!(!steps.is_empty(), "schedule needs at least one step");
        assert_eq!(steps[0].0, 0.0, "first step must start at t=0");
        for w in steps.windows(2) {
            assert!(
                w[1].0 > w[0].0,
                "step starts must be strictly increasing ({} then {})",
                w[0].0,
                w[1].0
            );
        }
        StepSchedule { steps }
    }

    /// A schedule holding one value forever.
    pub fn constant(value: T) -> Self {
        StepSchedule {
            steps: vec![(0.0, value)],
        }
    }

    /// The value in force at time `t` (seconds).
    pub fn value_at(&self, t_secs: f64) -> &T {
        assert!(t_secs >= 0.0, "schedule queried at negative time");
        let idx = self
            .steps
            .partition_point(|&(start, _)| start <= t_secs)
            .saturating_sub(1);
        &self.steps[idx].1
    }

    /// All `(start_secs, value)` steps.
    pub fn steps(&self) -> &[(f64, T)] {
        &self.steps
    }

    /// Start times of every step after the first — the instants at which
    /// a simulation must re-apply conditions.
    pub fn change_points(&self) -> Vec<f64> {
        self.steps.iter().skip(1).map(|&(t, _)| t).collect()
    }
}

/// Background server load during one phase (Table VI column): offered
/// offload requests per second from *other* tenants.
pub type BackgroundLoad = f64;

/// The exact network schedule of Table V.
///
/// | Time (s) | Bandwidth | Loss (%) |
/// |----------|-----------|----------|
/// | 0–30     | 10        | 0        |
/// | 30–45    | 4         | 0        |
/// | 45–60    | 1         | 0        |
/// | 60–90    | 10        | 0        |
/// | 90–105   | 10        | 7        |
/// | 105+     | 4         | 7        |
pub fn table_v() -> StepSchedule<NetworkConditions> {
    let c = NetworkConditions::new;
    StepSchedule::new(vec![
        (0.0, c(10.0, 0.0)),
        (30.0, c(4.0, 0.0)),
        (45.0, c(1.0, 0.0)),
        (60.0, c(10.0, 0.0)),
        (90.0, c(10.0, 7.0)),
        (105.0, c(4.0, 7.0)),
    ])
}

/// The exact background-load schedule of Table VI (requests/s).
///
/// | Time (s) | Request rate |
/// |----------|--------------|
/// | 0–10     | 0            |
/// | 10–20    | 90           |
/// | 20–35    | 120          |
/// | 35–50    | 135          |
/// | 50–60    | 150          |
/// | 60–75    | 130          |
/// | 75–90    | 120          |
/// | 90–100   | 90           |
/// | 100+     | 0            |
pub fn table_vi() -> StepSchedule<BackgroundLoad> {
    StepSchedule::new(vec![
        (0.0, 0.0),
        (10.0, 90.0),
        (20.0, 120.0),
        (35.0, 135.0),
        (50.0, 150.0),
        (60.0, 130.0),
        (75.0, 120.0),
        (90.0, 90.0),
        (100.0, 0.0),
    ])
}

/// Figure 2's condition: an ideal network, then 7% packet loss injected
/// after 27 seconds.
pub fn fig2_loss_injection() -> StepSchedule<NetworkConditions> {
    StepSchedule::new(vec![
        (0.0, NetworkConditions::new(10.0, 0.0)),
        (27.0, NetworkConditions::new(10.0, 7.0)),
    ])
}

/// An ideal network held forever (baseline condition).
pub fn ideal_network() -> StepSchedule<NetworkConditions> {
    StepSchedule::constant(NetworkConditions::ideal())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_matches_the_paper() {
        let s = table_v();
        let at = |t: f64| *s.value_at(t);
        assert_eq!(at(0.0).bandwidth_mbps, 10.0);
        assert_eq!(at(29.9).bandwidth_mbps, 10.0);
        assert_eq!(at(30.0).bandwidth_mbps, 4.0);
        assert_eq!(at(45.0).bandwidth_mbps, 1.0);
        assert_eq!(at(59.9).bandwidth_mbps, 1.0);
        assert_eq!(at(60.0).bandwidth_mbps, 10.0);
        assert_eq!(at(89.9).loss_pct, 0.0);
        assert_eq!(at(90.0).loss_pct, 7.0);
        assert_eq!(at(90.0).bandwidth_mbps, 10.0);
        assert_eq!(at(105.0).bandwidth_mbps, 4.0);
        assert_eq!(at(105.0).loss_pct, 7.0);
        assert_eq!(at(1e6).bandwidth_mbps, 4.0, "last phase holds forever");
    }

    #[test]
    fn table_vi_matches_the_paper() {
        let s = table_vi();
        let cases = [
            (0.0, 0.0),
            (9.9, 0.0),
            (10.0, 90.0),
            (20.0, 120.0),
            (35.0, 135.0),
            (50.0, 150.0),
            (59.9, 150.0),
            (60.0, 130.0),
            (75.0, 120.0),
            (90.0, 90.0),
            (100.0, 0.0),
            (500.0, 0.0),
        ];
        for (t, expected) in cases {
            assert_eq!(*s.value_at(t), expected, "at t={t}");
        }
    }

    #[test]
    fn fig2_injects_loss_at_27s() {
        let s = fig2_loss_injection();
        assert_eq!(s.value_at(26.9).loss_pct, 0.0);
        assert_eq!(s.value_at(27.0).loss_pct, 7.0);
        assert_eq!(s.value_at(27.0).bandwidth_mbps, 10.0);
    }

    #[test]
    fn change_points_are_step_starts() {
        assert_eq!(
            table_v().change_points(),
            vec![30.0, 45.0, 60.0, 90.0, 105.0]
        );
        assert_eq!(ideal_network().change_points(), Vec::<f64>::new());
    }

    #[test]
    fn constant_schedule_never_changes() {
        let s = StepSchedule::constant(7u32);
        assert_eq!(*s.value_at(0.0), 7);
        assert_eq!(*s.value_at(1e9), 7);
    }

    #[test]
    #[should_panic(expected = "t=0")]
    fn schedule_must_start_at_zero() {
        let _ = StepSchedule::new(vec![(1.0, 0u32)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn schedule_rejects_non_increasing_steps() {
        let _ = StepSchedule::new(vec![(0.0, 0u32), (5.0, 1), (5.0, 2)]);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_query_time_panics() {
        let _ = table_vi().value_at(-1.0);
    }

    #[test]
    fn boundary_belongs_to_the_new_phase() {
        // Table V: at exactly t=30 the 4 Mbps phase is in force.
        assert_eq!(table_v().value_at(30.0).bandwidth_mbps, 4.0);
    }
}
