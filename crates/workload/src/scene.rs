//! Scene-change scripts: deterministic per-frame "information" scores.
//!
//! Real video is not size-stationary: scene cuts spike the compressed
//! frame size and the semantic novelty of each frame, while static
//! stretches produce long runs of near-duplicate frames. A
//! [`SceneScript`] reproduces that structure deterministically — phases
//! of scene-change intensity (a [`StepSchedule`] of [`ScenePhase`]s)
//! drive a per-frame information score in `[0, 1]` on a **dedicated RNG
//! stream** (the same stream discipline as the routing stream: enabling
//! a scene script never perturbs the frame-size stream, and a disabled
//! script draws nothing at all).
//!
//! The score feeds two consumers: the semantic filter
//! ([`SemanticFilter`](crate::SemanticFilter)) uses it to skip or shrink
//! low-information frames, and the frame source couples it into the
//! compressed size so scene cuts produce content-correlated byte bursts.

use crate::scenario::StepSchedule;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Scene-change intensity during one phase of a script.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenePhase {
    /// Expected scene cuts per second. Each frame cuts with probability
    /// `cut_rate / fps` (capped at 1); a cut spikes the information
    /// score toward 1.
    pub cut_rate: f64,
    /// Resting information level in `[0, 1]` the score decays toward
    /// between cuts — high for action footage, low for a static camera.
    pub base_info: f64,
}

impl ScenePhase {
    /// A phase with the given cut rate and resting level.
    pub fn new(cut_rate: f64, base_info: f64) -> Self {
        assert!(
            cut_rate >= 0.0 && cut_rate.is_finite(),
            "cut rate must be finite and non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&base_info),
            "base info must be in [0, 1]"
        );
        ScenePhase {
            cut_rate,
            base_info,
        }
    }
}

/// A deterministic scene-change script: phases of cut intensity plus a
/// coupling factor feeding the information score into frame sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneScript {
    /// Piecewise-constant phase schedule over stream time (seconds).
    pub phases: StepSchedule<ScenePhase>,
    /// How strongly the score modulates compressed frame size: a frame
    /// with information `i` is scaled by `1 + size_coupling·(2i − 1)`,
    /// so a cut roughly doubles at coupling 0.5 while a dead-still frame
    /// shrinks by the same factor. Must be in `[0, 1)`.
    pub size_coupling: f64,
}

impl SceneScript {
    /// A script over the given phases with the default size coupling.
    pub fn new(phases: StepSchedule<ScenePhase>) -> Self {
        SceneScript {
            phases,
            size_coupling: 0.5,
        }
    }

    /// Override the size coupling.
    pub fn with_size_coupling(mut self, size_coupling: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&size_coupling),
            "size coupling must be in [0, 1)"
        );
        self.size_coupling = size_coupling;
        self
    }
}

/// Between cuts the score relaxes geometrically toward the phase's
/// resting level: ~1/3 of the excursion remains after 10 frames.
const DECAY: f64 = 0.9;
/// Per-frame additive wobble half-width around the decay path.
const WOBBLE: f64 = 0.05;

/// Evolves a [`SceneScript`]'s information score frame by frame on its
/// own RNG stream. Exactly **two draws per frame** regardless of the
/// cut/no-cut branch, so the stream position depends only on the frame
/// count — never on earlier outcomes.
#[derive(Debug, Clone)]
pub struct SceneState<R: Rng> {
    script: SceneScript,
    rng: R,
    info: f64,
}

impl<R: Rng> SceneState<R> {
    /// Start a script on its dedicated RNG stream. The score starts at
    /// the first phase's resting level.
    pub fn new(script: SceneScript, rng: R) -> Self {
        assert!(
            (0.0..1.0).contains(&script.size_coupling),
            "size coupling must be in [0, 1)"
        );
        for (_, p) in script.phases.steps() {
            // Re-validate deserialized scripts; `ScenePhase::new` only
            // guards the in-code constructor.
            assert!(
                p.cut_rate >= 0.0 && p.cut_rate.is_finite(),
                "cut rate must be finite and non-negative"
            );
            assert!(
                (0.0..=1.0).contains(&p.base_info),
                "base info must be in [0, 1]"
            );
        }
        let info = script.phases.value_at(0.0).base_info;
        SceneState { script, rng, info }
    }

    /// The script being evolved.
    pub fn script(&self) -> &SceneScript {
        &self.script
    }

    /// Advance one frame captured at `t_secs` under frame rate `fps`,
    /// returning the frame's information score in `[0, 1]`.
    pub fn next_info(&mut self, t_secs: f64, fps: f64) -> f64 {
        let phase = *self.script.phases.value_at(t_secs);
        let p_cut = (phase.cut_rate / fps).min(1.0);
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let draw: f64 = self.rng.gen_range(0.0..1.0);
        self.info = if u < p_cut {
            // Scene cut: spike into the top of the range.
            0.7 + 0.3 * draw
        } else {
            let wobble = WOBBLE * (2.0 * draw - 1.0);
            (phase.base_info + (self.info - phase.base_info) * DECAY + wobble).clamp(0.0, 1.0)
        };
        self.info
    }

    /// Multiplicative frame-size factor for an information score.
    pub fn size_factor(&self, info: f64) -> f64 {
        1.0 + self.script.size_coupling * (2.0 * info - 1.0)
    }
}

/// A mostly static camera: rare cuts, low resting information — the
/// filter-friendly end of the scenario family.
pub fn scene_static() -> SceneScript {
    SceneScript::new(StepSchedule::constant(ScenePhase::new(0.2, 0.15)))
}

/// Alternating calm and action: 20 s static stretches punctuated by 10 s
/// high-cut bursts — the bursty, content-correlated traffic ROADMAP
/// item 2 calls out.
pub fn scene_bursty() -> SceneScript {
    let calm = ScenePhase::new(0.2, 0.15);
    let action = ScenePhase::new(3.0, 0.6);
    SceneScript::new(StepSchedule::new(vec![
        (0.0, calm),
        (20.0, action),
        (30.0, calm),
        (50.0, action),
        (60.0, calm),
        (80.0, action),
        (90.0, calm),
    ]))
}

/// A sustained cut storm in the middle of the run: every frame near a
/// cut for 40 s — the worst case for both the filter and the splitter.
pub fn scene_cut_storm() -> SceneScript {
    let calm = ScenePhase::new(0.5, 0.3);
    let storm = ScenePhase::new(10.0, 0.8);
    SceneScript::new(StepSchedule::new(vec![
        (0.0, calm),
        (30.0, storm),
        (70.0, calm),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_sim::RngFactory;
    use proptest::prelude::*;

    fn state(script: SceneScript, seed: u64) -> SceneState<rand_chacha::ChaCha8Rng> {
        SceneState::new(script, RngFactory::new(seed).stream("scene"))
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let mut s = state(scene_cut_storm(), 1);
        for i in 0..3_000u64 {
            let info = s.next_info(i as f64 / 30.0, 30.0);
            assert!((0.0..=1.0).contains(&info), "frame {i}: info {info}");
        }
    }

    #[test]
    fn same_seed_same_score_sequence() {
        let mut a = state(scene_bursty(), 7);
        let mut b = state(scene_bursty(), 7);
        for i in 0..500u64 {
            let t = i as f64 / 30.0;
            assert_eq!(
                a.next_info(t, 30.0).to_bits(),
                b.next_info(t, 30.0).to_bits()
            );
        }
    }

    #[test]
    fn action_phases_carry_more_information_than_calm_ones() {
        let mut s = state(scene_bursty(), 3);
        let mut calm_sum = 0.0;
        let mut calm_n = 0u64;
        let mut action_sum = 0.0;
        let mut action_n = 0u64;
        for i in 0..2_700u64 {
            let t = i as f64 / 30.0;
            let info = s.next_info(t, 30.0);
            if (20.0..30.0).contains(&t) || (50.0..60.0).contains(&t) || (80.0..90.0).contains(&t) {
                action_sum += info;
                action_n += 1;
            } else {
                calm_sum += info;
                calm_n += 1;
            }
        }
        let calm = calm_sum / calm_n as f64;
        let action = action_sum / action_n as f64;
        assert!(
            action > calm + 0.2,
            "action phases mean {action:.3} vs calm {calm:.3}"
        );
    }

    #[test]
    fn size_factor_spans_the_coupling_range() {
        let s = state(scene_static().with_size_coupling(0.4), 1);
        assert!((s.size_factor(0.0) - 0.6).abs() < 1e-12);
        assert!((s.size_factor(0.5) - 1.0).abs() < 1e-12);
        assert!((s.size_factor(1.0) - 1.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "size coupling")]
    fn unit_size_coupling_rejected() {
        let _ = scene_static().with_size_coupling(1.0);
    }

    #[test]
    #[should_panic(expected = "base info")]
    fn out_of_range_base_info_rejected() {
        let _ = ScenePhase::new(1.0, 1.5);
    }

    proptest! {
        /// Scores are reproducible and bounded for arbitrary two-phase
        /// scripts at arbitrary seeds.
        #[test]
        fn prop_scores_bounded_and_reproducible(
            seed in any::<u64>(),
            cut_a in 0.0f64..20.0,
            cut_b in 0.0f64..20.0,
            base_a in 0.0f64..=1.0,
            base_b in 0.0f64..=1.0,
            switch in 1.0f64..60.0,
        ) {
            let script = SceneScript::new(StepSchedule::new(vec![
                (0.0, ScenePhase::new(cut_a, base_a)),
                (switch, ScenePhase::new(cut_b, base_b)),
            ]));
            let mut a = state(script.clone(), seed);
            let mut b = state(script, seed);
            for i in 0..200u64 {
                let t = i as f64 / 30.0;
                let ia = a.next_info(t, 30.0);
                prop_assert!((0.0..=1.0).contains(&ia));
                prop_assert_eq!(ia.to_bits(), b.next_info(t, 30.0).to_bits());
            }
        }
    }
}
