//! Semantic frame filtering — the `DiffProcessor` stage.
//!
//! Following the EdgeCam exemplar (SNIPPETS.md §2) and Chen et al.'s
//! adaptive spatial-temporal semantic filtering, a [`SemanticFilter`]
//! sits between capture and the splitter: each frame's information
//! score (from a [`SceneScript`](crate::SceneScript)) is compared
//! against two thresholds and the frame is **skipped** (near-duplicate,
//! never enters the control loop), **shrunk** (low novelty — recompress
//! harder and send fewer bytes), or **passed** unchanged.
//!
//! Accounting is exact by construction: [`FilterStats`] counts every
//! captured frame into exactly one verdict bucket, and
//! `passed + shrunk + skipped == captured` is pinned by proptests over
//! arbitrary scripts and seeds.

use serde::{Deserialize, Serialize};

/// Thresholds of the semantic filter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterConfig {
    /// Frames with information below this are skipped outright.
    pub skip_below: f64,
    /// Frames with information in `[skip_below, shrink_below)` are
    /// shrunk; at or above, they pass unchanged.
    pub shrink_below: f64,
    /// Byte multiplier for shrunk frames, in `(0, 1)`.
    pub shrink_factor: f64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            skip_below: 0.15,
            shrink_below: 0.4,
            shrink_factor: 0.5,
        }
    }
}

impl FilterConfig {
    /// Panic on threshold orderings that cannot classify every score.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.skip_below)
                && (0.0..=1.0).contains(&self.shrink_below)
                && self.skip_below <= self.shrink_below,
            "filter thresholds need 0 <= skip_below <= shrink_below <= 1"
        );
        assert!(
            self.shrink_factor > 0.0 && self.shrink_factor < 1.0,
            "shrink factor must be in (0, 1)"
        );
    }
}

/// The filter's decision for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterVerdict {
    /// Forward the frame unchanged.
    Pass,
    /// Forward the frame at a reduced size (strictly fewer bytes).
    Shrink {
        /// The reduced payload size.
        bytes: u64,
    },
    /// Drop the frame before it reaches the splitter.
    Skip,
}

/// Exact verdict accounting: every captured frame lands in exactly one
/// bucket, so `passed + shrunk + skipped == captured` always.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    /// Frames offered to the filter.
    pub captured: u64,
    /// Frames forwarded unchanged.
    pub passed: u64,
    /// Frames forwarded at reduced size.
    pub shrunk: u64,
    /// Frames dropped.
    pub skipped: u64,
}

impl FilterStats {
    /// Whether the conservation invariant holds.
    pub fn conserved(&self) -> bool {
        self.passed + self.shrunk + self.skipped == self.captured
    }
}

/// The filter stage: thresholds plus running verdict counts.
#[derive(Debug, Clone)]
pub struct SemanticFilter {
    config: FilterConfig,
    stats: FilterStats,
}

impl SemanticFilter {
    /// A filter with validated thresholds and zeroed counters.
    pub fn new(config: FilterConfig) -> Self {
        config.validate();
        SemanticFilter {
            config,
            stats: FilterStats::default(),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> FilterConfig {
        self.config
    }

    /// Classify one frame by its information score and payload size.
    /// A 1-byte frame that would shrink passes instead — shrunk frames
    /// are guaranteed strictly smaller than the original.
    pub fn verdict(&mut self, info: f64, bytes: u64) -> FilterVerdict {
        self.stats.captured += 1;
        if info < self.config.skip_below {
            self.stats.skipped += 1;
            return FilterVerdict::Skip;
        }
        if info < self.config.shrink_below && bytes > 1 {
            let reduced = ((bytes as f64 * self.config.shrink_factor) as u64).clamp(1, bytes - 1);
            self.stats.shrunk += 1;
            return FilterVerdict::Shrink { bytes: reduced };
        }
        self.stats.passed += 1;
        FilterVerdict::Pass
    }

    /// Verdict counts so far.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::StepSchedule;
    use crate::scene::{scene_bursty, ScenePhase, SceneScript, SceneState};
    use ff_sim::RngFactory;
    use proptest::prelude::*;

    #[test]
    fn thresholds_partition_the_score_range() {
        let mut f = SemanticFilter::new(FilterConfig::default());
        assert_eq!(f.verdict(0.0, 1_000), FilterVerdict::Skip);
        assert_eq!(f.verdict(0.149, 1_000), FilterVerdict::Skip);
        assert_eq!(f.verdict(0.15, 1_000), FilterVerdict::Shrink { bytes: 500 });
        assert_eq!(
            f.verdict(0.399, 1_000),
            FilterVerdict::Shrink { bytes: 500 }
        );
        assert_eq!(f.verdict(0.4, 1_000), FilterVerdict::Pass);
        assert_eq!(f.verdict(1.0, 1_000), FilterVerdict::Pass);
        let s = f.stats();
        assert_eq!((s.captured, s.passed, s.shrunk, s.skipped), (6, 2, 2, 2));
        assert!(s.conserved());
    }

    #[test]
    fn one_byte_frames_pass_instead_of_shrinking() {
        let mut f = SemanticFilter::new(FilterConfig::default());
        assert_eq!(f.verdict(0.2, 1), FilterVerdict::Pass);
        assert!(f.stats().conserved());
    }

    #[test]
    #[should_panic(expected = "shrink factor")]
    fn unit_shrink_factor_rejected() {
        let mut c = FilterConfig::default();
        c.shrink_factor = 1.0;
        let _ = SemanticFilter::new(c);
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn inverted_thresholds_rejected() {
        let mut c = FilterConfig::default();
        c.skip_below = 0.5;
        c.shrink_below = 0.2;
        let _ = SemanticFilter::new(c);
    }

    #[test]
    fn bursty_script_exercises_all_three_verdicts() {
        let mut scene = SceneState::new(scene_bursty(), RngFactory::new(11).stream("scene"));
        let mut f = SemanticFilter::new(FilterConfig::default());
        for i in 0..2_700u64 {
            let info = scene.next_info(i as f64 / 30.0, 30.0);
            f.verdict(info, 25_000);
        }
        let s = f.stats();
        assert!(s.conserved());
        assert!(s.skipped > 0, "calm phases must skip: {s:?}");
        assert!(s.shrunk > 0, "mid-novelty frames must shrink: {s:?}");
        assert!(s.passed > 0, "cuts must pass: {s:?}");
    }

    proptest! {
        /// For arbitrary scene scripts, thresholds, seeds, and frame
        /// sizes: counts conserve exactly, shrunk frames are strictly
        /// smaller, and the whole verdict sequence reproduces at the
        /// same seed.
        #[test]
        fn prop_filter_conserves_shrinks_strictly_and_reproduces(
            seed in any::<u64>(),
            cut_a in 0.0f64..15.0,
            cut_b in 0.0f64..15.0,
            base_a in 0.0f64..=1.0,
            base_b in 0.0f64..=1.0,
            skip in 0.0f64..=0.5,
            shrink_span in 0.0f64..=0.5,
            factor in 0.05f64..0.95,
            bytes in 1u64..100_000,
            frames in 1u64..400,
        ) {
            let script = SceneScript::new(StepSchedule::new(vec![
                (0.0, ScenePhase::new(cut_a, base_a)),
                (10.0, ScenePhase::new(cut_b, base_b)),
            ]));
            let config = FilterConfig {
                skip_below: skip,
                shrink_below: skip + shrink_span,
                shrink_factor: factor,
            };
            let run = |seed: u64| {
                let mut scene = SceneState::new(
                    script.clone(),
                    RngFactory::new(seed).stream("scene"),
                );
                let mut f = SemanticFilter::new(config);
                let mut verdicts = Vec::new();
                for i in 0..frames {
                    let info = scene.next_info(i as f64 / 30.0, 30.0);
                    verdicts.push(f.verdict(info, bytes));
                }
                (verdicts, f.stats())
            };
            let (verdicts, stats) = run(seed);
            prop_assert!(stats.conserved(), "{stats:?}");
            prop_assert_eq!(stats.captured, frames);
            for v in &verdicts {
                if let FilterVerdict::Shrink { bytes: b } = v {
                    prop_assert!(*b >= 1 && *b < bytes, "shrunk {b} vs original {bytes}");
                }
            }
            // Same seed, same verdicts — bit for bit.
            let (again, stats_again) = run(seed);
            prop_assert_eq!(verdicts, again);
            prop_assert_eq!(stats, stats_again);
        }
    }
}
