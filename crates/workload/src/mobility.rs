//! Synthetic mobility traces.
//!
//! Table V steps conditions on a fixed timetable — good for controlled
//! comparison, but a *moving* device (UAV, vehicle, pedestrian — the §I
//! motivating workloads) sees bandwidth wander continuously as distance
//! and interference change. [`mobility_trace`] generates a seeded random
//! walk over link conditions: bandwidth performs a multiplicative random
//! walk between bounds (log-space steps, matching how path loss compounds
//! in dB), and loss episodes switch on and off as a two-state process.
//!
//! Traces are ordinary [`StepSchedule`]s, so everything that accepts a
//! Table V schedule accepts a mobility trace.

use crate::scenario::StepSchedule;
use ff_net::NetworkConditions;
use rand::Rng;

/// Parameters of a mobility trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityConfig {
    /// Trace length in seconds.
    pub duration_secs: f64,
    /// Seconds between condition changes (the walk's step period).
    pub dwell_secs: f64,
    /// Bandwidth bounds in Mbps.
    pub bandwidth_range: (f64, f64),
    /// Standard deviation of one log-bandwidth step (0.25 ≈ ±25%).
    pub step_sigma: f64,
    /// Probability that a dwell period is a loss episode.
    pub loss_episode_prob: f64,
    /// Loss percentage during an episode.
    pub episode_loss_pct: f64,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        MobilityConfig {
            duration_secs: 133.0, // one paper stream
            dwell_secs: 5.0,
            bandwidth_range: (1.0, 10.0),
            step_sigma: 0.35,
            loss_episode_prob: 0.15,
            episode_loss_pct: 7.0,
        }
    }
}

/// Generate a mobility trace with the given RNG (deterministic per seed).
pub fn mobility_trace<R: Rng>(
    config: &MobilityConfig,
    rng: &mut R,
) -> StepSchedule<NetworkConditions> {
    assert!(config.duration_secs > 0.0, "duration must be positive");
    assert!(config.dwell_secs > 0.0, "dwell must be positive");
    let (lo, hi) = config.bandwidth_range;
    assert!(
        lo > 0.0 && hi > lo,
        "bandwidth range must satisfy 0 < lo < hi"
    );
    assert!(
        (0.0..=1.0).contains(&config.loss_episode_prob),
        "episode probability must be in [0, 1]"
    );

    // Start mid-range (geometric mean).
    let mut ln_bw = (lo.ln() + hi.ln()) / 2.0;
    let mut steps = Vec::new();
    let mut t = 0.0;
    while t < config.duration_secs {
        // Gaussian step via Box–Muller from two uniform draws.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        ln_bw = (ln_bw + gauss * config.step_sigma).clamp(lo.ln(), hi.ln());
        // exp(ln(hi)) can overshoot hi by an ulp; clamp in linear space too.
        let bandwidth = ln_bw.exp().clamp(lo, hi);
        let loss = if rng.gen_bool(config.loss_episode_prob) {
            config.episode_loss_pct
        } else {
            0.0
        };
        steps.push((t, NetworkConditions::new(bandwidth, loss)));
        t += config.dwell_secs;
    }
    StepSchedule::new(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_sim::RngFactory;

    fn trace(seed: u64) -> StepSchedule<NetworkConditions> {
        mobility_trace(
            &MobilityConfig::default(),
            &mut RngFactory::new(seed).stream("mobility"),
        )
    }

    #[test]
    fn trace_covers_the_requested_duration() {
        let t = trace(1);
        let steps = t.steps();
        assert_eq!(steps[0].0, 0.0);
        let last = steps.last().unwrap().0;
        assert!((125.0..133.0).contains(&last), "last step at {last}");
        assert_eq!(steps.len(), 27, "133 s / 5 s dwell");
    }

    #[test]
    fn bandwidth_stays_within_bounds() {
        for seed in 0..20 {
            for (_, c) in trace(seed).steps() {
                assert!(
                    (1.0..=10.0).contains(&c.bandwidth_mbps),
                    "seed {seed}: bandwidth {} escaped",
                    c.bandwidth_mbps
                );
            }
        }
    }

    #[test]
    fn walk_actually_moves() {
        let t = trace(2);
        let bws: Vec<f64> = t.steps().iter().map(|(_, c)| c.bandwidth_mbps).collect();
        let min = bws.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = bws.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1.5, "walk too static: {min:.2}..{max:.2}");
    }

    #[test]
    fn loss_episodes_occur_at_roughly_the_configured_rate() {
        let mut episodes = 0;
        let mut total = 0;
        for seed in 0..50 {
            for (_, c) in trace(seed).steps() {
                total += 1;
                if c.loss_pct > 0.0 {
                    episodes += 1;
                }
            }
        }
        let rate = episodes as f64 / total as f64;
        assert!((rate - 0.15).abs() < 0.05, "episode rate {rate:.3}");
    }

    #[test]
    fn traces_are_deterministic_per_seed_and_differ_across_seeds() {
        assert_eq!(trace(7), trace(7));
        assert_ne!(trace(7), trace(8));
    }

    #[test]
    #[should_panic(expected = "bandwidth range")]
    fn inverted_bandwidth_range_rejected() {
        let mut config = MobilityConfig::default();
        config.bandwidth_range = (10.0, 1.0);
        mobility_trace(&config, &mut RngFactory::new(0).stream("x"));
    }
}
